#include "core/mobility.h"

#include <algorithm>
#include <cstdio>

#include "cdn/content.h"
#include "obs/timeseries.h"
#include "ran/profiles.h"
#include "workload/loadgen.h"

namespace mecdns::core {

using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

namespace {

constexpr const char* kCloudGroup = "cloud";

/// Fixed by the testbed so client fallback lists and site stub-domain
/// forwards can be configured before the resolver node exists.
simnet::Endpoint fixed_provider_endpoint() {
  return simnet::Endpoint{Ipv4Address::must_parse("10.201.0.53"),
                          dns::kDnsPort};
}

LatencyModel server_processing(double mean_ms) {
  return LatencyModel::normal(SimTime::millis(mean_ms),
                              SimTime::millis(mean_ms * 0.12),
                              SimTime::millis(mean_ms * 0.4));
}

cdn::ContentCatalog demo_catalog(const dns::DnsName& content_host) {
  cdn::ContentCatalog catalog;
  // Small objects: the experiment stresses lookup/allocation churn, not
  // transfer time, and every logical UE's fetch goes through one of these.
  catalog.add_series(content_host, "seg", MobilityTestbed::kCatalogObjects,
                     64 * 1024);
  return catalog;
}

}  // namespace

const char* mobility_mode_label(MobilityMode mode) {
  switch (mode) {
    case MobilityMode::kFragile:
      return "fragile";
    case MobilityMode::kRobust:
    case MobilityMode::kMisconfigured:
      return "robust";
  }
  return "?";
}

MobilityTestbed::MobilityTestbed(Config config)
    : config_(std::move(config)),
      content_name_(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test")) {
  if (config_.knobs.cells == 0 || config_.knobs.cells > 8) {
    throw std::invalid_argument("MobilityTestbed supports 1..8 cells");
  }
  build();
}

simnet::Endpoint MobilityTestbed::provider_endpoint() const {
  return fixed_provider_endpoint();
}

dns::DnsTransport::Options MobilityTestbed::client_options() const {
  dns::DnsTransport::Options options;
  if (config_.mode == MobilityMode::kRobust) {
    options.max_retries = 1;
    options.backoff_factor = 2.0;
    options.max_backoff = SimTime::seconds(8);
    options.fallback_servers = {fixed_provider_endpoint()};
    // failover_on_servfail defaults true: a guard SERVFAIL moves the
    // transaction to the provider within one RTT.
  }
  // Misconfigured: the site machinery is on but the operator forgot the
  // client-side fallback — guard sheds become hard failures.
  return options;
}

void MobilityTestbed::build() {
  const MobilityKnobs& k = config_.knobs;
  sim_ = std::make_unique<simnet::Simulator>();
  net_ = std::make_unique<simnet::Network>(*sim_, util::Rng(config_.seed));
  backbone_ =
      net_->add_node("internet-backbone", Ipv4Address::must_parse("192.0.2.1"));

  const dns::DnsName cdn_domain = dns::DnsName::must_parse("mycdn.ciab.test");
  const dns::DnsName parent_domain = dns::DnsName::must_parse("cdn-parent.test");
  const cdn::ContentCatalog catalog = demo_catalog(content_name_);

  // --- shared cloud tier: origin, cloud cache, public DNS ----------------
  const auto origin_addr = Ipv4Address::must_parse("198.51.100.10");
  const simnet::NodeId origin_node = net_->add_node("cloud-origin", origin_addr);
  net_->add_link(origin_node, backbone_, ran::wan_link(25.0));
  origin_ = std::make_unique<cdn::OriginServer>(*net_, origin_node,
                                                "cloud-origin", catalog);

  const auto cloud_cache_addr = Ipv4Address::must_parse("198.51.100.20");
  const simnet::NodeId cloud_cache_node =
      net_->add_node("cloud-cache", cloud_cache_addr);
  net_->add_link(cloud_cache_node, backbone_, ran::wan_link(24.0));
  cdn::CacheServer::Config ccc;
  ccc.parent = simnet::Endpoint{origin_addr, cdn::kContentPort};
  cloud_cache_ = std::make_unique<cdn::CacheServer>(
      *net_, cloud_cache_node, "cloud-cache", ccc, cloud_cache_addr);
  for (const auto& [url, object] : catalog.objects()) {
    cloud_cache_->warm(object);
  }

  hierarchy_ = std::make_unique<dns::PublicDnsHierarchy>(
      *net_, backbone_, ran::wan_link(15.0), server_processing(0.5));
  hierarchy_->ensure_tld("test", Ipv4Address::must_parse("199.7.50.1"),
                         ran::wan_link(15.0));

  // WAN C-DNS: the CDN domain's public authority. The provider path ends
  // here, and it answers with the cloud cache — degraded but up.
  {
    const auto addr = Ipv4Address::must_parse("198.51.100.53");
    const simnet::NodeId node = net_->add_node("wan-cdns", addr);
    net_->add_link(node, backbone_, ran::wan_link(11.7));
    cdn::TrafficRouter::Config wc;
    wc.cdn_domain = cdn_domain;
    wc.answer_ttl = 0;
    wan_cdns_ = std::make_unique<cdn::TrafficRouter>(
        *net_, node, "wan-cdns", server_processing(2.6), std::move(wc), addr);
    wan_cdns_->add_cache(kCloudGroup,
                         cdn::CacheInfo{"cloud-cache", cloud_cache_addr, true});
    wan_cdns_->coverage().set_default_group(kCloudGroup);
    wan_cdns_->add_delivery_service(cdn::DeliveryService{
        "demo1", dns::DnsName::must_parse("demo1.mycdn.ciab.test"),
        {kCloudGroup}});
    hierarchy_->delegate_to(cdn_domain,
                            dns::DnsName::must_parse("ns1.mycdn.ciab.test"),
                            addr);
  }

  // Parent CDN tier: where a bounded-load-exhausted edge C-DNS refers
  // demo1 queries via a cascading CNAME.
  {
    const auto addr = Ipv4Address::must_parse("198.51.100.63");
    const simnet::NodeId node = net_->add_node("mid-cdns", addr);
    net_->add_link(node, backbone_, ran::wan_link(11.7));
    cdn::TrafficRouter::Config mc;
    mc.cdn_domain = parent_domain;
    mc.answer_ttl = 0;
    mid_cdns_ = std::make_unique<cdn::TrafficRouter>(
        *net_, node, "mid-cdns", server_processing(2.6), std::move(mc), addr);
    mid_cdns_->add_cache(kCloudGroup,
                         cdn::CacheInfo{"cloud-cache", cloud_cache_addr, true});
    mid_cdns_->coverage().set_default_group(kCloudGroup);
    mid_cdns_->add_delivery_service(cdn::DeliveryService{
        "demo1", dns::DnsName::must_parse("demo1.cdn-parent.test"),
        {kCloudGroup}});
    hierarchy_->delegate_to(parent_domain,
                            dns::DnsName::must_parse("ns1.cdn-parent.test"),
                            addr);
  }

  // --- the cells ----------------------------------------------------------
  for (std::uint16_t cell = 0; cell < k.cells; ++cell) build_cell(cell);

  // Provider L-DNS: one resolver, reachable from every cell's P-GW.
  {
    const simnet::Endpoint ep = fixed_provider_endpoint();
    const simnet::NodeId node = net_->add_node("provider-ldns", ep.addr);
    for (auto& segment : segments_) {
      net_->add_link(segment->pgw(), node, ran::wan_link(14.55));
    }
    dns::RecursiveResolver::Config rcfg;
    rcfg.root_servers = hierarchy_->root_hints();
    provider_ldns_ = std::make_unique<dns::RecursiveResolver>(
        *net_, node, "provider-ldns", server_processing(0.8), rcfg, ep.addr);
  }

  for (auto& site : sites_) {
    site->add_delivery_service("demo1", catalog, /*warm_caches=*/true);
  }

  // --- clients ------------------------------------------------------------
  const bool robust_client = config_.mode == MobilityMode::kRobust;
  for (std::uint16_t cell = 0; cell < k.cells; ++cell) {
    auto ue = std::make_unique<ran::UserEquipment>(
        *net_, *segments_[cell], "agg-ue-" + std::to_string(cell),
        Ipv4Address::must_parse("10.45.1." + std::to_string(cell + 1)),
        sites_[cell]->ldns_endpoint(), client_options());
    if (robust_client) {
      ue->set_fetch_retries(2);
      ue->resolver().set_chase_cnames(true);
    }
    aggregate_ues_.push_back(std::move(ue));
  }

  const std::size_t cohort_n =
      std::min<std::size_t>(k.cohort, k.ues);
  for (std::size_t i = 0; i < cohort_n; ++i) {
    CohortUe member;
    member.ue = std::make_unique<ran::UserEquipment>(
        *net_, *segments_[0], "cohort-ue-" + std::to_string(i),
        Ipv4Address::must_parse("10.45.2." + std::to_string(i + 1)),
        sites_[0]->ldns_endpoint(), client_options());
    if (robust_client) {
      member.ue->set_fetch_retries(2);
      member.ue->resolver().set_chase_cnames(true);
      // The handoff fix under test: transactions pending against the old
      // cell's L-DNS follow the re-target instead of timing out.
      member.ue->resolver().set_retarget_in_flight(true);
    }
    member.handoff = std::make_unique<ran::HandoffManager>(*net_, *member.ue);
    member.handoff->add_cell(ran::HandoffManager::Cell{
        "cell-0", segments_[0].get(), segments_[0]->ue_link(member.ue->node()),
        sites_[0]->ldns_endpoint()});
    for (std::uint16_t cell = 1; cell < k.cells; ++cell) {
      const simnet::LinkId link =
          net_->add_link(member.ue->node(), segments_[cell]->enb(),
                         ran::lte().uplink, ran::lte().downlink);
      net_->set_link_up(link, false);
      member.handoff->add_cell(ran::HandoffManager::Cell{
          "cell-" + std::to_string(cell), segments_[cell].get(), link,
          sites_[cell]->ldns_endpoint()});
    }
    member.handoff->attach(0);
    cohort_.push_back(std::move(member));
  }
}

void MobilityTestbed::build_cell(std::uint16_t cell) {
  const MobilityKnobs& k = config_.knobs;
  const std::string prefix = "10.1" + std::string(1, '0' + 1 + cell % 9);
  ran::RanSegment::Config rc;
  rc.name = "cell-" + std::to_string(cell);
  rc.enb_addr = Ipv4Address::must_parse(prefix + ".0.1");
  rc.sgw_addr = Ipv4Address::must_parse(prefix + ".0.2");
  rc.pgw_addr =
      Ipv4Address::must_parse("203.0." + std::to_string(113 + cell) + ".1");
  rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
  rc.access = ran::lte();
  auto segment = std::make_unique<ran::RanSegment>(*net_, rc);
  net_->add_link(segment->pgw(), backbone_, ran::wan_link(4.0));

  MecCdnSite::Config sc;
  sc.orchestrator.cluster.name = "mec-" + std::to_string(cell);
  sc.orchestrator.cluster.node_cidr =
      simnet::Cidr::must_parse(prefix + ".64.0/24");
  sc.orchestrator.cluster.service_cidr =
      simnet::Cidr::must_parse(prefix + ".128.0/20");
  sc.answer_ttl = 0;  // per-query routing: every lookup carries real load
  sc.origin =
      simnet::Endpoint{Ipv4Address::must_parse("198.51.100.10"),
                       cdn::kContentPort};
  sc.provider_ldns = fixed_provider_endpoint();
  sc.parent_cdn_domain = dns::DnsName::must_parse("cdn-parent.test");
  // The capacity constraint exists in every mode — robustness is in the
  // handling, not in pretending the L-DNS is infinite.
  sc.ldns_workers = k.ldns_workers;
  sc.ldns_max_queue = k.ldns_max_queue;
  if (config_.mode != MobilityMode::kFragile) {
    sc.overload_threshold_qps = k.guard_threshold_qps;
    sc.overload_recovery_windows = k.guard_recovery_windows;
    sc.overload_action = mec::OverloadAction::kServFail;
    sc.overload_queue_limit = k.queue_shed_limit;
    sc.cache_selection_capacity = k.cache_selection_capacity;
    sc.cache_selection_window = SimTime::seconds(1);
    sc.cdns_fallback_to_provider = true;
  }
  auto site = std::make_unique<MecCdnSite>(*net_, sc);
  net_->add_link(segment->pgw(), site->orchestrator().cluster().gateway(),
                 LatencyModel::constant(SimTime::millis(0.5)));
  segments_.push_back(std::move(segment));
  sites_.push_back(std::move(site));
}

MobilityRunResult run_mobility_job(workload::MobilityScenario scenario,
                                   MobilityMode mode, std::uint64_t seed,
                                   const MobilityKnobs& knobs,
                                   bool want_series, bool want_incidents) {
  MobilityTestbed::Config config;
  config.mode = mode;
  config.seed = seed;
  config.knobs = knobs;
  MobilityTestbed bed(config);
  simnet::Simulator& sim = bed.simulator();

  // Control-plane flight recorder. Attaching it draws no randomness and
  // schedules no events, so rows stay byte-identical either way; only
  // transition points record, so the journal stays cold under load.
  obs::Journal journal;
  if (want_incidents) {
    for (std::uint16_t cell = 0; cell < knobs.cells; ++cell) {
      if (bed.site(cell).overload_guard() != nullptr) {
        bed.site(cell).overload_guard()->set_journal(&journal, cell);
      }
      bed.site(cell).router()->set_journal(&journal, cell);
    }
    // Cohort transports see real handoffs; aggregate UEs are mass-load
    // stand-ins whose failover churn would swamp the ring.
    for (std::size_t i = 0; i < bed.cohort_size(); ++i) {
      bed.cohort_ue(i).resolver().transport().set_journal(&journal);
    }
    // The churn event itself is the incident seed: its window is scripted,
    // so record it with explicit timestamps up front.
    journal.record(knobs.event_start, obs::JournalKind::kLoadStart,
                   /*cell=*/0, workload::mobility_slug(scenario),
                   knobs.ues);
    journal.record(knobs.event_end, obs::JournalKind::kLoadEnd,
                   /*cell=*/0, workload::mobility_slug(scenario));
  }

  obs::TimeSeries series(sim, knobs.slo_window);
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  util::SampleSet latencies;
  std::vector<std::uint32_t> population(knobs.cells, 0);

  workload::MobilityModel::Options mo;
  mo.ues = knobs.ues;
  mo.cells = knobs.cells;
  mo.scenario = scenario;
  mo.duration = knobs.duration;
  mo.event_start = knobs.event_start;
  mo.event_end = knobs.event_end;
  mo.target_cell = 0;
  mo.participation = knobs.participation;
  mo.crowd_burst = knobs.crowd_burst;
  mo.dwell = knobs.dwell;
  mo.seed = seed;
  workload::MobilityModel model(
      sim, mo,
      [&bed, &series, &population](std::uint32_t ue, std::uint16_t from,
                                   std::uint16_t to) {
        --population[from];
        ++population[to];
        series.set_gauge("mob.pop.cell" + std::to_string(from),
                         static_cast<double>(population[from]));
        series.set_gauge("mob.pop.cell" + std::to_string(to),
                         static_cast<double>(population[to]));
        // The first `cohort` logical UEs are real: their handoff is a true
        // bulk DNS re-target (and, when enabled, an in-flight retarget).
        if (ue < bed.cohort_size()) {
          bed.cohort_handoff(ue).attach(to, /*retarget_dns=*/true);
        }
      });

  workload::LoadGenerator::Options lo;
  lo.ues = knobs.ues;
  lo.rate_hz = knobs.rate_hz;
  lo.duration = knobs.duration;
  lo.seed = seed;
  workload::LoadGenerator load(
      sim, lo, [&bed, &model, &series, &ok, &failed, &latencies](
                   std::uint32_t ue) {
        ran::UserEquipment& client =
            ue < bed.cohort_size()
                ? bed.cohort_ue(ue)
                : bed.aggregate_ue(model.cell_of(ue));
        char path[16];
        std::snprintf(path, sizeof(path), "/seg%04u",
                      ue % static_cast<std::uint32_t>(
                               MobilityTestbed::kCatalogObjects));
        cdn::Url url;
        url.host = bed.content_name();
        url.path = path;
        client.resolve_and_fetch(
            url, [&series, &ok, &failed,
                  &latencies](const ran::UserEquipment::FetchOutcome& outcome) {
              series.add("fetch.requests");
              if (outcome.ok) {
                ++ok;
                latencies.add(outcome.total.to_millis());
                series.observe("fetch.total_ms", outcome.total.to_millis());
              } else {
                ++failed;
                series.add("fetch.failures");
              }
            });
      });

  // Overload-safe degradation includes elasticity: per-site control loops
  // add cache replicas when routed load per replica crosses the watermark.
  std::vector<std::unique_ptr<mec::AutoScaler>> scalers;
  if (mode != MobilityMode::kFragile) {
    for (std::uint16_t cell = 0; cell < knobs.cells; ++cell) {
      MecCdnSite* site = &bed.site(cell);
      mec::AutoScaler::Config ac;
      ac.interval = SimTime::seconds(1);
      ac.scale_up_per_replica = knobs.scale_up_per_replica;
      ac.scale_down_per_replica = knobs.scale_down_per_replica;
      ac.min_replicas = site->site_config().edge_caches;
      ac.max_replicas = knobs.max_replicas;
      ac.cooldown_intervals = 2;
      scalers.push_back(std::make_unique<mec::AutoScaler>(
          sim, ac,
          [site] { return site->router()->router_stats().routed; },
          [site] { return site->active_edge_caches(); },
          [site] { return site->add_edge_cache() != nullptr; },
          [site] { return site->retire_edge_cache(); }));
      if (want_incidents) scalers.back()->set_journal(&journal, cell);
      scalers.back()->run_for(static_cast<std::size_t>(
          knobs.duration.count_nanos() / ac.interval.count_nanos()));
    }
  }

  model.start();
  for (std::uint16_t cell = 0; cell < knobs.cells; ++cell) {
    population[cell] = model.population(cell);
  }
  // Move the cohort to its modelled starting cells before any load flows.
  for (std::size_t i = 0; i < bed.cohort_size(); ++i) {
    bed.cohort_handoff(i).attach(model.cell_of(static_cast<std::uint32_t>(i)),
                                 /*retarget_dns=*/true);
  }
  std::uint64_t base_handoffs = 0;
  for (std::size_t i = 0; i < bed.cohort_size(); ++i) {
    base_handoffs += bed.cohort_handoff(i).handoffs();
  }
  load.start();
  const SimTime t0 = sim.now();
  sim.schedule_at(t0 + knobs.event_start, [&series, scenario] {
    series.annotate("phase", std::string(workload::mobility_slug(scenario)) +
                                 " event start");
  });
  sim.schedule_at(t0 + knobs.event_end, [&series, scenario] {
    series.annotate("phase", std::string(workload::mobility_slug(scenario)) +
                                 " event end");
  });
  sim.run();

  MobilityRunResult r;
  r.scenario = workload::mobility_slug(scenario);
  r.mode = mobility_mode_label(mode);
  r.issued = load.issued();
  r.ok = ok;
  r.failed = failed;
  r.success_rate =
      r.issued == 0 ? 0.0
                    : static_cast<double>(ok) / static_cast<double>(r.issued);
  r.latency = latencies.summarize();
  r.moves = model.moves();

  for (std::size_t i = 0; i < bed.cohort_size(); ++i) {
    r.cohort_handoffs += bed.cohort_handoff(i).handoffs();
    const dns::DnsTransport& t = bed.cohort_ue(i).resolver().transport();
    r.in_flight_retargets += t.retargets();
    r.ue_timeouts += t.timeouts();
    r.ue_retransmissions += t.retransmissions();
    r.ue_servfails += t.servfails();
    r.ue_failovers += t.failovers();
  }
  r.cohort_handoffs -= base_handoffs;
  for (std::uint16_t cell = 0; cell < knobs.cells; ++cell) {
    const dns::DnsTransport& t =
        bed.aggregate_ue(cell).resolver().transport();
    r.ue_timeouts += t.timeouts();
    r.ue_retransmissions += t.retransmissions();
    r.ue_servfails += t.servfails();
    r.ue_failovers += t.failovers();

    MecCdnSite& site = bed.site(cell);
    if (site.overload_guard() != nullptr) {
      const mec::OverloadGuardPlugin& guard = *site.overload_guard();
      r.shed += guard.shed();
      r.shed_queue_full += guard.shed_queue_full();
      r.guard_trips += guard.trips();
      r.guard_recoveries += guard.recoveries();
    }
    const cdn::RouterStats& rs = site.router()->router_stats();
    r.routed += rs.routed;
    r.referred_to_parent += rs.referred_to_parent;
    r.bounded_overflows += rs.bounded_overflows;
    r.capacity_exhausted += rs.capacity_exhausted;
    r.topology_changes += rs.topology_changes;
    r.max_remap_fraction = std::max(r.max_remap_fraction,
                                    rs.max_remap_fraction);
    r.max_site_replicas =
        std::max(r.max_site_replicas, site.active_edge_caches());
  }
  for (const auto& scaler : scalers) {
    r.scale_ups += scaler->scale_ups();
    r.scale_downs += scaler->scale_downs();
  }

  r.slo = obs::evaluate_slo(
      obs::success_slo("fetch.requests", "fetch.failures", knobs.slo_target),
      series);
  if (want_series) r.series_json = series.to_json();
  if (want_incidents) {
    obs::append_slo_journal(r.slo, journal);
    const obs::IncidentReport report = obs::correlate_incidents(journal);
    r.journal_json = journal.to_json();
    r.incidents_json = "{\"scenario\": \"" + r.scenario + "\", \"mode\": \"" +
                       r.mode + "\", " + obs::incident_report_json(report) +
                       "}";
  }
  return r;
}

std::string mobility_row_json(const MobilityRunResult& r) {
  char buf[1600];
  std::snprintf(
      buf, sizeof(buf),
      "{\"scenario\": \"%s\", \"mode\": \"%s\", \"issued\": %llu, "
      "\"ok\": %llu, \"failed\": %llu, \"success_rate\": %.4f, "
      "\"mean\": %.3f, \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, "
      "\"max\": %.3f, "
      "\"moves\": %llu, \"cohort_handoffs\": %llu, "
      "\"in_flight_retargets\": %llu, "
      "\"ue_timeouts\": %llu, \"ue_retransmissions\": %llu, "
      "\"ue_servfails\": %llu, \"ue_failovers\": %llu, "
      "\"shed\": %llu, \"shed_queue_full\": %llu, "
      "\"guard_trips\": %llu, \"guard_recoveries\": %llu, "
      "\"routed\": %llu, \"referred_to_parent\": %llu, "
      "\"bounded_overflows\": %llu, \"capacity_exhausted\": %llu, "
      "\"topology_changes\": %llu, \"max_remap_fraction\": %.4f, "
      "\"scale_ups\": %llu, \"scale_downs\": %llu, "
      "\"max_site_replicas\": %zu, "
      "\"slo_ok\": %s, \"slo_windows\": %zu, "
      "\"slo_windows_violated\": %zu, \"slo_budget_consumed\": %.4f, "
      "\"slo_worst_burn_rate\": %.4f, \"slo_first_violation_ms\": %.1f, "
      "\"slo_last_violation_ms\": %.1f}",
      r.scenario.c_str(), r.mode.c_str(),
      static_cast<unsigned long long>(r.issued),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.failed), r.success_rate,
      r.latency.mean, r.latency.p50, r.latency.p90, r.latency.p99,
      r.latency.max, static_cast<unsigned long long>(r.moves),
      static_cast<unsigned long long>(r.cohort_handoffs),
      static_cast<unsigned long long>(r.in_flight_retargets),
      static_cast<unsigned long long>(r.ue_timeouts),
      static_cast<unsigned long long>(r.ue_retransmissions),
      static_cast<unsigned long long>(r.ue_servfails),
      static_cast<unsigned long long>(r.ue_failovers),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.shed_queue_full),
      static_cast<unsigned long long>(r.guard_trips),
      static_cast<unsigned long long>(r.guard_recoveries),
      static_cast<unsigned long long>(r.routed),
      static_cast<unsigned long long>(r.referred_to_parent),
      static_cast<unsigned long long>(r.bounded_overflows),
      static_cast<unsigned long long>(r.capacity_exhausted),
      static_cast<unsigned long long>(r.topology_changes),
      r.max_remap_fraction, static_cast<unsigned long long>(r.scale_ups),
      static_cast<unsigned long long>(r.scale_downs), r.max_site_replicas,
      r.slo.ok ? "true" : "false", r.slo.windows.size(),
      r.slo.windows_violated, r.slo.budget_consumed, r.slo.worst_burn_rate,
      r.slo.first_violation_ms, r.slo.last_violation_ms);
  return buf;
}

}  // namespace mecdns::core
