// The Figure 5 LTE testbed: six DNS deployment scenarios.
//
// Recreates the paper's prototype — srsLTE RAN + NextEPC core + Kubernetes
// + CoreDNS + Apache Traffic Control, all "collocated at the edge of
// network" — as a simulated topology, and measures DNS lookup latency for
// video.demo1.mycdn.ciab.test under each resolver deployment the paper
// compares:
//
//   1. MEC L-DNS w/ MEC C-DNS   — the proposal (both in the MEC cluster)
//   2. MEC L-DNS w/ LAN C-DNS   — ETSI/3GPP-style: C-DNS one LAN hop away
//   3. MEC L-DNS w/ WAN C-DNS   — C-DNS at the CDN's cloud site
//   4. LAN L-DNS                — provider L-DNS behind the cellular core
//   5. Google DNS               — cloud public resolver (well-peered)
//   6. Cloudflare DNS           — CDN-operated public resolver (the slow
//                                 path from the paper's testbed)
//
// Every scenario carries real DNS wire traffic end to end; the breakdown
// into "wireless" and "DNS query over LTE" segments comes from the DnsTap
// at the P-GW, exactly like the paper's tcpdump.
#pragma once

#include <memory>
#include <string>

#include "cdn/cache_server.h"
#include "cdn/traffic_router.h"
#include "core/experiment.h"
#include "core/mec_cdn.h"
#include "dns/hierarchy.h"
#include "dns/recursive.h"
#include "ran/segment.h"
#include "ran/tap.h"
#include "ran/ue.h"

namespace mecdns::core {

enum class Fig5Deployment {
  kMecLdnsMecCdns,
  kMecLdnsLanCdns,
  kMecLdnsWanCdns,
  kProviderLdns,
  kGoogleDns,
  kCloudflareDns,
};

/// The paper's bar label.
std::string to_string(Fig5Deployment deployment);

/// All six, in the figure's order.
const std::vector<Fig5Deployment>& all_fig5_deployments();

class Fig5Testbed {
 public:
  struct Config {
    Fig5Deployment deployment = Fig5Deployment::kMecLdnsMecCdns;
    std::uint64_t seed = 42;
    bool enable_ecs = false;
    ran::AccessProfile access = ran::lte();

    /// Always build the provider L-DNS and configure the MEC L-DNS to
    /// forward non-MEC queries to it (the split-namespace ablation and the
    /// overload fallback need both paths live at once).
    bool provider_fallback = false;
    /// Overload guard threshold for the MEC L-DNS public view (0 = off).
    std::size_t overload_threshold_qps = 0;
    /// Overload-guard recovery hysteresis windows (0 = stateless guard).
    std::size_t overload_recovery_windows = 0;

    // --- robustness knobs (defaults reproduce the fragile baseline) -----
    /// UE stub transport options: retry/backoff/failover-server knobs for
    /// the fault-availability experiments.
    dns::DnsTransport::Options ue_dns_options;
    /// Routed-answer TTL (0 = per-query routing, as the paper measured).
    /// Non-zero lets the L-DNS cache answers — a prerequisite for
    /// serve-stale to have anything stale to serve.
    std::uint32_t answer_ttl = 0;
    /// RFC 8767 serve-stale on the MEC L-DNS public-view cache.
    bool serve_stale = false;
    /// Append the provider L-DNS to the L-DNS's stub-domain forward and
    /// fail over to it on SERVFAIL or timeout from the MEC C-DNS (requires
    /// provider_fallback). The provider resolves the CDN domain through
    /// the public hierarchy to the WAN C-DNS — the degraded-but-up path.
    bool cdns_fallback_to_provider = false;

    // --- calibration knobs (defaults reproduce Figure 5's shape) --------
    double pgw_to_mec_ms = 0.5;      ///< P-GW <-> cluster gateway, one way
    double lan_cdns_ms = 3.3;        ///< MEC <-> LAN C-DNS, one way
    double pgw_to_internet_ms = 4.0; ///< operator core <-> backbone
    double wan_cdns_ms = 11.7;       ///< backbone <-> CDN cloud site
    double provider_ldns_ms = 14.55; ///< P-GW <-> provider L-DNS
    double google_ms = 14.0;         ///< backbone <-> Google (anycast: near)
    double cloudflare_ms = 57.3;     ///< backbone <-> Cloudflare (the far,
                                     ///< slow path the paper measured)
  };

  explicit Fig5Testbed(Config config);

  /// Attaches observability to the measurement path: spans per lookup into
  /// `trace`, runner histograms into `metrics`. Either may be nullptr.
  void set_observers(obs::TraceSink* trace, obs::Registry* metrics) {
    trace_sink_ = trace;
    metrics_ = metrics;
  }

  /// Attaches a sim-time-windowed series, forwarded to the QueryRunner.
  void set_timeseries(obs::TimeSeries* series) { timeseries_ = series; }

  /// Snapshots every component's counters into `registry`: the MEC site
  /// (L-DNS, C-DNS, edge caches), the scenario's external routers, the
  /// provider/public resolvers, the cloud cache and the P-GW tap.
  void export_metrics(obs::Registry& registry) const;

  /// Runs `queries` measured lookups (plus warmups) of the content name.
  SeriesResult measure(std::size_t queries = 50,
                       simnet::SimTime spacing = simnet::SimTime::seconds(2));

  /// Measures lookups of an arbitrary name (ablation benches).
  SeriesResult measure_name(const dns::DnsName& name, std::size_t queries,
                            simnet::SimTime spacing, std::size_t warmup = 3);

  /// The content's DNS name: video.demo1.mycdn.ciab.test.
  const dns::DnsName& content_name() const { return content_name_; }

  /// A regular (non-MEC) web CDN domain hosted across the WAN; resolvable
  /// through the provider path. Only present with provider_fallback.
  const dns::DnsName& web_name() const { return web_name_; }

  /// Content of a delivery service deployed only at the parent CDN tier
  /// (not at the MEC): resolving it through the MEC C-DNS yields a
  /// cascading CNAME into the parent tier's domain. Only present with
  /// provider_fallback.
  const dns::DnsName& tier2_name() const { return tier2_name_; }

  /// The provider L-DNS endpoint (when built).
  simnet::Endpoint provider_endpoint() const {
    return provider_ldns_->endpoint();
  }

  /// True if `addr` is one of the MEC edge caches' cluster IPs.
  bool is_mec_cache(simnet::Ipv4Address addr) const;
  /// True if `addr` is the cloud cache.
  bool is_cloud_cache(simnet::Ipv4Address addr) const {
    return addr == cloud_cache_addr_;
  }

  simnet::Network& network() { return *net_; }
  simnet::Simulator& simulator() { return *sim_; }
  ran::UserEquipment& ue() { return *ue_; }
  ran::RanSegment& ran() { return *ran_; }
  MecCdnSite& site() { return *site_; }
  ran::DnsTap& tap() { return *tap_; }
  const Config& config() const { return config_; }

  // --- fault-injection handles (chaos scenarios) --------------------------
  /// Node hosting the MEC L-DNS (the cluster "infra" worker).
  simnet::NodeId mec_ldns_node() const;
  /// The provider L-DNS node (kInvalidNode when not built).
  simnet::NodeId provider_ldns_node() const { return provider_node_; }
  /// P-GW <-> internet backbone (the WAN exit).
  simnet::LinkId pgw_backbone_link() const { return pgw_backbone_link_; }
  /// P-GW <-> MEC cluster gateway.
  simnet::LinkId pgw_mec_link() const { return pgw_mec_link_; }
  /// Cluster gateway <-> LAN C-DNS node.
  simnet::LinkId mec_lan_link() const { return mec_lan_link_; }
  /// P-GW <-> provider L-DNS (only meaningful when the provider is built).
  simnet::LinkId pgw_provider_link() const { return pgw_provider_link_; }
  dns::RecursiveResolver* provider_ldns() { return provider_ldns_.get(); }
  cdn::CacheServer* cloud_cache() { return cloud_cache_.get(); }
  /// The C-DNS the active scenario resolves through (for ECS toggling and
  /// answer-correctness checks). The in-cluster router for scenario 1,
  /// the LAN or WAN router otherwise.
  cdn::TrafficRouter& active_router();

 private:
  void build();

  Config config_;
  dns::DnsName content_name_;
  dns::DnsName web_name_;
  dns::DnsName tier2_name_;
  std::unique_ptr<simnet::Simulator> sim_;
  std::unique_ptr<simnet::Network> net_;
  std::unique_ptr<ran::RanSegment> ran_;
  std::unique_ptr<ran::UserEquipment> ue_;
  std::unique_ptr<ran::DnsTap> tap_;
  std::unique_ptr<MecCdnSite> site_;
  std::unique_ptr<dns::PublicDnsHierarchy> hierarchy_;
  std::unique_ptr<cdn::TrafficRouter> lan_cdns_;
  std::unique_ptr<cdn::TrafficRouter> wan_cdns_;
  std::unique_ptr<cdn::TrafficRouter> mid_cdns_;
  std::unique_ptr<dns::RecursiveResolver> provider_ldns_;
  std::unique_ptr<dns::RecursiveResolver> public_resolver_;
  std::unique_ptr<cdn::OriginServer> origin_;
  std::unique_ptr<cdn::CacheServer> cloud_cache_;
  simnet::NodeId backbone_ = simnet::kInvalidNode;
  simnet::NodeId provider_node_ = simnet::kInvalidNode;
  simnet::LinkId pgw_backbone_link_ = 0;
  simnet::LinkId pgw_mec_link_ = 0;
  simnet::LinkId mec_lan_link_ = 0;
  simnet::LinkId pgw_provider_link_ = 0;
  simnet::Ipv4Address cloud_cache_addr_;
  obs::TraceSink* trace_sink_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::TimeSeries* timeseries_ = nullptr;
};

}  // namespace mecdns::core
