#include "core/fault_scenarios.h"

#include <stdexcept>

namespace mecdns::core {

const std::vector<std::string>& fault_scenario_names() {
  static const std::vector<std::string> kNames = {
      "mec-ldns-crash", "edge-cache-partition", "wan-loss-burst",
      "cdns-brownout",  "cache-wipe",
  };
  return kNames;
}

FaultScenario make_mec_ldns_crash(Fig5Testbed& testbed, simnet::SimTime start,
                                  simnet::SimTime end) {
  FaultScenario scenario;
  scenario.name = "mec-ldns-crash";
  scenario.description =
      "the node hosting the MEC L-DNS crashes, restarts at fault_end";
  scenario.fault_start = start;
  scenario.fault_end = end;
  scenario.schedule.node_outage(start, end, testbed.mec_ldns_node());
  return scenario;
}

FaultScenario make_edge_cache_partition(Fig5Testbed& testbed,
                                        simnet::SimTime start,
                                        simnet::SimTime end) {
  FaultScenario scenario;
  scenario.name = "edge-cache-partition";
  scenario.description =
      "every edge-cache worker drops off the cluster fabric, rejoins at "
      "fault_end";
  scenario.fault_start = start;
  scenario.fault_end = end;
  simnet::Network& net = testbed.network();
  const simnet::NodeId ldns = testbed.mec_ldns_node();
  const std::size_t caches = testbed.site().site_config().edge_caches;
  for (std::size_t i = 0; i < caches; ++i) {
    const simnet::NodeId node =
        net.find_node(testbed.site().cache_address(i));
    // The infra worker hosts the L-DNS/C-DNS; a "cache partition" must not
    // quietly become an L-DNS crash.
    if (node == simnet::kInvalidNode || node == ldns) continue;
    scenario.schedule.node_outage(start, end, node);
  }
  return scenario;
}

FaultScenario make_wan_loss_burst(Fig5Testbed& testbed, simnet::SimTime start,
                                  simnet::SimTime end, double probability) {
  FaultScenario scenario;
  scenario.name = "wan-loss-burst";
  scenario.description =
      "the P-GW's WAN exit link drops packets at random during the window";
  scenario.fault_start = start;
  scenario.fault_end = end;
  scenario.schedule.loss_burst(start, end, testbed.pgw_backbone_link(),
                               probability);
  return scenario;
}

FaultScenario make_cdns_brownout(Fig5Testbed& testbed, simnet::SimTime start,
                                 simnet::SimTime end, simnet::SimTime extra) {
  FaultScenario scenario;
  scenario.name = "cdns-brownout";
  scenario.description =
      "the serving C-DNS adds a fixed per-query delay during the window "
      "(alive but degraded)";
  scenario.fault_start = start;
  scenario.fault_end = end;
  cdn::TrafficRouter& router = testbed.active_router();
  scenario.schedule.custom(start, "cdns-brownout-on", [&router, extra] {
    router.set_extra_processing(extra);
  });
  scenario.schedule.custom(end, "cdns-brownout-off", [&router] {
    router.set_extra_processing(simnet::SimTime::zero());
  });
  return scenario;
}

FaultScenario make_cache_wipe(Fig5Testbed& testbed, simnet::SimTime at) {
  FaultScenario scenario;
  scenario.name = "cache-wipe";
  scenario.description =
      "every edge cache loses its content store at one instant (cold "
      "restart); subsequent fetches re-fill from the origin";
  scenario.fault_start = at;
  scenario.fault_end = at;
  scenario.schedule.custom(at, "edge-cache-wipe", [&testbed] {
    for (cdn::CacheServer* cache : testbed.site().caches()) {
      cache->wipe();
    }
  });
  return scenario;
}

FaultScenario make_fault_scenario(const std::string& name,
                                  Fig5Testbed& testbed, simnet::SimTime start,
                                  simnet::SimTime end) {
  if (name == "mec-ldns-crash") {
    return make_mec_ldns_crash(testbed, start, end);
  }
  if (name == "edge-cache-partition") {
    return make_edge_cache_partition(testbed, start, end);
  }
  if (name == "wan-loss-burst") {
    return make_wan_loss_burst(testbed, start, end);
  }
  if (name == "cdns-brownout") {
    return make_cdns_brownout(testbed, start, end);
  }
  if (name == "cache-wipe") {
    return make_cache_wipe(testbed, start);
  }
  throw std::invalid_argument("unknown fault scenario: " + name);
}

}  // namespace mecdns::core
