// Trace replay: drive a UE through combined mobility and request traces.
//
// The replayer schedules every mobility event on a HandoffManager and every
// request on the UE, then summarizes outcomes — the scenario engine for
// "what does a driving user experience" studies (ablation A4's big sibling).
#pragma once

#include <functional>
#include <vector>

#include "ran/handoff.h"
#include "ran/ue.h"
#include "util/stats.h"
#include "workload/trace.h"

namespace mecdns::core {

struct ReplayOutcome {
  std::size_t requests = 0;
  std::size_t failures = 0;
  std::size_t handoffs = 0;
  util::SampleSet dns_ms;
  util::SampleSet fetch_ms;
  util::SampleSet total_ms;
  /// Per-request records, in completion order.
  struct PerRequest {
    simnet::SimTime at;
    bool ok = false;
    double total_ms = 0;
    simnet::Ipv4Address server;
  };
  std::vector<PerRequest> log;
};

class TraceReplayer {
 public:
  TraceReplayer(ran::UserEquipment& ue, ran::HandoffManager* handoff)
      : ue_(ue), handoff_(handoff) {}

  /// Classifier for per-request bookkeeping (e.g. "is this the local
  /// cache"); optional.
  using ServerClassifier = std::function<bool(simnet::Ipv4Address)>;

  /// Schedules both traces and runs the simulator to completion. Mobility
  /// events require a HandoffManager; `retarget_dns` selects the paper's
  /// re-target-on-handoff behaviour vs a sticky resolver.
  ReplayOutcome run(const workload::MobilityTrace& mobility,
                    const workload::RequestTrace& requests,
                    bool retarget_dns = true);

 private:
  ran::UserEquipment& ue_;
  ran::HandoffManager* handoff_;
};

}  // namespace mecdns::core
