#include "core/study.h"

#include <stdexcept>

#include "core/parallel.h"
#include "ran/profiles.h"

namespace mecdns::core {

using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

namespace {
LatencyModel resolver_processing(double mean_ms) {
  return LatencyModel::normal(SimTime::millis(mean_ms),
                              SimTime::millis(mean_ms * 0.15),
                              SimTime::millis(mean_ms * 0.4));
}

std::string tld_of(const std::string& domain) {
  const auto dot = domain.rfind('.');
  return domain.substr(dot + 1);
}
}  // namespace

MeasurementStudy::MeasurementStudy(Config config)
    : config_(std::move(config)) {
  build();
}

void MeasurementStudy::build() {
  sim_ = std::make_unique<simnet::Simulator>();
  net_ = std::make_unique<simnet::Network>(*sim_, util::Rng(config_.seed));
  backbone_ =
      net_->add_node("internet-backbone", Ipv4Address::must_parse("192.0.2.1"));

  hierarchy_ = std::make_unique<dns::PublicDnsHierarchy>(
      *net_, backbone_, ran::wan_link(15.0), resolver_processing(0.5));

  // Resolver addresses (used for router-side classification).
  const auto campus_ldns_addr = Ipv4Address::must_parse("172.16.0.53");
  const auto isp_ldns_addr = Ipv4Address::must_parse("100.64.0.53");
  const auto carrier_ldns_addr = Ipv4Address::must_parse("10.202.0.53");

  // --- per-site CDN routers -------------------------------------------------
  const auto& profiles = workload::figure3_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const Ipv4Address addr(Ipv4Address::must_parse("198.51.100.10").value() +
                           static_cast<std::uint32_t>(i));
    const simnet::NodeId node =
        net_->add_node("cdns-" + profile.website, addr);
    net_->add_link(node, backbone_, ran::wan_link(profile.cdns_wan_ms));

    auto router = std::make_unique<cdn::OpaqueCdnRouter>(
        *net_, node, "cdns-" + profile.website, resolver_processing(1.2),
        dns::DnsName::must_parse(profile.cdn_domain),
        config_.seed * 131 + i, addr);
    router->set_answer_ttl(0);  // per-query routing, like the measured CDNs
    for (const auto& pool : profile.pools) {
      router->add_pool(pool.provider, simnet::Cidr::must_parse(pool.cidr));
    }
    router->add_resolver_class(simnet::Cidr(campus_ldns_addr, 32),
                               workload::kWiredCampus);
    router->add_resolver_class(simnet::Cidr(isp_ldns_addr, 32),
                               workload::kWifiHome);
    router->add_resolver_class(simnet::Cidr(carrier_ldns_addr, 32),
                               workload::kCellularMobile);
    for (const auto& [cls, weights] : profile.weights) {
      router->set_weights(cls, weights);
    }

    const std::string tld = tld_of(profile.cdn_domain);
    const Ipv4Address tld_addr(
        Ipv4Address::must_parse("199.7.50.1").value() +
        static_cast<std::uint32_t>(std::hash<std::string>{}(tld) % 200));
    hierarchy_->ensure_tld(tld, tld_addr, ran::wan_link(15.0));
    hierarchy_->delegate_to(
        dns::DnsName::must_parse(profile.cdn_domain),
        dns::DnsName::must_parse("ns1." + profile.cdn_domain), addr);
    routers_.push_back(std::move(router));
  }

  dns::RecursiveResolver::Config rcfg;
  rcfg.root_servers = hierarchy_->root_hints();

  // --- wired campus -----------------------------------------------------------
  {
    const simnet::NodeId gw =
        net_->add_node("campus-gw", Ipv4Address::must_parse("172.16.0.1"));
    net_->add_link(gw, backbone_, ran::wan_link(2.0));
    const simnet::NodeId ldns_node =
        net_->add_node("campus-ldns", campus_ldns_addr);
    net_->add_link(gw, ldns_node,
                   LatencyModel::constant(SimTime::micros(200)));
    campus_ldns_ = std::make_unique<dns::RecursiveResolver>(
        *net_, ldns_node, "campus-ldns", resolver_processing(0.8), rcfg,
        campus_ldns_addr);

    const simnet::NodeId client =
        net_->add_node("campus-client", Ipv4Address::must_parse("172.16.1.2"));
    const ran::AccessProfile access = ran::wired_campus();
    net_->add_link(client, gw, access.uplink, access.downlink);
    campus_client_ = std::make_unique<dns::StubResolver>(
        *net_, client, simnet::Endpoint{campus_ldns_addr, dns::kDnsPort});
  }

  // --- home Wi-Fi --------------------------------------------------------------
  {
    const simnet::NodeId home_router =
        net_->add_node("home-router", Ipv4Address::must_parse("192.168.1.1"));
    const simnet::NodeId isp_gw =
        net_->add_node("isp-gw", Ipv4Address::must_parse("100.64.0.1"));
    net_->add_link(home_router, isp_gw, ran::wan_link(7.0));  // DSL/cable leg
    net_->add_link(isp_gw, backbone_, ran::wan_link(3.0));
    const simnet::NodeId ldns_node = net_->add_node("isp-ldns", isp_ldns_addr);
    net_->add_link(isp_gw, ldns_node,
                   LatencyModel::constant(SimTime::micros(300)));
    isp_ldns_ = std::make_unique<dns::RecursiveResolver>(
        *net_, ldns_node, "isp-ldns", resolver_processing(1.0), rcfg,
        isp_ldns_addr);

    const simnet::NodeId client =
        net_->add_node("home-client", Ipv4Address::must_parse("192.168.1.2"));
    const ran::AccessProfile access = ran::wifi_home();
    net_->add_link(client, home_router, access.uplink, access.downlink);
    home_client_ = std::make_unique<dns::StubResolver>(
        *net_, client, simnet::Endpoint{isp_ldns_addr, dns::kDnsPort});
  }

  // --- cellular hotspot ---------------------------------------------------------
  {
    ran::RanSegment::Config rc;
    rc.name = "carrier";
    rc.enb_addr = Ipv4Address::must_parse("10.100.0.1");
    rc.sgw_addr = Ipv4Address::must_parse("10.100.0.2");
    rc.pgw_addr = Ipv4Address::must_parse("203.0.113.1");
    rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
    rc.access = ran::lte();
    ran_ = std::make_unique<ran::RanSegment>(*net_, rc);
    net_->add_link(ran_->pgw(), backbone_, ran::wan_link(4.0));

    const simnet::NodeId ldns_node =
        net_->add_node("carrier-ldns", carrier_ldns_addr);
    // Cellular L-DNS sits deep behind the core — the paper's observation 1.
    net_->add_link(ran_->pgw(), ldns_node, ran::wan_link(9.0));
    carrier_ldns_ = std::make_unique<dns::RecursiveResolver>(
        *net_, ldns_node, "carrier-ldns", resolver_processing(2.0), rcfg,
        carrier_ldns_addr);

    mobile_ue_ = std::make_unique<ran::UserEquipment>(
        *net_, *ran_, "hotspot-ue", Ipv4Address::must_parse("10.45.0.2"),
        simnet::Endpoint{carrier_ldns_addr, dns::kDnsPort});
  }
}

dns::StubResolver& MeasurementStudy::stub_for(
    const std::string& network_class) {
  if (network_class == workload::kWiredCampus) return *campus_client_;
  if (network_class == workload::kWifiHome) return *home_client_;
  if (network_class == workload::kCellularMobile) {
    return mobile_ue_->resolver();
  }
  throw std::invalid_argument("unknown network class: " + network_class);
}

std::string MeasurementStudy::classify_answer(
    const workload::SiteCdnProfile& profile, simnet::Ipv4Address addr) {
  const workload::ProviderPool* best = nullptr;
  int best_len = -1;
  for (const auto& pool : profile.pools) {
    const auto cidr = simnet::Cidr::must_parse(pool.cidr);
    if (cidr.contains(addr) && cidr.prefix_len() > best_len) {
      best = &pool;
      best_len = cidr.prefix_len();
    }
  }
  if (best == nullptr) return "unknown (" + addr.to_string() + ")";
  return best->provider + " (" + best->cidr + ")";
}

MeasurementStudy::CellResult MeasurementStudy::run_cell(
    std::size_t site_index, const std::string& network_class) {
  const auto& profile = workload::figure3_profiles().at(site_index);
  QueryRunner runner(*net_, stub_for(network_class), nullptr);
  runner.set_observers(trace_sink_, metrics_);
  runner.set_timeseries(timeseries_);
  QueryRunner::Options options;
  options.queries = config_.queries_per_cell;
  options.warmup = 2;  // prime the L-DNS delegation caches
  options.spacing = config_.spacing;
  const SeriesResult series = runner.run(
      dns::DnsName::must_parse(profile.cdn_domain), dns::RecordType::kA,
      options);

  CellResult cell;
  cell.website = profile.website;
  cell.network_class = network_class;
  cell.failures = series.failures();
  for (const auto& sample : series.samples) {
    if (!sample.ok) continue;
    cell.latencies_ms.add(sample.total_ms);
    cell.distribution.add(classify_answer(profile, sample.address));
  }
  cell.trimmed = cell.latencies_ms.summarize_trimmed(8.0, 92.0);
  return cell;
}

std::vector<MeasurementStudy::CellResult> MeasurementStudy::run_all() {
  std::vector<CellResult> cells;
  for (std::size_t site = 0; site < workload::figure3_profiles().size();
       ++site) {
    for (const auto& network_class : workload::network_classes()) {
      cells.push_back(run_cell(site, network_class));
    }
  }
  return cells;
}

std::vector<MeasurementStudy::CellResult> MeasurementStudy::run_all_parallel(
    const Config& base, std::size_t workers) {
  const std::size_t sites = workload::figure3_profiles().size();
  const auto& classes = workload::network_classes();
  const ParallelCampaign campaign(workers);
  auto outcomes = campaign.run<CellResult>(
      sites * classes.size(), [&](std::size_t index) {
        Config config = base;
        config.seed = job_seed(base.seed, index);
        MeasurementStudy study(config);  // private sim/net/caches per cell
        return study.run_cell(index / classes.size(),
                              classes[index % classes.size()]);
      });
  std::vector<CellResult> cells;
  cells.reserve(outcomes.size());
  for (auto& outcome : outcomes) {
    if (!outcome.ok) {
      throw std::runtime_error("measurement-study cell failed: " +
                               outcome.error);
    }
    cells.push_back(std::move(outcome.value));
  }
  return cells;
}

}  // namespace mecdns::core
