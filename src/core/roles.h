// Table 2: entities and roles in the MEC-CDN ecosystem.
#pragma once

#include <string>
#include <vector>

namespace mecdns::core {

struct EcosystemRole {
  std::string entity;
  std::string role;
};

/// Table 2 verbatim.
const std::vector<EcosystemRole>& ecosystem_roles();

}  // namespace mecdns::core
