// MecCdnSite: the paper's proposed system, assembled.
//
// One MEC location hosting:
//  * a Kubernetes-like cluster (mec::Orchestrator) with CoreDNS as the
//    split-namespace MEC L-DNS (dns::PluginChainServer with an "internal"
//    view for VNF service discovery and a "public" view for mobile
//    clients),
//  * the CDN's request router C-DNS (cdn::TrafficRouter) at a fixed cluster
//    IP, chained behind the L-DNS by a stub-domain forward — P2's
//    "combines the L-DNS lookup with a C-DNS lookup carried out at the
//    first hop, in the MEC",
//  * edge cache servers registered with the router and warmed/backed by an
//    origin,
//  * optional overload fallback (P1's DoS mitigation) and optional parent
//    CDN tier for content not deployed at the edge.
//
// Mobile clients only ever see cluster IPs — the public-IP-reuse property
// §5 highlights.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cdn/cache_server.h"
#include "cdn/traffic_router.h"
#include "dns/plugin.h"
#include "mec/ingress.h"
#include "mec/orchestrator.h"
#include "obs/metrics.h"

namespace mecdns::core {

class MecCdnSite {
 public:
  struct Config {
    mec::Orchestrator::Config orchestrator;

    /// CDN apex served at this site, e.g. "mycdn.ciab.test".
    dns::DnsName cdn_domain = dns::DnsName::must_parse("mycdn.ciab.test");

    /// Where the C-DNS runs. In-cluster (nullopt) is the paper's proposal;
    /// an external endpoint models the ETSI/3GPP "L-DNS at MEC only"
    /// deployments of Figure 5 (LAN or WAN C-DNS).
    std::optional<simnet::Endpoint> external_cdns;

    std::size_t edge_caches = 2;
    std::uint64_t cache_capacity_bytes = 256ull * 1024 * 1024;

    /// TTL on routed A answers. 0 forces per-query routing (every lookup
    /// reaches the C-DNS), matching the testbed measurements.
    std::uint32_t answer_ttl = 0;

    bool enable_ecs = false;

    /// Provider L-DNS to forward non-MEC queries to (unset: REFUSED, which
    /// multicast-mode stubs treat as "ask your provider").
    std::optional<simnet::Endpoint> provider_ldns;

    /// Parent-tier CDN domain for delivery services not deployed here.
    std::optional<dns::DnsName> parent_cdn_domain;

    /// Origin (or mid-tier cache) the edge caches fetch misses from.
    std::optional<simnet::Endpoint> origin;

    /// Queries/second above which the overload guard sheds to the provider
    /// path. 0 disables the guard.
    std::size_t overload_threshold_qps = 0;

    /// Recovery hysteresis for the overload guard: consecutive
    /// below-threshold windows before re-admitting (0 = stateless guard).
    std::size_t overload_recovery_windows = 0;

    /// What the guard answers when shedding. kServFail composes with the
    /// client transport's failover_on_servfail for one-RTT fallback to the
    /// provider; kDrop forces the client timeout ladder.
    mec::OverloadAction overload_action = mec::OverloadAction::kRefuse;

    /// L-DNS service capacity: worker concurrency + bounded FIFO. 0 workers
    /// keeps the legacy unlimited-concurrency server.
    std::size_t ldns_workers = 0;
    std::size_t ldns_max_queue = 256;

    /// Queue-probe admission control: shed when the L-DNS worker FIFO is at
    /// or beyond this depth (0 disables; requires the overload guard).
    std::size_t overload_queue_limit = 0;

    /// Bounded-load edge allocation on the in-cluster C-DNS: max routed
    /// selections per cache per window (0 = plain consistent hashing).
    std::uint64_t cache_selection_capacity = 0;
    simnet::SimTime cache_selection_window = simnet::SimTime::seconds(1);

    /// RFC 8767 serve-stale on the L-DNS public-view cache: keep expired
    /// entries for `serve_stale_window` and serve them when the C-DNS path
    /// answers SERVFAIL (edge-cache partition, router down).
    bool serve_stale = false;
    simnet::SimTime serve_stale_window = simnet::SimTime::seconds(3600);

    /// Append provider_ldns to the CDN stub-domain forward's upstream list
    /// and fail over to it on C-DNS timeout or SERVFAIL. The provider
    /// resolves the CDN domain through the public hierarchy (WAN C-DNS) —
    /// degraded latency, preserved availability. Requires provider_ldns.
    bool cdns_fallback_to_provider = false;

    /// DNS server processing-time models (per query).
    simnet::LatencyModel ldns_processing = simnet::LatencyModel::normal(
        simnet::SimTime::millis(1.1), simnet::SimTime::micros(200),
        simnet::SimTime::micros(200));
    simnet::LatencyModel cdns_processing = simnet::LatencyModel::normal(
        simnet::SimTime::millis(1.6), simnet::SimTime::micros(300),
        simnet::SimTime::micros(300));
  };

  MecCdnSite(simnet::Network& net, Config config);

  /// Deploys a delivery service: content under "<id>.<cdn_domain>" served
  /// by the edge cache group. Publishes the public namespace entry and
  /// registers the service with the C-DNS (when in-cluster).
  void add_delivery_service(const std::string& id,
                            const cdn::ContentCatalog& content,
                            bool warm_caches = true);

  // --- endpoints mobile clients / the RAN need ----------------------------
  /// The MEC L-DNS (CoreDNS public view) — what the UE's DNS is switched to.
  simnet::Endpoint ldns_endpoint() const;
  /// The C-DNS cluster IP (in-cluster deployments only).
  simnet::Endpoint cdns_endpoint() const;

  // --- component access ----------------------------------------------------
  mec::Orchestrator& orchestrator() { return *orchestrator_; }
  dns::PluginChainServer& ldns() { return *ldns_; }
  /// Null when Config::external_cdns is set.
  cdn::TrafficRouter* router() { return router_.get(); }
  std::vector<cdn::CacheServer*> caches();
  mec::OverloadGuardPlugin* overload_guard() { return guard_; }
  /// The public view's stub-domain forward toward the C-DNS; toggle ECS on
  /// it (with router()->set_use_ecs) for the §4 ECS experiment.
  dns::ForwardPlugin* cdn_forward() { return cdn_forward_; }
  std::shared_ptr<dns::DnsCache> public_dns_cache() { return public_cache_; }
  const Config& site_config() const { return config_; }

  /// The cluster-IP address of edge cache `i` (what the C-DNS answers).
  simnet::Ipv4Address cache_address(std::size_t i) const {
    return cache_ips_.at(i);
  }

  // --- elastic edge capacity (what an AutoScaler drives) -------------------
  /// Adds an edge cache replica: reactivates the lowest-index retired one,
  /// or deploys a fresh server (warmed with every catalog that was warmed
  /// at deploy time) and registers it with the in-cluster C-DNS. Returns
  /// nullptr only if the cluster is out of addresses.
  cdn::CacheServer* add_edge_cache();
  /// Retires the highest-index active replica (deregisters it from the
  /// ring; the server object stays for later reactivation). Refuses to
  /// drop below one replica.
  bool retire_edge_cache();
  std::size_t active_edge_caches() const;

  /// Snapshots this site's counters into `registry` under `prefix`:
  /// L-DNS server/view/cache/forward/overload counters, C-DNS routing
  /// counters and per-edge-cache hit/miss/fetch counters.
  void export_metrics(obs::Registry& registry,
                      const std::string& prefix = "site.") const;

 private:
  simnet::Network& net_;
  Config config_;
  std::unique_ptr<mec::Orchestrator> orchestrator_;
  std::unique_ptr<dns::PluginChainServer> ldns_;
  std::unique_ptr<cdn::TrafficRouter> router_;
  std::vector<std::unique_ptr<cdn::CacheServer>> caches_;
  std::vector<simnet::Ipv4Address> cache_ips_;
  std::vector<bool> cache_active_;
  /// Catalogs warmed at deploy time, replayed onto scale-up replicas.
  std::vector<cdn::ContentCatalog> warmed_catalogs_;
  std::shared_ptr<dns::DnsCache> public_cache_;
  mec::OverloadGuardPlugin* guard_ = nullptr;
  dns::ForwardPlugin* cdn_forward_ = nullptr;
  simnet::Ipv4Address ldns_ip_;
  simnet::Ipv4Address cdns_ip_;
};

}  // namespace mecdns::core
