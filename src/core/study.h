// The §2 measurement study: Figures 2 and 3.
//
// Recreates the paper's "simple tests from end devices": one client
// location reached over three access networks — wired campus, home Wi-Fi,
// and a cellular hotspot — each with its own L-DNS, all querying the five
// Table 1 CDN domains. Each site's CDN is an OpaqueCdnRouter whose
// per-resolver-class answer mix reproduces Figure 3's observation that the
// same domain, queried from the same place, is served by different cache
// pools depending on the access network.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cdn/opaque_router.h"
#include "core/experiment.h"
#include "dns/hierarchy.h"
#include "dns/recursive.h"
#include "dns/stub.h"
#include "ran/segment.h"
#include "ran/ue.h"
#include "util/stats.h"
#include "workload/domains.h"

namespace mecdns::core {

class MeasurementStudy {
 public:
  struct Config {
    std::uint64_t seed = 7;
    std::size_t queries_per_cell = 40;  ///< paper: "at least 12 tests"
    simnet::SimTime spacing = simnet::SimTime::seconds(2);
  };

  explicit MeasurementStudy(Config config);

  struct CellResult {
    std::string website;
    std::string network_class;
    util::SampleSet latencies_ms;        ///< per-query lookup latency
    util::Summary trimmed;               ///< 8th-92nd pct bar + min/max
    util::FrequencyTable distribution;   ///< answers per pool (Figure 3)
    std::size_t failures = 0;
  };

  /// Attaches observability, forwarded to every cell's QueryRunner.
  void set_observers(obs::TraceSink* trace, obs::Registry* metrics) {
    trace_sink_ = trace;
    metrics_ = metrics;
  }

  /// Attaches a sim-time-windowed series, forwarded to every cell.
  void set_timeseries(obs::TimeSeries* series) { timeseries_ = series; }

  /// Runs one (site, network) cell.
  CellResult run_cell(std::size_t site_index,
                      const std::string& network_class);

  /// Runs the full 5x3 grid in the paper's order.
  std::vector<CellResult> run_all();

  /// Runs the same 5x3 grid as a ParallelCampaign: each cell gets a private
  /// study (simulator, network, resolver caches, RNG) seeded with
  /// job_seed(base.seed, cell_index), so no cell's numbers depend on which
  /// cells ran before it — or on `workers`. Results come back in the
  /// paper's order regardless of completion order. Note the deliberate
  /// semantic difference from run_all(): cells no longer share L-DNS
  /// delegation caches, so every cell pays its own cold-start (absorbed by
  /// the QueryRunner warmup).
  static std::vector<CellResult> run_all_parallel(const Config& base,
                                                  std::size_t workers);

  simnet::Network& network() { return *net_; }
  const workload::SiteCdnProfile& site(std::size_t i) const {
    return workload::figure3_profiles().at(i);
  }
  /// The opaque router serving site `i` (router-side distribution counters
  /// for cross-checking against the client-side classification).
  const cdn::OpaqueCdnRouter& router(std::size_t i) const {
    return *routers_.at(i);
  }

 private:
  void build();
  dns::StubResolver& stub_for(const std::string& network_class);

  /// Maps an answered address to its pool label via the site's CIDRs
  /// (longest prefix first), as the paper did from dig output.
  static std::string classify_answer(const workload::SiteCdnProfile& profile,
                                     simnet::Ipv4Address addr);

  Config config_;
  std::unique_ptr<simnet::Simulator> sim_;
  std::unique_ptr<simnet::Network> net_;
  std::unique_ptr<dns::PublicDnsHierarchy> hierarchy_;
  simnet::NodeId backbone_ = simnet::kInvalidNode;

  // per-site opaque routers
  std::vector<std::unique_ptr<cdn::OpaqueCdnRouter>> routers_;

  // wired-campus environment
  std::unique_ptr<dns::RecursiveResolver> campus_ldns_;
  std::unique_ptr<dns::StubResolver> campus_client_;
  // wifi-home environment
  std::unique_ptr<dns::RecursiveResolver> isp_ldns_;
  std::unique_ptr<dns::StubResolver> home_client_;
  // cellular-mobile environment
  std::unique_ptr<ran::RanSegment> ran_;
  std::unique_ptr<dns::RecursiveResolver> carrier_ldns_;
  std::unique_ptr<ran::UserEquipment> mobile_ue_;
  obs::TraceSink* trace_sink_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::TimeSeries* timeseries_ = nullptr;
};

}  // namespace mecdns::core
