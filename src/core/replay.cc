#include "core/replay.h"

#include <memory>

namespace mecdns::core {

ReplayOutcome TraceReplayer::run(const workload::MobilityTrace& mobility,
                                 const workload::RequestTrace& requests,
                                 bool retarget_dns) {
  auto outcome = std::make_shared<ReplayOutcome>();
  simnet::Network& net = ue_.network();
  simnet::Simulator& sim = net.simulator();
  const simnet::SimTime start = net.now();

  for (const auto& event : mobility) {
    if (handoff_ == nullptr) break;
    sim.schedule_at(start + event.at, [this, event, retarget_dns, outcome] {
      handoff_->attach(event.cell, retarget_dns);
      outcome->handoffs = handoff_->handoffs();
    });
  }

  for (const auto& event : requests) {
    sim.schedule_at(start + event.at, [this, event, outcome] {
      ue_.resolve_and_fetch(
          event.url,
          [event, outcome](const ran::UserEquipment::FetchOutcome& fetch) {
            ++outcome->requests;
            ReplayOutcome::PerRequest record;
            record.at = event.at;
            record.ok = fetch.ok;
            record.total_ms = fetch.total.to_millis();
            record.server = fetch.server;
            outcome->log.push_back(record);
            if (!fetch.ok) {
              ++outcome->failures;
              return;
            }
            outcome->dns_ms.add(fetch.dns_latency.to_millis());
            outcome->fetch_ms.add(fetch.fetch_latency.to_millis());
            outcome->total_ms.add(fetch.total.to_millis());
          });
    });
  }

  sim.run();
  return std::move(*outcome);
}

}  // namespace mecdns::core
