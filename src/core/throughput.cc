#include "core/throughput.h"

#include <chrono>

#include "dns/stub.h"
#include "obs/journal.h"
#include "obs/perf.h"
#include "obs/provenance.h"
#include "workload/loadgen.h"

namespace mecdns::core {

std::string fig5_slug(Fig5Deployment deployment) {
  switch (deployment) {
    case Fig5Deployment::kMecLdnsMecCdns: return "mec-mec";
    case Fig5Deployment::kMecLdnsLanCdns: return "mec-lan";
    case Fig5Deployment::kMecLdnsWanCdns: return "mec-wan";
    case Fig5Deployment::kProviderLdns: return "provider";
    case Fig5Deployment::kGoogleDns: return "google";
    case Fig5Deployment::kCloudflareDns: return "cloudflare";
  }
  return "unknown";
}

bool fig5_from_slug(const std::string& slug, Fig5Deployment& out) {
  for (Fig5Deployment d : all_fig5_deployments()) {
    if (fig5_slug(d) == slug) {
      out = d;
      return true;
    }
  }
  return false;
}

namespace {

double ratio(std::uint64_t numerator, std::uint64_t denominator) {
  if (denominator == 0) return 0.0;
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

/// One deployment, start to finish, on the calling (worker) thread. The
/// perf snapshot brackets only the load window, and the whole simulation
/// runs on this thread, so the thread_local counter deltas are exact.
ThroughputOutput run_one(const ThroughputConfig& cfg, Fig5Deployment d,
                         std::uint64_t seed) {
  ThroughputOutput out;

  Fig5Testbed::Config tc;
  tc.deployment = d;
  tc.seed = seed;
  Fig5Testbed testbed(tc);
  simnet::Simulator& sim = testbed.simulator();

  // Armed-but-silent flight recorder: with no faults injected, every hook
  // sits on a transition edge that never fires, so the measured window
  // must stay at the unjournaled allocation ceiling.
  obs::Journal journal;
  if (cfg.journal) {
    testbed.ue().resolver().transport().set_journal(&journal);
    if (auto cache = testbed.site().public_dns_cache()) {
      cache->set_journal(&journal);
    }
    if (auto* guard = testbed.site().overload_guard()) {
      guard->set_journal(&journal);
    }
    if (auto* router = testbed.site().router()) {
      router->set_journal(&journal);
    }
  }

  // Prime delegation chains and caches so the measured window reflects
  // steady-state per-query cost, not one-time hierarchy walks.
  if (cfg.warmup_queries > 0) {
    testbed.measure_name(testbed.content_name(), cfg.warmup_queries,
                         simnet::SimTime::millis(200), /*warmup=*/0);
  }

  obs::LatencyHistogram latency;
  std::uint64_t failures = 0;
  workload::LoadGenerator* gen_ptr = nullptr;
  const dns::DnsName& name = testbed.content_name();
  dns::StubResolver& stub = testbed.ue().resolver();

  workload::LoadGenerator::Options lo;
  lo.ues = cfg.ues;
  lo.rate_hz = cfg.rate_hz;
  lo.duration = simnet::SimTime::seconds(cfg.duration_s);
  lo.closed_loop = cfg.closed_loop;
  lo.mean_think = simnet::SimTime::seconds(cfg.think_s);
  lo.seed = seed;

  workload::LoadGenerator gen(sim, lo, [&](std::uint32_t ue) {
    stub.resolve(name, dns::RecordType::kA,
                 [&, ue](const dns::StubResult& result) {
                   if (result.ok && result.address) {
                     latency.add(result.latency.to_millis());
                   } else {
                     ++failures;
                   }
                   gen_ptr->complete(ue);
                 });
  });
  gen_ptr = &gen;

  const std::uint64_t events_before = sim.executed();
  const obs::PerfSnapshot snapshot = obs::PerfSnapshot::take();
  const auto wall_start = std::chrono::steady_clock::now();

  gen.start();
  sim.run();

  const auto wall_end = std::chrono::steady_clock::now();
  const util::perf::Counters delta = snapshot.delta();
  const std::uint64_t events = sim.executed() - events_before;

  ThroughputResult& r = out.result;
  r.scenario = fig5_slug(d);
  r.ues = cfg.ues;
  r.queries = gen.issued();
  r.failures = failures;
  r.duration_s = cfg.duration_s;
  r.qps_sim = cfg.duration_s > 0.0
                  ? static_cast<double>(r.queries) / cfg.duration_s
                  : 0.0;
  r.events = events;
  r.events_per_query = ratio(events, r.queries);
  r.dns_encoded_per_query = ratio(delta.dns_encoded, r.queries);
  r.dns_decoded_per_query = ratio(delta.dns_decoded, r.queries);
  r.wire_bytes_per_query =
      ratio(delta.dns_bytes_encoded + delta.dns_bytes_decoded, r.queries);
  r.mean_ms = latency.mean();
  r.p50_ms = latency.percentile(50.0);
  r.p99_ms = latency.percentile(99.0);
  r.max_ms = latency.max();
  r.peak_queue_depth = sim.max_queue_depth();
  r.alloc_counted = obs::alloc_counting_active();
  if (r.alloc_counted) {
    r.allocs_per_query = ratio(delta.allocs, r.queries);
    r.alloc_bytes_per_query = ratio(delta.alloc_bytes, r.queries);
  }

  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  r.wall_ms = wall_s * 1e3;
  if (wall_s > 0.0) {
    r.qps_wall = static_cast<double>(r.queries) / wall_s;
    r.events_per_sec_wall = static_cast<double>(events) / wall_s;
  }

  obs::export_perf(out.metrics, "perf.", delta, r.queries);
  out.metrics.add("loadgen.issued", gen.issued());
  out.metrics.add("loadgen.completed", gen.completed());
  out.metrics.add("loadgen.failures", failures);
  out.metrics.histogram("loadgen.lookup_ms").merge(latency);
  if (cfg.journal) {
    out.metrics.add("journal.recorded", journal.recorded());
    out.metrics.add("journal.dropped", journal.dropped());
  }
  out.metrics.add("sim.events", events);
  out.metrics.set_gauge_max("sim.queue_depth_peak",
                            static_cast<double>(sim.max_queue_depth()));
  testbed.export_metrics(out.metrics);
  return out;
}

void append_field(std::string& out, const char* key, std::uint64_t value,
                  bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(value);
}

void append_field(std::string& out, const char* key, double value,
                  bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": ";
  out += obs::format_double(value);
}

void append_scenario(std::string& out, const char* key,
                     const std::string& slug) {
  out += '"';
  out += key;
  out += "\": ";
  obs::append_json_string(out, slug);
}

}  // namespace

std::vector<JobOutcome<ThroughputOutput>> run_throughput(
    const ThroughputConfig& config) {
  ParallelCampaign campaign(config.workers);
  const std::vector<Fig5Deployment>& deployments = config.deployments;
  return campaign.run<ThroughputOutput>(
      deployments.size(), [&config, &deployments](std::size_t index) {
        return run_one(config, deployments[index],
                       job_seed(config.seed, index));
      });
}

std::string throughput_json(const std::vector<ThroughputResult>& results,
                            std::uint64_t seed) {
  std::string out = "{\n  \"bench\": \"throughput\",\n  " +
                    obs::provenance_json("throughput", seed) +
                    ",\n  \"unit\": \"ms\",\n"
                    "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ThroughputResult& r = results[i];
    out += "    {";
    append_scenario(out, "scenario", r.scenario);
    append_field(out, "ues", static_cast<std::uint64_t>(r.ues));
    append_field(out, "queries", r.queries);
    append_field(out, "failures", r.failures);
    append_field(out, "duration_s", r.duration_s);
    append_field(out, "qps_sim", r.qps_sim);
    append_field(out, "events", r.events);
    append_field(out, "events_per_query", r.events_per_query);
    append_field(out, "dns_encoded_per_query", r.dns_encoded_per_query);
    append_field(out, "dns_decoded_per_query", r.dns_decoded_per_query);
    append_field(out, "wire_bytes_per_query", r.wire_bytes_per_query);
    append_field(out, "mean", r.mean_ms);
    append_field(out, "p50", r.p50_ms);
    append_field(out, "p99", r.p99_ms);
    append_field(out, "max", r.max_ms);
    append_field(out, "peak_queue_depth", r.peak_queue_depth);
    if (r.alloc_counted) {
      append_field(out, "allocs_per_query", r.allocs_per_query);
      append_field(out, "alloc_bytes_per_query", r.alloc_bytes_per_query);
    }
    out += '}';
    if (i + 1 < results.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

std::string throughput_wall_json(const std::vector<ThroughputResult>& results,
                                 std::size_t workers, std::uint64_t seed) {
  // Machine-dependent numbers live here, apart from the deterministic
  // artifact, so BENCH_throughput.json stays byte-comparable. The actual
  // worker count is meaningful in this artifact, so it appears beside the
  // meta block's fixed "any".
  std::string out = "{\n  \"bench\": \"throughput_wall\",\n  " +
                    obs::provenance_json("throughput_wall", seed) +
                    ",\n  \"workers\": ";
  out += std::to_string(workers);
  out += ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ThroughputResult& r = results[i];
    out += "    {";
    append_scenario(out, "scenario", r.scenario);
    append_field(out, "wall_ms", r.wall_ms);
    append_field(out, "qps_wall", r.qps_wall);
    append_field(out, "events_per_sec_wall", r.events_per_sec_wall);
    out += '}';
    if (i + 1 < results.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace mecdns::core
