// Mobility-churn robustness testbed: K MEC cells under handoff storms and
// flash crowds, fragile vs robust.
//
// The paper hands a UE to the nearest MEC L-DNS "as part of the cellular
// hand-off process" and stops there. This testbed asks what happens when
// *populations* move: a commute wave or a stadium flash crowd concentrates
// most of the UEs on one cell, and a highway handoff storm re-targets
// resolvers continuously. Each cell is a full RAN segment (eNB/S-GW/P-GW
// with NAT) fronting its own MecCdnSite; a shared provider L-DNS, public
// DNS hierarchy, WAN C-DNS and parent CDN tier provide the degraded-but-up
// path the robust configuration falls back to.
//
// Three configurations share one topology:
//   fragile        — the paper-measurement setup: bounded L-DNS service
//                    capacity with silent queue-overflow drops, no guard,
//                    unbounded consistent hashing, clients with no retries
//                    and no fallback. Converging load melts the hot cell.
//   robust         — overload-safe degradation on: SERVFAIL-shedding
//                    ingress guard (rate + queue-probe admission control),
//                    bounded-load edge allocation with parent-tier
//                    referrals, an AutoScaler adding cache replicas, and
//                    clients that retry, fail over to the provider L-DNS,
//                    chase referral CNAMEs and follow in-flight re-targets.
//   misconfigured  — the robust *site* with the client-side fallback
//                    forgotten: guard sheds become hard SERVFAILs. Reported
//                    under the robust label so CI gates can prove they
//                    catch a broken robustness story, not just a missing
//                    one.
//
// Mass load rides per-cell aggregate UEs selected by the mobility model's
// cell table (O(cells) client objects for 10^2..10^6 logical UEs); a small
// cohort of real UEs with HandoffManagers exercises true bulk DNS
// re-targets, including transactions in flight across the handoff.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cdn/cache_server.h"
#include "cdn/traffic_router.h"
#include "core/mec_cdn.h"
#include "dns/hierarchy.h"
#include "dns/recursive.h"
#include "mec/autoscaler.h"
#include "obs/incident.h"
#include "obs/slo.h"
#include "ran/handoff.h"
#include "ran/segment.h"
#include "ran/ue.h"
#include "util/stats.h"
#include "workload/mobility.h"

namespace mecdns::core {

enum class MobilityMode {
  kFragile,
  kRobust,
  kMisconfigured,
};

/// The label a run reports under. Misconfigured runs claim "robust" — the
/// point of the gate is to fail them, not to excuse them.
const char* mobility_mode_label(MobilityMode mode);

/// Workload and capacity knobs shared by the bench and the tests. Defaults
/// are sized so the flash crowd concentrates ~2.4x the even per-cell load
/// on the target cell, past the fragile L-DNS's service capacity
/// (ldns_workers / 1.1 ms ~= 909 qps) but within reach of the robust
/// degradation path.
struct MobilityKnobs {
  std::uint32_t ues = 600;
  double rate_hz = 2.0;  ///< per-UE resolve-and-fetch rate (open loop)
  std::uint16_t cells = 3;
  /// Real UEs with HandoffManagers (the first `cohort` logical UEs); the
  /// rest issue through their current cell's aggregate UE.
  std::size_t cohort = 8;
  simnet::SimTime duration = simnet::SimTime::seconds(40);
  simnet::SimTime event_start = simnet::SimTime::seconds(10);
  simnet::SimTime event_end = simnet::SimTime::seconds(25);
  double participation = 0.8;
  simnet::SimTime crowd_burst = simnet::SimTime::seconds(2);
  simnet::SimTime dwell = simnet::SimTime::seconds(3);

  // --- per-site capacity (applies to every mode) ------------------------
  std::size_t ldns_workers = 1;
  std::size_t ldns_max_queue = 64;

  // --- robust machinery -------------------------------------------------
  /// Ingress-rate guard threshold (1 s window), kept just under the L-DNS
  /// service capacity so shedding starts before the queue rots.
  std::size_t guard_threshold_qps = 800;
  std::size_t guard_recovery_windows = 2;
  /// Queue-probe admission control: shed when the worker FIFO backlog
  /// reaches this depth.
  std::size_t queue_shed_limit = 48;
  /// Bounded-load allocation: routed selections per cache per 1 s window.
  std::uint64_t cache_selection_capacity = 300;
  /// AutoScaler watermarks (routed queries per replica per 1 s interval).
  double scale_up_per_replica = 250.0;
  double scale_down_per_replica = 80.0;
  std::size_t max_replicas = 4;

  double slo_target = 0.99;
  simnet::SimTime slo_window = simnet::SimTime::millis(500);
};

class MobilityTestbed {
 public:
  struct Config {
    MobilityMode mode = MobilityMode::kFragile;
    std::uint64_t seed = 42;
    MobilityKnobs knobs;
  };

  explicit MobilityTestbed(Config config);

  simnet::Simulator& simulator() { return *sim_; }
  simnet::Network& network() { return *net_; }
  std::uint16_t cells() const { return config_.knobs.cells; }
  MecCdnSite& site(std::uint16_t cell) { return *sites_.at(cell); }
  ran::RanSegment& segment(std::uint16_t cell) { return *segments_.at(cell); }
  /// The cell's mass-load client: one UE object standing in for every
  /// logical UE currently camped on the cell.
  ran::UserEquipment& aggregate_ue(std::uint16_t cell) {
    return *aggregate_ues_.at(cell);
  }
  std::size_t cohort_size() const { return cohort_.size(); }
  ran::UserEquipment& cohort_ue(std::size_t i) { return *cohort_.at(i).ue; }
  ran::HandoffManager& cohort_handoff(std::size_t i) {
    return *cohort_.at(i).handoff;
  }
  const dns::DnsName& content_name() const { return content_name_; }
  simnet::Endpoint provider_endpoint() const;
  cdn::CacheServer& cloud_cache() { return *cloud_cache_; }
  const Config& config() const { return config_; }
  /// Number of objects in the demo catalog (issue paths cycle over them).
  static constexpr std::size_t kCatalogObjects = 16;

 private:
  struct CohortUe {
    std::unique_ptr<ran::UserEquipment> ue;
    std::unique_ptr<ran::HandoffManager> handoff;
  };

  void build();
  void build_cell(std::uint16_t cell);
  dns::DnsTransport::Options client_options() const;

  Config config_;
  dns::DnsName content_name_;
  std::unique_ptr<simnet::Simulator> sim_;
  std::unique_ptr<simnet::Network> net_;
  simnet::NodeId backbone_ = simnet::kInvalidNode;
  std::vector<std::unique_ptr<ran::RanSegment>> segments_;
  std::vector<std::unique_ptr<MecCdnSite>> sites_;
  std::vector<std::unique_ptr<ran::UserEquipment>> aggregate_ues_;
  std::vector<CohortUe> cohort_;
  std::unique_ptr<dns::PublicDnsHierarchy> hierarchy_;
  std::unique_ptr<cdn::TrafficRouter> wan_cdns_;
  std::unique_ptr<cdn::TrafficRouter> mid_cdns_;
  std::unique_ptr<dns::RecursiveResolver> provider_ldns_;
  std::unique_ptr<cdn::OriginServer> origin_;
  std::unique_ptr<cdn::CacheServer> cloud_cache_;
};

/// One (scenario, mode) run's numbers — everything the bench table, the
/// JSON artifact and the CI verdicts need.
struct MobilityRunResult {
  std::string scenario;
  std::string mode;
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double success_rate = 0.0;
  util::Summary latency;  ///< successful requests, DNS + fetch, ms

  // Mobility / handoff machinery.
  std::uint64_t moves = 0;             ///< executed cell changes (all UEs)
  std::uint64_t cohort_handoffs = 0;   ///< real HandoffManager re-targets
  std::uint64_t in_flight_retargets = 0;  ///< transactions moved mid-flight

  // Client transports (aggregate + cohort UEs).
  std::uint64_t ue_timeouts = 0;
  std::uint64_t ue_retransmissions = 0;
  std::uint64_t ue_servfails = 0;
  std::uint64_t ue_failovers = 0;

  // Ingress guards, summed over cells.
  std::uint64_t shed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t guard_trips = 0;
  std::uint64_t guard_recoveries = 0;

  // Edge allocation, summed (fractions: worst over cells).
  std::uint64_t routed = 0;
  std::uint64_t referred_to_parent = 0;
  std::uint64_t bounded_overflows = 0;
  std::uint64_t capacity_exhausted = 0;
  std::uint64_t topology_changes = 0;
  double max_remap_fraction = 0.0;

  // Auto-scaling, summed; replicas: worst (max) final count over cells.
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::size_t max_site_replicas = 0;

  obs::SloResult slo;      ///< fetch-success SLO over slo_window windows
  std::string series_json;  ///< when requested; "" otherwise

  // Control-plane forensics, when requested (want_incidents); "" otherwise.
  std::string journal_json;    ///< obs::Journal::to_json()
  std::string incidents_json;  ///< one BENCH_incidents scenario row
};

/// Runs one (scenario, mode) job in a private simulation. Deterministic:
/// the result (including series_json) is a pure function of the arguments.
MobilityRunResult run_mobility_job(workload::MobilityScenario scenario,
                                   MobilityMode mode, std::uint64_t seed,
                                   const MobilityKnobs& knobs,
                                   bool want_series,
                                   bool want_incidents = false);

/// Byte-stable one-row JSON fragment shared by the bench's --json-out and
/// the determinism tests (no trailing comma or newline).
std::string mobility_row_json(const MobilityRunResult& row);

}  // namespace mecdns::core
