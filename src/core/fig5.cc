#include "core/fig5.h"

#include <stdexcept>

#include "core/metrics_export.h"

namespace mecdns::core {

using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

std::string to_string(Fig5Deployment deployment) {
  switch (deployment) {
    case Fig5Deployment::kMecLdnsMecCdns: return "MEC L-DNS w/ MEC C-DNS";
    case Fig5Deployment::kMecLdnsLanCdns: return "MEC L-DNS w/ LAN C-DNS";
    case Fig5Deployment::kMecLdnsWanCdns: return "MEC L-DNS w/ WAN C-DNS";
    case Fig5Deployment::kProviderLdns: return "LAN L-DNS";
    case Fig5Deployment::kGoogleDns: return "Google DNS";
    case Fig5Deployment::kCloudflareDns: return "Cloudflare DNS";
  }
  return "?";
}

const std::vector<Fig5Deployment>& all_fig5_deployments() {
  static const std::vector<Fig5Deployment> kAll = {
      Fig5Deployment::kMecLdnsMecCdns, Fig5Deployment::kMecLdnsLanCdns,
      Fig5Deployment::kMecLdnsWanCdns, Fig5Deployment::kProviderLdns,
      Fig5Deployment::kGoogleDns,      Fig5Deployment::kCloudflareDns,
  };
  return kAll;
}

namespace {
constexpr const char* kEdgeGroup = "mec-edge";
constexpr const char* kCloudGroup = "cloud";

cdn::ContentCatalog demo_catalog(const dns::DnsName& content_host) {
  cdn::ContentCatalog catalog;
  catalog.add_series(content_host, "segment", 32, 2 * 1024 * 1024);
  cdn::Url manifest;
  manifest.host = content_host;
  manifest.path = "/index.m3u8";
  catalog.add(manifest, 4 * 1024);
  return catalog;
}

LatencyModel server_processing(double mean_ms) {
  return LatencyModel::normal(SimTime::millis(mean_ms),
                              SimTime::millis(mean_ms * 0.12),
                              SimTime::millis(mean_ms * 0.4));
}
}  // namespace

Fig5Testbed::Fig5Testbed(Config config)
    : config_(std::move(config)),
      content_name_(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test")) {
  build();
}

void Fig5Testbed::build() {
  sim_ = std::make_unique<simnet::Simulator>();
  net_ = std::make_unique<simnet::Network>(*sim_, util::Rng(config_.seed));
  backbone_ =
      net_->add_node("internet-backbone", Ipv4Address::must_parse("192.0.2.1"));

  const dns::DnsName cdn_domain = dns::DnsName::must_parse("mycdn.ciab.test");

  // --- RAN: UE - eNB - S-GW - P-GW(NAT) -----------------------------------
  ran::RanSegment::Config rc;
  rc.name = "lte";
  rc.enb_addr = Ipv4Address::must_parse("10.100.0.1");
  rc.sgw_addr = Ipv4Address::must_parse("10.100.0.2");
  rc.pgw_addr = Ipv4Address::must_parse("203.0.113.1");
  rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
  rc.access = config_.access;
  ran_ = std::make_unique<ran::RanSegment>(*net_, rc);
  // The paper's tcpdump at P-GW: client-side DNS only (uplink queries still
  // carry the UE source here — taps run before the NAT — and downlink
  // responses are addressed to the gateway's public address), so a resolver
  // hairpinning upstream lookups through the core is not miscounted.
  const simnet::Cidr ue_subnet = rc.ue_subnet;
  const Ipv4Address pgw_public = rc.pgw_addr;
  tap_ = std::make_unique<ran::DnsTap>(
      *net_, ran_->pgw(), [ue_subnet, pgw_public](const simnet::Packet& p) {
        return ue_subnet.contains(p.src.addr) || p.dst.addr == pgw_public;
      });
  pgw_backbone_link_ = net_->add_link(
      ran_->pgw(), backbone_, ran::wan_link(config_.pgw_to_internet_ms));

  // --- content, origin and the CDN's cloud tier ----------------------------
  const cdn::ContentCatalog catalog = demo_catalog(content_name_);
  const auto origin_addr = Ipv4Address::must_parse("198.51.100.10");
  const simnet::NodeId origin_node = net_->add_node("cloud-origin", origin_addr);
  net_->add_link(origin_node, backbone_, ran::wan_link(25.0));
  origin_ = std::make_unique<cdn::OriginServer>(*net_, origin_node,
                                                "cloud-origin", catalog);

  cloud_cache_addr_ = Ipv4Address::must_parse("198.51.100.20");
  const simnet::NodeId cloud_cache_node =
      net_->add_node("cloud-cache", cloud_cache_addr_);
  net_->add_link(cloud_cache_node, backbone_, ran::wan_link(24.0));
  cdn::CacheServer::Config ccc;
  ccc.parent = simnet::Endpoint{origin_addr, cdn::kContentPort};
  cloud_cache_ = std::make_unique<cdn::CacheServer>(
      *net_, cloud_cache_node, "cloud-cache", ccc, cloud_cache_addr_);
  for (const auto& [url, object] : catalog.objects()) {
    cloud_cache_->warm(object);
  }

  // --- public DNS hierarchy (root, .test TLD) ------------------------------
  hierarchy_ = std::make_unique<dns::PublicDnsHierarchy>(
      *net_, backbone_, ran::wan_link(15.0), server_processing(0.5));
  hierarchy_->ensure_tld("test", Ipv4Address::must_parse("199.7.50.1"),
                         ran::wan_link(15.0));

  // --- the CDN's public (WAN) C-DNS — authoritative for the CDN domain -----
  const auto wan_cdns_addr = Ipv4Address::must_parse("198.51.100.53");
  const simnet::NodeId wan_cdns_node = net_->add_node("wan-cdns", wan_cdns_addr);
  net_->add_link(wan_cdns_node, backbone_, ran::wan_link(config_.wan_cdns_ms));
  {
    cdn::TrafficRouter::Config wc;
    wc.cdn_domain = cdn_domain;
    wc.answer_ttl = config_.answer_ttl;
    wc.use_ecs = config_.enable_ecs;
    wan_cdns_ = std::make_unique<cdn::TrafficRouter>(
        *net_, wan_cdns_node, "wan-cdns", server_processing(2.6),
        std::move(wc), wan_cdns_addr);
  }
  hierarchy_->delegate_to(cdn_domain,
                          dns::DnsName::must_parse("ns1.mycdn.ciab.test"),
                          wan_cdns_addr);

  // --- LAN C-DNS node (scenario 2's external router) ------------------------
  const auto lan_cdns_addr = Ipv4Address::must_parse("10.200.0.53");
  const simnet::NodeId lan_cdns_node = net_->add_node("lan-cdns", lan_cdns_addr);

  // --- the MEC site ----------------------------------------------------------
  MecCdnSite::Config sc;
  sc.cdn_domain = cdn_domain;
  sc.answer_ttl = config_.answer_ttl;
  sc.enable_ecs = config_.enable_ecs;
  sc.origin = simnet::Endpoint{origin_addr, cdn::kContentPort};
  sc.ldns_processing = server_processing(2.4);
  sc.cdns_processing = server_processing(2.6);
  sc.overload_threshold_qps = config_.overload_threshold_qps;
  sc.overload_recovery_windows = config_.overload_recovery_windows;
  sc.serve_stale = config_.serve_stale;
  sc.cdns_fallback_to_provider = config_.cdns_fallback_to_provider;
  if (config_.provider_fallback) {
    // The provider resolver is built later, but its address is fixed.
    sc.provider_ldns = simnet::Endpoint{
        Ipv4Address::must_parse("10.201.0.53"), dns::kDnsPort};
    // Misses at the edge C-DNS cascade into the parent tier's CDN domain.
    sc.parent_cdn_domain = dns::DnsName::must_parse("cdn-parent.test");
  }
  switch (config_.deployment) {
    case Fig5Deployment::kMecLdnsLanCdns:
      sc.external_cdns = simnet::Endpoint{lan_cdns_addr, dns::kDnsPort};
      break;
    case Fig5Deployment::kMecLdnsWanCdns:
      sc.external_cdns = simnet::Endpoint{wan_cdns_addr, dns::kDnsPort};
      break;
    default:
      break;  // in-cluster C-DNS
  }
  site_ = std::make_unique<MecCdnSite>(*net_, sc);
  const simnet::NodeId mec_gw = site_->orchestrator().cluster().gateway();
  pgw_mec_link_ = net_->add_link(
      ran_->pgw(), mec_gw,
      LatencyModel::constant(SimTime::millis(config_.pgw_to_mec_ms)));
  mec_lan_link_ = net_->add_link(
      mec_gw, lan_cdns_node,
      LatencyModel::constant(SimTime::millis(config_.lan_cdns_ms)));

  // LAN C-DNS: same routing scope as the in-cluster router, one LAN hop out.
  {
    cdn::TrafficRouter::Config lc;
    lc.cdn_domain = cdn_domain;
    lc.answer_ttl = config_.answer_ttl;
    lc.use_ecs = config_.enable_ecs;
    lan_cdns_ = std::make_unique<cdn::TrafficRouter>(
        *net_, lan_cdns_node, "lan-cdns", server_processing(2.6),
        std::move(lc), lan_cdns_addr);
    lan_cdns_->coverage().set_default_group(kEdgeGroup);
  }

  // Register the MEC edge caches and the delivery service with every
  // router that can route to this site.
  site_->add_delivery_service("demo1", catalog, /*warm_caches=*/true);
  const auto caches = site_->caches();
  for (std::size_t i = 0; i < caches.size(); ++i) {
    const cdn::CacheInfo info{caches[i]->name(), site_->cache_address(i), true};
    lan_cdns_->add_cache(kEdgeGroup, info);
    wan_cdns_->add_cache(kEdgeGroup, info);
  }
  lan_cdns_->add_delivery_service(
      cdn::DeliveryService{"demo1",
                           dns::DnsName::must_parse("demo1.mycdn.ciab.test"),
                           {kEdgeGroup}});
  wan_cdns_->add_cache(kCloudGroup,
                       cdn::CacheInfo{"cloud-cache", cloud_cache_addr_, true});
  wan_cdns_->add_delivery_service(
      cdn::DeliveryService{"demo1",
                           dns::DnsName::must_parse("demo1.mycdn.ciab.test"),
                           {kEdgeGroup, kCloudGroup}});
  // The WAN router serves both worlds: queries arriving from the MEC
  // complex (scenario 3, or ECS disclosing the mobile gateway's subnet)
  // route to the MEC edge caches; everything else goes to the cloud tier.
  const auto& cluster_cfg = site_->orchestrator().cluster().config();
  wan_cdns_->coverage().add(cluster_cfg.node_cidr, kEdgeGroup);
  wan_cdns_->coverage().add(cluster_cfg.service_cidr, kEdgeGroup);
  wan_cdns_->coverage().add(simnet::Cidr(rc.pgw_addr, 24), kEdgeGroup);
  wan_cdns_->coverage().set_default_group(kCloudGroup);
  lan_cdns_->coverage().add(simnet::Cidr(rc.pgw_addr, 24), kEdgeGroup);
  if (site_->router() != nullptr) {
    site_->router()->coverage().add(simnet::Cidr(rc.pgw_addr, 24), kEdgeGroup);
  }

  // --- alternative resolvers (scenarios 4-6) --------------------------------
  dns::RecursiveResolver::Config rcfg;
  rcfg.root_servers = hierarchy_->root_hints();

  if (config_.provider_fallback &&
      config_.deployment != Fig5Deployment::kProviderLdns) {
    const auto addr = Ipv4Address::must_parse("10.201.0.53");
    const simnet::NodeId node = net_->add_node("provider-ldns", addr);
    provider_node_ = node;
    pgw_provider_link_ = net_->add_link(ran_->pgw(), node,
                                        ran::wan_link(config_.provider_ldns_ms));
    provider_ldns_ = std::make_unique<dns::RecursiveResolver>(
        *net_, node, "provider-ldns", server_processing(0.8), rcfg, addr);
  }
  if (config_.provider_fallback) {
    // A regular web CDN domain, reachable only via the provider path —
    // the "non-latency-critical content" of the namespace ablation.
    web_name_ = dns::DnsName::must_parse("img.webshop.test");
    dns::AuthoritativeServer& auth = hierarchy_->add_authoritative(
        dns::DnsName::must_parse("webshop.test"),
        Ipv4Address::must_parse("198.51.100.80"), ran::wan_link(12.0));
    auth.find_zone(web_name_)->must_add(dns::make_a(
        web_name_, Ipv4Address::must_parse("198.18.0.99"), 0));

    // The parent CDN tier: a mid/cloud Traffic Router authoritative for
    // cdn-parent.test, serving delivery service "demo2" (which is NOT
    // deployed at the MEC). The edge C-DNS refers demo2 queries here via a
    // cascading CNAME; the UE chases it through the provider path.
    tier2_name_ = dns::DnsName::must_parse("video.demo2.mycdn.ciab.test");
    const auto mid_addr = Ipv4Address::must_parse("198.51.100.63");
    const simnet::NodeId mid_node = net_->add_node("mid-cdns", mid_addr);
    net_->add_link(mid_node, backbone_, ran::wan_link(config_.wan_cdns_ms));
    cdn::TrafficRouter::Config mc;
    mc.cdn_domain = dns::DnsName::must_parse("cdn-parent.test");
    mc.answer_ttl = 0;
    mid_cdns_ = std::make_unique<cdn::TrafficRouter>(
        *net_, mid_node, "mid-cdns", server_processing(2.6), std::move(mc),
        mid_addr);
    mid_cdns_->add_cache(kCloudGroup, cdn::CacheInfo{
        "cloud-cache", cloud_cache_addr_, true});
    mid_cdns_->coverage().set_default_group(kCloudGroup);
    mid_cdns_->add_delivery_service(cdn::DeliveryService{
        "demo2", dns::DnsName::must_parse("demo2.cdn-parent.test"),
        {kCloudGroup}});
    // The parent tier serves its children's services too: when every edge
    // cache for demo1 is drained, the edge C-DNS refers demo1 queries here
    // and the cloud cache (which holds the full demo1 catalog) serves them.
    mid_cdns_->add_delivery_service(cdn::DeliveryService{
        "demo1", dns::DnsName::must_parse("demo1.cdn-parent.test"),
        {kCloudGroup}});
    hierarchy_->delegate_to(dns::DnsName::must_parse("cdn-parent.test"),
                            dns::DnsName::must_parse("ns1.cdn-parent.test"),
                            mid_addr);
    // demo2 content exists at the cloud tier only.
    cdn::ContentCatalog tier2_catalog;
    tier2_catalog.add_series(tier2_name_, "segment", 8, 2 * 1024 * 1024);
    for (const auto& [url, object] : tier2_catalog.objects()) {
      cloud_cache_->warm(object);
      // The origin owns it too (the cloud cache's parent).
      // OriginServer catalogs are fixed at construction; demo2 objects were
      // not in the origin catalog, so keep them fully warmed at the cloud
      // cache (capacity is ample).
    }
  }

  switch (config_.deployment) {
    case Fig5Deployment::kProviderLdns: {
      const auto addr = Ipv4Address::must_parse("10.201.0.53");
      const simnet::NodeId node = net_->add_node("provider-ldns", addr);
      provider_node_ = node;
      pgw_provider_link_ = net_->add_link(
          ran_->pgw(), node, ran::wan_link(config_.provider_ldns_ms));
      provider_ldns_ = std::make_unique<dns::RecursiveResolver>(
          *net_, node, "provider-ldns", server_processing(0.8), rcfg, addr);
      break;
    }
    case Fig5Deployment::kGoogleDns: {
      // Anycast brings Google's resolving site close to the backbone; the
      // dominant costs are the mobile exit and the resolver->C-DNS trip.
      const auto addr = Ipv4Address::must_parse("8.8.8.8");
      const simnet::NodeId node = net_->add_node("google-dns", addr);
      net_->add_link(backbone_, node, ran::wan_link(config_.google_ms));
      public_resolver_ = std::make_unique<dns::RecursiveResolver>(
          *net_, node, "google-dns", server_processing(0.8), rcfg, addr);
      break;
    }
    case Fig5Deployment::kCloudflareDns: {
      // From the paper's testbed the Cloudflare path was ~2.5x worse than
      // Google's; model it as a distant resolving site.
      const auto addr = Ipv4Address::must_parse("1.1.1.1");
      const simnet::NodeId node = net_->add_node("cloudflare-dns", addr);
      net_->add_link(backbone_, node, ran::wan_link(config_.cloudflare_ms));
      public_resolver_ = std::make_unique<dns::RecursiveResolver>(
          *net_, node, "cloudflare-dns", server_processing(0.8), rcfg, addr);
      break;
    }
    default:
      break;
  }

  // --- the UE, pointed at the scenario's resolver ---------------------------
  simnet::Endpoint dns_target;
  switch (config_.deployment) {
    case Fig5Deployment::kMecLdnsMecCdns:
    case Fig5Deployment::kMecLdnsLanCdns:
    case Fig5Deployment::kMecLdnsWanCdns:
      dns_target = site_->ldns_endpoint();
      break;
    case Fig5Deployment::kProviderLdns:
      dns_target = provider_ldns_->endpoint();
      break;
    case Fig5Deployment::kGoogleDns:
    case Fig5Deployment::kCloudflareDns:
      dns_target = public_resolver_->endpoint();
      break;
  }
  ue_ = std::make_unique<ran::UserEquipment>(
      *net_, *ran_, "ue", Ipv4Address::must_parse("10.45.0.2"), dns_target,
      config_.ue_dns_options);
}

simnet::NodeId Fig5Testbed::mec_ldns_node() const {
  return const_cast<MecCdnSite&>(*site_).ldns().node();
}

cdn::TrafficRouter& Fig5Testbed::active_router() {
  switch (config_.deployment) {
    case Fig5Deployment::kMecLdnsMecCdns:
      return *site_->router();
    case Fig5Deployment::kMecLdnsLanCdns:
      return *lan_cdns_;
    default:
      return *wan_cdns_;
  }
}

SeriesResult Fig5Testbed::measure(std::size_t queries, simnet::SimTime spacing) {
  return measure_name(content_name_, queries, spacing);
}

SeriesResult Fig5Testbed::measure_name(const dns::DnsName& name,
                                       std::size_t queries,
                                       simnet::SimTime spacing,
                                       std::size_t warmup) {
  QueryRunner runner(*net_, ue_->resolver(), tap_.get());
  runner.set_observers(trace_sink_, metrics_);
  runner.set_timeseries(timeseries_);
  QueryRunner::Options options;
  options.queries = queries;
  options.warmup = warmup;  // prime delegation caches, as a live resolver's
  options.spacing = spacing;
  return runner.run(name, dns::RecordType::kA, options);
}

void Fig5Testbed::export_metrics(obs::Registry& registry) const {
  site_->export_metrics(registry, "site.");
  if (lan_cdns_ != nullptr) {
    export_router(registry, "lan-cdns.", *lan_cdns_);
  }
  if (wan_cdns_ != nullptr) {
    export_router(registry, "wan-cdns.", *wan_cdns_);
  }
  if (mid_cdns_ != nullptr) {
    export_router(registry, "mid-cdns.", *mid_cdns_);
  }
  if (provider_ldns_ != nullptr) {
    export_server(registry, "provider-ldns.", *provider_ldns_);
  }
  if (public_resolver_ != nullptr) {
    export_server(registry, "public-resolver.", *public_resolver_);
  }
  if (cloud_cache_ != nullptr) {
    export_stats(registry, "cloud-cache.", cloud_cache_->stats());
  }
  if (origin_ != nullptr) {
    registry.add("origin.requests", origin_->requests());
  }
  if (tap_ != nullptr) {
    registry.add("tap.observed_queries", tap_->observed_queries());
    registry.add("tap.observed_responses", tap_->observed_responses());
  }
}

bool Fig5Testbed::is_mec_cache(simnet::Ipv4Address addr) const {
  for (std::size_t i = 0; i < site_->site_config().edge_caches; ++i) {
    if (site_->cache_address(i) == addr) return true;
  }
  return false;
}

}  // namespace mecdns::core
