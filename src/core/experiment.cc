#include "core/experiment.h"

#include <memory>

namespace mecdns::core {

util::SampleSet SeriesResult::totals() const {
  util::SampleSet set;
  for (const auto& s : samples) {
    if (s.ok) set.add(s.total_ms);
  }
  return set;
}

util::SampleSet SeriesResult::wireless() const {
  util::SampleSet set;
  for (const auto& s : samples) {
    if (s.ok && s.breakdown_valid) set.add(s.wireless_ms);
  }
  return set;
}

util::SampleSet SeriesResult::beyond_pgw() const {
  util::SampleSet set;
  for (const auto& s : samples) {
    if (s.ok && s.breakdown_valid) set.add(s.beyond_pgw_ms);
  }
  return set;
}

std::size_t SeriesResult::failures() const {
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (!s.ok) ++n;
  }
  return n;
}

double SeriesResult::answer_share(
    const std::function<bool(simnet::Ipv4Address)>& pred) const {
  std::size_t ok = 0;
  std::size_t match = 0;
  for (const auto& s : samples) {
    if (!s.ok) continue;
    ++ok;
    if (pred(s.address)) ++match;
  }
  return ok == 0 ? 0.0 : static_cast<double>(match) / static_cast<double>(ok);
}

SeriesResult QueryRunner::run(const dns::DnsName& name, dns::RecordType type,
                              const Options& options) {
  auto result = std::make_shared<SeriesResult>();
  const std::size_t total = options.warmup + options.queries;
  const std::string qname_text = name.to_string();

  for (std::size_t i = 0; i < total; ++i) {
    const simnet::SimTime at =
        net_.now() + options.spacing * static_cast<std::int64_t>(i + 1);
    const bool measured = i >= options.warmup;
    net_.simulator().schedule_at(at, [this, name, type, options, result,
                                      measured, qname_text] {
      // Root span for this lookup; the stub, transport, server and cache
      // stages all nest under it via the ambient token.
      obs::SpanRef root =
          obs::begin_root_span(trace_, "runner", "query " + qname_text);
      auto handle = [this, result, measured, qname_text,
                     root](const dns::StubResult& stub_result) {
        root.tag("rcode", dns::to_string(stub_result.rcode));
        // Failed lookups survive any trace-sampling rate (tail keep).
        if (!stub_result.ok) root.keep();
        root.end();
        if (!measured) return;
        QuerySample sample;
        sample.ok = stub_result.ok && stub_result.address.has_value();
        sample.rcode = stub_result.rcode;
        sample.error = stub_result.error;
        if (stub_result.address.has_value()) {
          sample.address = *stub_result.address;
        }
        sample.total_ms = stub_result.latency.to_millis();
        if (tap_ != nullptr && stub_result.ok) {
          const auto crossing =
              tap_->crossing(stub_result.response.header.id, qname_text);
          if (crossing.has_value() && crossing->has_query &&
              crossing->has_response) {
            const double beyond =
                (crossing->response_seen - crossing->query_seen).to_millis();
            sample.beyond_pgw_ms = beyond;
            sample.wireless_ms = sample.total_ms - beyond;
            sample.breakdown_valid = sample.wireless_ms >= 0.0;
          }
        }
        if (metrics_ != nullptr) {
          metrics_->add("runner.queries");
          if (sample.ok) {
            metrics_->histogram("runner.lookup_ms").add(sample.total_ms);
          } else {
            metrics_->add("runner.failures");
          }
          if (sample.breakdown_valid) {
            metrics_->histogram("runner.wireless_ms").add(sample.wireless_ms);
            metrics_->histogram("runner.beyond_pgw_ms")
                .add(sample.beyond_pgw_ms);
          }
        }
        if (timeseries_ != nullptr) {
          timeseries_->add("runner.queries");
          if (sample.ok) {
            timeseries_->observe("runner.lookup_ms", sample.total_ms);
          } else {
            timeseries_->add("runner.failures");
          }
          if (sample.breakdown_valid) {
            timeseries_->observe("runner.beyond_pgw_ms",
                                 sample.beyond_pgw_ms);
          }
        }
        result->samples.push_back(std::move(sample));
      };
      obs::AmbientSpanGuard ambient(root);
      if (options.with_ecs) {
        stub_.resolve_with_ecs(name, type, options.ecs, handle);
      } else {
        stub_.resolve(name, type, handle);
      }
    });
  }
  net_.simulator().run();
  if (metrics_ != nullptr) {
    metrics_->set_gauge_max(
        "sim.events_executed",
        static_cast<double>(net_.simulator().executed()));
    metrics_->set_gauge_max(
        "sim.max_queue_depth",
        static_cast<double>(net_.simulator().max_queue_depth()));
  }
  return std::move(*result);
}

}  // namespace mecdns::core
