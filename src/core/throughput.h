// Throughput measurement: the load generator driven against the Figure 5
// deployments, with hot-path cost accounting.
//
// Where core::QueryRunner measures *latency* of a handful of dig-style
// queries, ThroughputRun measures *cost under load*: a LoadGenerator drives
// 10^5–10^6 UEs' worth of arrivals through a testbed's full resolution
// stack while the perf-counter layer (obs/perf.h) accounts allocations,
// wire codec work and simulator events. The result splits cleanly into
//
//   * deterministic metrics — queries, events/query, allocs/query, p50/p99
//     latency under load, peak queue depth — serialized by
//     throughput_json(), byte-identical for any --workers value, and gated
//     by `mecdns_report --diff`;
//   * wall-clock metrics — queries/sec and events/sec of real time —
//     serialized by throughput_wall_json(), machine-dependent by nature and
//     therefore reported but never byte-compared (the same split
//     BENCH_parallel.json already uses).
//
// Each deployment is one parallel-campaign job with a private testbed,
// seeded job_seed(seed, index); allocation counts are per-thread deltas
// taken inside the job body, so they too are worker-count-independent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "obs/metrics.h"

namespace mecdns::core {

/// Filename-safe deployment slug ("mec-mec", "provider", ...) — the same
/// names the testbed's --deployment flag and the fig5 bench artifacts use.
std::string fig5_slug(Fig5Deployment deployment);

/// Parses a slug back; false if unknown.
bool fig5_from_slug(const std::string& slug, Fig5Deployment& out);

struct ThroughputConfig {
  std::vector<Fig5Deployment> deployments;
  std::uint32_t ues = 100000;
  double rate_hz = 0.02;     ///< per-UE arrival rate (queries / sim second)
  double duration_s = 15.0;  ///< load-generation window
  bool closed_loop = false;
  double think_s = 1.0;            ///< closed-loop mean think time
  std::size_t warmup_queries = 5;  ///< dig-style queries priming caches
  std::uint64_t seed = 42;
  std::size_t workers = 1;
  /// Attach a flight-recorder journal to every hot-path component (UE
  /// transport, L-DNS cache, C-DNS router). Steady-state traffic records
  /// nothing — the flag exists so the allocs/query ceiling can be
  /// re-verified with journaling armed, proving attachment is free.
  bool journal = false;
};

struct ThroughputResult {
  std::string scenario;  ///< deployment slug
  // --- deterministic -------------------------------------------------------
  std::uint32_t ues = 0;
  std::uint64_t queries = 0;   ///< arrivals the load generator issued
  std::uint64_t failures = 0;  ///< lookups that did not return an address
  double duration_s = 0.0;
  double qps_sim = 0.0;  ///< queries per *simulated* second (offered load)
  std::uint64_t events = 0;  ///< simulator events over the load window
  double events_per_query = 0.0;
  double dns_encoded_per_query = 0.0;
  double dns_decoded_per_query = 0.0;
  double wire_bytes_per_query = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t peak_queue_depth = 0;  ///< event-queue high-water mark
  bool alloc_counted = false;  ///< obs/alloc_hooks.cc linked in this binary
  double allocs_per_query = 0.0;        ///< 0 unless alloc_counted
  double alloc_bytes_per_query = 0.0;   ///< 0 unless alloc_counted
  // --- wall clock (machine-dependent; excluded from throughput_json) ------
  double wall_ms = 0.0;
  double qps_wall = 0.0;
  double events_per_sec_wall = 0.0;
};

struct ThroughputOutput {
  ThroughputResult result;
  /// Everything a --metrics-out consumer wants: perf counters and
  /// per-query gauges under "perf.", loadgen counters and the
  /// under-load latency histogram under "loadgen.", simulator gauges and
  /// the full component export of the testbed.
  obs::Registry metrics;
};

/// Runs every deployment as one campaign job. Outcomes are slot-ordered by
/// deployment index; a failed job carries its error string.
std::vector<JobOutcome<ThroughputOutput>> run_throughput(
    const ThroughputConfig& config);

/// Deterministic BENCH_throughput.json body (trailing newline included).
/// `seed` only feeds the provenance meta block.
std::string throughput_json(const std::vector<ThroughputResult>& results,
                            std::uint64_t seed = 42);

/// Wall-clock side artifact (BENCH_throughput_wall.json body).
std::string throughput_wall_json(const std::vector<ThroughputResult>& results,
                                 std::size_t workers,
                                 std::uint64_t seed = 42);

}  // namespace mecdns::core
