// Named fault scenarios for the Fig. 5 testbed.
//
// Each scenario builds a chaos::FaultSchedule against a concrete
// Fig5Testbed — the catalog lives here (not in src/chaos) because it needs
// testbed internals: which node hosts the MEC L-DNS, which link is the WAN
// exit, which workers carry the edge caches. The schedules are pure data;
// arm them with a chaos::ChaosController over testbed.network().
//
// The single-fault catalog (what bench_fault_availability measures):
//   mec-ldns-crash       the MEC L-DNS's node dies mid-stream, later restarts
//   edge-cache-partition every edge-cache worker drops off the fabric
//   wan-loss-burst       the P-GW's WAN exit runs at heavy random loss
//   cdns-brownout        the serving C-DNS slows by a fixed per-query delay
//   cache-wipe           edge caches lose their content store at one instant
#pragma once

#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "core/fig5.h"
#include "simnet/time.h"

namespace mecdns::core {

struct FaultScenario {
  std::string name;
  std::string description;
  /// Nominal fault window (time-to-recover is measured from fault_end for
  /// outages, from fault_start for instantaneous faults like the wipe).
  simnet::SimTime fault_start;
  simnet::SimTime fault_end;
  chaos::FaultSchedule schedule;
};

/// Catalog order used by benches and the check.sh fault matrix.
const std::vector<std::string>& fault_scenario_names();

/// Builds `name`'s schedule against `testbed` with the fault active during
/// [start, end). Throws std::invalid_argument for an unknown name.
/// Custom actions capture `testbed` by reference — it must outlive the run.
FaultScenario make_fault_scenario(const std::string& name,
                                  Fig5Testbed& testbed, simnet::SimTime start,
                                  simnet::SimTime end);

FaultScenario make_mec_ldns_crash(Fig5Testbed& testbed, simnet::SimTime start,
                                  simnet::SimTime end);
FaultScenario make_edge_cache_partition(Fig5Testbed& testbed,
                                        simnet::SimTime start,
                                        simnet::SimTime end);
FaultScenario make_wan_loss_burst(Fig5Testbed& testbed, simnet::SimTime start,
                                  simnet::SimTime end,
                                  double probability = 0.5);
FaultScenario make_cdns_brownout(Fig5Testbed& testbed, simnet::SimTime start,
                                 simnet::SimTime end,
                                 simnet::SimTime extra =
                                     simnet::SimTime::millis(400));
FaultScenario make_cache_wipe(Fig5Testbed& testbed, simnet::SimTime at);

}  // namespace mecdns::core
