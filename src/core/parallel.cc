#include "core/parallel.h"

#include <atomic>
#include <thread>

#include "util/thread_fresh.h"

namespace mecdns::core {

std::uint64_t split_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t resolve_workers(std::int64_t flag) {
  if (flag >= 1) return static_cast<std::size_t>(flag);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ParallelCampaign::ParallelCampaign(std::size_t workers)
    : workers_(workers == 0 ? resolve_workers(0) : workers) {}

void ParallelCampaign::run_indexed(
    std::size_t jobs, const std::function<void(std::size_t)>& body) const {
  const std::size_t workers = std::min(workers_, jobs);
  // Each job must start from a cold thread: thread_local scratch (the DNS
  // codec's encode arena) warmed by a previous job on the same worker would
  // otherwise make refill/allocation counts depend on scheduling, breaking
  // worker-count byte-identity of perf-bearing artifacts.
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      util::reset_thread_caches();
      body(i);
    }
    return;
  }
  // Ticket dispatch: indices are handed out in order; completion order is
  // irrelevant because each job writes only its own slot.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, &body, jobs] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs) return;
        util::reset_thread_caches();
        body(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace mecdns::core
