#include "core/roles.h"

namespace mecdns::core {

const std::vector<EcosystemRole>& ecosystem_roles() {
  static const std::vector<EcosystemRole> kRoles = {
      {"Cellular Providers", "Operating RAN and cellular core network"},
      {"CDN Providers",
       "Providing content caches on CDN domains hosted on some server nodes"},
      {"DNS Provider", "Routing requests to closest CDN domain servers"},
      {"Web Provider",
       "Delivering web services that use CDNs to provide better services to "
       "end users"},
      {"Cloud Provider",
       "Providing server infrastructure to one or more of the above"},
      {"CDN Brokers",
       "Providing a consolidated service spanning multiple CDNs to CDN "
       "customers"},
      {"MEC Provider", "Providing MEC servers that host CDN domains"},
  };
  return kRoles;
}

}  // namespace mecdns::core
