#include "core/mec_cdn.h"

#include <stdexcept>

#include "core/metrics_export.h"

namespace mecdns::core {

namespace {
/// kube-dns traditionally gets service host .10 (10.96.0.10).
constexpr std::uint32_t kCoreDnsServiceHost = 10;
/// Fixed cluster IP host for the Traffic Router service.
constexpr std::uint32_t kRouterServiceHost = 53;

constexpr const char* kEdgeGroup = "mec-edge";
}  // namespace

MecCdnSite::MecCdnSite(simnet::Network& net, Config config)
    : net_(net), config_(std::move(config)) {
  orchestrator_ =
      std::make_unique<mec::Orchestrator>(net_, config_.orchestrator);
  mec::MecCluster& cluster = orchestrator_->cluster();

  // --- CoreDNS (MEC L-DNS) -------------------------------------------------
  const simnet::NodeId infra = cluster.add_worker("infra");
  const mec::Deployment coredns = orchestrator_->deploy(
      "kube-dns", "kube-system", infra, kCoreDnsServiceHost);
  ldns_ip_ = coredns.cluster_ip;

  // --- C-DNS (Traffic Router) ----------------------------------------------
  simnet::NodeId router_node = simnet::kInvalidNode;
  if (!config_.external_cdns.has_value()) {
    router_node = cluster.add_worker("router");
    const mec::Deployment tr = orchestrator_->deploy(
        "traffic-router", "cdn", router_node, kRouterServiceHost);
    cdns_ip_ = tr.cluster_ip;

    cdn::TrafficRouter::Config rc;
    rc.cdn_domain = config_.cdn_domain;
    rc.answer_ttl = config_.answer_ttl;
    rc.use_ecs = config_.enable_ecs;
    if (config_.parent_cdn_domain.has_value()) {
      rc.parent_domain = config_.parent_cdn_domain;
    }
    rc.cache_capacity_per_window = config_.cache_selection_capacity;
    rc.capacity_window = config_.cache_selection_window;
    router_ = std::make_unique<cdn::TrafficRouter>(
        net_, router_node, "mec-cdns", config_.cdns_processing, std::move(rc),
        cdns_ip_);
    router_->add_cache_group(kEdgeGroup);
    // The edge router's scope is only this site: everything it is asked
    // about resolves to the MEC cache group.
    router_->coverage().set_default_group(kEdgeGroup);
    router_->coverage().add(cluster.config().node_cidr, kEdgeGroup);
    router_->coverage().add(cluster.config().service_cidr, kEdgeGroup);
  }

  // --- edge caches -----------------------------------------------------------
  for (std::size_t i = 0; i < config_.edge_caches; ++i) {
    const std::string cache_name = "edge-cache-" + std::to_string(i);
    const simnet::NodeId worker = cluster.add_worker(cache_name);
    const mec::Deployment dep =
        orchestrator_->deploy(cache_name, "cdn", worker);
    cache_ips_.push_back(dep.cluster_ip);

    cdn::CacheServer::Config cc;
    cc.capacity_bytes = config_.cache_capacity_bytes;
    cc.parent = config_.origin;
    caches_.push_back(std::make_unique<cdn::CacheServer>(
        net_, worker, cache_name, std::move(cc), dep.cluster_ip));
    cache_active_.push_back(true);
    if (router_ != nullptr) {
      router_->add_cache(kEdgeGroup,
                         cdn::CacheInfo{cache_name, dep.cluster_ip, true});
    }
  }

  // --- split-namespace L-DNS -------------------------------------------------
  ldns_ = std::make_unique<dns::PluginChainServer>(
      net_, infra, "mec-coredns", config_.ldns_processing, ldns_ip_);
  if (config_.ldns_workers > 0) {
    ldns_->set_service_capacity(config_.ldns_workers, config_.ldns_max_queue);
  }
  public_cache_ = std::make_shared<dns::DnsCache>(4096);
  if (config_.serve_stale) {
    public_cache_->set_serve_stale(true, config_.serve_stale_window);
  }

  // Internal view: VNF service discovery, exactly what the orchestrator's
  // DNS existed for. Matched by cluster-internal source addresses.
  dns::PluginChain& internal = ldns_->add_view(
      "internal",
      {cluster.config().node_cidr, cluster.config().service_cidr});
  internal.add(std::make_unique<dns::ZonePlugin>(
      orchestrator_->registry().zone()));
  if (config_.provider_ldns.has_value()) {
    internal.add(std::make_unique<dns::ForwardPlugin>(
        dns::DnsName::root(),
        std::vector<simnet::Endpoint>{*config_.provider_ldns},
        ldns_->transport()));
  } else {
    internal.add(std::make_unique<dns::RefusePlugin>());
  }

  // Public view: the mobile-facing namespace. Populated when MEC-CDN
  // deploys; the CDN apex is stub-domain-forwarded to the C-DNS so the
  // whole resolution stays inside the MEC.
  dns::PluginChain& pub = ldns_->add_default_view("public");
  if (config_.overload_threshold_qps > 0) {
    auto guard = std::make_unique<mec::OverloadGuardPlugin>(
        orchestrator_->ingress(), config_.overload_threshold_qps,
        config_.overload_action);
    guard->set_recovery_windows(config_.overload_recovery_windows);
    if (config_.overload_queue_limit > 0) {
      guard->set_queue_probe(
          [srv = ldns_.get()] { return srv->queue_depth(); },
          config_.overload_queue_limit);
    }
    guard_ = guard.get();
    pub.add(std::move(guard));
  }
  pub.add(std::make_unique<dns::CachePlugin>(public_cache_));
  const simnet::Endpoint cdns_target =
      config_.external_cdns.value_or(simnet::Endpoint{cdns_ip_, dns::kDnsPort});
  std::vector<simnet::Endpoint> cdns_upstreams{cdns_target};
  if (config_.cdns_fallback_to_provider &&
      config_.provider_ldns.has_value()) {
    cdns_upstreams.push_back(*config_.provider_ldns);
  }
  auto cdn_forward = std::make_unique<dns::ForwardPlugin>(
      config_.cdn_domain, std::move(cdns_upstreams), ldns_->transport());
  if (config_.cdns_fallback_to_provider) {
    cdn_forward->set_failover_on_servfail(true);
  }
  if (config_.enable_ecs) cdn_forward->set_add_ecs(true);
  cdn_forward_ = cdn_forward.get();
  pub.add(std::move(cdn_forward));
  pub.add(std::make_unique<dns::ZonePlugin>(orchestrator_->public_zone()));
  if (config_.provider_ldns.has_value()) {
    pub.add(std::make_unique<dns::ForwardPlugin>(
        dns::DnsName::root(),
        std::vector<simnet::Endpoint>{*config_.provider_ldns},
        ldns_->transport()));
  } else {
    pub.add(std::make_unique<dns::RefusePlugin>());
  }
}

void MecCdnSite::add_delivery_service(const std::string& id,
                                      const cdn::ContentCatalog& content,
                                      bool warm_caches) {
  auto domain = dns::DnsName::must_parse(id).under(config_.cdn_domain);
  if (!domain.ok()) {
    throw std::invalid_argument("bad delivery service id: " + id);
  }
  if (router_ != nullptr) {
    router_->add_delivery_service(cdn::DeliveryService{
        id, domain.value(), {kEdgeGroup}});
  }
  if (warm_caches) {
    // Push the catalog to the edge (deploy-time content placement). With
    // consistent hashing each object really lives on one cache, but warming
    // all replicas keeps the first measured query representative.
    for (const auto& [url, object] : content.objects()) {
      for (auto& cache : caches_) cache->warm(object);
    }
    // Remember it so scale-up replicas get the same placement.
    warmed_catalogs_.push_back(content);
  }
}

cdn::CacheServer* MecCdnSite::add_edge_cache() {
  mec::MecCluster& cluster = orchestrator_->cluster();
  // Reactivate the lowest-index retired replica first: its node, address
  // and (still warm) cache contents are already in place.
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    if (cache_active_[i]) continue;
    cache_active_[i] = true;
    if (router_ != nullptr) {
      router_->set_cache_healthy(kEdgeGroup, caches_[i]->name(), true);
    }
    return caches_[i].get();
  }

  const std::string cache_name =
      "edge-cache-" + std::to_string(caches_.size());
  const simnet::NodeId worker = cluster.add_worker(cache_name);
  const mec::Deployment dep = orchestrator_->deploy(cache_name, "cdn", worker);
  cache_ips_.push_back(dep.cluster_ip);

  cdn::CacheServer::Config cc;
  cc.capacity_bytes = config_.cache_capacity_bytes;
  cc.parent = config_.origin;
  caches_.push_back(std::make_unique<cdn::CacheServer>(
      net_, worker, cache_name, std::move(cc), dep.cluster_ip));
  cache_active_.push_back(true);
  cdn::CacheServer* cache = caches_.back().get();
  for (const auto& catalog : warmed_catalogs_) {
    for (const auto& [url, object] : catalog.objects()) cache->warm(object);
  }
  if (router_ != nullptr) {
    router_->add_cache(kEdgeGroup,
                       cdn::CacheInfo{cache_name, dep.cluster_ip, true});
  }
  return cache;
}

bool MecCdnSite::retire_edge_cache() {
  if (active_edge_caches() <= 1) return false;
  for (std::size_t i = caches_.size(); i-- > 0;) {
    if (!cache_active_[i]) continue;
    cache_active_[i] = false;
    if (router_ != nullptr) {
      router_->set_cache_healthy(kEdgeGroup, caches_[i]->name(), false);
    }
    return true;
  }
  return false;
}

std::size_t MecCdnSite::active_edge_caches() const {
  std::size_t n = 0;
  for (const bool active : cache_active_) n += active ? 1 : 0;
  return n;
}

simnet::Endpoint MecCdnSite::ldns_endpoint() const {
  return simnet::Endpoint{ldns_ip_, dns::kDnsPort};
}

simnet::Endpoint MecCdnSite::cdns_endpoint() const {
  if (config_.external_cdns.has_value()) return *config_.external_cdns;
  return simnet::Endpoint{cdns_ip_, dns::kDnsPort};
}

std::vector<cdn::CacheServer*> MecCdnSite::caches() {
  std::vector<cdn::CacheServer*> out;
  out.reserve(caches_.size());
  for (auto& cache : caches_) out.push_back(cache.get());
  return out;
}

void MecCdnSite::export_metrics(obs::Registry& registry,
                                const std::string& prefix) const {
  export_server(registry, prefix + "ldns.", *ldns_);
  registry.add(prefix + "ldns.view.internal.queries",
               ldns_->view_queries("internal"));
  registry.add(prefix + "ldns.view.public.queries",
               ldns_->view_queries("public"));
  export_stats(registry, prefix + "ldns.cache.", public_cache_->stats());
  export_transport(registry, prefix + "ldns.transport.",
                   static_cast<const dns::PluginChainServer&>(*ldns_)
                       .transport());
  if (cdn_forward_ != nullptr) {
    registry.add(prefix + "ldns.forward.forwarded", cdn_forward_->forwarded());
    registry.add(prefix + "ldns.forward.upstream_failures",
                 cdn_forward_->upstream_failures());
    registry.add(prefix + "ldns.forward.failovers",
                 cdn_forward_->failovers());
    registry.add(prefix + "ldns.forward.servfail_failovers",
                 cdn_forward_->servfail_failovers());
  }
  if (guard_ != nullptr) {
    registry.add(prefix + "ldns.overload.admitted", guard_->admitted());
    registry.add(prefix + "ldns.overload.shed", guard_->shed());
    registry.add(prefix + "ldns.overload.trips", guard_->trips());
    registry.add(prefix + "ldns.overload.recoveries", guard_->recoveries());
    // Full state machine under the mec.ingress.* convention, so reports can
    // explain a failed SLO window (shedding? queue-full sheds? flapping?).
    export_ingress(registry, prefix + "mec.ingress.", *guard_);
  }
  if (router_ != nullptr) {
    export_router(registry, prefix + "cdns.", *router_);
  }
  for (const auto& cache : caches_) {
    export_stats(registry, prefix + "cache." + cache->name() + ".",
                 cache->stats());
  }
  registry.set_gauge(prefix + "mec.edge_replicas",
                     static_cast<double>(active_edge_caches()));
}

}  // namespace mecdns::core
