// Deterministic parallel campaign execution.
//
// Every experiment surface in this repo — the fig2/fig5 benches, the fault
// matrix, the ablation sweeps, core::MeasurementStudy — runs a grid of
// *independent* simulations: each (scenario × deployment × seed) job owns a
// private simnet::Simulator, Network, obs::Registry/TraceSink/TimeSeries
// and util::Rng, and the simulations never exchange state. That makes the
// grid embarrassingly parallel, provided two things hold:
//
//   1. Seeding is per-job, not positional. A job's RNG stream must be a
//      pure function of (campaign_seed, job_index), never of which jobs ran
//      before it. job_seed() derives it by SplitMix64-mixing the pair, so
//      adding, removing or reordering jobs cannot perturb any other job's
//      stream — and neither can running them on different threads.
//   2. Results land in fixed slots. Each job writes only its own slot;
//      merging and printing happen on the calling thread in job-index
//      order after every worker has joined. Output is therefore
//      byte-identical for any worker count, including 1.
//
// The runner is deliberately work-stealing-free: a single atomic ticket
// counter hands out job indices in order. Scheduling order can vary between
// runs, but nothing observable depends on it.
//
// Thread-safety contract for job bodies: construct the Simulator (and
// everything hanging off it) *inside* the job, on the worker thread — the
// simulator's log clock and the trace-token ambient context are
// thread_local, so concurrent simulations do not interfere. Process-global
// knobs (util::set_log_level, util::set_log_sink) must be configured before
// run() and left alone while workers are live.
//
// Before each job body the runner calls util::reset_thread_caches(): any
// thread_local scratch registered via util/thread_fresh.h (e.g. the DNS
// codec's encode arena) is returned to a cold state, so a job behaves
// identically whether its worker thread is fresh or reused.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mecdns::core {

/// SplitMix64 finalizer (Steele, Lea & Flood): a bijective avalanche mix.
std::uint64_t split_mix64(std::uint64_t x);

/// The RNG seed for job `job_index` of a campaign seeded with
/// `campaign_seed`. Pure function of its arguments — independent of
/// execution order, worker count, and every other job.
inline std::uint64_t job_seed(std::uint64_t campaign_seed,
                              std::uint64_t job_index) {
  return split_mix64(campaign_seed ^ job_index);
}

/// Maps a --workers flag value to an effective worker count: values >= 1
/// pass through, anything else (0, negative) becomes hardware_concurrency
/// (at least 1).
std::size_t resolve_workers(std::int64_t flag);

/// One job's result slot. A job that throws reports here instead of taking
/// the campaign down: `ok` is false, `error` carries the exception message
/// and `value` stays default-constructed. The campaign always runs every
/// job to completion regardless of individual failures.
template <typename Result>
struct JobOutcome {
  bool ok = false;
  std::string error;
  Result value{};
};

/// Runs `jobs` independent closures across a fixed pool of worker threads.
class ParallelCampaign {
 public:
  /// `workers` = 0 means hardware_concurrency. The count is capped at the
  /// job count at run() time; 1 runs everything inline on the caller.
  explicit ParallelCampaign(std::size_t workers = 0);

  std::size_t workers() const { return workers_; }

  /// Runs fn(job_index) for every index in [0, jobs), collecting results
  /// into a vector indexed by job. Blocks until every job finished.
  /// Exceptions from fn are captured per-slot (see JobOutcome).
  template <typename Result>
  std::vector<JobOutcome<Result>> run(
      std::size_t jobs, const std::function<Result(std::size_t)>& fn) const {
    std::vector<JobOutcome<Result>> slots(jobs);
    run_indexed(jobs, [&slots, &fn](std::size_t i) {
      try {
        slots[i].value = fn(i);
        slots[i].ok = true;
      } catch (const std::exception& e) {
        slots[i].error = e.what();
      } catch (...) {
        slots[i].error = "unknown exception";
      }
    });
    return slots;
  }

  /// Untyped variant: runs body(i) for every job index. The body must not
  /// throw (run() wraps bodies with the per-slot catch).
  void run_indexed(std::size_t jobs,
                   const std::function<void(std::size_t)>& body) const;

 private:
  std::size_t workers_;
};

}  // namespace mecdns::core
