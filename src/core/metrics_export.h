// Snapshot exporters: component counters -> obs::Registry.
//
// Components keep their own cheap stats structs on the hot path; these
// helpers copy them into a registry under a dotted name prefix when a dump
// is requested. Exporting is pull-based and costs nothing until called.
#pragma once

#include <string>

#include "cdn/cache_server.h"
#include "cdn/traffic_router.h"
#include "dns/cache.h"
#include "dns/server.h"
#include "dns/transport.h"
#include "mec/autoscaler.h"
#include "mec/ingress.h"
#include "obs/metrics.h"

namespace mecdns::core {

inline void export_stats(obs::Registry& registry, const std::string& prefix,
                         const dns::ServerStats& stats) {
  registry.add(prefix + "queries", stats.queries);
  registry.add(prefix + "responses", stats.responses);
  registry.add(prefix + "malformed", stats.malformed);
  registry.add(prefix + "refused", stats.refused);
  registry.add(prefix + "nxdomain", stats.nxdomain);
  registry.add(prefix + "servfail", stats.servfail);
  registry.add(prefix + "truncated", stats.truncated);
}

inline void export_server(obs::Registry& registry, const std::string& prefix,
                          const dns::DnsServer& server) {
  export_stats(registry, prefix, server.stats());
  registry.add(prefix + "dropped_overflow", server.dropped_overflow());
  // High-water mark of the worker FIFO: gauges max-combine on merge, which
  // is exactly the right semantic for a peak.
  registry.set_gauge_max(prefix + "queue_depth_peak",
                         static_cast<double>(server.max_queue_depth()));
}

inline void export_transport(obs::Registry& registry,
                             const std::string& prefix,
                             const dns::DnsTransport& transport) {
  registry.add(prefix + "timeouts", transport.timeouts());
  registry.add(prefix + "retransmissions", transport.retransmissions());
  registry.add(prefix + "tc_retries", transport.tc_retries());
  registry.add(prefix + "servfails", transport.servfails());
  registry.add(prefix + "failovers", transport.failovers());
}

/// Handoff retarget counters under "<prefix>dns.retarget.*": how many
/// in-flight queries followed a resolver re-target, and in how many
/// batches (≈ handoffs that caught queries mid-air).
inline void export_retargets(obs::Registry& registry,
                             const std::string& prefix,
                             const dns::DnsTransport& transport) {
  registry.add(prefix + "dns.retarget.queries", transport.retargets());
  registry.add(prefix + "dns.retarget.batches",
               transport.retarget_batches());
}

/// Autoscaler control loop under "<prefix>mec.autoscaler.*": decisions
/// taken, ticks observed, and the last load-per-replica reading the loop
/// acted on.
inline void export_autoscaler(obs::Registry& registry,
                              const std::string& prefix,
                              const mec::AutoScaler& scaler) {
  registry.add(prefix + "mec.autoscaler.ticks", scaler.ticks());
  registry.add(prefix + "mec.autoscaler.scale_ups", scaler.scale_ups());
  registry.add(prefix + "mec.autoscaler.scale_downs", scaler.scale_downs());
  registry.set_gauge(prefix + "mec.autoscaler.last_load_per_replica",
                     scaler.last_load_per_replica());
}

inline void export_stats(obs::Registry& registry, const std::string& prefix,
                         const dns::CacheStats& stats) {
  registry.add(prefix + "hits", stats.hits);
  registry.add(prefix + "misses", stats.misses);
  registry.add(prefix + "insertions", stats.insertions);
  registry.add(prefix + "evictions", stats.evictions);
  registry.add(prefix + "expired", stats.expired);
  registry.add(prefix + "stale_hits", stats.stale_hits);
}

inline void export_stats(obs::Registry& registry, const std::string& prefix,
                         const cdn::RouterStats& stats) {
  registry.add(prefix + "routed", stats.routed);
  registry.add(prefix + "referred_to_parent", stats.referred_to_parent);
  registry.add(prefix + "no_cache_available", stats.no_cache_available);
  registry.add(prefix + "coverage_hits", stats.coverage_hits);
  registry.add(prefix + "geo_fallbacks", stats.geo_fallbacks);
  registry.add(prefix + "ecs_localized", stats.ecs_localized);
  registry.add(prefix + "alloc.bounded_overflows", stats.bounded_overflows);
  registry.add(prefix + "alloc.capacity_exhausted", stats.capacity_exhausted);
  registry.add(prefix + "alloc_churn.topology_changes",
               stats.topology_changes);
  registry.set_gauge(prefix + "alloc_churn.last_fraction",
                     stats.last_remap_fraction);
  registry.set_gauge_max(prefix + "alloc_churn.max_fraction",
                         stats.max_remap_fraction);
}

inline void export_router(obs::Registry& registry, const std::string& prefix,
                          const cdn::TrafficRouter& router) {
  export_server(registry, prefix, router);
  export_stats(registry, prefix, router.router_stats());
  for (const auto& [cache, count] : router.selections()) {
    registry.add(prefix + "selected." + cache, count);
  }
}

/// Ingress-guard state machine under `prefix` (conventionally ending in
/// "mec.ingress."): admission/shed counters, hysteresis transitions, and
/// the current mode as a gauge — enough for mecdns_report to show *why* a
/// window failed its SLO.
inline void export_ingress(obs::Registry& registry, const std::string& prefix,
                           const mec::OverloadGuardPlugin& guard) {
  registry.add(prefix + "admitted", guard.admitted());
  registry.add(prefix + "shed", guard.shed());
  registry.add(prefix + "shed_queue_full", guard.shed_queue_full());
  registry.add(prefix + "trips", guard.trips());
  registry.add(prefix + "recoveries", guard.recoveries());
  registry.set_gauge(prefix + "shedding", guard.shedding() ? 1.0 : 0.0);
}

inline void export_stats(obs::Registry& registry, const std::string& prefix,
                         const cdn::CacheServerStats& stats) {
  registry.add(prefix + "requests", stats.requests);
  registry.add(prefix + "hits", stats.hits);
  registry.add(prefix + "misses", stats.misses);
  registry.add(prefix + "parent_fetches", stats.parent_fetches);
  registry.add(prefix + "parent_failures", stats.parent_failures);
  registry.add(prefix + "not_found", stats.not_found);
  registry.add(prefix + "evictions", stats.evictions);
  registry.add(prefix + "bytes_served", stats.bytes_served);
}

}  // namespace mecdns::core
