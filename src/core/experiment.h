// Measurement harness: drives DNS query series and collects the paper's
// metrics.
//
// Reproduces the paper's methodology: dig-style repeated queries from the
// client (client-observed latency) combined with a tcpdump-style tap at the
// P-GW that splits each lookup into wireless vs beyond-P-GW time (Figure
// 5's two bar segments).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dns/stub.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "ran/tap.h"
#include "simnet/network.h"
#include "util/stats.h"

namespace mecdns::core {

struct QuerySample {
  bool ok = false;
  dns::RCode rcode = dns::RCode::kServFail;
  simnet::Ipv4Address address;   ///< first A answer (if any)
  double total_ms = 0.0;         ///< client-observed lookup latency
  double wireless_ms = 0.0;      ///< UE<->P-GW portion (needs a tap)
  double beyond_pgw_ms = 0.0;    ///< resolvers + core beyond the P-GW
  bool breakdown_valid = false;  ///< tap saw both directions
  std::string error;
};

struct SeriesResult {
  std::vector<QuerySample> samples;

  util::SampleSet totals() const;
  util::SampleSet wireless() const;
  util::SampleSet beyond_pgw() const;
  std::size_t failures() const;
  /// Share of successful answers whose address satisfies `pred`.
  double answer_share(
      const std::function<bool(simnet::Ipv4Address)>& pred) const;
};

/// Runs query series through a stub resolver, draining the simulator after
/// scheduling, and correlates each transaction with the tap (when given).
class QueryRunner {
 public:
  QueryRunner(simnet::Network& net, dns::StubResolver& stub,
              ran::DnsTap* tap = nullptr)
      : net_(net), stub_(stub), tap_(tap) {}

  struct Options {
    std::size_t queries = 12;
    std::size_t warmup = 0;  ///< extra leading queries, excluded from results
    simnet::SimTime spacing = simnet::SimTime::seconds(1);
    bool with_ecs = false;
    dns::ClientSubnet ecs;
  };

  /// Attaches observability: a trace sink makes every lookup a root
  /// "query" span whose children are the stub, transport, server and cache
  /// stages; a registry collects runner counters and latency histograms
  /// plus simulator gauges. Either may be nullptr (disabled).
  void set_observers(obs::TraceSink* trace, obs::Registry* metrics) {
    trace_ = trace;
    metrics_ = metrics;
  }

  /// Attaches a sim-time-windowed series: per-window query/failure counts
  /// and lookup-latency histograms land in `series`. nullptr disables.
  void set_timeseries(obs::TimeSeries* series) { timeseries_ = series; }

  /// Schedules `options.warmup + options.queries` lookups of (name, type)
  /// and runs the simulator until all complete.
  SeriesResult run(const dns::DnsName& name, dns::RecordType type,
                   const Options& options);

 private:
  simnet::Network& net_;
  dns::StubResolver& stub_;
  ran::DnsTap* tap_;
  obs::TraceSink* trace_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::TimeSeries* timeseries_ = nullptr;
};

}  // namespace mecdns::core
