#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace mecdns::util {

std::vector<std::string> split(std::string_view input, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (const char c : input) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return std::string(input.substr(begin, end - begin));
}

bool ends_with_icase(std::string_view s, std::string_view suffix) {
  if (suffix.size() > s.size()) return false;
  const std::string_view tail = s.substr(s.size() - suffix.size());
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(tail[i])) !=
        std::tolower(static_cast<unsigned char>(suffix[i]))) {
      return false;
    }
  }
  return true;
}

std::string fmt_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string ascii_bar(double value, double max, int width) {
  if (width <= 0) return {};
  std::string bar(static_cast<std::size_t>(width), ' ');
  if (max <= 0.0) return bar;
  const double fraction = std::min(1.0, std::max(0.0, value / max));
  const auto cells = static_cast<std::size_t>(fraction * width + 0.5);
  for (std::size_t i = 0; i < cells; ++i) bar[i] = '#';
  return bar;
}

}  // namespace mecdns::util
