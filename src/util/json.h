// Minimal JSON document parser for the report tooling.
//
// mecdns_report has to read back the artifacts the testbed and benches
// write (Chrome traces, metrics registries, time series, BENCH_*.json)
// without external dependencies, so this is a small recursive-descent
// parser into an immutable value tree. Object member order is preserved
// (insertion order), numbers are doubles parsed locale-independently, and
// parse errors carry the byte offset. It is a reader, not a writer — every
// emitter in the tree builds its JSON by hand to stay byte-stable.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace mecdns::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (trailing garbage is an error).
  static Result<JsonValue> parse(const std::string& text);
  /// Reads `path` and parses it; distinguishes I/O from syntax errors.
  static Result<JsonValue> parse_file(const std::string& path);

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& as_string() const { return string_; }

  /// Array element count / object member count (0 for scalars).
  std::size_t size() const;
  /// Array element by index; null value when out of range or not an array.
  const JsonValue& at(std::size_t i) const;
  /// Object member by key; null value when absent. `has` distinguishes an
  /// absent member from an explicit null.
  const JsonValue& get(const std::string& key) const;
  bool has(const std::string& key) const;
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }
  const std::vector<JsonValue>& elements() const { return array_; }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace mecdns::util
