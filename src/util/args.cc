#include "util/args.h"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace mecdns::util {

void ArgParser::add_string(const std::string& name, std::string default_value,
                           std::string help) {
  Flag flag;
  flag.kind = Kind::kString;
  flag.help = std::move(help);
  flag.string_value = std::move(default_value);
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        std::string help) {
  Flag flag;
  flag.kind = Kind::kInt;
  flag.help = std::move(help);
  flag.int_value = default_value;
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           std::string help) {
  Flag flag;
  flag.kind = Kind::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

void ArgParser::add_bool(const std::string& name, bool default_value,
                         std::string help) {
  Flag flag;
  flag.kind = Kind::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  flags_.emplace(name, std::move(flag));
  order_.push_back(name);
}

Result<void> ArgParser::set_value(Flag& flag, const std::string& name,
                                  const std::string& text) {
  switch (flag.kind) {
    case Kind::kString:
      flag.string_value = text;
      return Ok();
    case Kind::kInt: {
      const auto [ptr, ec] = std::from_chars(
          text.data(), text.data() + text.size(), flag.int_value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Err("--" + name + " expects an integer, got '" + text + "'");
      }
      return Ok();
    }
    case Kind::kDouble: {
      char* end = nullptr;
      flag.double_value = std::strtod(text.c_str(), &end);
      if (text.empty() || end != text.c_str() + text.size()) {
        return Err("--" + name + " expects a number, got '" + text + "'");
      }
      return Ok();
    }
    case Kind::kBool:
      if (text == "true" || text == "1") {
        flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        flag.bool_value = false;
      } else {
        return Err("--" + name + " expects true/false, got '" + text + "'");
      }
      return Ok();
  }
  return Err("unreachable");
}

Result<void> ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);

    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }

    // --no-<bool> form.
    if (!has_value && arg.rfind("no-", 0) == 0) {
      const auto it = flags_.find(arg.substr(3));
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        it->second.bool_value = false;
        continue;
      }
    }

    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Err("unknown flag --" + arg);
    }
    Flag& flag = it->second;
    if (flag.kind == Kind::kBool && !has_value) {
      flag.bool_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        return Err("--" + arg + " expects a value");
      }
      value = argv[++i];
    }
    if (auto result = set_value(flag, arg, value); !result.ok()) {
      return result;
    }
  }
  return Ok();
}

const ArgParser::Flag& ArgParser::require(const std::string& name,
                                          Kind kind) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.kind != kind) {
    throw std::logic_error("flag --" + name +
                           " not declared with the requested type");
  }
  return it->second;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return require(name, Kind::kString).string_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return require(name, Kind::kInt).int_value;
}

double ArgParser::get_double(const std::string& name) const {
  return require(name, Kind::kDouble).double_value;
}

bool ArgParser::get_bool(const std::string& name) const {
  return require(name, Kind::kBool).bool_value;
}

std::string ArgParser::usage(const std::string& program_name) const {
  std::ostringstream out;
  out << description_ << "\n\nusage: " << program_name << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    out << "  --" << name;
    switch (flag.kind) {
      case Kind::kString:
        out << "=<string>   (default: " << flag.string_value << ")";
        break;
      case Kind::kInt:
        out << "=<int>      (default: " << flag.int_value << ")";
        break;
      case Kind::kDouble:
        out << "=<number>   (default: " << flag.double_value << ")";
        break;
      case Kind::kBool:
        out << "[=true|false] (default: " << (flag.bool_value ? "true" : "false")
            << ")";
        break;
    }
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace mecdns::util
