// Per-thread cache reset hooks.
//
// Hot paths keep thread_local scratch state (the DNS codec's encode arena,
// for example) that survives between simulations run on the same thread.
// That is exactly what the deterministic campaign runner must not allow to
// leak between jobs: a job landing on a warm thread would behave differently
// (fewer pool refills, fewer counted allocations) than the same job on a
// fresh thread, and worker-count independence would be lost.
//
// The fix is a per-thread registry: any thread_local cache registers a reset
// callback the first time it is constructed on a thread, and the campaign
// runner calls reset_thread_caches() before every job body. After the reset
// the thread looks cold to the job, so the job's behaviour is a pure
// function of the job — the determinism contract ParallelCampaign documents.
//
// The registry itself is thread_local; registration and reset never touch
// another thread's state, so no synchronization is involved.
#pragma once

namespace mecdns::util {

/// Reset callback: must return the cache to its just-constructed state.
using ThreadCacheReset = void (*)(void* ctx);

/// Registers `fn(ctx)` to run on this thread at the next reset. Call once
/// per thread per cache (typically from the thread_local's constructor).
void register_thread_cache(ThreadCacheReset fn, void* ctx);

/// Invokes every reset hook registered on the calling thread. Idempotent;
/// cheap when nothing is registered.
void reset_thread_caches();

}  // namespace mecdns::util
