// Seeded pseudo-random number generation for deterministic simulation.
//
// All stochastic behaviour in the simulator (link jitter, load-balancer
// choices, workload generation) draws from an explicitly seeded Rng so that
// every test and benchmark run is reproducible bit-for-bit.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace mecdns::util {

/// xoshiro256** generator, seeded through SplitMix64.
///
/// Small, fast and statistically strong enough for simulation workloads.
/// Not cryptographically secure (and nothing here needs it to be).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      word = split_mix64(seed);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    // The span must be computed in uint64: hi - lo + 1 in int64 is signed
    // overflow (UB) whenever the range covers more than half the domain,
    // e.g. [INT64_MIN, INT64_MAX] or [INT64_MIN, 0]. In uint64 the
    // subtraction wraps to the mathematically correct span; a span of 0
    // means the full 2^64 range, where every raw draw is admissible.
    const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                               static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t offset = span == 0 ? next() : uniform_int(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (no cached second value; simple and
  /// deterministic across platforms).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  template <typename Container>
  std::size_t weighted_index(const Container& weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    double r = uniform() * total;
    std::size_t i = 0;
    for (const double w : weights) {
      if (r < w || i + 1 == static_cast<std::size_t>(weights.size())) {
        return i;
      }
      r -= w;
      ++i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator (for giving each component its
  /// own stream without correlating draws).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t split_mix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mecdns::util
