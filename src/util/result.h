// Minimal expected-like result type.
//
// Following the Core Guidelines split between programming errors
// (exceptions/asserts) and expected runtime conditions (return values):
// parsing untrusted network bytes fails routinely, so those paths return
// Result<T> instead of throwing.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mecdns::util {

/// Error payload: a human-readable message describing why an operation
/// failed. Kept deliberately simple; callers branch on ok()/!ok().
struct Error {
  std::string message;
};

/// Constructs an Error in-place; reads better at call sites:
///   return Err("name exceeds 255 octets");
inline Error Err(std::string message) { return Error{std::move(message)}; }

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : value_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return value_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// Returns the contained value; throws std::logic_error if this holds an
  /// error (that would be a caller bug — check ok() first).
  T& value() & {
    require_ok();
    return std::get<0>(value_);
  }
  const T& value() const& {
    require_ok();
    return std::get<0>(value_);
  }
  T&& value() && {
    require_ok();
    return std::get<0>(std::move(value_));
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on success value");
    return std::get<1>(value_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<0>(value_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<1>(value_).message);
    }
  }

  std::variant<T, Error> value_;
};

/// Specialization for operations with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on success value");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Success value for Result<void>.
inline Result<void> Ok() { return {}; }

}  // namespace mecdns::util
