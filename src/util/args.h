// Minimal command-line flag parser for the tools and benches.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are errors; positional arguments are collected.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace mecdns::util {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description)
      : description_(std::move(program_description)) {}

  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  void add_int(const std::string& name, std::int64_t default_value,
               std::string help);
  void add_double(const std::string& name, double default_value,
                  std::string help);
  void add_bool(const std::string& name, bool default_value,
                std::string help);

  /// Parses argv (excluding argv[0]); fails on unknown flags or bad values.
  Result<void> parse(int argc, const char* const* argv);

  const std::string& get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Help text listing every flag with its default.
  std::string usage(const std::string& program_name) const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    std::string string_value;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  Result<void> set_value(Flag& flag, const std::string& name,
                         const std::string& text);
  const Flag& require(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace mecdns::util
