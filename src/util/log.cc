#include "util/log.h"

#include <cstdio>

namespace mecdns::util {

namespace {
LogLevel& threshold() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return threshold(); }

void set_log_level(LogLevel level) { threshold() = level; }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < threshold()) return;
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace mecdns::util
