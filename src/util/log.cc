#include "util/log.h"

#include <cstdio>

namespace mecdns::util {

namespace {
LogLevel& threshold() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

struct Clock {
  LogClockFn fn = nullptr;
  const void* ctx = nullptr;
};

thread_local Clock g_clock;

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return threshold(); }

void set_log_level(LogLevel level) { threshold() = level; }

void set_log_clock(LogClockFn fn, const void* ctx) {
  g_clock.fn = fn;
  g_clock.ctx = ctx;
}

void clear_log_clock(const void* ctx) {
  if (g_clock.ctx == ctx) g_clock = Clock{};
}

void set_log_sink(LogSink sink) { sink_slot() = std::move(sink); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (!log_enabled(level)) return;
  char stamp[40];
  if (g_clock.fn != nullptr) {
    const double ms =
        static_cast<double>(g_clock.fn(g_clock.ctx)) / 1e6;
    std::snprintf(stamp, sizeof(stamp), "[t=%.3fms] ", ms);
  } else {
    stamp[0] = '\0';
  }
  if (sink_slot()) {
    std::string line;
    line.reserve(component.size() + message.size() + 32);
    line += stamp;
    line += '[';
    line += level_name(level);
    line += "] ";
    line += component;
    line += ": ";
    line += message;
    sink_slot()(level, line);
    return;
  }
  std::fprintf(stderr, "%s[%s] %s: %s\n", stamp, level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace mecdns::util
