// FlatHashMap: open-addressing hash map with linear probing.
//
// The per-query hot maps (DNS cache entries, in-flight transaction tables,
// CDN content index) live in std::map today: every insert heap-allocates a
// red-black node and every lookup chases pointers through cold cache lines.
// FlatHashMap stores entries in one contiguous slot array with a parallel
// state-byte array, probes linearly from hash(key) & mask, and erases with
// backward shifting (no tombstones, so lookup cost never degrades with
// churn). Capacity is a power of two and doubles at 70% load.
//
// Iteration order is unspecified and MUST NOT leak into deterministic
// outputs — callers that erase-while-iterating collect keys first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace mecdns::util {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  FlatHashMap() = default;
  FlatHashMap(const FlatHashMap& other) { copy_from(other); }
  FlatHashMap(FlatHashMap&& other) noexcept { swap(other); }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this != &other) {
      clear_storage();
      copy_from(other);
    }
    return *this;
  }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      clear_storage();
      swap(other);
    }
    return *this;
  }
  ~FlatHashMap() { clear_storage(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forward iterator over occupied slots (unspecified order).
  template <bool Const>
  class Iter {
   public:
    using MapT = std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iter(MapT* map, std::size_t i) : map_(map), i_(i) { skip(); }

    Ref operator*() const { return *map_->slot(i_); }
    Ptr operator->() const { return map_->slot(i_); }

    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }

    friend bool operator==(const Iter& a, const Iter& b) { return a.i_ == b.i_; }
    friend bool operator!=(const Iter& a, const Iter& b) { return a.i_ != b.i_; }

   private:
    friend class FlatHashMap;
    void skip() {
      while (i_ < map_->cap_ && map_->state_[i_] == kEmpty) ++i_;
    }
    MapT* map_;
    std::size_t i_;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, cap_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, cap_); }

  iterator find(const K& key) {
    std::size_t i = find_index(key);
    return i == kNotFound ? end() : iterator(this, i);
  }
  const_iterator find(const K& key) const {
    std::size_t i = find_index(key);
    return i == kNotFound ? end() : const_iterator(this, i);
  }

  std::size_t count(const K& key) const {
    return find_index(key) == kNotFound ? 0 : 1;
  }

  V& at(const K& key) {
    std::size_t i = find_index(key);
    if (i == kNotFound) throw std::out_of_range("FlatHashMap::at");
    return slot(i)->second;
  }
  const V& at(const K& key) const {
    std::size_t i = find_index(key);
    if (i == kNotFound) throw std::out_of_range("FlatHashMap::at");
    return slot(i)->second;
  }

  V& operator[](const K& key) {
    std::size_t i = find_index(key);
    if (i != kNotFound) return slot(i)->second;
    return insert_fresh(key, V{})->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
    std::size_t i = find_index(key);
    if (i != kNotFound) return {iterator(this, i), false};
    value_type* v = insert_fresh(key, V(std::forward<Args>(args)...));
    return {iterator(this, static_cast<std::size_t>(
                               v - std::launder(reinterpret_cast<value_type*>(
                                       storage_.get())))),
            true};
  }

  /// Erase by key; returns the number of elements removed (0 or 1).
  std::size_t erase(const K& key) {
    std::size_t i = find_index(key);
    if (i == kNotFound) return 0;
    erase_at(i);
    return 1;
  }

  /// Erase by iterator; returns an iterator to the next occupied slot.
  /// NOTE: backward-shift deletion can move a not-yet-visited entry into
  /// slots before the cursor — do not use while iterating the whole map;
  /// collect keys first instead.
  iterator erase(iterator it) {
    erase_at(it.i_);
    it.skip();
    return it;
  }

  void clear() {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (state_[i] == kFull) slot(i)->~value_type();
      state_[i] = kEmpty;
    }
    size_ = 0;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 8;

  value_type* slot(std::size_t i) {
    return std::launder(reinterpret_cast<value_type*>(storage_.get())) + i;
  }
  const value_type* slot(std::size_t i) const {
    return std::launder(reinterpret_cast<const value_type*>(storage_.get())) + i;
  }

  std::size_t find_index(const K& key) const {
    if (cap_ == 0) return kNotFound;
    std::size_t i = Hash{}(key) & (cap_ - 1);
    while (state_[i] == kFull) {
      if (Eq{}(slot(i)->first, key)) return i;
      i = (i + 1) & (cap_ - 1);
    }
    return kNotFound;
  }

  value_type* insert_fresh(const K& key, V&& value) {
    if ((size_ + 1) * 10 >= cap_ * 7) grow();
    std::size_t i = Hash{}(key) & (cap_ - 1);
    while (state_[i] == kFull) i = (i + 1) & (cap_ - 1);
    value_type* v = slot(i);
    ::new (static_cast<void*>(v)) value_type(key, std::move(value));
    state_[i] = kFull;
    ++size_;
    return v;
  }

  void erase_at(std::size_t i) {
    slot(i)->~value_type();
    state_[i] = kEmpty;
    --size_;
    // Backward-shift: walk forward from the hole; any entry whose probe
    // sequence crossed the hole is moved back into it.
    std::size_t hole = i;
    std::size_t j = (i + 1) & (cap_ - 1);
    while (state_[j] == kFull) {
      std::size_t home = Hash{}(slot(j)->first) & (cap_ - 1);
      // Does slot j's probe path wrap over the hole? (cyclic range check)
      bool between = ((hole - home) & (cap_ - 1)) < ((j - home) & (cap_ - 1));
      if (home == hole || between) {
        ::new (static_cast<void*>(slot(hole)))
            value_type(std::move(*slot(j)));
        slot(j)->~value_type();
        state_[hole] = kFull;
        state_[j] = kEmpty;
        hole = j;
      }
      j = (j + 1) & (cap_ - 1);
    }
  }

  void grow() {
    std::size_t next_cap = cap_ == 0 ? kMinCapacity : cap_ * 2;
    auto old_storage = std::move(storage_);
    auto old_state = std::move(state_);
    std::size_t old_cap = cap_;

    storage_ = std::make_unique<unsigned char[]>(next_cap * sizeof(value_type));
    state_ = std::make_unique<std::uint8_t[]>(next_cap);
    for (std::size_t i = 0; i < next_cap; ++i) state_[i] = kEmpty;
    cap_ = next_cap;
    size_ = 0;

    if (old_storage) {
      value_type* old_slots =
          std::launder(reinterpret_cast<value_type*>(old_storage.get()));
      for (std::size_t i = 0; i < old_cap; ++i) {
        if (old_state[i] != kFull) continue;
        value_type& v = old_slots[i];
        std::size_t j = Hash{}(v.first) & (cap_ - 1);
        while (state_[j] == kFull) j = (j + 1) & (cap_ - 1);
        ::new (static_cast<void*>(slot(j))) value_type(std::move(v));
        state_[j] = kFull;
        ++size_;
        v.~value_type();
      }
    }
  }

  void copy_from(const FlatHashMap& other) {
    for (const auto& [k, v] : other) {
      V copy = v;
      insert_fresh(k, std::move(copy));
    }
  }

  void swap(FlatHashMap& other) noexcept {
    storage_.swap(other.storage_);
    state_.swap(other.state_);
    std::swap(cap_, other.cap_);
    std::swap(size_, other.size_);
  }

  void clear_storage() {
    clear();
    storage_.reset();
    state_.reset();
    cap_ = 0;
  }

  std::unique_ptr<unsigned char[]> storage_;
  std::unique_ptr<std::uint8_t[]> state_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mecdns::util
