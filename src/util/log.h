// Leveled logging for simulation components.
//
// Off by default so tests and benchmarks stay quiet; the examples turn on
// Info to narrate what the system is doing.
//
// When a simulator is alive it registers a thread-local clock hook here
// (see simnet::Simulator), and every line is stamped with the current
// simulated time — so interleaved component logs can be read as a timeline.
//
// MECDNS_LOG(...) << ... evaluates its stream operands ONLY when the level
// is enabled: the macro short-circuits before the LogStream (and its
// ostringstream) is even constructed, so disabled logging costs a single
// branch on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace mecdns::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// True when a message at `level` would be emitted.
inline bool log_enabled(LogLevel level) { return level >= log_level(); }

/// Thread-local simulated-time clock hook. When registered, log lines are
/// stamped with the clock's value (nanoseconds, printed as milliseconds).
/// `ctx` identifies the registrant so a stale owner cannot clear a newer
/// registration. util must not depend on simnet, hence the raw hook shape.
using LogClockFn = std::int64_t (*)(const void* ctx);
void set_log_clock(LogClockFn fn, const void* ctx);
void clear_log_clock(const void* ctx);

/// Redirects emitted lines (tests); pass nullptr to restore stderr. The
/// sink receives the fully formatted line, without a trailing newline.
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void set_log_sink(LogSink sink);

/// Emits one line to the active sink if `level` passes the threshold.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: MECDNS_LOG(kInfo, "dns") << "cache hit for " << name;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)),
        enabled_(log_enabled(level)) {}

  ~LogStream() {
    if (enabled_) log_line(level_, component_, stream_.str());
  }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace mecdns::util

// The for-statement makes the whole expression (LogStream construction AND
// every << operand) dead when the level is disabled, without the
// dangling-else hazard of an if/else macro.
#define MECDNS_LOG(level, component)                                         \
  for (bool mecdns_log_once_ =                                               \
           ::mecdns::util::log_enabled(::mecdns::util::LogLevel::level);     \
       mecdns_log_once_; mecdns_log_once_ = false)                           \
  ::mecdns::util::LogStream(::mecdns::util::LogLevel::level, component)
