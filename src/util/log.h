// Leveled logging for simulation components.
//
// Off by default so tests and benchmarks stay quiet; the examples turn on
// Info to narrate what the system is doing.
#pragma once

#include <sstream>
#include <string>

namespace mecdns::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: LOG(kInfo, "dns") << "cache hit for " << name;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)),
        enabled_(level >= log_level()) {}

  ~LogStream() {
    if (enabled_) log_line(level_, component_, stream_.str());
  }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace mecdns::util

#define MECDNS_LOG(level, component) \
  ::mecdns::util::LogStream(::mecdns::util::LogLevel::level, component)
