#include "util/thread_fresh.h"

#include <utility>
#include <vector>

namespace mecdns::util {

namespace {

struct Hook {
  ThreadCacheReset fn;
  void* ctx;
};

std::vector<Hook>& hooks() {
  thread_local std::vector<Hook> list;
  return list;
}

}  // namespace

void register_thread_cache(ThreadCacheReset fn, void* ctx) {
  hooks().push_back(Hook{fn, ctx});
}

void reset_thread_caches() {
  for (const Hook& hook : hooks()) hook.fn(hook.ctx);
}

}  // namespace mecdns::util
