#include "util/json.h"

#include <charconv>
#include <cstdio>

namespace mecdns::util {

namespace {
const JsonValue& null_value() {
  static const JsonValue kNull;
  return kNull;
}
}  // namespace

std::size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (!is_array() || i >= array_.size()) return null_value();
  return array_[i];
}

const JsonValue& JsonValue::get(const std::string& key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return value;
  }
  return null_value();
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return true;
  }
  return false;
}

/// Recursive-descent parser over the document text. Depth is bounded to
/// reject pathological nesting instead of overflowing the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> run() {
    JsonValue value;
    if (auto r = parse_value(value, 0); !r.ok()) return r.error();
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Error fail(const std::string& what) const {
    return Err("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  Result<void> parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.string_);
      case 't':
        if (!consume_word("true")) return fail("bad literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return Ok();
      case 'f':
        if (!consume_word("false")) return fail("bad literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return Ok();
      case 'n':
        if (!consume_word("null")) return fail("bad literal");
        out.type_ = JsonValue::Type::kNull;
        return Ok();
      default: return parse_number(out);
    }
  }

  Result<void> parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return Ok();
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (auto r = parse_string(key); !r.ok()) return r;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (auto r = parse_value(value, depth + 1); !r.ok()) return r;
      out.object_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return Ok();
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  Result<void> parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return Ok();
    while (true) {
      JsonValue value;
      if (auto r = parse_value(value, depth + 1); !r.ok()) return r;
      out.array_.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return Ok();
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Result<void> parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — our emitters only escape < 0x20).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  Result<void> parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    double value = 0.0;
    // from_chars is locale-independent, matching the %.17g-style emitters.
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("bad number");
    }
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = value;
    return Ok();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Result<JsonValue> JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

Result<JsonValue> JsonValue::parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Err("cannot open " + path);
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Err("read error on " + path);
  auto parsed = parse(text);
  if (!parsed.ok()) return Err(path + ": " + parsed.error().message);
  return parsed;
}

}  // namespace mecdns::util
