#include "util/bytes.h"

#include <cstring>
#include <stdexcept>

#include "util/arena.h"

namespace mecdns::util {

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > size_) {
    throw std::out_of_range("ByteWriter::patch_u16 past end of buffer");
  }
  data_[offset] = static_cast<std::uint8_t>(v >> 8);
  data_[offset + 1] = static_cast<std::uint8_t>(v);
}

std::vector<std::uint8_t> ByteWriter::take() {
  if (arena_ != nullptr) {
    std::vector<std::uint8_t> out(data_, data_ + size_);
    data_ = nullptr;
    size_ = cap_ = 0;
    return out;
  }
  buf_.resize(size_);
  data_ = nullptr;
  size_ = cap_ = 0;
  return std::move(buf_);
}

void ByteWriter::append(const std::uint8_t* src, std::size_t n) {
  if (size_ + n > cap_) grow(n);
  std::memcpy(data_ + size_, src, n);
  size_ += n;
}

void ByteWriter::grow(std::size_t needed) {
  std::size_t next = cap_ == 0 ? 64 : cap_ * 2;
  while (next < size_ + needed) next *= 2;
  if (arena_ != nullptr) {
    auto* fresh = arena_->alloc_array<std::uint8_t>(next);
    if (size_ != 0) std::memcpy(fresh, data_, size_);
    data_ = fresh;
  } else {
    buf_.resize(next);
    data_ = buf_.data();
  }
  cap_ = next;
}

Result<void> ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    return Err("seek past end of buffer");
  }
  pos_ = offset;
  return Ok();
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return Err("truncated: need 1 byte");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return Err("truncated: need 2 bytes");
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return Err("truncated: need 4 bytes");
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                          static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<std::vector<std::uint8_t>> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return Err("truncated: need " + std::to_string(n) +
                                  " bytes, have " + std::to_string(remaining()));
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::string> ByteReader::str(std::size_t n) {
  if (remaining() < n) return Err("truncated: need " + std::to_string(n) +
                                  " bytes, have " + std::to_string(remaining()));
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Result<std::string_view> ByteReader::view(std::size_t n) {
  if (remaining() < n) return Err("truncated: need " + std::to_string(n) +
                                  " bytes, have " + std::to_string(remaining()));
  std::string_view out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Result<std::uint16_t> ByteReader::peek_u16_at(std::size_t offset) const {
  if (offset + 2 > data_.size()) return Err("peek_u16_at past end of buffer");
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[offset]) << 8) | data_[offset + 1]);
}

}  // namespace mecdns::util
