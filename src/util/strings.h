// Small string helpers shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mecdns::util {

/// Splits on a single-character delimiter. Adjacent delimiters produce empty
/// fields; an empty input produces one empty field.
std::vector<std::string> split(std::string_view input, char delim);

/// Joins with a delimiter string.
std::string join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// ASCII lowercase copy (DNS names compare case-insensitively).
std::string to_lower(std::string_view input);

/// Trims ASCII whitespace from both ends.
std::string trim(std::string_view input);

/// True if `s` ends with `suffix` (ASCII case-insensitive).
bool ends_with_icase(std::string_view s, std::string_view suffix);

/// Formats a double with fixed precision (printf "%.*f").
std::string fmt_fixed(double value, int precision);

/// Renders a proportional ASCII bar: '#' cells for value/max of `width`,
/// padded with spaces (so columns align). Values are clamped to [0, max];
/// max <= 0 yields an empty bar.
std::string ascii_bar(double value, double max, int width = 40);

}  // namespace mecdns::util
