// InlineFunction: a move-only std::function replacement with a fixed-size
// inline buffer.
//
// The simulator schedules hundreds of events per query; std::function's
// small-buffer optimization (16-32 bytes, libstdc++/libc++ dependent) is too
// small for the lambdas the dns/simnet layers capture (a TraceToken, an
// alive-flag shared_ptr, a couple of values), so nearly every schedule_at
// heap-allocates. InlineFunction<void(), 192> stores callables up to 192
// bytes in place; larger ones fall back to a single heap node. Move-only
// semantics let callbacks own Packets/Messages without the copyability tax
// std::function imposes.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mecdns::util {

template <typename Signature, std::size_t Capacity = 192>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      // Too big (or too aligned) for the buffer: one heap node holding the
      // callable, with the pointer stored inline.
      Fn* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(buffer_)) Fn*(heap);
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->move_destroy(other.buffer_, buffer_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      if (ops_) ops_->destroy(buffer_);
      ops_ = other.ops_;
      if (ops_) {
        ops_->move_destroy(other.buffer_, buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() {
    if (ops_) ops_->destroy(buffer_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char*, Args&&...);
    void (*move_destroy)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static Fn* as(unsigned char* buf) {
    return std::launder(reinterpret_cast<Fn*>(buf));
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      // invoke
      [](unsigned char* buf, Args&&... args) -> R {
        return (*as<Fn>(buf))(std::forward<Args>(args)...);
      },
      // move_destroy
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Fn(std::move(*as<Fn>(from)));
        as<Fn>(from)->~Fn();
      },
      // destroy
      [](unsigned char* buf) { as<Fn>(buf)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* buf, Args&&... args) -> R {
        return (**as<Fn*>(buf))(std::forward<Args>(args)...);
      },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) Fn*(*as<Fn*>(from));
        // Pointer itself is trivially destructible; nothing else to do.
      },
      [](unsigned char* buf) { delete *as<Fn*>(buf); },
  };

  alignas(std::max_align_t) unsigned char buffer_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace mecdns::util
