// Hot-path performance counters: thread-local, branch-free, always on.
//
// The million-UE load generator needs cost-per-query numbers (allocations,
// wire bytes, simulator events) that are (a) cheap enough to leave enabled
// in the hot path and (b) deterministic under the parallel campaign runner.
// A registry map lookup per event is neither, so the instrumented layers
// (dns/wire, dns/transport, dns/server, dns/cache, simnet/simulator and the
// operator new/delete hooks in obs/alloc_hooks.cc) bump plain thread_local
// uint64 fields instead — one TLS access and one add, no locks, no heap.
//
// The struct lives in util (the bottom of the dependency stack) so simnet
// can bump counters without depending on obs; obs/perf.h layers snapshots
// and obs::Registry export on top.
//
// Determinism contract: campaign jobs run start-to-finish on one worker
// thread, so a (snapshot, run, delta) sequence inside a job body observes
// exactly that job's activity — identical for any --workers value.
#pragma once

#include <cstdint>

namespace mecdns::util::perf {

/// Monotonic per-thread counters. All zero-initialized; wrap-around is a
/// non-issue at simulation scale (2^64 events).
struct Counters {
  // Filled by the global operator new/delete replacements when a binary
  // links obs/alloc_hooks.cc (see obs::alloc_counting_active()).
  std::uint64_t allocs = 0;        ///< operator new calls
  std::uint64_t alloc_bytes = 0;   ///< bytes requested through operator new
  std::uint64_t frees = 0;         ///< operator delete calls

  // DNS wire codec (dns/wire.cc).
  std::uint64_t dns_encoded = 0;        ///< messages encoded to wire
  std::uint64_t dns_decoded = 0;        ///< messages decoded (incl. failures)
  std::uint64_t dns_bytes_encoded = 0;  ///< wire bytes produced
  std::uint64_t dns_bytes_decoded = 0;  ///< wire bytes consumed

  // Client transaction layer (dns/transport.cc).
  std::uint64_t dns_queries_sent = 0;       ///< send attempts (incl. retries)
  std::uint64_t dns_responses_received = 0; ///< packets matched to a txn

  // Server side (dns/server.cc) and cache (dns/cache.cc).
  std::uint64_t dns_queries_served = 0;  ///< queries entering a DnsServer
  std::uint64_t cache_lookups = 0;       ///< DnsCache::lookup calls

  // Discrete-event simulator (simnet/simulator.cc).
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_fired = 0;

  // Arena/pool growth (util/arena.h). Each chunk an arena fetches from the
  // general heap counts here (the operator-new hooks still see it in
  // `allocs`), so a steady state of zero refills is distinguishable from
  // "the pools are churning": allocs/query near zero + pool_refills flat
  // means the scratch capacity has converged.
  std::uint64_t pool_refills = 0;
};

/// The calling thread's counters. The reference is stable for the thread's
/// lifetime, so hot loops may cache it.
inline Counters& counters() {
  thread_local Counters c;
  return c;
}

}  // namespace mecdns::util::perf
