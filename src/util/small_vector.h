// SmallVector<T, N>: a vector with inline storage for the first N elements.
//
// DNS messages carry 1-3 records per section and packets traverse a handful
// of hops; std::vector heap-allocates for every one of them. SmallVector
// keeps the common small case entirely inside the owning object (zero
// allocations) and degrades to a heap buffer with geometric growth past N.
//
// The API is the std::vector subset the dns/ and simnet/ layers use, plus
// implicit conversions from std::vector so call sites that still produce
// vectors (zone lookups, test fixtures) interoperate without churn.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace mecdns::util {

template <typename T, std::size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  template <typename It,
            typename = typename std::iterator_traits<It>::iterator_category>
  SmallVector(It first, It last) {
    assign(first, last);
  }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { steal_from(std::move(other)); }

  // Implicit bridges from std::vector keep zone/test call sites unchanged.
  SmallVector(const std::vector<T>& v) { assign(v.begin(), v.end()); }
  SmallVector(std::vector<T>&& v) { move_assign_range(v.data(), v.size()); }

  ~SmallVector() { destroy_all(); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      assign(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy_all();
      steal_from(std::move(other));
    }
    return *this;
  }

  SmallVector& operator=(const std::vector<T>& v) {
    clear();
    assign(v.begin(), v.end());
    return *this;
  }

  SmallVector& operator=(std::vector<T>&& v) {
    clear();
    move_assign_range(v.data(), v.size());
    return *this;
  }

  SmallVector& operator=(std::initializer_list<T> init) {
    clear();
    assign(init.begin(), init.end());
    return *this;
  }

  bool empty() const { return size_ == 0; }
  size_type size() const { return size_; }
  size_type capacity() const { return capacity_; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  T& operator[](size_type i) { return data_[i]; }
  const T& operator[](size_type i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_type n) {
    if (n > capacity_) grow_to(n);
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void clear() {
    for (size_type i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  /// Appends [first, last) at the end (the only insert position the dns
  /// layer uses); returns an iterator to the first appended element.
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const size_type at = static_cast<size_type>(pos - data_);
    const size_type count = static_cast<size_type>(std::distance(first, last));
    if (size_ + count > capacity_) grow_to(size_ + count);
    // Shift the tail up (back to front) to make room, then copy in.
    for (size_type i = size_; i > at; --i) {
      if (i + count - 1 >= size_) {
        ::new (static_cast<void*>(data_ + i + count - 1))
            T(std::move(data_[i - 1]));
      } else {
        data_[i + count - 1] = std::move(data_[i - 1]);
      }
      data_[i - 1].~T();
    }
    size_type i = at;
    for (It it = first; it != last; ++it, ++i) {
      ::new (static_cast<void*>(data_ + i)) T(*it);
    }
    size_ += count;
    return data_ + at;
  }

  iterator erase(const_iterator pos) {
    const size_type at = static_cast<size_type>(pos - data_);
    for (size_type i = at; i + 1 < size_; ++i) data_[i] = std::move(data_[i + 1]);
    pop_back();
    return data_ + at;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  T* inline_slot(std::size_t i) {
    return std::launder(reinterpret_cast<T*>(inline_storage_)) + i;
  }

  bool on_heap() const { return data_ != const_cast<T*>(inline_begin()); }
  const T* inline_begin() const {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  template <typename It>
  void assign(It first, It last) {
    const size_type count = static_cast<size_type>(std::distance(first, last));
    if (count > capacity_) grow_to(count);
    size_type i = 0;
    for (It it = first; it != last; ++it, ++i) {
      ::new (static_cast<void*>(data_ + i)) T(*it);
    }
    size_ = count;
  }

  void move_assign_range(T* src, size_type count) {
    if (count > capacity_) grow_to(count);
    for (size_type i = 0; i < count; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(src[i]));
    }
    size_ = count;
  }

  void steal_from(SmallVector&& other) noexcept {
    if (other.on_heap()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_slot(0);
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      data_ = inline_slot(0);
      capacity_ = N;
      size_ = other.size_;
      for (size_type i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      other.size_ = 0;
    }
  }

  void grow_to(size_type wanted) {
    size_type next = capacity_ * 2;
    if (next < wanted) next = wanted;
    T* fresh = static_cast<T*>(::operator new(next * sizeof(T)));
    for (size_type i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (on_heap()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = next;
  }

  void destroy_all() {
    clear();
    if (on_heap()) ::operator delete(data_);
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = std::launder(reinterpret_cast<T*>(inline_storage_));
  size_type size_ = 0;
  size_type capacity_ = N;
};

}  // namespace mecdns::util
