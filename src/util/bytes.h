// Bounds-checked big-endian byte buffer codec.
//
// The DNS wire format (RFC 1035) is big-endian; ByteWriter/ByteReader give
// the dns library a safe primitive layer so malformed packets can never read
// out of bounds. Read failures are reported via Result (malformed input is
// an expected condition on a network, not a programming error).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace mecdns::util {

/// Appends big-endian integers and raw bytes to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void bytes(const std::string& data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Overwrites a previously written big-endian u16 at `offset`.
  /// Used for patching DNS message section counts and RDLENGTH fields.
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads big-endian integers and byte runs from a fixed buffer with full
/// bounds checking. Also supports random-access seeks, which the DNS name
/// decompressor needs to chase compression pointers.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t position() const { return pos_; }
  std::size_t size() const { return data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ >= data_.size(); }

  /// Moves the cursor to an absolute offset; fails if out of range.
  Result<void> seek(std::size_t offset);

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::vector<std::uint8_t>> bytes(std::size_t n);
  Result<std::string> str(std::size_t n);

  /// Reads a u16 at an absolute offset without moving the cursor.
  Result<std::uint16_t> peek_u16_at(std::size_t offset) const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mecdns::util
