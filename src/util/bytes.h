// Bounds-checked big-endian byte buffer codec.
//
// The DNS wire format (RFC 1035) is big-endian; ByteWriter/ByteReader give
// the dns library a safe primitive layer so malformed packets can never read
// out of bounds. Read failures are reported via Result (malformed input is
// an expected condition on a network, not a programming error).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace mecdns::util {

class Arena;

/// Appends big-endian integers and raw bytes to a growable buffer.
///
/// Two backing modes share one hot path (raw data_/size_/cap_ with a grow
/// branch): the default mode owns a heap vector and take() moves it out;
/// arena mode bumps scratch from a caller-owned Arena — nothing to free,
/// and take() copies out the exact final size (one allocation per message
/// instead of one per growth step). Send paths that only need to look at
/// the bytes (dns::encode_view) skip even that copy and borrow data()
/// directly, since arena-backed bytes outlive the writer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Arena-backed scratch mode. The arena must outlive the writer; the
  /// caller resets it between messages.
  explicit ByteWriter(Arena* arena) : arena_(arena) {}

  void u8(std::uint8_t v) {
    if (size_ == cap_) grow(1);
    data_[size_++] = v;
  }

  void u16(std::uint16_t v) {
    if (size_ + 2 > cap_) grow(2);
    data_[size_++] = static_cast<std::uint8_t>(v >> 8);
    data_[size_++] = static_cast<std::uint8_t>(v);
  }

  void u32(std::uint32_t v) {
    if (size_ + 4 > cap_) grow(4);
    data_[size_++] = static_cast<std::uint8_t>(v >> 24);
    data_[size_++] = static_cast<std::uint8_t>(v >> 16);
    data_[size_++] = static_cast<std::uint8_t>(v >> 8);
    data_[size_++] = static_cast<std::uint8_t>(v);
  }

  void bytes(std::span<const std::uint8_t> data) { append(data.data(), data.size()); }

  void bytes(std::string_view data) {
    append(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Overwrites a previously written big-endian u16 at `offset`.
  /// Used for patching DNS message section counts and RDLENGTH fields.
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return size_; }
  std::span<const std::uint8_t> data() const { return {data_, size_}; }
  const std::uint8_t* raw() const { return data_; }

  /// Yields the written bytes as an owning vector. Heap mode moves the
  /// backing vector out (no copy); arena mode copies the exact final size.
  std::vector<std::uint8_t> take();

 private:
  void append(const std::uint8_t* src, std::size_t n);
  void grow(std::size_t needed);

  Arena* arena_ = nullptr;
  std::vector<std::uint8_t> buf_;  ///< storage owner in heap mode only
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

/// Reads big-endian integers and byte runs from a fixed buffer with full
/// bounds checking. Also supports random-access seeks, which the DNS name
/// decompressor needs to chase compression pointers.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t position() const { return pos_; }
  std::size_t size() const { return data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ >= data_.size(); }

  /// Moves the cursor to an absolute offset; fails if out of range.
  Result<void> seek(std::size_t offset);

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::vector<std::uint8_t>> bytes(std::size_t n);
  Result<std::string> str(std::size_t n);

  /// Like str() but borrows the underlying buffer instead of copying —
  /// the view is valid only as long as the buffer backing this reader.
  Result<std::string_view> view(std::size_t n);

  /// Reads a u16 at an absolute offset without moving the cursor.
  Result<std::uint16_t> peek_u16_at(std::size_t offset) const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mecdns::util
