// Descriptive statistics used by the measurement harness.
//
// Figure 2 of the paper reports per-bar averages over the 8th..92nd
// percentile of at least 12 samples, with min/max whiskers; Summary exposes
// exactly those aggregates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mecdns::util {

/// Aggregates of a sample set. All latency values are in milliseconds by
/// convention, but Summary itself is unit-agnostic.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Accumulates scalar samples and computes summaries on demand.
class SampleSet {
 public:
  SampleSet() = default;

  void add(double value) { values_.push_back(value); }
  void add_all(const std::vector<double>& values);
  void clear() { values_.clear(); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  /// Linear-interpolated percentile, p in [0, 100]. Empty set yields 0.
  double percentile(double p) const;

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Full summary of all samples.
  Summary summarize() const;

  /// Summary restricted to samples within [lo_pct, hi_pct] percentiles —
  /// the paper's "8th- to the 92th-percentile" trimmed bar, while min/max
  /// still report the untrimmed extremes (the error lines).
  Summary summarize_trimmed(double lo_pct, double hi_pct) const;

 private:
  std::vector<double> values_;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t bucket) const;
  double bucket_high(std::size_t bucket) const;

  /// Renders a compact ASCII representation (one line per non-empty bucket).
  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Counts categorical outcomes (e.g. which CIDR range answered a query) and
/// reports their share — the quantity plotted in Figure 3.
class FrequencyTable {
 public:
  void add(const std::string& key, std::size_t n = 1);
  std::size_t count(const std::string& key) const;
  std::size_t total() const { return total_; }
  /// Share of total in [0,1]; 0 when the table is empty.
  double share(const std::string& key) const;
  /// Keys sorted by descending count, ties broken lexicographically.
  std::vector<std::string> keys_by_count() const;

 private:
  std::vector<std::pair<std::string, std::size_t>> entries_;
  std::size_t total_ = 0;
};

}  // namespace mecdns::util
