#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mecdns::util {

void SampleSet::add_all(const std::vector<double>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
}

double SampleSet::percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double SampleSet::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double SampleSet::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double SampleSet::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double SampleSet::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

Summary SampleSet::summarize() const {
  Summary s;
  s.count = values_.size();
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  s.p50 = percentile(50.0);
  s.p90 = percentile(90.0);
  s.p99 = percentile(99.0);
  return s;
}

Summary SampleSet::summarize_trimmed(double lo_pct, double hi_pct) const {
  const double lo = percentile(lo_pct);
  const double hi = percentile(hi_pct);
  SampleSet trimmed;
  for (const double v : values_) {
    if (v >= lo && v <= hi) trimmed.add(v);
  }
  Summary s = trimmed.summarize();
  // The paper's error lines mark the untrimmed extremes.
  s.min = min();
  s.max = max();
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bucket = static_cast<std::size_t>((value - lo_) / width_);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  ++counts_[bucket];
}

double Histogram::bucket_low(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_high(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out << "[" << bucket_low(i) << ", " << bucket_high(i) << ") "
        << counts_[i] << "\n";
  }
  if (underflow_ != 0) out << "underflow " << underflow_ << "\n";
  if (overflow_ != 0) out << "overflow " << overflow_ << "\n";
  return out.str();
}

void FrequencyTable::add(const std::string& key, std::size_t n) {
  total_ += n;
  for (auto& [k, c] : entries_) {
    if (k == key) {
      c += n;
      return;
    }
  }
  entries_.emplace_back(key, n);
}

std::size_t FrequencyTable::count(const std::string& key) const {
  for (const auto& [k, c] : entries_) {
    if (k == key) return c;
  }
  return 0;
}

double FrequencyTable::share(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

std::vector<std::string> FrequencyTable::keys_by_count() const {
  std::vector<std::pair<std::string, std::size_t>> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> keys;
  keys.reserve(sorted.size());
  for (const auto& [k, c] : sorted) keys.push_back(k);
  return keys;
}

}  // namespace mecdns::util
