// Arena: a chunked bump allocator for per-query scratch memory.
//
// The DNS codec needs short-lived buffers (wire bytes, decode scratch) once
// per message; allocating them from the general heap is the single largest
// contributor to allocs/query. An Arena hands out pointers by bumping an
// offset into a pre-allocated chunk and releases everything at once via
// reset(). Chunks are kept across resets, so a steady-state encode loop
// performs zero heap allocations — only capacity *growth* touches the heap,
// and each such refill bumps perf.pool_refills so pool churn stays visible
// in metrics dumps even when allocs/query reads near zero.
//
// Not thread-safe; intended use is one thread_local arena per hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/perfcount.h"

namespace mecdns::util {

class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = 4096)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? 64 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two). Falls back to
  /// a fresh chunk — never fails short of the heap itself failing.
  void* alloc(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    if (size == 0) size = 1;
    while (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      std::size_t at = (c.used + align - 1) & ~(align - 1);
      if (at + size <= c.size) {
        c.used = at + size;
        return c.data.get() + at;
      }
      // This chunk is full (or too fragmented for the request); move on.
      ++chunk_;
      if (chunk_ < chunks_.size()) chunks_[chunk_].used = 0;
    }
    return alloc_in_new_chunk(size, align);
  }

  /// Typed convenience: uninitialized storage for `count` Ts.
  template <typename T>
  T* alloc_array(std::size_t count) {
    return static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty without releasing chunks: the next allocation cycle
  /// reuses the memory already fetched from the heap.
  void reset() {
    for (std::size_t i = 0; i <= chunk_ && i < chunks_.size(); ++i) {
      chunks_[i].used = 0;
    }
    chunk_ = 0;
  }

  /// Returns every chunk to the heap: capacity drops to zero and the next
  /// alloc() refills from scratch. Called at deterministic boundaries (a
  /// campaign job starting on this thread) so a thread_local arena's warm-up
  /// cost is a pure function of the job, never of which jobs happened to run
  /// earlier on the same worker thread.
  void release() {
    chunks_.clear();
    chunks_.shrink_to_fit();
    chunk_ = 0;
  }

  /// Number of chunk allocations performed over the arena's lifetime.
  std::uint64_t refills() const { return refills_; }

  /// Total bytes held across all chunks (capacity, not live usage).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* alloc_in_new_chunk(std::size_t size, std::size_t align) {
    std::size_t chunk_size =
        chunks_.empty() ? first_chunk_bytes_ : chunks_.back().size * 2;
    // Worst case the request is misaligned against a fresh chunk by
    // align-1 bytes; size the chunk so the request always fits.
    if (chunk_size < size + align) chunk_size = size + align;
    Chunk c;
    c.data = std::make_unique<std::uint8_t[]>(chunk_size);
    c.size = chunk_size;
    ++refills_;
    ++perf::counters().pool_refills;
    chunks_.push_back(std::move(c));
    chunk_ = chunks_.size() - 1;
    Chunk& fresh = chunks_.back();
    std::size_t at = (reinterpret_cast<std::uintptr_t>(fresh.data.get()) +
                      align - 1) &
                     ~(align - 1);
    at -= reinterpret_cast<std::uintptr_t>(fresh.data.get());
    fresh.used = at + size;
    return fresh.data.get() + at;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;       ///< index of the chunk currently bumping
  std::uint64_t refills_ = 0;
};

}  // namespace mecdns::util
