// IPv4 addresses and CIDR blocks.
//
// The paper's arguments revolve around who sees which IP (clients behind a
// NAT'ing P-GW, resolvers identified by source address, CDN coverage zones
// keyed by client subnet), so addresses are first-class values here.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.h"

namespace mecdns::simnet {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) |
               static_cast<std::uint32_t>(d)) {}

  /// Parses dotted-quad notation ("192.0.2.1").
  static util::Result<Ipv4Address> parse(std::string_view text);

  /// Parses dotted-quad, throwing std::invalid_argument on failure.
  /// For literals in code and tests where the text is a constant.
  static Ipv4Address must_parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_unspecified() const { return value_ == 0; }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR block: base address + prefix length.
class Cidr {
 public:
  constexpr Cidr() = default;
  Cidr(Ipv4Address base, int prefix_len);

  /// Parses "a.b.c.d/len".
  static util::Result<Cidr> parse(std::string_view text);
  static Cidr must_parse(std::string_view text);

  bool contains(Ipv4Address addr) const {
    return (addr.value() & mask_) == network_;
  }
  bool contains(const Cidr& other) const {
    return other.prefix_len_ >= prefix_len_ &&
           contains(Ipv4Address(other.network_));
  }

  Ipv4Address network() const { return Ipv4Address(network_); }
  int prefix_len() const { return prefix_len_; }
  std::uint32_t mask() const { return mask_; }

  /// The i-th host address within the block (i=0 is the network address).
  Ipv4Address host(std::uint32_t i) const {
    return Ipv4Address(network_ | (i & ~mask_));
  }

  /// Number of addresses in the block.
  std::uint64_t size() const {
    return std::uint64_t{1} << (32 - prefix_len_);
  }

  std::string to_string() const;

  friend bool operator==(const Cidr&, const Cidr&) = default;

 private:
  std::uint32_t network_ = 0;
  std::uint32_t mask_ = 0;
  int prefix_len_ = 0;
};

/// A transport endpoint: address + UDP port.
struct Endpoint {
  Ipv4Address addr;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) = default;
  std::string to_string() const;
};

}  // namespace mecdns::simnet

template <>
struct std::hash<mecdns::simnet::Ipv4Address> {
  std::size_t operator()(mecdns::simnet::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
