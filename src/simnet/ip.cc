#include "simnet/ip.h"

#include <charconv>
#include <stdexcept>

#include "util/strings.h"

namespace mecdns::simnet {

namespace {
util::Result<std::uint32_t> parse_octet(std::string_view text) {
  if (text.empty() || text.size() > 3) return util::Err("bad octet");
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value > 255) {
    return util::Err("bad octet: " + std::string(text));
  }
  return value;
}
}  // namespace

util::Result<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) {
    return util::Err("expected 4 octets: " + std::string(text));
  }
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    auto octet = parse_octet(part);
    if (!octet.ok()) return octet.error();
    value = (value << 8) | octet.value();
  }
  return Ipv4Address(value);
}

Ipv4Address Ipv4Address::must_parse(std::string_view text) {
  auto result = parse(text);
  if (!result.ok()) {
    throw std::invalid_argument("invalid IPv4 literal: " + std::string(text));
  }
  return result.value();
}

std::string Ipv4Address::to_string() const {
  return std::to_string((value_ >> 24) & 0xff) + "." +
         std::to_string((value_ >> 16) & 0xff) + "." +
         std::to_string((value_ >> 8) & 0xff) + "." +
         std::to_string(value_ & 0xff);
}

Cidr::Cidr(Ipv4Address base, int prefix_len) : prefix_len_(prefix_len) {
  if (prefix_len < 0 || prefix_len > 32) {
    throw std::invalid_argument("CIDR prefix length out of range");
  }
  mask_ = prefix_len == 0 ? 0 : (~std::uint32_t{0} << (32 - prefix_len));
  network_ = base.value() & mask_;
}

util::Result<Cidr> Cidr::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return util::Err("CIDR missing '/': " + std::string(text));
  }
  auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr.ok()) return addr.error();
  const std::string_view len_text = text.substr(slash + 1);
  int len = -1;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc() || ptr != len_text.data() + len_text.size() ||
      len < 0 || len > 32) {
    return util::Err("bad prefix length: " + std::string(text));
  }
  return Cidr(addr.value(), len);
}

Cidr Cidr::must_parse(std::string_view text) {
  auto result = parse(text);
  if (!result.ok()) {
    throw std::invalid_argument("invalid CIDR literal: " + std::string(text));
  }
  return result.value();
}

std::string Cidr::to_string() const {
  return Ipv4Address(network_).to_string() + "/" + std::to_string(prefix_len_);
}

std::string Endpoint::to_string() const {
  return addr.to_string() + ":" + std::to_string(port);
}

}  // namespace mecdns::simnet
