#include "simnet/latency.h"

#include <cmath>

namespace mecdns::simnet {

LatencyModel LatencyModel::constant(SimTime delay) {
  return LatencyModel([delay](util::Rng&) { return delay; }, delay,
                      "constant(" + std::to_string(delay.to_millis()) + "ms)");
}

LatencyModel LatencyModel::uniform(SimTime lo, SimTime hi) {
  const SimTime mean = SimTime::nanos((lo.count_nanos() + hi.count_nanos()) / 2);
  return LatencyModel(
      [lo, hi](util::Rng& rng) {
        const double t = rng.uniform();
        const double ns = static_cast<double>(lo.count_nanos()) +
                          t * static_cast<double>((hi - lo).count_nanos());
        return SimTime::nanos(static_cast<std::int64_t>(ns));
      },
      mean, "uniform");
}

LatencyModel LatencyModel::normal(SimTime mean, SimTime stddev, SimTime floor) {
  return LatencyModel(
      [mean, stddev, floor](util::Rng& rng) {
        const double ns = rng.normal(static_cast<double>(mean.count_nanos()),
                                     static_cast<double>(stddev.count_nanos()));
        const auto v = SimTime::nanos(static_cast<std::int64_t>(ns));
        return std::max(v, floor);
      },
      mean, "normal");
}

LatencyModel LatencyModel::lognormal(SimTime floor, SimTime median,
                                     double sigma) {
  // X = floor + LogNormal(mu, sigma) where exp(mu) = median.
  const double mu = std::log(static_cast<double>(median.count_nanos()));
  // E[LogNormal] = exp(mu + sigma^2/2).
  const auto expected = SimTime::nanos(
      static_cast<std::int64_t>(std::exp(mu + sigma * sigma / 2.0)));
  return LatencyModel(
      [floor, mu, sigma](util::Rng& rng) {
        const double ns = rng.lognormal(mu, sigma);
        return floor + SimTime::nanos(static_cast<std::int64_t>(ns));
      },
      floor + expected, "lognormal");
}

}  // namespace mecdns::simnet
