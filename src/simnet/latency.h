// One-way link delay models.
//
// Each access technology in the paper has a characteristic delay profile:
// wired campus links are tight, Wi-Fi adds moderate jitter, and the LTE air
// interface contributes ~10 ms one-way with a heavy tail (the paper's
// "substantially higher delay and higher response time variability").
// A LatencyModel samples a one-way delay per packet.
#pragma once

#include <algorithm>
#include <functional>
#include <string>

#include "simnet/time.h"
#include "util/rng.h"

namespace mecdns::simnet {

/// Samples per-packet one-way delay. Value type; copies share behaviour.
class LatencyModel {
 public:
  using Sampler = std::function<SimTime(util::Rng&)>;

  LatencyModel() : LatencyModel(constant(SimTime::zero())) {}
  LatencyModel(Sampler sampler, SimTime mean, std::string description)
      : sampler_(std::move(sampler)), mean_(mean),
        description_(std::move(description)) {}

  /// Fixed delay.
  static LatencyModel constant(SimTime delay);

  /// Uniform in [lo, hi].
  static LatencyModel uniform(SimTime lo, SimTime hi);

  /// Normal(mean, stddev) truncated below at `floor`.
  static LatencyModel normal(SimTime mean, SimTime stddev, SimTime floor);

  /// Log-normal parameterized by its median and a shape sigma, shifted by a
  /// fixed propagation `floor`. Heavy-tailed; matches measured wireless and
  /// WAN delay distributions well.
  static LatencyModel lognormal(SimTime floor, SimTime median, double sigma);

  SimTime sample(util::Rng& rng) const { return sampler_(rng); }

  /// Expected one-way delay; used as the routing cost of a link.
  SimTime mean() const { return mean_; }

  const std::string& description() const { return description_; }

 private:
  Sampler sampler_;
  SimTime mean_;
  std::string description_;
};

}  // namespace mecdns::simnet
