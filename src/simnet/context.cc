#include "simnet/context.h"

namespace mecdns::simnet {

namespace {
thread_local TraceToken g_current_token;
}  // namespace

TraceToken current_trace_token() { return g_current_token; }

void set_current_trace_token(TraceToken token) { g_current_token = token; }

}  // namespace mecdns::simnet
