#include "simnet/simulator.h"

#include <algorithm>
#include <utility>

#include "util/log.h"
#include "util/perfcount.h"

namespace mecdns::simnet {

namespace {
std::int64_t simulator_log_clock(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now().count_nanos();
}
}  // namespace

Simulator::Simulator() {
  util::set_log_clock(&simulator_log_clock, this);
}

Simulator::~Simulator() { util::clear_log_clock(this); }

void Simulator::schedule_at(SimTime at, Callback fn) {
  if (at < now_) at = now_;
  queue_.push_back(Event{at, next_seq_++, current_trace_token(), std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  ++util::perf::counters().events_scheduled;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.front().at <= until) {
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // pop_heap moves the earliest event (per Later) to the back, from where
  // it can be *moved* out — which is what lets Callback be move-only.
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  now_ = ev.at;
  ++executed_;
  ++util::perf::counters().events_fired;
  // Run under the context captured at scheduling time, so trace spans
  // follow the request across asynchronous boundaries.
  TraceTokenGuard context(ev.trace);
  ev.fn();
  return true;
}

}  // namespace mecdns::simnet
