#include "simnet/network.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace mecdns::simnet {

void UdpSocket::send_to(const Endpoint& dst, std::vector<std::uint8_t> payload,
                        std::size_t virtual_size) {
  Packet packet;
  packet.src = endpoint();
  packet.dst = dst;
  packet.payload = std::move(payload);
  packet.virtual_size = virtual_size;
  net_->send_from(node_, std::move(packet));
}

void UdpSocket::send(const Endpoint& dst, std::span<const std::uint8_t> payload,
                     std::size_t virtual_size) {
  Packet packet;
  packet.src = endpoint();
  packet.dst = dst;
  packet.payload = net_->acquire_payload(payload);
  packet.virtual_size = virtual_size;
  net_->send_from(node_, std::move(packet));
}

NodeId Network::add_node(std::string name, Ipv4Address primary_addr) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeRec{std::move(name), {}, true, nullptr, {}, {}});
  if (!primary_addr.is_unspecified()) add_address(id, primary_addr);
  routes_dirty_ = true;
  return id;
}

void Network::add_address(NodeId node, Ipv4Address addr) {
  if (node >= nodes_.size()) throw std::out_of_range("bad node id");
  if (addr.is_unspecified()) throw std::invalid_argument("unspecified address");
  const auto [it, inserted] = addr_to_node_.emplace(addr, node);
  if (!inserted && it->second != node) {
    throw std::invalid_argument("address " + addr.to_string() +
                                " already owned by another node");
  }
  nodes_[node].addrs.push_back(addr);
}

LinkId Network::add_link(NodeId a, NodeId b, LatencyModel model) {
  return add_link(a, b, model, model);
}

LinkId Network::add_link(NodeId a, NodeId b, LatencyModel a_to_b,
                         LatencyModel b_to_a) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("bad node id in add_link");
  }
  if (a == b) throw std::invalid_argument("self-link");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, std::move(a_to_b), std::move(b_to_a), true, 0.0});
  nodes_[a].links.push_back(id);
  nodes_[b].links.push_back(id);
  routes_dirty_ = true;
  return id;
}

void Network::set_link_up(LinkId link, bool up) {
  links_.at(link).up = up;
  routes_dirty_ = true;
}

bool Network::link_up(LinkId link) const { return links_.at(link).up; }

void Network::set_link_loss(LinkId link, double probability) {
  links_.at(link).loss = probability;
}

void Network::set_link_bandwidth(LinkId link, std::uint64_t bits_per_second) {
  links_.at(link).bandwidth_bps = bits_per_second;
}

void Network::set_node_up(NodeId node, bool up) {
  nodes_.at(node).up = up;
  routes_dirty_ = true;
}

bool Network::node_up(NodeId node) const { return nodes_.at(node).up; }

const std::string& Network::node_name(NodeId node) const {
  return nodes_.at(node).name;
}

NodeId Network::find_node(Ipv4Address addr) const {
  const auto it = addr_to_node_.find(addr);
  return it == addr_to_node_.end() ? kInvalidNode : it->second;
}

UdpSocket* Network::open_socket(NodeId node, std::uint16_t port,
                                UdpSocket::ReceiveHandler handler,
                                Ipv4Address addr) {
  if (node >= nodes_.size()) throw std::out_of_range("bad node id");
  const NodeRec& rec = nodes_[node];
  if (rec.addrs.empty()) {
    throw std::logic_error("node " + rec.name + " has no address");
  }
  if (addr.is_unspecified()) {
    addr = rec.addrs.front();
  } else if (std::find(rec.addrs.begin(), rec.addrs.end(), addr) ==
             rec.addrs.end()) {
    throw std::invalid_argument("socket address not owned by node");
  }
  if (port == 0) {
    while (sockets_.count({node, next_ephemeral_}) != 0) {
      ++next_ephemeral_;
      if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
    }
    port = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
  } else if (sockets_.count({node, port}) != 0) {
    throw std::invalid_argument("port " + std::to_string(port) +
                                " already bound on " + rec.name);
  }
  auto socket = std::make_unique<UdpSocket>();
  socket->net_ = this;
  socket->node_ = node;
  socket->addr_ = addr;
  socket->port_ = port;
  socket->handler_ = std::move(handler);
  UdpSocket* raw = socket.get();
  sockets_.emplace(std::make_pair(node, port), std::move(socket));
  return raw;
}

void Network::close_socket(UdpSocket* socket) {
  if (socket == nullptr) return;
  sockets_.erase({socket->node_, socket->port_});
}

void Network::set_transit_hook(NodeId node, TransitHook hook) {
  nodes_.at(node).hook = std::move(hook);
}

void Network::add_tap(NodeId node, Tap tap) {
  nodes_.at(node).taps.push_back(std::move(tap));
}

void Network::send_from(NodeId node, Packet packet) {
  packet.id = next_packet_id_++;
  ++stats_.sent;
  // Arrival processing at the origin node runs as its own event so that the
  // origin's taps and hooks see the packet exactly like any other node's.
  sim_.schedule_after(SimTime::zero(), [this, node, p = std::move(packet)]() mutable {
    arrive(node, std::move(p));
  });
}

void Network::arrive(NodeId node, Packet packet) {
  NodeRec& rec = nodes_[node];
  if (!rec.up) {
    ++stats_.dropped_node_down;
    recycle_payload(std::move(packet.payload));
    return;
  }
  packet.hops.push_back(Hop{node, sim_.now()});
  for (const auto& tap : rec.taps) tap(packet, sim_.now());
  if (rec.hook) {
    if (rec.hook(packet) == TransitAction::kDrop) {
      ++stats_.dropped_by_hook;
      recycle_payload(std::move(packet.payload));
      return;
    }
  }
  const NodeId owner = find_node(packet.dst.addr);
  if (owner == node) {
    deliver_local(node, packet);
    // The handler saw the packet by const reference; its buffer is free to
    // serve the next send() now.
    recycle_payload(std::move(packet.payload));
    return;
  }
  forward(node, std::move(packet));
}

void Network::deliver_local(NodeId node, const Packet& packet) {
  const auto it = sockets_.find({node, packet.dst.port});
  if (it == sockets_.end() || !it->second->handler_) {
    ++stats_.dropped_no_socket;
    return;
  }
  ++stats_.delivered;
  it->second->handler_(packet);
}

void Network::forward(NodeId node, Packet&& packet) {
  if (--packet.ttl <= 0) {
    ++stats_.dropped_ttl;
    recycle_payload(std::move(packet.payload));
    return;
  }
  ensure_routes();
  const NodeId dest_node = find_node(packet.dst.addr);
  if (dest_node == kInvalidNode) {
    ++stats_.dropped_no_route;
    recycle_payload(std::move(packet.payload));
    return;
  }
  const NodeId next = next_hop_[node * nodes_.size() + dest_node];
  if (next == kInvalidNode) {
    ++stats_.dropped_no_route;
    recycle_payload(std::move(packet.payload));
    return;
  }
  const auto link_id = pick_link(node, next);
  if (!link_id.has_value()) {
    ++stats_.dropped_link_down;
    recycle_payload(std::move(packet.payload));
    return;
  }
  Link& link = links_[*link_id];
  if (link.loss > 0.0 && rng_.bernoulli(link.loss)) {
    ++stats_.dropped_loss;
    recycle_payload(std::move(packet.payload));
    return;
  }
  const LatencyModel& model = link.a == node ? link.a_to_b : link.b_to_a;
  SimTime delay = model.sample(rng_);
  if (link.bandwidth_bps != 0) {
    const double seconds = static_cast<double>(packet.wire_size()) * 8.0 /
                           static_cast<double>(link.bandwidth_bps);
    delay += SimTime::seconds(seconds);
  }
  sim_.schedule_after(delay, [this, next, p = std::move(packet)]() mutable {
    arrive(next, std::move(p));
  });
}

std::optional<LinkId> Network::pick_link(NodeId from, NodeId to) const {
  for (const LinkId id : nodes_[from].links) {
    const Link& link = links_[id];
    if (!link.up) continue;
    if ((link.a == from && link.b == to) || (link.b == from && link.a == to)) {
      return id;
    }
  }
  return std::nullopt;
}

void Network::ensure_routes() {
  if (!routes_dirty_) return;
  const std::size_t n = nodes_.size();
  next_hop_.assign(n * n, kInvalidNode);
  route_cost_ns_.assign(n * n, -1);

  // Dijkstra from every source over mean link delays. Topologies here are
  // tens of nodes, so O(n * m log m) is plenty fast.
  for (NodeId src = 0; src < n; ++src) {
    if (!nodes_[src].up) continue;
    std::vector<std::int64_t> dist(n, std::numeric_limits<std::int64_t>::max());
    std::vector<NodeId> first_hop(n, kInvalidNode);
    using Item = std::pair<std::int64_t, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[src] = 0;
    heap.emplace(0, src);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d != dist[u]) continue;
      for (const LinkId id : nodes_[u].links) {
        const Link& link = links_[id];
        if (!link.up) continue;
        const NodeId v = link.a == u ? link.b : link.a;
        if (!nodes_[v].up) continue;
        const LatencyModel& model = link.a == u ? link.a_to_b : link.b_to_a;
        const std::int64_t cost = std::max<std::int64_t>(
            1, model.mean().count_nanos());
        if (dist[u] + cost < dist[v]) {
          dist[v] = dist[u] + cost;
          first_hop[v] = (u == src) ? v : first_hop[u];
          heap.emplace(dist[v], v);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      next_hop_[src * n + dst] = first_hop[dst];
      if (dist[dst] != std::numeric_limits<std::int64_t>::max()) {
        route_cost_ns_[src * n + dst] = dist[dst];
      }
    }
  }
  routes_dirty_ = false;
}

std::vector<std::uint8_t> Network::acquire_payload(
    std::span<const std::uint8_t> bytes) {
  if (payload_pool_.empty()) {
    return std::vector<std::uint8_t>(bytes.begin(), bytes.end());
  }
  std::vector<std::uint8_t> payload = std::move(payload_pool_.back());
  payload_pool_.pop_back();
  payload.assign(bytes.begin(), bytes.end());
  return payload;
}

void Network::recycle_payload(std::vector<std::uint8_t>&& payload) {
  // Cap the pool so a burst cannot pin unbounded memory; capacity kept in
  // the pooled vectors is bounded by the largest message each one carried.
  constexpr std::size_t kPoolCap = 1024;
  if (payload.capacity() == 0 || payload_pool_.size() >= kPoolCap) return;
  payload.clear();
  payload_pool_.push_back(std::move(payload));
}

std::optional<SimTime> Network::route_cost(NodeId from, NodeId to) {
  ensure_routes();
  if (from >= nodes_.size() || to >= nodes_.size()) return std::nullopt;
  if (from == to) return SimTime::zero();
  const std::int64_t cost = route_cost_ns_[from * nodes_.size() + to];
  if (cost < 0) return std::nullopt;
  return SimTime::nanos(cost);
}

}  // namespace mecdns::simnet
