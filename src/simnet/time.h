// Simulated time.
//
// SimTime is an integer nanosecond count wrapped in a strong type: integer
// arithmetic keeps the event queue ordering exact and platform-independent,
// which in turn keeps every benchmark and test deterministic.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace mecdns::simnet {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime nanos(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime micros(double us) {
    return SimTime(static_cast<std::int64_t>(us * 1e3));
  }
  static constexpr SimTime millis(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1e6));
  }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ * k);
  }
  SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace mecdns::simnet
