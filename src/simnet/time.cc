#include "simnet/time.h"

#include <cstdio>

namespace mecdns::simnet {

std::string SimTime::to_string() const {
  char buf[48];
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_micros());
  }
  return buf;
}

}  // namespace mecdns::simnet
