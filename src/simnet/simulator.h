// Discrete-event simulator core: a clock and an ordered event queue.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/context.h"
#include "simnet/time.h"
#include "util/inline_function.h"

namespace mecdns::simnet {

/// Executes scheduled callbacks in timestamp order. Events scheduled for the
/// same instant run in scheduling order (a monotonic sequence number breaks
/// ties), so runs are fully deterministic.
///
/// Each event captures the ambient TraceToken at scheduling time and runs
/// under it, so a trace context follows a request across packet deliveries
/// and processing delays without any per-component plumbing. While a
/// simulator exists it also registers itself as the util::log clock, so log
/// lines carry the simulated time.
///
/// The callback type is a move-only inline function with a 192-byte buffer:
/// the lambdas the dns/simnet layers schedule (a TraceToken, an alive-flag,
/// a Packet or a couple of values) fit in place, so the steady-state event
/// costs zero heap allocations where std::function allocated nearly every
/// time. The queue itself is a binary heap over a plain vector, managed
/// with push_heap/pop_heap so events can be *moved* out (std::priority_queue
/// only exposes a const top(), which forces a copy).
class Simulator {
 public:
  using Callback = util::InlineFunction<void(), 192>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`. Scheduling in the past is
  /// clamped to "immediately after the current event".
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after the current time.
  void schedule_after(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events with timestamp <= `until` (the clock ends at `until` if the
  /// queue drained earlier). Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Runs at most one event. Returns false if the queue was empty.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::size_t executed() const { return executed_; }
  /// Highest number of simultaneously pending events seen so far — the
  /// event-queue analogue of a server's queue-depth high-water mark.
  std::size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    TraceToken trace;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::vector<Event> queue_;  ///< binary heap ordered by Later
};

}  // namespace mecdns::simnet
