// Discrete-event simulator core: a clock and an ordered event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simnet/context.h"
#include "simnet/time.h"

namespace mecdns::simnet {

/// Executes scheduled callbacks in timestamp order. Events scheduled for the
/// same instant run in scheduling order (a monotonic sequence number breaks
/// ties), so runs are fully deterministic.
///
/// Each event captures the ambient TraceToken at scheduling time and runs
/// under it, so a trace context follows a request across packet deliveries
/// and processing delays without any per-component plumbing. While a
/// simulator exists it also registers itself as the util::log clock, so log
/// lines carry the simulated time.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`. Scheduling in the past is
  /// clamped to "immediately after the current event".
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after the current time.
  void schedule_after(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events with timestamp <= `until` (the clock ends at `until` if the
  /// queue drained earlier). Returns the number of events executed.
  std::size_t run_until(SimTime until);

  /// Runs at most one event. Returns false if the queue was empty.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::size_t executed() const { return executed_; }
  /// Highest number of simultaneously pending events seen so far — the
  /// event-queue analogue of a server's queue-depth high-water mark.
  std::size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    TraceToken trace;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mecdns::simnet
