// Simulated packet network: nodes, links, static shortest-path routing,
// UDP-style sockets, transit hooks (NAT) and taps (tcpdump).
//
// Packets are forwarded hop by hop so that mid-path elements — the P-GW's
// NAT, the paper's tcpdump measurement point, failure injection — observe
// and can rewrite traffic exactly where a real network element would.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/ip.h"
#include "simnet/latency.h"
#include "simnet/simulator.h"
#include "simnet/time.h"
#include "util/rng.h"
#include "util/small_vector.h"

namespace mecdns::simnet {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// One recorded traversal point of a packet (used for latency breakdowns).
struct Hop {
  NodeId node = kInvalidNode;
  SimTime at;
};

/// A UDP-style datagram. `payload` carries real wire bytes (the dns library
/// encodes/decodes RFC 1035 messages into it).
struct Packet {
  std::uint64_t id = 0;
  Endpoint src;
  Endpoint dst;
  std::vector<std::uint8_t> payload;
  /// Size used for transmission-delay purposes on bandwidth-limited links.
  /// Defaults to the payload size; protocols that *stand for* a larger
  /// transfer (a content response representing megabytes of data) set it
  /// to the represented size so transfer time scales with object size.
  std::size_t virtual_size = 0;
  /// Typical paths in the MEC topologies traverse <= 4 nodes, so the hop
  /// trail stays inline with the packet.
  util::SmallVector<Hop, 4> hops;
  int ttl = 64;

  std::size_t wire_size() const {
    return virtual_size != 0 ? virtual_size : payload.size();
  }
};

/// What a transit hook decided about a packet.
enum class TransitAction {
  kForward,  ///< continue normal forwarding (possibly after rewriting)
  kDrop,     ///< silently discard
};

/// Delivery/drop counters for the whole network.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t dropped_node_down = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_no_socket = 0;
  std::uint64_t dropped_by_hook = 0;
  std::uint64_t dropped_loss = 0;
};

class Network;

/// A bound UDP socket. Owned by the Network; obtained via open_socket().
class UdpSocket {
 public:
  using ReceiveHandler = std::function<void(const Packet&)>;

  NodeId node() const { return node_; }
  std::uint16_t port() const { return port_; }
  Ipv4Address address() const { return addr_; }
  Endpoint endpoint() const { return Endpoint{addr_, port_}; }

  /// Sends a datagram to `dst`. The source endpoint is this socket's
  /// address/port. `virtual_size` (0 = actual payload size) is the size
  /// used on bandwidth-limited links — see Packet::virtual_size.
  void send_to(const Endpoint& dst, std::vector<std::uint8_t> payload,
               std::size_t virtual_size = 0);

  /// Borrowed-payload send: `payload` is copied into a pooled packet buffer
  /// recycled at delivery/drop, so steady-state sends allocate nothing.
  /// This is how the dns hot path ships the encoder's arena bytes without
  /// the per-send take() copy into a fresh vector.
  void send(const Endpoint& dst, std::span<const std::uint8_t> payload,
            std::size_t virtual_size = 0);

  void set_handler(ReceiveHandler handler) { handler_ = std::move(handler); }

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId node_ = kInvalidNode;
  Ipv4Address addr_;
  std::uint16_t port_ = 0;
  ReceiveHandler handler_;
};

/// The network fabric. Nodes and links are added up front; routing tables
/// are (re)computed lazily from mean link delays whenever topology or link
/// state changes.
class Network {
 public:
  Network(Simulator& sim, util::Rng rng) : sim_(sim), rng_(std::move(rng)) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  /// Adds a node; `primary_addr` (if non-zero) is registered to it.
  NodeId add_node(std::string name,
                  Ipv4Address primary_addr = Ipv4Address());

  /// Registers an additional address owned by `node`.
  void add_address(NodeId node, Ipv4Address addr);

  /// Adds a bidirectional link with the same delay model in both directions.
  LinkId add_link(NodeId a, NodeId b, LatencyModel model);

  /// Adds a bidirectional link with per-direction delay models.
  LinkId add_link(NodeId a, NodeId b, LatencyModel a_to_b,
                  LatencyModel b_to_a);

  void set_link_up(LinkId link, bool up);
  bool link_up(LinkId link) const;

  /// Random per-packet loss probability on a link (failure injection).
  void set_link_loss(LinkId link, double probability);

  /// Limits a link's capacity (both directions). Packets incur a
  /// transmission delay of wire_size()*8/bits_per_second on top of the
  /// propagation delay; 0 restores the default unlimited capacity.
  /// Store-and-forward per hop; no queueing contention is modelled.
  void set_link_bandwidth(LinkId link, std::uint64_t bits_per_second);

  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const;

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId node) const;
  NodeId find_node(Ipv4Address addr) const;  // kInvalidNode if unknown

  // --- sockets ------------------------------------------------------------

  /// Binds a socket on `node`:`port` answering at `addr` (must be owned by
  /// the node; pass the default to use the node's first address). Port 0
  /// allocates an ephemeral port. Throws on conflicts.
  UdpSocket* open_socket(NodeId node, std::uint16_t port,
                         UdpSocket::ReceiveHandler handler,
                         Ipv4Address addr = Ipv4Address());

  void close_socket(UdpSocket* socket);

  // --- middlebox hooks ----------------------------------------------------

  using TransitHook = std::function<TransitAction(Packet&)>;
  /// Installs a hook that runs whenever a packet arrives at `node`, before
  /// local delivery or forwarding. The hook may rewrite the packet (NAT).
  void set_transit_hook(NodeId node, TransitHook hook);

  using Tap = std::function<void(const Packet&, SimTime)>;
  /// Installs a read-only observer at `node` (the paper's tcpdump at P-GW).
  void add_tap(NodeId node, Tap tap);

  // --- accessors ----------------------------------------------------------

  Simulator& simulator() { return sim_; }
  SimTime now() const { return sim_.now(); }
  const NetworkStats& stats() const { return stats_; }

  /// Expected one-way delay along the current route between two nodes (the
  /// sum of mean link delays); useful for tests and calibration.
  std::optional<SimTime> route_cost(NodeId from, NodeId to);

 private:
  friend class UdpSocket;

  struct Link {
    NodeId a;
    NodeId b;
    LatencyModel a_to_b;
    LatencyModel b_to_a;
    bool up = true;
    double loss = 0.0;
    std::uint64_t bandwidth_bps = 0;  ///< 0 = unlimited
  };

  struct NodeRec {
    std::string name;
    std::vector<Ipv4Address> addrs;
    bool up = true;
    TransitHook hook;
    std::vector<Tap> taps;
    std::vector<LinkId> links;
  };

  void send_from(NodeId node, Packet packet);
  void arrive(NodeId node, Packet packet);
  void forward(NodeId node, Packet&& packet);
  void deliver_local(NodeId node, const Packet& packet);
  void ensure_routes();
  std::optional<LinkId> pick_link(NodeId from, NodeId to) const;

  /// Payload vectors are pooled: every packet that reaches a terminal point
  /// (delivered or dropped) donates its buffer back, and send() reuses one
  /// instead of allocating. Per-Network (so per campaign job), which keeps
  /// worker-count byte-identity: the pool's LIFO order only depends on the
  /// job's own deterministic event order.
  std::vector<std::uint8_t> acquire_payload(
      std::span<const std::uint8_t> bytes);
  void recycle_payload(std::vector<std::uint8_t>&& payload);

  Simulator& sim_;
  util::Rng rng_;
  std::vector<NodeRec> nodes_;
  std::vector<Link> links_;
  std::unordered_map<Ipv4Address, NodeId> addr_to_node_;
  std::map<std::pair<NodeId, std::uint16_t>, std::unique_ptr<UdpSocket>>
      sockets_;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint64_t next_packet_id_ = 1;
  bool routes_dirty_ = true;
  // next_hop_[from * n + to] = next node toward `to`, or kInvalidNode.
  std::vector<NodeId> next_hop_;
  std::vector<std::int64_t> route_cost_ns_;
  NetworkStats stats_;
  std::vector<std::vector<std::uint8_t>> payload_pool_;
};

}  // namespace mecdns::simnet
