// Ambient execution context propagated across scheduled events.
//
// A discrete-event simulation loses the call stack at every schedule_at():
// the client's "cause" (which lookup am I part of?) is gone by the time the
// packet-delivery or processing-delay event runs. TraceToken is the minimal
// fix: an opaque (pointer, id) pair that the Simulator captures when an
// event is scheduled and restores while it runs — the simulated analogue of
// async-context propagation. The observability layer (obs::TraceSink) is
// the only producer/consumer of tokens; simnet itself never dereferences
// the pointer, so this header stays dependency-free.
//
// When no tracing is active the token is two null words: capturing and
// restoring it is a handful of instructions per event, which is what makes
// the tracer zero-overhead-when-disabled.
#pragma once

#include <cstdint>

namespace mecdns::simnet {

struct TraceToken {
  void* sink = nullptr;     ///< owning obs::TraceSink (opaque to simnet)
  std::uint64_t span = 0;   ///< current span id within that sink

  bool active() const { return sink != nullptr; }
};

/// The token for the currently executing event (thread-local).
TraceToken current_trace_token();
void set_current_trace_token(TraceToken token);

/// RAII: installs `token` as the ambient token, restoring the previous one
/// on destruction. Used by transports that must run callbacks under the
/// *caller's* context rather than the responder's.
class TraceTokenGuard {
 public:
  explicit TraceTokenGuard(TraceToken token)
      : saved_(current_trace_token()) {
    set_current_trace_token(token);
  }
  ~TraceTokenGuard() { set_current_trace_token(saved_); }

  TraceTokenGuard(const TraceTokenGuard&) = delete;
  TraceTokenGuard& operator=(const TraceTokenGuard&) = delete;

 private:
  TraceToken saved_;
};

}  // namespace mecdns::simnet
