// MEC orchestrator: deploys services onto the cluster and keeps both DNS
// namespaces in sync.
//
// The pivotal observation of §3 P1 is that the orchestrator *already knows*
// everything the MEC L-DNS must answer — which CDN domains are deployed
// where, and their addresses. Orchestrator models that: deploying a service
// allocates a cluster IP, exposes it on the hosting worker, and writes the
// record into the internal namespace; deploying a *MEC-CDN* additionally
// populates the split public namespace so mobile clients can resolve the
// CDN domain at the first hop.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "mec/cluster.h"
#include "mec/ingress.h"
#include "mec/registry.h"

namespace mecdns::mec {

struct Deployment {
  std::string service;
  std::string ns;
  simnet::NodeId node = simnet::kInvalidNode;
  simnet::Ipv4Address cluster_ip;
};

class Orchestrator {
 public:
  struct Config {
    MecCluster::Config cluster;
    dns::DnsName cluster_domain = dns::DnsName::must_parse("cluster.local");
    /// Origin of the public (mobile-facing) app namespace. CDN domains are
    /// not hosted here — they are stub-domain-forwarded to the C-DNS; this
    /// zone carries the *other* MEC applications' public names.
    dns::DnsName public_domain = dns::DnsName::must_parse("apps.mec.test");
  };

  Orchestrator(simnet::Network& net, Config config);

  MecCluster& cluster() { return cluster_; }
  ServiceRegistry& registry() { return registry_; }
  IngressMonitor& ingress() { return ingress_; }

  /// Deploys a service on a worker; `fixed_ip_host` pins the cluster IP
  /// ("assign C-DNS a fixed cluster IP using k8s Service").
  Deployment deploy(const std::string& service, const std::string& ns,
                    simnet::NodeId worker,
                    std::optional<std::uint32_t> fixed_ip_host = std::nullopt);

  /// Tears a deployment down: releases nothing from simnet (addresses stay
  /// registered) but removes it from DNS so clients stop resolving to it.
  void undeploy(const std::string& service, const std::string& ns);

  /// Publishes `domain` -> `addr` in the public namespace (a MEC-CDN domain
  /// becoming visible to mobile clients). TTL small by default so scaling
  /// events propagate.
  void publish(const dns::DnsName& domain, simnet::Ipv4Address addr,
               std::uint32_t ttl = 30);
  void unpublish(const dns::DnsName& domain);

  /// The public namespace zone (served by the public view's ZonePlugin).
  std::shared_ptr<dns::Zone> public_zone() { return public_zone_; }
  const dns::DnsName& public_domain() const { return config_.public_domain; }

  const std::map<std::string, Deployment>& deployments() const {
    return deployments_;
  }

 private:
  static std::string key(const std::string& service, const std::string& ns) {
    return ns + "/" + service;
  }

  simnet::Network& net_;
  Config config_;
  MecCluster cluster_;
  ServiceRegistry registry_;
  IngressMonitor ingress_;
  std::shared_ptr<dns::Zone> public_zone_;
  std::map<std::string, Deployment> deployments_;
};

}  // namespace mecdns::mec
