// Ingress-load monitoring and the overload fallback policy.
//
// §3 P1: "The MEC orchestrator, which has access to monitoring statistics
// of the ingress network load to the MEC DNS, can simply switch (or only
// unicast) to the provider's L-DNS during high ingress (above a threshold),
// or deploy other more sophisticated mitigation policies." IngressMonitor
// keeps a sliding-window query rate; OverloadGuardPlugin sits first in the
// MEC DNS chain and sheds load above the threshold, so MEC-CDN degrades to
// the provider path instead of becoming a DoS amplifier.
#pragma once

#include <cstdint>
#include <deque>

#include "dns/plugin.h"
#include "simnet/time.h"

namespace mecdns::mec {

class IngressMonitor {
 public:
  explicit IngressMonitor(simnet::SimTime window = simnet::SimTime::seconds(1))
      : window_(window) {}

  void record(simnet::SimTime now);

  /// Events within the window ending at `now`.
  std::size_t rate(simnet::SimTime now) const;

  simnet::SimTime window() const { return window_; }

 private:
  void prune(simnet::SimTime now) const;

  simnet::SimTime window_;
  mutable std::deque<simnet::SimTime> events_;
};

/// What the guard does with traffic above the threshold.
enum class OverloadAction {
  kRefuse,  ///< answer REFUSED; multicast/fallback clients use provider L-DNS
  kDrop,    ///< silently drop; clients time out onto their fallback
};

class OverloadGuardPlugin : public dns::Plugin {
 public:
  OverloadGuardPlugin(IngressMonitor& monitor, std::size_t threshold_qps,
                      OverloadAction action = OverloadAction::kRefuse)
      : monitor_(monitor), threshold_(threshold_qps), action_(action) {}

  std::string name() const override { return "overload-guard"; }
  void serve(const dns::PluginContext& ctx, Respond respond,
             Next next) override;

  std::uint64_t shed() const { return shed_; }
  std::uint64_t admitted() const { return admitted_; }

 private:
  IngressMonitor& monitor_;
  std::size_t threshold_;
  OverloadAction action_;
  std::uint64_t shed_ = 0;
  std::uint64_t admitted_ = 0;
};

}  // namespace mecdns::mec
