// Ingress-load monitoring and the overload fallback policy.
//
// §3 P1: "The MEC orchestrator, which has access to monitoring statistics
// of the ingress network load to the MEC DNS, can simply switch (or only
// unicast) to the provider's L-DNS during high ingress (above a threshold),
// or deploy other more sophisticated mitigation policies." IngressMonitor
// keeps a sliding-window query rate; OverloadGuardPlugin sits first in the
// MEC DNS chain and sheds load above the threshold, so MEC-CDN degrades to
// the provider path instead of becoming a DoS amplifier.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "dns/plugin.h"
#include "obs/journal.h"
#include "simnet/time.h"

namespace mecdns::mec {

class IngressMonitor {
 public:
  explicit IngressMonitor(simnet::SimTime window = simnet::SimTime::seconds(1))
      : window_(window) {}

  void record(simnet::SimTime now);

  /// Events within the window ending at `now`.
  std::size_t rate(simnet::SimTime now) const;

  simnet::SimTime window() const { return window_; }

 private:
  void prune(simnet::SimTime now) const;

  simnet::SimTime window_;
  mutable std::deque<simnet::SimTime> events_;
};

/// What the guard does with traffic above the threshold.
enum class OverloadAction {
  kRefuse,  ///< answer REFUSED; multicast/fallback clients use provider L-DNS
  kDrop,    ///< silently drop; clients time out onto their fallback
  /// Answer SERVFAIL: composes with DnsTransport's failover_on_servfail so
  /// clients with a provider fallback fail over within one RTT instead of
  /// waiting out the timeout ladder — the overload-safe shed policy.
  kServFail,
};

class OverloadGuardPlugin : public dns::Plugin {
 public:
  OverloadGuardPlugin(IngressMonitor& monitor, std::size_t threshold_qps,
                      OverloadAction action = OverloadAction::kRefuse)
      : monitor_(monitor), threshold_(threshold_qps), action_(action) {}

  std::string name() const override { return "overload-guard"; }
  void serve(const dns::PluginContext& ctx, Respond respond,
             Next next) override;

  /// Recovery hysteresis, mirroring cdn::TrafficMonitor's up/down counts:
  /// once tripped, the guard keeps shedding until the ingress rate has
  /// stayed below the threshold for `windows` consecutive monitor windows.
  /// 0 (the default) is the legacy stateless comparison, which flaps
  /// admit/shed right at the threshold.
  void set_recovery_windows(std::size_t windows) {
    recovery_windows_ = windows;
  }
  std::size_t recovery_windows() const { return recovery_windows_; }

  /// True while the guard is in its tripped (shedding) state. Only
  /// meaningful with recovery hysteresis enabled.
  bool shedding() const { return shedding_; }
  /// Times the guard tripped into / recovered out of shedding.
  std::uint64_t trips() const { return trips_; }
  std::uint64_t recoveries() const { return recoveries_; }

  std::uint64_t shed() const { return shed_; }
  std::uint64_t admitted() const { return admitted_; }

  /// Admission control against a bounded server queue: when `probe()`
  /// (typically DnsServer::queue_depth) reaches `limit`, the query is shed
  /// with a deterministic answer instead of being served. A saturated FIFO
  /// means the backlog is already rotting toward client timeouts; cheap
  /// sheds drain it orders of magnitude faster than full service would,
  /// and (with kServFail/kRefuse) tell the client immediately rather than
  /// letting the overflow drop them silently.
  void set_queue_probe(std::function<std::size_t()> probe,
                       std::size_t limit) {
    queue_probe_ = std::move(probe);
    queue_limit_ = limit;
  }
  std::uint64_t shed_queue_full() const { return shed_queue_full_; }

  OverloadAction action() const { return action_; }
  void set_action(OverloadAction action) { action_ = action; }

  /// Journals guard *transitions* only (trip, recover, and the edge into
  /// queue-probe shedding), never per-query sheds — the journal is a
  /// control-plane recorder and this plugin sits on the query hot path.
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

 private:
  void shed_one(const dns::PluginContext& ctx, Respond& respond);

  IngressMonitor& monitor_;
  std::size_t threshold_;
  OverloadAction action_;
  std::function<std::size_t()> queue_probe_;
  std::size_t queue_limit_ = 0;
  std::uint64_t shed_queue_full_ = 0;
  std::size_t recovery_windows_ = 0;
  bool shedding_ = false;
  /// When (while shedding) the rate was first observed below threshold;
  /// cleared whenever it climbs back over.
  std::optional<simnet::SimTime> below_since_;
  std::uint64_t trips_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t admitted_ = 0;
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;
  /// True between the first queue-full shed and the next query that finds
  /// queue headroom again; journals the transition, not every shed.
  bool queue_full_active_ = false;
};

}  // namespace mecdns::mec
