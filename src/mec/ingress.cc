#include "mec/ingress.h"

namespace mecdns::mec {

void IngressMonitor::record(simnet::SimTime now) {
  prune(now);
  events_.push_back(now);
}

std::size_t IngressMonitor::rate(simnet::SimTime now) const {
  prune(now);
  return events_.size();
}

void IngressMonitor::prune(simnet::SimTime now) const {
  const simnet::SimTime cutoff = now - window_;
  while (!events_.empty() && events_.front() < cutoff) {
    events_.pop_front();
  }
}

void OverloadGuardPlugin::serve(const dns::PluginContext& ctx,
                                Respond respond, Next next) {
  const simnet::SimTime now = ctx.net.received;
  if (monitor_.rate(now) >= threshold_) {
    ++shed_;
    if (action_ == OverloadAction::kRefuse) {
      respond(dns::make_response(ctx.query, dns::RCode::kRefused));
    }
    // kDrop: never respond; the client's timeout/fallback path handles it.
    return;
  }
  monitor_.record(now);
  ++admitted_;
  next(std::move(respond));
}

}  // namespace mecdns::mec
