#include "mec/ingress.h"

namespace mecdns::mec {

void IngressMonitor::record(simnet::SimTime now) {
  prune(now);
  events_.push_back(now);
}

std::size_t IngressMonitor::rate(simnet::SimTime now) const {
  prune(now);
  return events_.size();
}

void IngressMonitor::prune(simnet::SimTime now) const {
  const simnet::SimTime cutoff = now - window_;
  while (!events_.empty() && events_.front() < cutoff) {
    events_.pop_front();
  }
}

void OverloadGuardPlugin::shed_one(const dns::PluginContext& ctx,
                                   Respond& respond) {
  ++shed_;
  switch (action_) {
    case OverloadAction::kRefuse:
      respond(dns::make_response(ctx.query, dns::RCode::kRefused));
      break;
    case OverloadAction::kServFail:
      respond(dns::make_response(ctx.query, dns::RCode::kServFail));
      break;
    case OverloadAction::kDrop:
      // Never respond; the client's timeout/fallback path handles it.
      break;
  }
}

void OverloadGuardPlugin::serve(const dns::PluginContext& ctx,
                                Respond respond, Next next) {
  const simnet::SimTime now = ctx.net.received;

  // Bounded-queue admission control runs before the rate policy: a
  // saturated worker FIFO behind this query means new arrivals are being
  // dropped and the backlog is aging toward client timeouts — shed cheaply
  // (no plugin chain, no upstream work) so the queue drains fast.
  if (queue_probe_ && queue_limit_ > 0 && queue_probe_() >= queue_limit_) {
    ++shed_queue_full_;
    if (!queue_full_active_) {
      queue_full_active_ = true;
      if (journal_ != nullptr) {
        journal_->record(now, obs::JournalKind::kQueueProbeShed,
                         journal_cell_, "queue probe at limit",
                         queue_limit_);
      }
    }
    shed_one(ctx, respond);
    return;
  }
  queue_full_active_ = false;

  const bool over = monitor_.rate(now) >= threshold_;

  if (recovery_windows_ == 0) {
    // Legacy stateless comparison.
    if (over) {
      shed_one(ctx, respond);
      return;
    }
  } else if (shedding_) {
    if (over) {
      below_since_.reset();
      shed_one(ctx, respond);
      return;
    }
    if (!below_since_.has_value()) below_since_ = now;
    const simnet::SimTime quiet = now - *below_since_;
    if (quiet < monitor_.window() * static_cast<std::int64_t>(
                    recovery_windows_)) {
      shed_one(ctx, respond);
      return;
    }
    // Quiet long enough: recover and admit this query.
    shedding_ = false;
    below_since_.reset();
    ++recoveries_;
    if (journal_ != nullptr) {
      journal_->record(now, obs::JournalKind::kGuardRecover, journal_cell_,
                       "ingress back under threshold", threshold_);
    }
  } else if (over) {
    shedding_ = true;
    below_since_.reset();
    ++trips_;
    if (journal_ != nullptr) {
      journal_->record(now, obs::JournalKind::kGuardTrip, journal_cell_,
                       "ingress over threshold", threshold_,
                       monitor_.rate(now));
    }
    shed_one(ctx, respond);
    return;
  }

  monitor_.record(now);
  ++admitted_;
  next(std::move(respond));
}

}  // namespace mecdns::mec
