// L-DNS liveness probing and failover — the paper's availability mechanism
// generalized from overload to crash.
//
// §3 falls back to the provider L-DNS when the MEC L-DNS is overloaded;
// the same escape hatch must fire when the MEC L-DNS *dies* (node crash,
// partition). LdnsFailover plays the orchestrator's health-checker: it
// DNS-probes the primary L-DNS at a fixed interval from a vantage node,
// and after `down_threshold` consecutive probe timeouts invokes the switch
// handler with the fallback endpoint (re-targeting the UE population's
// resolver). Once `up_threshold` consecutive probes answer again, it
// switches back. Any response — even REFUSED — counts as alive: liveness,
// not correctness, is being probed. The consecutive-count hysteresis
// mirrors cdn::TrafficMonitor's, so a single lost probe never flaps the
// fleet.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dns/message.h"
#include "dns/transport.h"
#include "obs/journal.h"
#include "simnet/network.h"
#include "simnet/time.h"

namespace mecdns::mec {

class LdnsFailover {
 public:
  struct Config {
    simnet::Endpoint primary;   ///< the MEC L-DNS being watched
    simnet::Endpoint fallback;  ///< the provider L-DNS to fail over to
    simnet::SimTime probe_interval = simnet::SimTime::millis(500);
    simnet::SimTime probe_timeout = simnet::SimTime::millis(400);
    /// Consecutive probe timeouts before declaring the primary dead.
    int down_threshold = 2;
    /// Consecutive probe answers before re-admitting the primary.
    int up_threshold = 2;
    /// Probe qname; the answer's rcode is irrelevant (REFUSED is alive).
    dns::DnsName probe_name =
        dns::DnsName::must_parse("health.mec-probe.test");
  };

  /// One resolver re-targeting decision, for time-to-recover accounting.
  struct Switch {
    simnet::SimTime at;
    bool to_fallback = false;  ///< false = back to the primary
  };

  /// Called on every switch with the endpoint clients should now use.
  using SwitchHandler =
      std::function<void(const simnet::Endpoint& target, bool to_fallback)>;

  /// Probes are sent from `node` (the orchestrator's vantage point).
  LdnsFailover(simnet::Network& net, simnet::NodeId node, Config config);
  ~LdnsFailover();
  LdnsFailover(const LdnsFailover&) = delete;
  LdnsFailover& operator=(const LdnsFailover&) = delete;

  void set_on_switch(SwitchHandler handler) { on_switch_ = std::move(handler); }

  /// Each switch decision becomes a journal event: ldns_failover when
  /// re-targeting clients at the fallback, ldns_restore when back on the
  /// primary (a = probe failures so far).
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

  /// Schedules `rounds` probes, one per probe_interval, starting one
  /// interval from now. Bounded so simulations still drain their queue.
  void start(std::size_t rounds);

  bool on_fallback() const { return on_fallback_; }
  const Config& config() const { return config_; }
  const std::vector<Switch>& switches() const { return switches_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t probe_failures() const { return probe_failures_; }

 private:
  void probe(std::size_t remaining);
  void on_result(bool alive);

  simnet::Network& net_;
  Config config_;
  dns::DnsTransport transport_;
  SwitchHandler on_switch_;
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;
  /// Disarms scheduled probe events after destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool on_fallback_ = false;
  int fail_streak_ = 0;
  int ok_streak_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probe_failures_ = 0;
  std::vector<Switch> switches_;
};

}  // namespace mecdns::mec
