// Orchestrator-driven auto-scaling of edge cache servers.
//
// §3 P1 lets the MEC orchestrator "deploy other more sophisticated
// mitigation policies" from its monitoring statistics; Huang et al.
// (PAPERS.md) make per-site capacity a first-class constraint of edge
// allocation. AutoScaler is the composition: a periodic sim-time control
// loop that reads a cumulative load counter (e.g. total edge-cache
// requests), computes per-replica load for the last interval, and asks the
// site to add or retire a cache replica when the load crosses the
// watermarks. All decisions are deterministic functions of sim time and
// the counters, so scaled runs stay byte-identical at any worker count.
//
// The scaler is deliberately generic — callbacks, not a hard dependency on
// MecCdnSite — so tests can drive it against counters and the site wires
// in its real add_edge_cache/retire_edge_cache actions.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/journal.h"
#include "obs/trace.h"
#include "simnet/simulator.h"

namespace mecdns::mec {

class AutoScaler {
 public:
  struct Config {
    /// Control-loop period (sim time).
    simnet::SimTime interval = simnet::SimTime::seconds(1);
    /// Load units per replica per interval above which a replica is added.
    double scale_up_per_replica = 0.0;
    /// ... below which a replica is retired. Keep well under the up
    /// watermark or the loop oscillates.
    double scale_down_per_replica = 0.0;
    std::size_t min_replicas = 1;
    std::size_t max_replicas = 8;
    /// Intervals to hold still after any scaling action (lets the new
    /// replica absorb load before the next decision).
    std::size_t cooldown_intervals = 2;
  };

  using LoadProbe = std::function<std::uint64_t()>;   ///< cumulative counter
  using ReplicaProbe = std::function<std::size_t()>;  ///< current replicas
  using ScaleAction = std::function<bool()>;          ///< applied?

  AutoScaler(simnet::Simulator& sim, Config config, LoadProbe load,
             ReplicaProbe replicas, ScaleAction scale_up,
             ScaleAction scale_down)
      : sim_(sim),
        config_(config),
        load_(std::move(load)),
        replicas_(std::move(replicas)),
        scale_up_(std::move(scale_up)),
        scale_down_(std::move(scale_down)) {}

  /// Runs the control loop for `ticks` intervals, then stops (a bounded
  /// event chain, so simulations drain).
  void run_for(std::size_t ticks);

  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_downs() const { return scale_downs_; }
  double last_load_per_replica() const { return last_load_per_replica_; }

  /// Each applied scaling decision becomes a root span on an
  /// "autoscaler" track, tagged with the observed load and replica count
  /// — the decision evidence, not just the action tally.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Scale-up / scale-down decisions become journal events (a = replicas
  /// after the action, b = load per replica, rounded) attributed to
  /// `cell`.
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

 private:
  void tick(std::size_t remaining);

  simnet::Simulator& sim_;
  Config config_;
  LoadProbe load_;
  ReplicaProbe replicas_;
  ScaleAction scale_up_;
  ScaleAction scale_down_;

  void note_decision(obs::JournalKind kind, const char* what,
                     std::size_t replicas_now);

  obs::TraceSink* trace_ = nullptr;
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;

  std::uint64_t last_load_ = 0;
  std::size_t cooldown_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  double last_load_per_replica_ = 0.0;
};

}  // namespace mecdns::mec
