#include "mec/orchestrator.h"

namespace mecdns::mec {

Orchestrator::Orchestrator(simnet::Network& net, Config config)
    : net_(net), config_(std::move(config)), cluster_(net, config_.cluster),
      registry_(config_.cluster_domain),
      public_zone_(std::make_shared<dns::Zone>(config_.public_domain)) {
  public_zone_->must_add(dns::make_soa(
      config_.public_domain,
      dns::DnsName::must_parse("mec-dns." + config_.public_domain.to_string()),
      1, 30, 30));
}

Deployment Orchestrator::deploy(const std::string& service,
                                const std::string& ns, simnet::NodeId worker,
                                std::optional<std::uint32_t> fixed_ip_host) {
  Deployment deployment;
  deployment.service = service;
  deployment.ns = ns;
  deployment.node = worker;
  deployment.cluster_ip = fixed_ip_host.has_value()
                              ? cluster_.allocate_service_ip(*fixed_ip_host)
                              : cluster_.allocate_service_ip();
  cluster_.expose_service_ip(worker, deployment.cluster_ip);
  registry_.register_service(service, ns, deployment.cluster_ip);
  deployments_[key(service, ns)] = deployment;
  return deployment;
}

void Orchestrator::undeploy(const std::string& service,
                            const std::string& ns) {
  registry_.deregister_service(service, ns);
  deployments_.erase(key(service, ns));
}

void Orchestrator::publish(const dns::DnsName& domain,
                           simnet::Ipv4Address addr, std::uint32_t ttl) {
  public_zone_->remove(domain, dns::RecordType::kA);
  public_zone_->must_add(dns::make_a(domain, addr, ttl));
}

void Orchestrator::unpublish(const dns::DnsName& domain) {
  public_zone_->remove_name(domain);
}

}  // namespace mecdns::mec
