// Service registry feeding the cluster's internal DNS namespace.
//
// CoreDNS's `kubernetes` plugin answers "<svc>.<ns>.svc.<cluster-domain>"
// from the API server's service objects. ServiceRegistry plays the API
// server: registered services materialize as A records in a shared Zone
// that a dns::ZonePlugin serves — "the information needed to service DNS
// requests in the MEC ... is readily available with the MEC orchestrator by
// design, as part of the MEC orchestrator's dedicated, internal DNS".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dns/zone.h"
#include "simnet/ip.h"

namespace mecdns::mec {

class ServiceRegistry {
 public:
  /// `cluster_domain` is e.g. "cluster.local".
  explicit ServiceRegistry(dns::DnsName cluster_domain);

  const dns::DnsName& cluster_domain() const { return domain_; }

  /// The zone a ZonePlugin can serve (shared; updated live).
  std::shared_ptr<dns::Zone> zone() { return zone_; }

  /// Fully qualified service name: <service>.<ns>.svc.<cluster-domain>.
  dns::DnsName service_name(const std::string& service,
                            const std::string& ns) const;

  /// Registers (or re-registers) a service at a cluster IP.
  void register_service(const std::string& service, const std::string& ns,
                        simnet::Ipv4Address cluster_ip,
                        std::uint32_t ttl = 30);

  void deregister_service(const std::string& service, const std::string& ns);

  bool has_service(const std::string& service, const std::string& ns) const;
  std::size_t service_count() const { return count_; }

 private:
  dns::DnsName domain_;
  std::shared_ptr<dns::Zone> zone_;
  std::size_t count_ = 0;
};

}  // namespace mecdns::mec
