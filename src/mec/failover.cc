#include "mec/failover.h"

#include <utility>

#include "util/log.h"

namespace mecdns::mec {

LdnsFailover::LdnsFailover(simnet::Network& net, simnet::NodeId node,
                           Config config)
    : net_(net),
      config_(std::move(config)),
      transport_(net, node, /*id_seed=*/0x1d5f) {}

LdnsFailover::~LdnsFailover() { *alive_ = false; }

void LdnsFailover::start(std::size_t rounds) {
  if (rounds == 0) return;
  net_.simulator().schedule_after(config_.probe_interval,
                                  [this, alive = alive_, rounds] {
                                    if (!*alive) return;
                                    probe(rounds - 1);
                                  });
}

void LdnsFailover::probe(std::size_t remaining) {
  ++probes_sent_;
  dns::DnsTransport::Options options;
  options.timeout = config_.probe_timeout;
  dns::Message query =
      dns::make_query(0, config_.probe_name, dns::RecordType::kA);
  transport_.query(config_.primary, std::move(query), options,
                   [this, alive = alive_](util::Result<dns::Message> result,
                                          simnet::SimTime) {
                     if (!*alive) return;
                     on_result(result.ok());
                   });
  if (remaining > 0) {
    net_.simulator().schedule_after(config_.probe_interval,
                                    [this, alive = alive_, remaining] {
                                      if (!*alive) return;
                                      probe(remaining - 1);
                                    });
  }
}

void LdnsFailover::on_result(bool alive) {
  if (!alive) {
    ++probe_failures_;
    ok_streak_ = 0;
    if (!on_fallback_ && ++fail_streak_ >= config_.down_threshold) {
      on_fallback_ = true;
      fail_streak_ = 0;
      switches_.push_back(Switch{net_.now(), true});
      if (journal_ != nullptr) {
        journal_->record(net_.now(), obs::JournalKind::kLdnsFailover,
                         journal_cell_, "primary dead, using fallback",
                         probe_failures_);
      }
      MECDNS_LOG(kInfo, "ldns-failover")
          << "primary L-DNS dead; switching clients to fallback";
      if (on_switch_) on_switch_(config_.fallback, true);
    }
    return;
  }
  fail_streak_ = 0;
  if (on_fallback_ && ++ok_streak_ >= config_.up_threshold) {
    on_fallback_ = false;
    ok_streak_ = 0;
    switches_.push_back(Switch{net_.now(), false});
    if (journal_ != nullptr) {
      journal_->record(net_.now(), obs::JournalKind::kLdnsRestore,
                       journal_cell_, "primary recovered",
                       probe_failures_);
    }
    MECDNS_LOG(kInfo, "ldns-failover")
        << "primary L-DNS recovered; switching clients back";
    if (on_switch_) on_switch_(config_.primary, false);
  }
}

}  // namespace mecdns::mec
