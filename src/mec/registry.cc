#include "mec/registry.h"

namespace mecdns::mec {

ServiceRegistry::ServiceRegistry(dns::DnsName cluster_domain)
    : domain_(std::move(cluster_domain)),
      zone_(std::make_shared<dns::Zone>(domain_)) {
  zone_->must_add(dns::make_soa(
      domain_, dns::DnsName::must_parse("kube-dns." + domain_.to_string()), 1,
      30, 30));
}

dns::DnsName ServiceRegistry::service_name(const std::string& service,
                                           const std::string& ns) const {
  return dns::DnsName::must_parse(service + "." + ns + ".svc." +
                                  domain_.to_string());
}

void ServiceRegistry::register_service(const std::string& service,
                                       const std::string& ns,
                                       simnet::Ipv4Address cluster_ip,
                                       std::uint32_t ttl) {
  const dns::DnsName name = service_name(service, ns);
  if (zone_->remove(name, dns::RecordType::kA) == 0) {
    ++count_;
  }
  zone_->must_add(dns::make_a(name, cluster_ip, ttl));
}

void ServiceRegistry::deregister_service(const std::string& service,
                                         const std::string& ns) {
  if (zone_->remove_name(service_name(service, ns)) > 0) {
    --count_;
  }
}

bool ServiceRegistry::has_service(const std::string& service,
                                  const std::string& ns) const {
  return !zone_->find(service_name(service, ns), dns::RecordType::kA).empty();
}

}  // namespace mecdns::mec
