#include "mec/cluster.h"

#include <stdexcept>

namespace mecdns::mec {

MecCluster::MecCluster(simnet::Network& net, Config config)
    : net_(net), config_(std::move(config)) {
  gateway_ = net_.add_node(config_.name + "-gw", config_.node_cidr.host(1));
}

simnet::NodeId MecCluster::add_worker(const std::string& name) {
  if (next_node_host_ >= config_.node_cidr.size() - 1) {
    throw std::length_error("node CIDR exhausted");
  }
  const simnet::NodeId node = net_.add_node(
      config_.name + "-" + name, config_.node_cidr.host(next_node_host_++));
  net_.add_link(gateway_, node, config_.fabric);
  workers_.push_back(node);
  return node;
}

simnet::Ipv4Address MecCluster::allocate_service_ip() {
  while (service_hosts_taken_.count(next_service_host_) != 0) {
    ++next_service_host_;
  }
  return allocate_service_ip(next_service_host_);
}

simnet::Ipv4Address MecCluster::allocate_service_ip(
    std::uint32_t host_index) {
  if (host_index == 0 || host_index >= config_.service_cidr.size() - 1) {
    throw std::out_of_range("service host index outside service CIDR");
  }
  if (service_hosts_taken_.count(host_index) != 0) {
    throw std::invalid_argument("cluster IP host index " +
                                std::to_string(host_index) +
                                " already allocated");
  }
  service_hosts_taken_[host_index] = true;
  return config_.service_cidr.host(host_index);
}

void MecCluster::expose_service_ip(simnet::NodeId worker,
                                   simnet::Ipv4Address cluster_ip) {
  net_.add_address(worker, cluster_ip);
}

}  // namespace mecdns::mec
