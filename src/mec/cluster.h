// Kubernetes-like MEC cluster model.
//
// The paper's prototype runs everything — RAN functions, CoreDNS, the ATC
// Traffic Router and caches — as containers in one k8s cluster at the edge.
// MecCluster models the parts that matter to DNS/CDN behaviour: worker
// nodes on a fast fabric, a gateway node where external traffic enters, and
// stable *cluster IPs* allocated from a service CIDR ("we first assign
// C-DNS a fixed cluster IP using k8s Service"). Cluster IPs are the only
// addresses mobile clients ever see — the paper's public-IP-reuse benefit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simnet/network.h"

namespace mecdns::mec {

class MecCluster {
 public:
  struct Config {
    std::string name = "mec";
    /// Node (host) addresses; .1 is the gateway.
    simnet::Cidr node_cidr = simnet::Cidr::must_parse("10.240.0.0/24");
    /// Cluster-IP (Service) range, like kube-proxy's service CIDR.
    simnet::Cidr service_cidr = simnet::Cidr::must_parse("10.96.0.0/16");
    /// Intra-cluster fabric, one way.
    simnet::LatencyModel fabric = simnet::LatencyModel::normal(
        simnet::SimTime::micros(150), simnet::SimTime::micros(40),
        simnet::SimTime::micros(30));
  };

  MecCluster(simnet::Network& net, Config config);

  /// The node external traffic enters through (link it to the P-GW / LAN).
  simnet::NodeId gateway() const { return gateway_; }

  /// Adds a worker node on the fabric; returns its simnet node.
  simnet::NodeId add_worker(const std::string& name);

  std::size_t worker_count() const { return workers_.size(); }
  simnet::NodeId worker(std::size_t i) const { return workers_.at(i); }

  /// Allocates the next free cluster IP.
  simnet::Ipv4Address allocate_service_ip();

  /// Allocates a *fixed* cluster IP (host index within the service CIDR).
  /// Throws if already taken.
  simnet::Ipv4Address allocate_service_ip(std::uint32_t host_index);

  /// Binds a cluster IP to the worker hosting the service's pod, making it
  /// routable (the role kube-proxy/routes play in the real cluster).
  void expose_service_ip(simnet::NodeId worker, simnet::Ipv4Address cluster_ip);

  const Config& config() const { return config_; }
  simnet::Network& network() { return net_; }

 private:
  simnet::Network& net_;
  Config config_;
  simnet::NodeId gateway_;
  std::vector<simnet::NodeId> workers_;
  std::uint32_t next_node_host_ = 2;     // .1 is the gateway
  std::uint32_t next_service_host_ = 10;
  std::map<std::uint32_t, bool> service_hosts_taken_;
};

}  // namespace mecdns::mec
