#include "mec/autoscaler.h"

#include <algorithm>
#include <string>

namespace mecdns::mec {

void AutoScaler::note_decision(obs::JournalKind kind, const char* what,
                               std::size_t replicas_now) {
  if (trace_ != nullptr) {
    obs::SpanRef span = obs::begin_root_span(trace_, "autoscaler", what);
    span.tag("load_per_replica", std::to_string(last_load_per_replica_));
    span.tag("replicas", std::to_string(replicas_now));
    span.end();
  }
  if (journal_ != nullptr) {
    journal_->record(sim_.now(), kind, journal_cell_, what, replicas_now,
                     static_cast<std::uint64_t>(last_load_per_replica_));
  }
}

void AutoScaler::run_for(std::size_t ticks) {
  if (ticks == 0) return;
  last_load_ = load_();
  sim_.schedule_after(config_.interval, [this, ticks] { tick(ticks); });
}

void AutoScaler::tick(std::size_t remaining) {
  ++ticks_;
  const std::uint64_t total = load_();
  const std::uint64_t delta = total - last_load_;
  last_load_ = total;
  const std::size_t replicas = std::max<std::size_t>(1, replicas_());
  last_load_per_replica_ =
      static_cast<double>(delta) / static_cast<double>(replicas);

  if (cooldown_ > 0) {
    --cooldown_;
  } else if (config_.scale_up_per_replica > 0.0 &&
             last_load_per_replica_ > config_.scale_up_per_replica &&
             replicas < config_.max_replicas) {
    if (scale_up_ && scale_up_()) {
      ++scale_ups_;
      cooldown_ = config_.cooldown_intervals;
      note_decision(obs::JournalKind::kScaleUp, "scale-up", replicas + 1);
    }
  } else if (config_.scale_down_per_replica > 0.0 &&
             last_load_per_replica_ < config_.scale_down_per_replica &&
             replicas > config_.min_replicas) {
    if (scale_down_ && scale_down_()) {
      ++scale_downs_;
      cooldown_ = config_.cooldown_intervals;
      note_decision(obs::JournalKind::kScaleDown, "scale-down",
                    replicas - 1);
    }
  }

  if (remaining > 1) {
    sim_.schedule_after(config_.interval,
                        [this, remaining] { tick(remaining - 1); });
  }
}

}  // namespace mecdns::mec
