// RFC 1035 wire-format codec with §4.1.4 name compression.
//
// Every DNS message that crosses the simulated network is really encoded to
// and decoded from these bytes, so protocol-level details (compression
// pointers, OPT pseudo-records, truncation of malformed input) behave as
// they would on a real wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dns/message.h"
#include "util/result.h"

namespace mecdns::dns {

/// Encodes a message to wire bytes. Applies name compression to all owner
/// names and to names embedded in NS/CNAME/PTR/SOA RDATA (the RFC 1035
/// "well-known" types; SRV targets are left uncompressed per RFC 2782).
std::vector<std::uint8_t> encode(const Message& message);

/// Like encode(), but returns a view into the thread-local encode arena —
/// valid only until the next encode()/encode_view() on this thread. Send
/// paths that copy the bytes onward anyway (a pooled sim packet buffer, a
/// real sendto()) use this to skip the per-message take() copy entirely.
std::span<const std::uint8_t> encode_view(const Message& message);

/// Decodes wire bytes. Fails (never throws, never reads out of bounds) on
/// truncated input, compression-pointer loops, or structural violations.
util::Result<Message> decode(std::span<const std::uint8_t> wire);

}  // namespace mecdns::dns
