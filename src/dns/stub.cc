#include "dns/stub.h"

#include "obs/trace.h"

namespace mecdns::dns {

namespace {
StubResult result_from_response(const Message& response, simnet::SimTime rtt,
                                int which) {
  StubResult result;
  result.ok = response.header.rcode == RCode::kNoError;
  result.rcode = response.header.rcode;
  result.address = response.first_a();
  result.response = response;
  result.latency = rtt;
  result.answered_by = which;
  if (!result.ok) result.error = to_string(response.header.rcode);
  return result;
}
}  // namespace

StubResolver::StubResolver(simnet::Network& net, simnet::NodeId node,
                           simnet::Endpoint server,
                           DnsTransport::Options options)
    : server_(server), options_(options) {
  transport_ = std::make_unique<DnsTransport>(net, node);
}

StubResolver::StubResolver(netio::Runtime& runtime, simnet::Endpoint server,
                           DnsTransport::Options options)
    : server_(server), options_(options) {
  transport_ = std::make_unique<DnsTransport>(runtime);
}

void StubResolver::resolve(const DnsName& name, RecordType type,
                           Callback callback) {
  if (chase_cnames_ && type == RecordType::kA) {
    callback = chase_wrapper(std::move(callback), max_cname_hops_,
                             simnet::SimTime::zero());
  }
  resolve_traced(name, make_query(0, name, type), std::move(callback));
}

void StubResolver::resolve_traced(const DnsName& name, Message query,
                                  Callback callback) {
  obs::SpanRef span =
      obs::begin_root_span(trace_, "stub", "lookup " + name.to_string());
  if (span.active()) {
    callback = [span, callback = std::move(callback)](const StubResult& r) {
      span.tag("rcode", to_string(r.rcode));
      span.tag("answered_by", std::to_string(r.answered_by));
      if (!r.error.empty()) span.tag("error", r.error);
      // Failed lookups survive any trace-sampling rate (tail keep).
      if (!r.ok) span.keep();
      span.end();
      callback(r);
    };
  }
  // Everything dispatched here — transport sends, timeouts, CNAME chases —
  // inherits the lookup span via the ambient token.
  obs::AmbientSpanGuard ambient(span);
  dispatch(std::move(query), std::move(callback));
}

StubResolver::Callback StubResolver::chase_wrapper(
    Callback callback, int hops_left, simnet::SimTime accumulated) {
  return [this, callback = std::move(callback), hops_left,
          accumulated](const StubResult& result) {
    // Chase only successful answers that end at a CNAME without an address.
    if (!result.ok || result.address.has_value() || hops_left <= 0 ||
        result.response.answers.empty()) {
      StubResult total = result;
      total.latency += accumulated;
      callback(total);
      return;
    }
    const DnsName* target = nullptr;
    for (const auto& rr : result.response.answers) {
      if (const auto* cname = std::get_if<CnameRecord>(&rr.rdata)) {
        target = &cname->target;  // last CNAME in the chain wins
      }
    }
    if (target == nullptr) {
      StubResult total = result;
      total.latency += accumulated;
      callback(total);
      return;
    }
    dispatch(make_query(0, *target, RecordType::kA),
             chase_wrapper(callback, hops_left - 1,
                           accumulated + result.latency));
  };
}

void StubResolver::resolve_with_ecs(const DnsName& name, RecordType type,
                                    const ClientSubnet& ecs,
                                    Callback callback) {
  Message query = make_query(0, name, type);
  query.edns = Edns{};
  query.edns->client_subnet = ecs;
  resolve_traced(name, std::move(query), std::move(callback));
}

void StubResolver::dispatch(Message query, Callback callback) {
  if (!secondary_.has_value()) {
    transport_->query(server_, std::move(query), options_,
                      [callback = std::move(callback)](
                          util::Result<Message> result, simnet::SimTime rtt) {
                        if (!result.ok()) {
                          StubResult failure;
                          failure.error = result.error().message;
                          failure.latency = rtt;
                          callback(failure);
                          return;
                        }
                        callback(result_from_response(result.value(), rtt, 0));
                      });
    return;
  }

  // Multicast mode: race the two servers; first non-REFUSED answer wins.
  // A REFUSED answer (the MEC DNS declining a non-MEC name) is held back in
  // case the other server answers; two losses report the better of the two.
  struct Race {
    bool done = false;
    int failures = 0;
    std::optional<StubResult> refused;
    Callback callback;
  };
  auto race = std::make_shared<Race>();
  race->callback = std::move(callback);

  const auto arm = [this, race](const simnet::Endpoint& server, int which,
                                Message q) {
    transport_->query(
        server, std::move(q), options_,
        [race, which](util::Result<Message> result, simnet::SimTime rtt) {
          if (race->done) return;
          if (result.ok() &&
              result.value().header.rcode != RCode::kRefused) {
            race->done = true;
            race->callback(result_from_response(result.value(), rtt, which));
            return;
          }
          if (result.ok()) {
            race->refused = result_from_response(result.value(), rtt, which);
          }
          if (++race->failures == 2) {
            race->done = true;
            if (race->refused.has_value()) {
              race->callback(*race->refused);
            } else {
              StubResult failure;
              failure.error = "all servers failed";
              failure.latency = rtt;
              race->callback(failure);
            }
          }
        });
  };
  arm(server_, 0, query);
  arm(*secondary_, 1, std::move(query));
}

}  // namespace mecdns::dns
