#include "dns/cache.h"

#include <algorithm>

#include "util/perfcount.h"

namespace mecdns::dns {

namespace {
std::uint32_t min_ttl(const RecordList& records) {
  std::uint32_t ttl = ~std::uint32_t{0};
  for (const auto& rr : records) ttl = std::min(ttl, rr.ttl);
  return records.empty() ? 0 : ttl;
}
}  // namespace

void DnsCache::store(Key key, Entry entry) {
  entry.seq = next_seq_++;
  expiry_heap_.push_back(HeapItem{entry.expires, entry.seq, key});
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), LaterExpiry{});
  entries_[key] = std::move(entry);
  ++stats_.insertions;
}

void DnsCache::insert(const DnsName& name, RecordType type,
                      RecordList records, simnet::SimTime now) {
  const std::uint32_t ttl = min_ttl(records);
  if (ttl == 0 || records.empty()) return;
  evict_if_full();
  Entry entry;
  entry.answer.records = std::move(records);
  entry.inserted = now;
  entry.expires = now + simnet::SimTime::seconds(static_cast<double>(ttl));
  store({name, type}, std::move(entry));
}

void DnsCache::insert_negative(const DnsName& name, RecordType type,
                               RCode rcode, RecordList soa,
                               simnet::SimTime now) {
  std::uint32_t ttl = 0;
  for (const auto& rr : soa) {
    if (const auto* s = std::get_if<SoaRecord>(&rr.rdata)) {
      // RFC 2308: negative TTL = min(SOA TTL, SOA.minimum).
      ttl = std::min(rr.ttl, s->minimum);
    }
  }
  if (ttl == 0) return;
  evict_if_full();
  Entry entry;
  entry.answer.negative = true;
  entry.answer.rcode = rcode;
  entry.answer.soa = std::move(soa);
  entry.inserted = now;
  entry.expires = now + simnet::SimTime::seconds(static_cast<double>(ttl));
  store({name, type}, std::move(entry));
}

std::optional<CachedAnswer> DnsCache::lookup(const DnsName& name,
                                             RecordType type,
                                             simnet::SimTime now) {
  ++util::perf::counters().cache_lookups;
  const auto it = entries_.find({name, type});
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.expires <= now) {
    // With serve-stale on, an expired entry inside the stale window stays
    // resident for lookup_stale(); it is still a miss here so the normal
    // refresh path runs.
    if (!serve_stale_ || it->second.expires + max_stale_ <= now) {
      entries_.erase(it->first);
      ++stats_.expired;
    }
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  stale_active_ = false;
  CachedAnswer answer = it->second.answer;
  const auto elapsed_s = static_cast<std::uint32_t>(
      (now - it->second.inserted).to_seconds());
  for (auto& rr : answer.records) {
    rr.ttl = rr.ttl > elapsed_s ? rr.ttl - elapsed_s : 0;
  }
  return answer;
}

void DnsCache::set_serve_stale(bool enabled, simnet::SimTime max_stale) {
  serve_stale_ = enabled;
  max_stale_ = enabled ? max_stale : simnet::SimTime::zero();
}

std::optional<CachedAnswer> DnsCache::lookup_stale(const DnsName& name,
                                                   RecordType type,
                                                   simnet::SimTime now) {
  if (!serve_stale_) return std::nullopt;
  const auto it = entries_.find({name, type});
  if (it == entries_.end()) return std::nullopt;
  // A live entry is lookup()'s to serve; "stale" strictly means past expiry.
  if (now < it->second.expires) return std::nullopt;
  if (it->second.expires + max_stale_ <= now) {
    entries_.erase(it->first);
    ++stats_.expired;
    return std::nullopt;
  }
  ++stats_.stale_hits;
  if (!stale_active_) {
    stale_active_ = true;
    if (journal_ != nullptr) {
      journal_->record(now, obs::JournalKind::kStaleServe, journal_cell_,
                       "serving stale past expiry",
                       max_stale_.count_nanos() > 0
                           ? static_cast<std::uint64_t>(max_stale_.to_seconds())
                           : 0);
    }
  }
  CachedAnswer answer = it->second.answer;
  // RFC 8767 §4: stale data is served with a short TTL so clients re-try
  // the authoritative path soon.
  constexpr std::uint32_t kStaleTtl = 30;
  for (auto& rr : answer.records) rr.ttl = kStaleTtl;
  return answer;
}

void DnsCache::flush() {
  entries_.clear();
  expiry_heap_.clear();
}

void DnsCache::flush_name(const DnsName& name) {
  // Backward-shift deletion invalidates iteration; collect keys first.
  std::vector<Key> doomed;
  for (const auto& [key, entry] : entries_) {
    if (key.first == name) doomed.push_back(key);
  }
  for (const auto& key : doomed) entries_.erase(key);
}

void DnsCache::evict_if_full() {
  if (entries_.size() < max_entries_) return;
  // Pop heap items until one still names a live entry; stale items (erased
  // or overwritten since they were pushed) are discarded along the way.
  while (!expiry_heap_.empty()) {
    ++stats_.eviction_scan_steps;
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), LaterExpiry{});
    HeapItem item = std::move(expiry_heap_.back());
    expiry_heap_.pop_back();
    const auto it = entries_.find(item.key);
    if (it == entries_.end() || it->second.seq != item.seq) continue;
    entries_.erase(item.key);
    ++stats_.evictions;
    return;
  }
}

}  // namespace mecdns::dns
