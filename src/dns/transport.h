// Client-side DNS-over-UDP transaction layer.
//
// Sends wire-encoded queries through a netio::Runtime (the simulated
// network or a real epoll/UDP event loop), matches responses to pending
// transactions by (id, server, question), and applies
// timeout/retransmission — the machinery under every resolver in this
// library (stub, recursive, forwarding).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dns/message.h"
#include "dns/wire.h"
#include "netio/runtime.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "simnet/context.h"
#include "simnet/network.h"
#include "util/flat_map.h"
#include "util/result.h"
#include "util/rng.h"

namespace mecdns::dns {

class DnsTransport {
 public:
  struct Options {
    simnet::SimTime timeout = simnet::SimTime::millis(2000);
    int max_retries = 0;  ///< retransmissions after the first attempt
    /// On a truncated (TC=1) response, automatically retry once with an
    /// EDNS buffer of `bufsize_on_tc` octets (the UDP analogue of falling
    /// back to TCP). Disabled by setting bufsize_on_tc to 0.
    std::uint16_t bufsize_on_tc = 4096;
    /// DNS-0x20: randomize the case of the outgoing qname and require the
    /// response to echo it byte-exactly, multiplying the work a blind
    /// spoofer must do beyond guessing the 16-bit id.
    bool use_0x20 = false;
    /// Multiplier applied to the retransmission timer after each attempt
    /// (RFC 1035 §4.2.1 suggests exponential backoff; 2.0 doubles per
    /// retry). 1.0 keeps the classic fixed interval.
    double backoff_factor = 1.0;
    /// Cap on the backed-off timer; zero means uncapped.
    simnet::SimTime max_backoff = simnet::SimTime::zero();
    /// Random jitter fraction added to each retransmission timer: the timer
    /// becomes timeout * (1 + U[0, retry_jitter)), decorrelating retry
    /// storms. 0 disables jitter and draws no randomness at all, keeping
    /// default runs bit-identical.
    double retry_jitter = 0.0;
    /// Servers tried in order after the current one fails — exhausts its
    /// retry budget, or answers SERVFAIL (see failover_on_servfail). Each
    /// server gets the full `1 + max_retries` attempt budget.
    std::vector<simnet::Endpoint> fallback_servers;
    /// Treat a SERVFAIL response as server failure: advance to the next
    /// fallback server instead of delivering the error (only meaningful
    /// when fallback_servers is non-empty).
    bool failover_on_servfail = true;
  };

  /// Invoked exactly once per query(): with the response, or with an error
  /// after the final timeout. `rtt` is time from first send to response.
  using Callback =
      std::function<void(util::Result<Message>, simnet::SimTime rtt)>;

  /// Opens an ephemeral UDP socket on `node` of the simulated network
  /// (wraps the network in an internally owned SimRuntime).
  DnsTransport(simnet::Network& net, simnet::NodeId node,
               std::uint64_t id_seed = 1);

  /// Opens an ephemeral datagram socket on `runtime` — sim or live wire,
  /// the transaction machinery is identical.
  explicit DnsTransport(netio::Runtime& runtime, std::uint64_t id_seed = 1);

  DnsTransport(const DnsTransport&) = delete;
  DnsTransport& operator=(const DnsTransport&) = delete;
  ~DnsTransport();

  /// Sends `query` to `server`. A fresh transaction id is assigned
  /// (overwriting query.header.id).
  void query(const simnet::Endpoint& server, Message query,
             const Options& options, Callback callback);

  simnet::Endpoint local_endpoint() const { return socket_->endpoint(); }

  /// Current runtime time (simulated or wall-clock), for callers (e.g.
  /// ForwardPlugin journaling) whose callbacks only receive an RTT.
  simnet::SimTime now() const { return rt_->now(); }

  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t tc_retries() const { return tc_retries_; }
  /// SERVFAIL responses received (distinguished from timeouts in stats).
  std::uint64_t servfails() const { return servfails_; }
  /// Times a transaction switched to a fallback server.
  std::uint64_t failovers() const { return failovers_; }
  /// Queries rejected because all 65535 transaction ids were in flight
  /// (delivered as an immediate error instead of hunting a free id forever).
  std::uint64_t id_exhausted() const { return id_exhausted_; }

  /// Re-points every transaction pending against `from` at `to` and
  /// resends immediately with a fresh retry budget. This is the handoff
  /// fix: when a UE's resolver is switched to a new MEC L-DNS while a
  /// query is in flight, the transaction follows the re-target instead of
  /// waiting out the timeout ladder against a server it can no longer
  /// reach. Returns the number of transactions moved.
  std::size_t retarget_pending(const simnet::Endpoint& from,
                               const simnet::Endpoint& to);
  /// Transactions moved by retarget_pending.
  std::uint64_t retargets() const { return retargets_; }
  /// retarget_pending calls that actually moved something.
  std::uint64_t retarget_batches() const { return retarget_batches_; }

  /// Each non-empty retarget batch becomes a journal event (a = queries
  /// moved). Attach only to low-rate transports (a UE cohort, a health
  /// prober) — the journal records control transitions, not traffic.
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

  /// Test seam: forces the next transaction id, so tests can stage an id
  /// collision with an in-flight query (wrap-around regression).
  void set_next_id(std::uint16_t id) { next_id_ = id; }

 private:
  struct Pending {
    simnet::Endpoint server;
    Message query;
    Options options;
    Callback callback;
    simnet::SimTime first_sent;
    int attempts = 0;
    std::size_t server_index = 0;  ///< next entry of fallback_servers
    std::uint64_t generation = 0;  ///< guards stale timeout events
    /// The armed retry timer, cancelled whenever the transaction re-sends,
    /// completes, or is destroyed. Real cancellation on the live wire; a
    /// no-op under SimRuntime, where the generation guard above keeps stale
    /// firings harmless (and part of the pinned event counts).
    netio::TimerId timer = netio::kNoTimer;
    obs::SpanRef span;             ///< transport span (inert if untraced)
    /// Ambient token at query() time, restored around the callback so
    /// continuations (CNAME chases, next queries) become siblings of this
    /// transaction's span, not children of whatever event delivered it.
    simnet::TraceToken caller;
  };

  void on_packet(const simnet::Packet& packet);
  void send_attempt(std::uint16_t id);
  void arm_timeout(std::uint16_t id, std::uint64_t generation);
  simnet::SimTime retry_interval(const Pending& pending);
  /// Switches to the next fallback server (full retry budget) if one
  /// remains; false once the list is exhausted.
  bool fail_over(std::uint16_t id);

  /// Set by the (Network, NodeId) compatibility constructor, which wraps
  /// the simulated network in a SimRuntime it owns. Null when the caller
  /// supplied the runtime.
  std::unique_ptr<netio::Runtime> owned_runtime_;
  netio::Runtime* rt_;
  netio::DatagramSocket* socket_;
  util::Rng rng_;
  /// Guards scheduled timeouts against running after destruction: the
  /// timer lambdas hold a copy and bail out once the owner is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::uint16_t next_id_;
  std::uint64_t next_generation_ = 1;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t tc_retries_ = 0;
  std::uint64_t servfails_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t retargets_ = 0;
  std::uint64_t retarget_batches_ = 0;
  std::uint64_t id_exhausted_ = 0;
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;
  /// In-flight transactions by id. Touched on every send/receive/timeout,
  /// so it uses the open-addressing flat map; ids are scrambled before
  /// probing so sequential allocation doesn't cluster.
  struct IdHash {
    std::size_t operator()(std::uint16_t id) const {
      std::size_t h = id;
      h ^= h >> 7;
      h *= 0x9e3779b97f4a7c15ULL;
      return h ^ (h >> 32);
    }
  };
  util::FlatHashMap<std::uint16_t, Pending, IdHash> pending_;
};

}  // namespace mecdns::dns
