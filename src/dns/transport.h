// Client-side DNS-over-UDP transaction layer.
//
// Sends wire-encoded queries through the simulated network, matches
// responses to pending transactions by (id, server, question), and applies
// timeout/retransmission — the machinery under every resolver in this
// library (stub, recursive, forwarding).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "dns/message.h"
#include "dns/wire.h"
#include "obs/trace.h"
#include "simnet/context.h"
#include "simnet/network.h"
#include "util/result.h"
#include "util/rng.h"

namespace mecdns::dns {

class DnsTransport {
 public:
  struct Options {
    simnet::SimTime timeout = simnet::SimTime::millis(2000);
    int max_retries = 0;  ///< retransmissions after the first attempt
    /// On a truncated (TC=1) response, automatically retry once with an
    /// EDNS buffer of `bufsize_on_tc` octets (the UDP analogue of falling
    /// back to TCP). Disabled by setting bufsize_on_tc to 0.
    std::uint16_t bufsize_on_tc = 4096;
    /// DNS-0x20: randomize the case of the outgoing qname and require the
    /// response to echo it byte-exactly, multiplying the work a blind
    /// spoofer must do beyond guessing the 16-bit id.
    bool use_0x20 = false;
  };

  /// Invoked exactly once per query(): with the response, or with an error
  /// after the final timeout. `rtt` is time from first send to response.
  using Callback =
      std::function<void(util::Result<Message>, simnet::SimTime rtt)>;

  /// Opens an ephemeral UDP socket on `node`.
  DnsTransport(simnet::Network& net, simnet::NodeId node,
               std::uint64_t id_seed = 1);

  DnsTransport(const DnsTransport&) = delete;
  DnsTransport& operator=(const DnsTransport&) = delete;
  ~DnsTransport();

  /// Sends `query` to `server`. A fresh transaction id is assigned
  /// (overwriting query.header.id).
  void query(const simnet::Endpoint& server, Message query,
             const Options& options, Callback callback);

  simnet::Endpoint local_endpoint() const { return socket_->endpoint(); }

  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t tc_retries() const { return tc_retries_; }

 private:
  struct Pending {
    simnet::Endpoint server;
    Message query;
    Options options;
    Callback callback;
    simnet::SimTime first_sent;
    int attempts = 0;
    std::uint64_t generation = 0;  ///< guards stale timeout events
    obs::SpanRef span;             ///< transport span (inert if untraced)
    /// Ambient token at query() time, restored around the callback so
    /// continuations (CNAME chases, next queries) become siblings of this
    /// transaction's span, not children of whatever event delivered it.
    simnet::TraceToken caller;
  };

  void on_packet(const simnet::Packet& packet);
  void send_attempt(std::uint16_t id);
  void arm_timeout(std::uint16_t id, std::uint64_t generation);

  simnet::Network& net_;
  simnet::UdpSocket* socket_;
  util::Rng rng_;
  /// Guards scheduled timeouts against running after destruction: the
  /// timer lambdas hold a copy and bail out once the owner is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::uint16_t next_id_;
  std::uint64_t next_generation_ = 1;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t tc_retries_ = 0;
  std::map<std::uint16_t, Pending> pending_;
};

}  // namespace mecdns::dns
