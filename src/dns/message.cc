#include "dns/message.h"

#include <sstream>

namespace mecdns::dns {

std::string to_string(RCode rcode) {
  switch (rcode) {
    case RCode::kNoError: return "NOERROR";
    case RCode::kFormErr: return "FORMERR";
    case RCode::kServFail: return "SERVFAIL";
    case RCode::kNxDomain: return "NXDOMAIN";
    case RCode::kNotImp: return "NOTIMP";
    case RCode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(rcode));
}

std::string Question::to_string() const {
  return name.to_string() + " " + dns::to_string(cls) + " " +
         dns::to_string(type);
}

const Question& Message::question() const {
  static const Question kEmpty{};
  return questions.empty() ? kEmpty : questions.front();
}

std::vector<ResourceRecord> Message::answers_of(RecordType type) const {
  std::vector<ResourceRecord> out;
  for (const auto& rr : answers) {
    if (rr.type == type) out.push_back(rr);
  }
  return out;
}

std::optional<simnet::Ipv4Address> Message::first_a() const {
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARecord>(&rr.rdata)) {
      return a->address;
    }
  }
  return std::nullopt;
}

std::string Message::to_string() const {
  std::ostringstream out;
  out << (header.qr ? "response" : "query") << " id=" << header.id
      << " rcode=" << dns::to_string(header.rcode)
      << (header.aa ? " aa" : "") << (header.rd ? " rd" : "")
      << (header.ra ? " ra" : "");
  for (const auto& q : questions) out << "\n  ?" << q.to_string();
  for (const auto& rr : answers) out << "\n  >" << rr.to_string();
  for (const auto& rr : authorities) out << "\n  ^" << rr.to_string();
  for (const auto& rr : additionals) out << "\n  +" << rr.to_string();
  if (edns.has_value() && edns->client_subnet.has_value()) {
    out << "\n  ecs=" << edns->client_subnet->subnet().to_string() << "/"
        << static_cast<int>(edns->client_subnet->scope_prefix);
  }
  return out.str();
}

Message make_query(std::uint16_t id, const DnsName& name, RecordType type,
                   bool recursion_desired) {
  Message msg;
  msg.header.id = id;
  msg.header.qr = false;
  msg.header.rd = recursion_desired;
  msg.questions.push_back(Question{name, type, RecordClass::kIn});
  return msg;
}

Message make_response(const Message& query, RCode rcode) {
  Message msg;
  msg.header.id = query.header.id;
  msg.header.qr = true;
  msg.header.opcode = query.header.opcode;
  msg.header.rd = query.header.rd;
  msg.header.rcode = rcode;
  msg.questions = query.questions;
  return msg;
}

}  // namespace mecdns::dns
