// Client-side stub resolver.
//
// What a UE runs: send the query to the configured L-DNS, wait, measure.
// The configured server can be switched at runtime (the paper's "when an
// end user connects to a particular base station, its target DNS is
// switched to that of the MEC DNS"), and a secondary server can be queried
// in parallel — the paper's multicast workaround for non-MEC domains.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "dns/message.h"
#include "dns/transport.h"

namespace mecdns::obs {
class TraceSink;
}

namespace mecdns::dns {

/// Outcome of a stub resolution, with client-observed latency.
struct StubResult {
  bool ok = false;
  RCode rcode = RCode::kServFail;
  std::optional<simnet::Ipv4Address> address;  ///< first A record, if any
  Message response;                            ///< full response when ok
  simnet::SimTime latency;                     ///< query -> answer at client
  std::string error;                           ///< when !ok
  /// Which configured server produced the accepted answer (0 = primary,
  /// 1 = secondary); meaningful for multicast mode.
  int answered_by = 0;
};

class StubResolver {
 public:
  using Callback = std::function<void(const StubResult&)>;

  StubResolver(simnet::Network& net, simnet::NodeId node,
               simnet::Endpoint server,
               DnsTransport::Options options = {});

  /// Live-wire constructor: what a real client process runs — the same
  /// resolver over an EpollRuntime (or any other Runtime).
  StubResolver(netio::Runtime& runtime, simnet::Endpoint server,
               DnsTransport::Options options = {});

  /// Re-targets the primary DNS server (cellular handoff / MEC attach).
  /// With retarget-in-flight enabled, transactions still pending against
  /// the old server are resent to the new one immediately instead of
  /// timing out against a resolver the UE can no longer reach.
  void set_server(simnet::Endpoint server) {
    if (retarget_in_flight_ && server_ != server) {
      transport_->retarget_pending(server_, server);
    }
    server_ = server;
  }
  simnet::Endpoint server() const { return server_; }

  /// Opt-in for the handoff fix above. Off by default: the fragile
  /// baseline (query stranded until the timeout ladder fires) is exactly
  /// what the mobility benches measure robustness against.
  void set_retarget_in_flight(bool enable) { retarget_in_flight_ = enable; }

  /// The underlying transaction layer (timeout/retransmission counters).
  DnsTransport& transport() { return *transport_; }

  /// Configures a secondary server queried in parallel with the primary
  /// ("have DNS requests be multicast to both MEC DNS and the network's
  /// L-DNS"). The first usable answer wins; REFUSED answers lose to the
  /// other server's answer.
  void set_secondary(std::optional<simnet::Endpoint> server) {
    secondary_ = server;
  }

  /// When enabled, a response whose answer ends at a CNAME with no address
  /// is chased: the stub re-issues the query for the CNAME target (against
  /// the same server set). This is how a client follows a MEC C-DNS's
  /// cascading referral into a parent CDN tier ("C-DNS simply returns the
  /// address of another C-DNS running at a different CDN tier").
  void set_chase_cnames(bool enable, int max_hops = 4) {
    chase_cnames_ = enable;
    max_cname_hops_ = max_hops;
  }

  /// Attaches a trace sink: every subsequent resolve() opens a root
  /// "lookup" span that the whole downstream path (transport, servers,
  /// caches) nests under. nullptr (the default) disables tracing.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Resolves (name, type); invokes callback exactly once.
  void resolve(const DnsName& name, RecordType type, Callback callback);

  /// Resolve with an explicit EDNS Client Subnet attached.
  void resolve_with_ecs(const DnsName& name, RecordType type,
                        const ClientSubnet& ecs, Callback callback);

 private:
  void dispatch(Message query, Callback callback);
  /// Wraps `callback` so that terminal-CNAME answers restart at the target.
  Callback chase_wrapper(Callback callback, int hops_left,
                         simnet::SimTime accumulated);
  /// Opens the root lookup span and wraps `callback` to close it.
  void resolve_traced(const DnsName& name, Message query, Callback callback);

  std::unique_ptr<DnsTransport> transport_;
  simnet::Endpoint server_;
  std::optional<simnet::Endpoint> secondary_;
  DnsTransport::Options options_;
  bool chase_cnames_ = false;
  int max_cname_hops_ = 4;
  bool retarget_in_flight_ = false;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace mecdns::dns
