// DNS message structure (RFC 1035 §4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/edns.h"
#include "dns/name.h"
#include "dns/rr.h"
#include "util/small_vector.h"

namespace mecdns::dns {

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kStatus = 2,
  kNotify = 4,
  kUpdate = 5,
};

enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string to_string(RCode rcode);

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  ///< false = query, true = response
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = false;  ///< recursion desired
  bool ra = false;  ///< recursion available
  RCode rcode = RCode::kNoError;

  friend bool operator==(const Header&, const Header&) = default;
};

struct Question {
  DnsName name;
  RecordType type = RecordType::kA;
  RecordClass cls = RecordClass::kIn;

  friend bool operator==(const Question&, const Question&) = default;
  std::string to_string() const;
};

/// Message sections hold their first record inline (typical messages carry
/// 1-3 records; the single-record case is by far the most common), spilling
/// to the heap only for larger messages.
using QuestionList = util::SmallVector<Question, 1>;
using RecordList = util::SmallVector<ResourceRecord, 1>;

struct Message {
  Header header;
  QuestionList questions;
  RecordList answers;
  RecordList authorities;
  RecordList additionals;
  /// Parsed EDNS(0) state (from/for the OPT pseudo-record). When set, the
  /// codec emits an OPT record in additionals; on decode the OPT record is
  /// lifted out of additionals into this field.
  std::optional<Edns> edns;

  /// First question, or a default Question if none (callers that require a
  /// question should check questions.empty() themselves).
  const Question& question() const;

  /// All answer records of the given type.
  std::vector<ResourceRecord> answers_of(RecordType type) const;

  /// First A-record address in the answer section, if any.
  std::optional<simnet::Ipv4Address> first_a() const;

  std::string to_string() const;
};

/// Builds a recursive-desired query for (name, type) with the given id.
Message make_query(std::uint16_t id, const DnsName& name, RecordType type,
                   bool recursion_desired = true);

/// Builds a response skeleton echoing the query's id and question.
Message make_response(const Message& query, RCode rcode = RCode::kNoError);

}  // namespace mecdns::dns
