#include "dns/zone.h"

#include <stdexcept>

namespace mecdns::dns {

std::string to_string(LookupStatus status) {
  switch (status) {
    case LookupStatus::kSuccess: return "SUCCESS";
    case LookupStatus::kCname: return "CNAME";
    case LookupStatus::kDelegation: return "DELEGATION";
    case LookupStatus::kNoData: return "NODATA";
    case LookupStatus::kNxDomain: return "NXDOMAIN";
    case LookupStatus::kOutOfZone: return "OUTOFZONE";
  }
  return "?";
}

util::Result<void> Zone::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(origin_)) {
    return util::Err("record " + rr.name.to_string() + " outside zone " +
                     origin_.to_string());
  }
  if (rr.type == RecordType::kCname) {
    // A CNAME must be the only data at its owner (SOA/NS checks included).
    for (const auto& [key, rrs] : records_) {
      if (key.first == rr.name) {
        return util::Err("CNAME at " + rr.name.to_string() +
                         " conflicts with existing " + to_string(key.second));
      }
    }
  } else if (!find(rr.name, RecordType::kCname).empty()) {
    return util::Err("data at " + rr.name.to_string() +
                     " conflicts with existing CNAME");
  }
  records_[{rr.name, rr.type}].push_back(std::move(rr));
  return util::Ok();
}

void Zone::must_add(ResourceRecord rr) {
  auto result = add(std::move(rr));
  if (!result.ok()) throw std::invalid_argument(result.error().message);
}

std::size_t Zone::remove(const DnsName& name, RecordType type) {
  const auto it = records_.find({name, type});
  if (it == records_.end()) return 0;
  const std::size_t n = it->second.size();
  records_.erase(it);
  return n;
}

std::size_t Zone::remove_name(const DnsName& name) {
  std::size_t n = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->first.first == name) {
      n += it->second.size();
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  return n;
}

std::vector<ResourceRecord> Zone::find(const DnsName& name,
                                       RecordType type) const {
  const auto it = records_.find({name, type});
  return it == records_.end() ? std::vector<ResourceRecord>{} : it->second;
}

bool Zone::name_exists(const DnsName& name) const {
  // Records are ordered by (name, type); any key with matching name means
  // the name exists. An empty non-terminal (a name that only exists as an
  // ancestor of record owners) also "exists" per RFC 4592.
  for (const auto& [key, rrs] : records_) {
    if (key.first == name || key.first.is_subdomain_of(name)) return true;
  }
  return false;
}

const std::vector<ResourceRecord>* Zone::find_delegation(const DnsName& name,
                                                         DnsName* cut) const {
  // Walk from just below the apex down toward `name`, looking for NS RRsets
  // at intermediate names (zone cuts). NS at the apex is authoritative data,
  // not a cut.
  const std::size_t apex_labels = origin_.label_count();
  const std::size_t name_labels = name.label_count();
  if (name_labels <= apex_labels) return nullptr;
  for (std::size_t take = apex_labels + 1; take <= name_labels; ++take) {
    // Candidate = last `take` labels of `name`.
    DnsName candidate = name.suffix(take);
    const auto it = records_.find({candidate, RecordType::kNs});
    if (it != records_.end()) {
      if (cut != nullptr) *cut = std::move(candidate);
      return &it->second;
    }
  }
  return nullptr;
}

LookupResult Zone::lookup(const DnsName& name, RecordType type) const {
  LookupResult result;
  if (!name.is_subdomain_of(origin_)) {
    result.status = LookupStatus::kOutOfZone;
    return result;
  }

  // Zone cut between the apex and the name => referral.
  DnsName cut;
  if (const auto* ns_set = find_delegation(name, &cut);
      ns_set != nullptr && !(name == cut && type == RecordType::kNs)) {
    result.status = LookupStatus::kDelegation;
    result.records = *ns_set;
    for (const auto& rr : *ns_set) {
      if (const auto* ns = std::get_if<NsRecord>(&rr.rdata)) {
        auto glue = find(ns->nameserver, RecordType::kA);
        result.glue.insert(result.glue.end(), glue.begin(), glue.end());
      }
    }
    return result;
  }

  const auto answer_at = [&](const DnsName& owner,
                             bool wildcard) -> bool {
    // CNAME indirection (unless the query is for the CNAME itself or ANY).
    if (type != RecordType::kCname && type != RecordType::kAny) {
      auto cname = find(owner, RecordType::kCname);
      if (!cname.empty()) {
        result.status = LookupStatus::kCname;
        result.records = std::move(cname);
        if (wildcard) {
          for (auto& rr : result.records) rr.name = name;
          result.from_wildcard = true;
        }
        return true;
      }
    }
    if (type == RecordType::kAny) {
      for (const auto& [key, rrs] : records_) {
        if (key.first == owner) {
          result.records.insert(result.records.end(), rrs.begin(), rrs.end());
        }
      }
    } else {
      result.records = find(owner, type);
    }
    if (!result.records.empty()) {
      result.status = LookupStatus::kSuccess;
      if (wildcard) {
        for (auto& rr : result.records) rr.name = name;
        result.from_wildcard = true;
      }
      return true;
    }
    return false;
  };

  if (answer_at(name, /*wildcard=*/false)) return result;

  if (name_exists(name)) {
    result.status = LookupStatus::kNoData;
    result.soa = find(origin_, RecordType::kSoa);
    return result;
  }

  // Wildcard synthesis (RFC 4592): the source of synthesis is the "*" child
  // of the closest encloser. Try each ancestor from the closest first.
  DnsName ancestor = name.parent();
  while (ancestor.label_count() + 1 > origin_.label_count()) {
    auto wildcard = ancestor.with_prefix("*");
    if (wildcard.ok() && answer_at(wildcard.value(), /*wildcard=*/true)) {
      return result;
    }
    if (name_exists(ancestor)) break;  // closest encloser reached; stop
    if (ancestor.is_root()) break;
    ancestor = ancestor.parent();
  }

  result.status = LookupStatus::kNxDomain;
  result.soa = find(origin_, RecordType::kSoa);
  return result;
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [key, rrs] : records_) n += rrs.size();
  return n;
}

std::vector<ResourceRecord> Zone::all() const {
  std::vector<ResourceRecord> out;
  for (const auto& [key, rrs] : records_) {
    out.insert(out.end(), rrs.begin(), rrs.end());
  }
  return out;
}

}  // namespace mecdns::dns
