// EDNS(0) (RFC 6891) and the Client Subnet option (RFC 7871).
//
// ECS is central to the paper: it is the mechanism proposed elsewhere to fix
// DNS localization, and §4 evaluates it (finding it changes latency by
// ~1.01x/1.08x/0.95x while the MEC design sidesteps the need for it).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "simnet/ip.h"
#include "util/result.h"

namespace mecdns::dns {

/// EDNS Client Subnet option (RFC 7871). IPv4-only in this library.
struct ClientSubnet {
  simnet::Ipv4Address address;
  std::uint8_t source_prefix = 24;  ///< prefix length disclosed by the client
  std::uint8_t scope_prefix = 0;    ///< prefix length the answer is valid for

  /// The disclosed subnet as a CIDR (address truncated to source_prefix).
  simnet::Cidr subnet() const {
    return simnet::Cidr(address, source_prefix);
  }

  friend bool operator==(const ClientSubnet&, const ClientSubnet&) = default;
};

/// Parsed EDNS(0) state carried by a message's OPT pseudo-record.
struct Edns {
  std::uint16_t udp_payload_size = 1232;
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  std::optional<ClientSubnet> client_subnet;

  friend bool operator==(const Edns&, const Edns&) = default;
};

/// Encodes the EDNS options (currently: ECS) into OPT RDATA bytes.
std::vector<std::uint8_t> encode_edns_options(const Edns& edns);

/// Decodes OPT RDATA bytes into the option fields of `edns` (payload size /
/// rcode / version / DO come from the OPT record's fixed fields, handled by
/// the wire codec).
util::Result<void> decode_edns_options(
    const std::vector<std::uint8_t>& rdata, Edns& edns);

}  // namespace mecdns::dns
