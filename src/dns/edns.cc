#include "dns/edns.h"

#include "util/bytes.h"

namespace mecdns::dns {

namespace {
constexpr std::uint16_t kOptionClientSubnet = 8;  // RFC 7871
constexpr std::uint16_t kFamilyIpv4 = 1;
}  // namespace

std::vector<std::uint8_t> encode_edns_options(const Edns& edns) {
  util::ByteWriter writer;
  if (edns.client_subnet.has_value()) {
    const ClientSubnet& ecs = *edns.client_subnet;
    // ADDRESS is truncated to the minimum octets covering SOURCE PREFIX,
    // with unused low bits zeroed (RFC 7871 §6).
    const std::size_t addr_octets = (ecs.source_prefix + 7) / 8;
    const std::uint32_t masked =
        ecs.source_prefix == 0
            ? 0
            : ecs.address.value() &
                  (~std::uint32_t{0} << (32 - ecs.source_prefix));
    writer.u16(kOptionClientSubnet);
    writer.u16(static_cast<std::uint16_t>(4 + addr_octets));
    writer.u16(kFamilyIpv4);
    writer.u8(ecs.source_prefix);
    writer.u8(ecs.scope_prefix);
    for (std::size_t i = 0; i < addr_octets; ++i) {
      writer.u8(static_cast<std::uint8_t>(masked >> (24 - 8 * i)));
    }
  }
  return writer.take();
}

util::Result<void> decode_edns_options(
    const std::vector<std::uint8_t>& rdata, Edns& edns) {
  util::ByteReader reader(rdata);
  while (!reader.at_end()) {
    auto code = reader.u16();
    if (!code.ok()) return code.error();
    auto length = reader.u16();
    if (!length.ok()) return length.error();
    auto body = reader.bytes(length.value());
    if (!body.ok()) return body.error();
    if (code.value() != kOptionClientSubnet) continue;  // skip unknown options

    util::ByteReader option(body.value());
    auto family = option.u16();
    if (!family.ok()) return family.error();
    auto source = option.u8();
    if (!source.ok()) return source.error();
    auto scope = option.u8();
    if (!scope.ok()) return scope.error();
    if (family.value() != kFamilyIpv4) {
      return util::Err("ECS: unsupported address family " +
                       std::to_string(family.value()));
    }
    if (source.value() > 32 || scope.value() > 32) {
      return util::Err("ECS: prefix length exceeds 32");
    }
    const std::size_t expected_octets = (source.value() + 7) / 8;
    if (option.remaining() != expected_octets) {
      return util::Err("ECS: address length mismatch");
    }
    std::uint32_t addr = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      std::uint8_t octet = 0;
      if (i < expected_octets) {
        auto b = option.u8();
        if (!b.ok()) return b.error();
        octet = b.value();
      }
      addr = (addr << 8) | octet;
    }
    ClientSubnet ecs;
    ecs.address = simnet::Ipv4Address(addr);
    ecs.source_prefix = source.value();
    ecs.scope_prefix = scope.value();
    edns.client_subnet = ecs;
  }
  return util::Ok();
}

}  // namespace mecdns::dns
