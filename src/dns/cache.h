// TTL-aware resolver cache with negative caching (RFC 2308).
//
// The paper's Figure 2 commentary leans on caching behaviour ("the A records
// TTL never expires at L-DNS and the cached A records are used for lookup"),
// and CDN routers defeat caching with tiny TTLs so every query reaches the
// C-DNS — both effects fall out of an honest TTL cache.
//
// Storage is an open-addressing flat hash (the lookup is on every query's
// hot path) plus a lazy-deletion min-heap ordered by expiry, which makes
// full-cache eviction O(log n) instead of a linear scan over all entries.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dns/message.h"
#include "dns/name.h"
#include "dns/rr.h"
#include "obs/journal.h"
#include "simnet/time.h"
#include "util/flat_map.h"

namespace mecdns::dns {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired = 0;
  std::uint64_t stale_hits = 0;  ///< RFC 8767 serve-stale answers
  /// Expiry-heap items examined while choosing eviction victims. With the
  /// heap this stays O(log n) amortized per eviction; a regression back to
  /// scanning would show up here as ~size() steps per eviction.
  std::uint64_t eviction_scan_steps = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A positive or negative cached answer.
struct CachedAnswer {
  bool negative = false;
  RCode rcode = RCode::kNoError;  ///< for negative entries
  RecordList records;             ///< TTLs adjusted to remaining
  RecordList soa;                 ///< for negative entries
};

/// Cache keyed by (qname, qtype). Entries expire by wall (simulated) time;
/// when full, the entry closest to expiry is evicted.
class DnsCache {
 public:
  explicit DnsCache(std::size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// Caches a positive RRset. TTL used is the minimum across `records`;
  /// TTL 0 answers are not cached (per RFC 1035 semantics).
  void insert(const DnsName& name, RecordType type, RecordList records,
              simnet::SimTime now);

  /// Caches a negative answer (NXDOMAIN or NODATA) for the SOA minimum TTL.
  void insert_negative(const DnsName& name, RecordType type, RCode rcode,
                       RecordList soa, simnet::SimTime now);

  /// Looks up a live entry; returns records with decremented TTLs.
  std::optional<CachedAnswer> lookup(const DnsName& name, RecordType type,
                                     simnet::SimTime now);

  /// RFC 8767 serve-stale: retain expired entries for `max_stale` past
  /// expiry so lookup_stale() can answer while the authoritative path is
  /// failing. Off by default; when off, behaviour is the classic
  /// erase-on-expiry cache.
  void set_serve_stale(bool enabled,
                       simnet::SimTime max_stale = simnet::SimTime::seconds(
                           86400));  // RFC 8767 §5 suggested ceiling: 1 day
  bool serve_stale_enabled() const { return serve_stale_; }

  /// Looks up an entry within the stale window (expired but retained).
  /// Records are served with the RFC 8767 §4 recommended 30-second TTL.
  /// Returns nullopt when serve-stale is off, there is no entry, or the
  /// entry aged past max_stale.
  std::optional<CachedAnswer> lookup_stale(const DnsName& name,
                                           RecordType type,
                                           simnet::SimTime now);

  /// Drops every entry (used when a resolver is re-targeted on handoff).
  void flush();

  /// Drops entries for one name.
  void flush_name(const DnsName& name);

  std::size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

  /// Journals the *edge into* serve-stale operation (the first stale
  /// answer after any fresh hit), not every stale hit: entering RFC 8767
  /// territory is the control-plane fact that the authoritative path is
  /// unreachable — and it is often the only detectable reaction a
  /// loss-burst fault provokes.
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

 private:
  struct Entry {
    CachedAnswer answer;
    simnet::SimTime inserted;
    simnet::SimTime expires;
    std::uint64_t seq = 0;  ///< stamp matching the live expiry-heap item
  };
  using Key = std::pair<DnsName, RecordType>;

  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return k.first.hash() * 31 + static_cast<std::size_t>(k.second);
    }
  };

  /// Lazy-deletion heap item; stale when the entry was erased or
  /// overwritten (seq mismatch) since this item was pushed.
  struct HeapItem {
    simnet::SimTime expires;
    std::uint64_t seq = 0;
    Key key;
  };
  struct LaterExpiry {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.expires != b.expires) return a.expires > b.expires;
      return a.seq > b.seq;
    }
  };

  void evict_if_full();
  void store(Key key, Entry entry);

  std::size_t max_entries_;
  bool serve_stale_ = false;
  simnet::SimTime max_stale_ = simnet::SimTime::zero();
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;
  /// True between the first stale answer and the next fresh hit.
  bool stale_active_ = false;
  std::uint64_t next_seq_ = 1;
  util::FlatHashMap<Key, Entry, KeyHash> entries_;
  std::vector<HeapItem> expiry_heap_;  ///< min-heap by (expires, seq)
  CacheStats stats_;
};

}  // namespace mecdns::dns
