#include "dns/server.h"

#include <algorithm>

#include "netio/sim_runtime.h"
#include "util/log.h"
#include "util/perfcount.h"

namespace mecdns::dns {

DnsServer::DnsServer(simnet::Network& net, simnet::NodeId node,
                     std::string name, simnet::LatencyModel processing_delay,
                     simnet::Ipv4Address addr)
    : owned_runtime_(std::make_unique<netio::SimRuntime>(net, node)),
      rt_(owned_runtime_.get()), node_(node), name_(std::move(name)),
      processing_delay_(std::move(processing_delay)),
      rng_(0xd5a79147930aa725ULL ^ (static_cast<std::uint64_t>(node) << 17)) {
  socket_ = rt_->open_socket(
      kDnsPort, [this](const simnet::Packet& packet) { on_packet(packet); },
      addr);
}

DnsServer::DnsServer(netio::Runtime& runtime, std::string name,
                     simnet::LatencyModel processing_delay, std::uint16_t port,
                     std::uint64_t seed, simnet::Ipv4Address addr)
    : rt_(&runtime), name_(std::move(name)),
      processing_delay_(std::move(processing_delay)),
      rng_(0xd5a79147930aa725ULL ^ (seed << 17)) {
  socket_ = rt_->open_socket(
      port, [this](const simnet::Packet& packet) { on_packet(packet); }, addr);
}

DnsServer::~DnsServer() {
  *alive_ = false;
  rt_->close_socket(socket_);
}

void DnsServer::on_packet(const simnet::Packet& packet) {
  auto decoded = decode(packet.payload);
  if (!decoded.ok() || decoded.value().header.qr ||
      decoded.value().questions.empty()) {
    ++stats_.malformed;
    return;
  }
  ++stats_.queries;
  ++util::perf::counters().dns_queries_served;

  QueryContext ctx;
  ctx.client = packet.src;
  ctx.received = rt_->now();

  // When the delivering packet carries a trace (the client's transport
  // span is ambient), open a serve span under it: one slice per query,
  // named after this server, covering queueing + processing + upstreams.
  obs::SpanRef span = obs::begin_span(
      name_, "serve " + decoded.value().questions.front().name.to_string());

  // RFC 1035 §4.2.1 / RFC 6891: the client's receive buffer is 512 octets
  // unless it advertised more via EDNS.
  const std::size_t payload_limit =
      decoded.value().edns.has_value()
          ? std::max<std::size_t>(512, decoded.value().edns->udp_payload_size)
          : 512;

  const simnet::SimTime delay =
      processing_delay_.sample(rng_) + extra_processing_;
  // The responder captures where to send the reply; handle() may hold it
  // across its own upstream queries.
  Responder respond = [this, reply_to = packet.src, payload_limit,
                       span](Message response) {
    ++stats_.responses;
    switch (response.header.rcode) {
      case RCode::kRefused: ++stats_.refused; break;
      case RCode::kNxDomain: ++stats_.nxdomain; break;
      case RCode::kServFail: ++stats_.servfail; break;
      default: break;
    }
    span.tag("rcode", to_string(response.header.rcode));
    // The reply is sent straight from the encoder's arena (the socket
    // copies into a pooled buffer / the real wire) — no per-response
    // vector.
    std::span<const std::uint8_t> wire = encode_view(response);
    if (wire.size() > payload_limit) {
      // Truncate per RFC 2181 §9: set TC and drop the record sections; the
      // client re-queries with a larger EDNS buffer (or TCP, not modelled).
      ++stats_.truncated;
      response.header.tc = true;
      response.answers.clear();
      response.authorities.clear();
      response.additionals.clear();
      wire = encode_view(response);
    }
    socket_->send(reply_to, wire);
    span.end();
  };

  if (workers_ == 0) {
    // Idealized server: every query gets its own processing slot.
    obs::AmbientSpanGuard ambient(span);
    rt_->schedule_after(
        delay, [this, alive = alive_, query = std::move(decoded.value()), ctx,
                respond = std::move(respond)]() mutable {
          if (!*alive) return;
          handle(query, ctx, std::move(respond));
        });
    return;
  }
  enqueue(Work{std::move(decoded.value()), ctx, std::move(respond), span});
}

void DnsServer::set_service_capacity(std::size_t workers,
                                     std::size_t max_queue) {
  workers_ = workers;
  max_queue_ = max_queue;
}

void DnsServer::enqueue(Work work) {
  if (work_queue_.size() >= max_queue_) {
    ++dropped_overflow_;
    MECDNS_LOG(kWarn, name_) << "queue full (" << max_queue_
                             << "), shedding query";
    work.span.tag("outcome", "shed");
    work.span.end();
    return;
  }
  work_queue_.push_back(std::move(work));
  if (work_queue_.size() > max_queue_depth_) {
    max_queue_depth_ = work_queue_.size();
  }
  pump();
}

void DnsServer::pump() {
  while (busy_ < workers_ && !work_queue_.empty()) {
    Work work = std::move(work_queue_.front());
    work_queue_.pop_front();
    ++busy_;
    const simnet::SimTime delay =
        processing_delay_.sample(rng_) + extra_processing_;
    // pump() runs under whatever event freed the worker; restore the
    // queued query's own serve span before scheduling its processing.
    obs::AmbientSpanGuard ambient(work.span);
    rt_->schedule_after(
        delay, [this, alive = alive_, work = std::move(work)]() mutable {
          if (!*alive) return;
          // The worker is released when processing ends; any wait for
          // upstream answers inside handle() is I/O, not CPU.
          handle(work.query, work.ctx, std::move(work.respond));
          --busy_;
          pump();
        });
  }
}

AuthoritativeServer::AuthoritativeServer(simnet::Network& net,
                                         simnet::NodeId node, std::string name,
                                         simnet::LatencyModel processing_delay,
                                         simnet::Ipv4Address addr)
    : DnsServer(net, node, std::move(name), std::move(processing_delay),
                addr) {}

AuthoritativeServer::AuthoritativeServer(netio::Runtime& runtime,
                                         std::string name,
                                         simnet::LatencyModel processing_delay,
                                         std::uint16_t port, std::uint64_t seed,
                                         simnet::Ipv4Address addr)
    : DnsServer(runtime, std::move(name), std::move(processing_delay), port,
                seed, addr) {}

Zone& AuthoritativeServer::add_zone(DnsName origin) {
  zones_.emplace_back(std::move(origin));
  return zones_.back();
}

Zone* AuthoritativeServer::find_zone(const DnsName& name) {
  Zone* best = nullptr;
  for (auto& zone : zones_) {
    if (!name.is_subdomain_of(zone.origin())) continue;
    if (best == nullptr ||
        zone.origin().label_count() > best->origin().label_count()) {
      best = &zone;
    }
  }
  return best;
}

const Zone* AuthoritativeServer::find_zone(const DnsName& name) const {
  return const_cast<AuthoritativeServer*>(this)->find_zone(name);
}

void AuthoritativeServer::handle(const Message& query, const QueryContext& ctx,
                                 Responder respond) {
  (void)ctx;
  const Question& q = query.question();
  Zone* zone = find_zone(q.name);
  if (zone == nullptr) {
    respond(make_response(query, RCode::kRefused));
    return;
  }

  Message response = make_response(query);
  response.header.aa = true;
  if (query.edns.has_value()) {
    // Echo EDNS; an authoritative server that does not use ECS reports
    // scope 0 ("answer valid everywhere"), per RFC 7871 §7.2.1.
    response.edns = Edns{};
    if (query.edns->client_subnet.has_value()) {
      ClientSubnet ecs = *query.edns->client_subnet;
      ecs.scope_prefix = 0;
      response.edns->client_subnet = ecs;
    }
  }

  // Chase in-zone CNAME chains, bounded to defeat loops.
  DnsName qname = q.name;
  for (int depth = 0; depth < 8; ++depth) {
    LookupResult result = zone->lookup(qname, q.type);
    switch (result.status) {
      case LookupStatus::kSuccess:
        if (rotate_answers_ && result.records.size() > 1) {
          const std::size_t shift = rotation_++ % result.records.size();
          std::rotate(result.records.begin(),
                      result.records.begin() + static_cast<std::ptrdiff_t>(shift),
                      result.records.end());
        }
        response.answers.insert(response.answers.end(), result.records.begin(),
                                result.records.end());
        respond(std::move(response));
        return;
      case LookupStatus::kCname: {
        response.answers.insert(response.answers.end(), result.records.begin(),
                                result.records.end());
        const auto* cname =
            std::get_if<CnameRecord>(&result.records.front().rdata);
        if (cname == nullptr) {
          respond(make_response(query, RCode::kServFail));
          return;
        }
        qname = cname->target;
        Zone* next_zone = find_zone(qname);
        if (next_zone == nullptr) {
          // Target is out of our authority: the client/resolver restarts.
          respond(std::move(response));
          return;
        }
        zone = next_zone;
        continue;
      }
      case LookupStatus::kDelegation:
        response.header.aa = false;
        response.authorities.insert(response.authorities.end(),
                                    result.records.begin(),
                                    result.records.end());
        response.additionals.insert(response.additionals.end(),
                                    result.glue.begin(), result.glue.end());
        respond(std::move(response));
        return;
      case LookupStatus::kNoData:
        response.authorities.insert(response.authorities.end(),
                                    result.soa.begin(), result.soa.end());
        respond(std::move(response));
        return;
      case LookupStatus::kNxDomain:
        response.header.rcode = RCode::kNxDomain;
        response.authorities.insert(response.authorities.end(),
                                    result.soa.begin(), result.soa.end());
        respond(std::move(response));
        return;
      case LookupStatus::kOutOfZone:
        respond(make_response(query, RCode::kRefused));
        return;
    }
  }
  respond(make_response(query, RCode::kServFail));  // CNAME chain too deep
}

}  // namespace mecdns::dns
