#include "dns/plugin.h"

#include <utility>

#include "obs/trace.h"

namespace mecdns::dns {

// --- ZonePlugin --------------------------------------------------------------

void ZonePlugin::serve(const PluginContext& ctx, Respond respond, Next next) {
  const Question& q = ctx.query.question();
  if (!q.name.is_subdomain_of(zone_->origin())) {
    next(std::move(respond));
    return;
  }
  Message response = make_response(ctx.query);
  response.header.aa = true;

  DnsName qname = q.name;
  for (int depth = 0; depth < 8; ++depth) {
    const LookupResult result = zone_->lookup(qname, q.type);
    switch (result.status) {
      case LookupStatus::kSuccess:
      case LookupStatus::kCname:
        response.answers.insert(response.answers.end(), result.records.begin(),
                                result.records.end());
        if (result.status == LookupStatus::kCname) {
          const auto* cname =
              std::get_if<CnameRecord>(&result.records.front().rdata);
          if (cname != nullptr &&
              cname->target.is_subdomain_of(zone_->origin())) {
            qname = cname->target;
            continue;
          }
        }
        respond(std::move(response));
        return;
      case LookupStatus::kDelegation:
        response.header.aa = false;
        response.authorities.insert(response.authorities.end(),
                                    result.records.begin(),
                                    result.records.end());
        response.additionals.insert(response.additionals.end(),
                                    result.glue.begin(), result.glue.end());
        respond(std::move(response));
        return;
      case LookupStatus::kNoData:
        response.authorities.insert(response.authorities.end(),
                                    result.soa.begin(), result.soa.end());
        respond(std::move(response));
        return;
      case LookupStatus::kNxDomain:
        response.header.rcode = RCode::kNxDomain;
        response.authorities.insert(response.authorities.end(),
                                    result.soa.begin(), result.soa.end());
        respond(std::move(response));
        return;
      case LookupStatus::kOutOfZone:
        next(std::move(respond));
        return;
    }
  }
  respond(make_response(ctx.query, RCode::kServFail));
}

// --- ForwardPlugin -----------------------------------------------------------

ForwardPlugin::ForwardPlugin(DnsName match,
                             std::vector<simnet::Endpoint> upstreams,
                             DnsTransport& transport,
                             DnsTransport::Options options)
    : match_(std::move(match)), upstreams_(std::move(upstreams)),
      transport_(transport), options_(options) {
  if (upstreams_.empty()) {
    throw std::invalid_argument("ForwardPlugin requires at least one upstream");
  }
}

void ForwardPlugin::serve(const PluginContext& ctx, Respond respond,
                          Next next) {
  const Question& q = ctx.query.question();
  if (!q.name.is_subdomain_of(match_)) {
    next(std::move(respond));
    return;
  }
  ++forwarded_;
  Message upstream_query = ctx.query;
  if (add_ecs_ && (!upstream_query.edns.has_value() ||
                   !upstream_query.edns->client_subnet.has_value())) {
    if (!upstream_query.edns.has_value()) upstream_query.edns = Edns{};
    ClientSubnet ecs;
    ecs.address = ctx.net.client.addr;
    ecs.source_prefix = ecs_prefix_;
    upstream_query.edns->client_subnet = ecs;
  }
  try_upstream(std::move(upstream_query), ctx.query.header.id, 0,
               std::move(respond));
}

void ForwardPlugin::try_upstream(Message upstream_query,
                                 std::uint16_t client_id, std::size_t attempt,
                                 Respond respond) {
  // Sequential policy starts every query at the primary; round-robin
  // advances the starting upstream once per client query. Failover
  // attempts walk onward from the chosen base in both policies.
  if (policy_ == ForwardPolicy::kRoundRobin && attempt == 0) {
    ++next_upstream_;
  }
  const std::size_t base =
      policy_ == ForwardPolicy::kSequential ? 0 : next_upstream_;
  const simnet::Endpoint upstream =
      upstreams_[(base + attempt) % upstreams_.size()];
  transport_.query(
      upstream, upstream_query, options_,
      [this, upstream_query, client_id, attempt,
       respond = std::move(respond)](util::Result<Message> result,
                                     simnet::SimTime /*rtt*/) mutable {
        // The callback's SimTime is the transaction RTT, not a clock
        // reading — journal stamps must come from the transport's clock.
        const auto note_failover = [this] {
          if (journal_ != nullptr && !journal_failing_) {
            journal_failing_ = true;
            journal_->record(transport_.now(), obs::JournalKind::kLdnsFailover,
                             journal_cell_, "forward: upstream failover");
          }
        };
        if (!result.ok()) {
          ++upstream_failures_;
          // Fail over to the next configured upstream, if any remain.
          if (attempt + 1 < upstreams_.size()) {
            ++failovers_;
            note_failover();
            try_upstream(std::move(upstream_query), client_id, attempt + 1,
                         std::move(respond));
            return;
          }
          Message failure;
          failure.header.id = client_id;
          failure.header.qr = true;
          failure.header.rcode = RCode::kServFail;
          failure.questions = upstream_query.questions;
          respond(std::move(failure));
          return;
        }
        Message response = std::move(result.value());
        // A SERVFAIL answer means the upstream is up but failing; with
        // servfail failover enabled it is treated like a dead upstream.
        if (failover_on_servfail_ &&
            response.header.rcode == RCode::kServFail &&
            attempt + 1 < upstreams_.size()) {
          ++upstream_failures_;
          ++failovers_;
          ++servfail_failovers_;
          note_failover();
          try_upstream(std::move(upstream_query), client_id, attempt + 1,
                       std::move(respond));
          return;
        }
        if (attempt == 0 && journal_ != nullptr && journal_failing_) {
          journal_failing_ = false;
          journal_->record(transport_.now(), obs::JournalKind::kLdnsRestore,
                           journal_cell_, "forward: primary recovered");
        }
        response.header.id = client_id;
        respond(std::move(response));
      });
}

// --- CachePlugin -------------------------------------------------------------

void CachePlugin::serve(const PluginContext& ctx, Respond respond, Next next) {
  const Question& q = ctx.query.question();
  const simnet::SimTime now = ctx.net.received;
  auto cached = cache_->lookup(q.name, q.type, now);
  obs::ambient_span().tag("cache", cached.has_value() ? "hit" : "miss");
  if (cached.has_value()) {
    Message response = make_response(
        ctx.query, cached->negative ? cached->rcode : RCode::kNoError);
    response.answers = cached->records;
    response.authorities = cached->soa;
    respond(std::move(response));
    return;
  }
  next([this, q, query = ctx.query, now,
        respond = std::move(respond)](Message response) {
    if (response.header.rcode == RCode::kNoError &&
        !response.answers.empty()) {
      cache_->insert(q.name, q.type, response.answers, now);
    } else if (response.header.rcode == RCode::kNxDomain ||
               (response.header.rcode == RCode::kNoError &&
                response.answers.empty())) {
      cache_->insert_negative(q.name, q.type, response.header.rcode,
                              response.authorities, now);
    } else if (response.header.rcode == RCode::kServFail) {
      // RFC 8767: the authoritative path is failing — prefer a stale
      // answer (if the cache retains one) over propagating the failure.
      if (auto stale = cache_->lookup_stale(q.name, q.type, now)) {
        ++stale_served_;
        obs::ambient_span().tag("cache", "stale");
        Message rescued = make_response(
            query, stale->negative ? stale->rcode : RCode::kNoError);
        rescued.answers = stale->records;
        rescued.authorities = stale->soa;
        respond(std::move(rescued));
        return;
      }
    }
    respond(std::move(response));
  });
}

// --- RewritePlugin -----------------------------------------------------------

void RewritePlugin::serve(const PluginContext& ctx, Respond respond,
                          Next next) {
  const Question& q = ctx.query.question();
  if (!q.name.is_subdomain_of(from_)) {
    next(std::move(respond));
    return;
  }
  // Re-root the qname under `to_`, preserving the relative labels.
  const DnsName relative_name =
      q.name.prefix(q.name.label_count() - from_.label_count());
  auto rewritten = relative_name.under(to_);
  if (!rewritten.ok()) {
    next(std::move(respond));
    return;
  }

  // This plugin rewrites the context for downstream plugins only; the chain
  // runner passes ctx by const reference, so serve the rewritten query by
  // invoking next with a responder that restores the original name.
  const DnsName original = q.name;
  const_cast<PluginContext&>(ctx).query.questions.front().name =
      rewritten.value();
  next([original, rewritten = rewritten.value(),
        respond = std::move(respond)](Message response) {
    for (auto& question : response.questions) {
      if (question.name == rewritten) question.name = original;
    }
    for (auto& rr : response.answers) {
      if (rr.name == rewritten) rr.name = original;
    }
    respond(std::move(response));
  });
}

// --- LogPlugin ---------------------------------------------------------------

void LogPlugin::serve(const PluginContext& ctx, Respond respond, Next next) {
  LogEntry entry;
  entry.at = ctx.net.received;
  entry.qname = ctx.query.question().name;
  entry.qtype = ctx.query.question().type;
  entry.client = ctx.net.client;
  next([this, entry = std::move(entry),
        respond = std::move(respond)](Message response) mutable {
    entry.rcode = response.header.rcode;
    ++total_;
    if (entries_.size() >= capacity_) entries_.pop_front();
    entries_.push_back(std::move(entry));
    respond(std::move(response));
  });
}

std::size_t LogPlugin::count(const DnsName& qname) const {
  std::size_t n = 0;
  for (const auto& entry : entries_) {
    if (entry.qname == qname) ++n;
  }
  return n;
}

// --- RefusePlugin ------------------------------------------------------------

void RefusePlugin::serve(const PluginContext& ctx, Respond respond, Next) {
  ++refused_;
  respond(make_response(ctx.query, RCode::kRefused));
}

// --- PluginChain -------------------------------------------------------------

void PluginChain::run(const PluginContext& ctx,
                      Plugin::Respond respond) const {
  run_from(0, ctx, std::move(respond));
}

void PluginChain::run_from(std::size_t index, const PluginContext& ctx,
                           Plugin::Respond respond) const {
  if (index >= plugins_.size()) {
    respond(make_response(ctx.query, RCode::kRefused));
    return;
  }
  // One span per traversed plugin, open until the answer bubbles back up
  // through this plugin's responder — so a forward plugin's span covers its
  // whole upstream round trip. Plugins that never respond (drop) leave the
  // span unfinished, which the exporter marks.
  obs::SpanRef span = obs::begin_span("plugin", plugins_[index]->name());
  if (span.active()) {
    respond = [span, respond = std::move(respond)](Message response) {
      span.end();
      respond(std::move(response));
    };
  }
  Plugin::Next next = [this, index, &ctx](Plugin::Respond downstream) {
    run_from(index + 1, ctx, std::move(downstream));
  };
  obs::AmbientSpanGuard ambient(span);
  plugins_[index]->serve(ctx, std::move(respond), std::move(next));
}

// --- PluginChainServer -------------------------------------------------------

PluginChainServer::PluginChainServer(simnet::Network& net,
                                     simnet::NodeId node, std::string name,
                                     simnet::LatencyModel processing_delay,
                                     simnet::Ipv4Address addr)
    : DnsServer(net, node, std::move(name), std::move(processing_delay),
                addr) {
  transport_ = std::make_unique<DnsTransport>(net, node);
}

PluginChainServer::PluginChainServer(netio::Runtime& runtime, std::string name,
                                     simnet::LatencyModel processing_delay,
                                     std::uint16_t port, std::uint64_t seed,
                                     simnet::Ipv4Address addr)
    : DnsServer(runtime, std::move(name), std::move(processing_delay), port,
                seed, addr) {
  transport_ = std::make_unique<DnsTransport>(runtime, seed);
}

PluginChain& PluginChainServer::add_view(
    std::string view_name, std::vector<simnet::Cidr> client_subnets) {
  views_.push_back(View{std::move(client_subnets),
                        PluginChain(std::move(view_name)), 0});
  return views_.back().chain;
}

PluginChain& PluginChainServer::add_default_view(std::string view_name) {
  return add_view(std::move(view_name), {});
}

std::uint64_t PluginChainServer::view_queries(
    const std::string& view_name) const {
  for (const auto& view : views_) {
    if (view.chain.name() == view_name) return view.queries;
  }
  return 0;
}

void PluginChainServer::handle(const Message& query, const QueryContext& ctx,
                               Responder respond) {
  for (auto& view : views_) {
    const bool matches =
        view.subnets.empty() ||
        std::any_of(view.subnets.begin(), view.subnets.end(),
                    [&](const simnet::Cidr& cidr) {
                      return cidr.contains(ctx.client.addr);
                    });
    if (!matches) continue;
    ++view.queries;
    last_view_ = view.chain.name();
    obs::ambient_span().tag("view", view.chain.name());
    // The context must outlive asynchronous plugin completions (forward
    // plugins respond on a later event), so heap-allocate it per query.
    auto pctx = std::make_shared<PluginContext>();
    pctx->query = query;
    pctx->net = ctx;
    view.chain.run(*pctx, [pctx, respond = std::move(respond)](
                              Message response) { respond(std::move(response)); });
    return;
  }
  respond(make_response(query, RCode::kRefused));
}

}  // namespace mecdns::dns
