// DNS server base class and the authoritative server.
//
// A DnsServer binds a UDP port on a netio::Runtime — port 53 of a simulated
// node, or a real socket under the epoll event loop — decodes incoming
// queries, applies a configurable processing delay (the "time spent in the
// DNS resolvers" component the paper measures) and hands the query to a
// subclass. Responses may be produced asynchronously, so servers that need
// upstream lookups (forwarders, recursive resolvers, the CDN router's
// mid-tier referral) fit the same interface.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/wire.h"
#include "dns/zone.h"
#include "netio/runtime.h"
#include "obs/trace.h"
#include "simnet/latency.h"
#include "simnet/network.h"
#include "util/rng.h"

namespace mecdns::dns {

inline constexpr std::uint16_t kDnsPort = 53;

struct ServerStats {
  std::uint64_t queries = 0;
  std::uint64_t responses = 0;
  std::uint64_t malformed = 0;
  std::uint64_t refused = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t servfail = 0;
  std::uint64_t truncated = 0;  ///< responses cut down to TC stubs
};

/// Network-level facts about a received query.
struct QueryContext {
  simnet::Endpoint client;      ///< source endpoint as seen by the server
  simnet::SimTime received;     ///< arrival time (before processing delay)
};

class DnsServer {
 public:
  using Responder = std::function<void(Message)>;

  /// Binds port 53 at `addr` on `node` of the simulated network (default:
  /// node's first address). Wraps the network in an owned SimRuntime.
  DnsServer(simnet::Network& net, simnet::NodeId node, std::string name,
            simnet::LatencyModel processing_delay,
            simnet::Ipv4Address addr = simnet::Ipv4Address());

  /// Binds `port` (0 = ephemeral, useful for tests) on `runtime` — the
  /// live-wire constructor. `seed` keeps the processing-delay RNG
  /// deterministic per server.
  DnsServer(netio::Runtime& runtime, std::string name,
            simnet::LatencyModel processing_delay,
            std::uint16_t port = kDnsPort, std::uint64_t seed = 1,
            simnet::Ipv4Address addr = simnet::Ipv4Address());

  virtual ~DnsServer();
  DnsServer(const DnsServer&) = delete;
  DnsServer& operator=(const DnsServer&) = delete;

  const std::string& name() const { return name_; }
  simnet::Endpoint endpoint() const { return socket_->endpoint(); }
  /// The simulated node (sim constructor only; kInvalidNode on live wire).
  simnet::NodeId node() const { return node_; }
  const ServerStats& stats() const { return stats_; }

  /// Bounds service concurrency: at most `workers` queries are in their
  /// processing-delay phase at once; excess queries wait in a FIFO queue of
  /// at most `max_queue` entries (overflow is silently dropped, like a full
  /// socket buffer). `workers` = 0 restores the default: unlimited
  /// concurrency (an idealized server). Queueing makes saturation visible:
  /// latency rises smoothly with load until the server melts down — the
  /// regime the paper's ingress-overload policy exists for.
  void set_service_capacity(std::size_t workers, std::size_t max_queue = 256);

  std::uint64_t dropped_overflow() const { return dropped_overflow_; }
  std::size_t queue_depth() const { return work_queue_.size(); }
  /// Deepest the worker FIFO has ever been — the saturation high-water mark
  /// the load generator's queue-depth gauge reports.
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// Fixed latency added on top of each sampled processing delay — the
  /// chaos layer's server-brownout knob (a degraded-but-alive server).
  /// Zero (the default) restores nominal service time; no RNG is drawn.
  void set_extra_processing(simnet::SimTime extra) { extra_processing_ = extra; }
  simnet::SimTime extra_processing() const { return extra_processing_; }

 protected:
  /// Subclass hook. Call `respond` at most once; not calling it drops the
  /// query (the client's timeout handles it, as on a real network).
  virtual void handle(const Message& query, const QueryContext& ctx,
                      Responder respond) = 0;

  util::Rng& rng() { return rng_; }
  /// The server's clock (simulated or wall), for cache TTL math etc.
  simnet::SimTime now() const { return rt_->now(); }
  /// The runtime this server is bound to, for subclasses that open their
  /// own upstream transports.
  netio::Runtime& runtime() { return *rt_; }

 private:
  struct Work {
    Message query;
    QueryContext ctx;
    Responder respond;
    obs::SpanRef span;  ///< serve span; queued work keeps its own context
  };

  void on_packet(const simnet::Packet& packet);
  void enqueue(Work work);
  void pump();

  /// Owned by the sim-compat constructor (null otherwise); rt_ always set.
  std::unique_ptr<netio::Runtime> owned_runtime_;
  netio::Runtime* rt_;
  simnet::NodeId node_ = simnet::kInvalidNode;
  std::string name_;
  simnet::LatencyModel processing_delay_;
  netio::DatagramSocket* socket_;
  util::Rng rng_;
  /// Disarms scheduled processing events after destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  ServerStats stats_;
  std::size_t workers_ = 0;  ///< 0 = unlimited
  std::size_t max_queue_ = 256;
  simnet::SimTime extra_processing_ = simnet::SimTime::zero();
  std::size_t busy_ = 0;
  std::deque<Work> work_queue_;
  std::size_t max_queue_depth_ = 0;
  std::uint64_t dropped_overflow_ = 0;
};

/// Serves one or more zones authoritatively; chases in-zone CNAME chains and
/// emits referrals at zone cuts.
class AuthoritativeServer : public DnsServer {
 public:
  AuthoritativeServer(simnet::Network& net, simnet::NodeId node,
                      std::string name, simnet::LatencyModel processing_delay,
                      simnet::Ipv4Address addr = simnet::Ipv4Address());

  /// Live-wire constructor: serve zones on a real (or test) runtime port.
  AuthoritativeServer(netio::Runtime& runtime, std::string name,
                      simnet::LatencyModel processing_delay,
                      std::uint16_t port = kDnsPort, std::uint64_t seed = 1,
                      simnet::Ipv4Address addr = simnet::Ipv4Address());

  /// Adds a zone. Zones must not be nested within each other's origins
  /// except via explicit delegation records.
  Zone& add_zone(DnsName origin);

  /// The zone with the longest origin matching `name`, or nullptr.
  Zone* find_zone(const DnsName& name);
  const Zone* find_zone(const DnsName& name) const;

  std::vector<Zone>& zones() { return zones_; }

  /// Rotates multi-record answer RRsets round-robin across responses — the
  /// classic poor-man's load balancing; clients that "take the first A"
  /// then spread across the set.
  void set_rotate_answers(bool rotate) { rotate_answers_ = rotate; }

 protected:
  void handle(const Message& query, const QueryContext& ctx,
              Responder respond) override;

 private:
  std::vector<Zone> zones_;
  bool rotate_answers_ = false;
  std::uint64_t rotation_ = 0;
};

}  // namespace mecdns::dns
