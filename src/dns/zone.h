// Authoritative zone data and lookup semantics (RFC 1034 §4.3.2).
//
// Supports exact matches, CNAME indirection, wildcard synthesis, zone cuts
// (delegations with glue) and negative answers with the zone SOA — enough to
// faithfully host the public hierarchy (root, TLD, CDN authoritative zones)
// and the MEC cluster namespaces.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/result.h"

namespace mecdns::dns {

enum class LookupStatus {
  kSuccess,     ///< records of the requested type found
  kCname,       ///< a CNAME exists at the name (records holds it)
  kDelegation,  ///< a zone cut is above/at the name (records holds NS)
  kNoData,      ///< the name exists but has no records of the type
  kNxDomain,    ///< the name does not exist in the zone
  kOutOfZone,   ///< the name is not within this zone's origin
};

std::string to_string(LookupStatus status);

struct LookupResult {
  LookupStatus status = LookupStatus::kNxDomain;
  /// Matched/synthesized records: answers for kSuccess/kCname, the NS set
  /// for kDelegation, empty otherwise.
  std::vector<ResourceRecord> records;
  /// Glue A records for kDelegation nameservers when available in-zone.
  std::vector<ResourceRecord> glue;
  /// The zone SOA, populated for kNoData/kNxDomain (negative answers).
  std::vector<ResourceRecord> soa;
  /// True when the answer was synthesized from a wildcard.
  bool from_wildcard = false;
};

/// One authoritative zone rooted at `origin`.
class Zone {
 public:
  explicit Zone(DnsName origin) : origin_(std::move(origin)) {}

  const DnsName& origin() const { return origin_; }

  /// Adds a record. The owner name must be within the zone. Adding a CNAME
  /// alongside other data at the same name is rejected (RFC 1034 §3.6.2),
  /// as is a second CNAME at the same owner.
  util::Result<void> add(ResourceRecord rr);

  /// Convenience: adds, throwing on error. For static test/scenario data.
  void must_add(ResourceRecord rr);

  /// Removes all records at (name, type). Returns how many were removed.
  std::size_t remove(const DnsName& name, RecordType type);

  /// Removes every record whose owner is `name`.
  std::size_t remove_name(const DnsName& name);

  /// Full RFC 1034 lookup.
  LookupResult lookup(const DnsName& name, RecordType type) const;

  /// Direct RRset fetch without delegation/wildcard processing.
  std::vector<ResourceRecord> find(const DnsName& name, RecordType type) const;

  bool empty() const { return records_.empty(); }
  std::size_t record_count() const;

  /// All records, for iteration/debug.
  std::vector<ResourceRecord> all() const;

 private:
  using Key = std::pair<DnsName, RecordType>;

  /// Finds a zone cut strictly below the apex on the path from the apex to
  /// `name`. Returns the NS RRset owner if found.
  const std::vector<ResourceRecord>* find_delegation(const DnsName& name,
                                                     DnsName* cut) const;

  bool name_exists(const DnsName& name) const;

  DnsName origin_;
  std::map<Key, std::vector<ResourceRecord>> records_;
};

}  // namespace mecdns::dns
