#include "dns/rr.h"

namespace mecdns::dns {

std::string to_string(RecordType type) {
  switch (type) {
    case RecordType::kA: return "A";
    case RecordType::kNs: return "NS";
    case RecordType::kCname: return "CNAME";
    case RecordType::kSoa: return "SOA";
    case RecordType::kPtr: return "PTR";
    case RecordType::kTxt: return "TXT";
    case RecordType::kAaaa: return "AAAA";
    case RecordType::kSrv: return "SRV";
    case RecordType::kOpt: return "OPT";
    case RecordType::kAny: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

std::string to_string(RecordClass cls) {
  switch (cls) {
    case RecordClass::kIn: return "IN";
    case RecordClass::kAny: return "ANY";
  }
  return "CLASS" + std::to_string(static_cast<std::uint16_t>(cls));
}

RecordType rdata_type(const RData& rdata) {
  struct Visitor {
    RecordType operator()(const ARecord&) const { return RecordType::kA; }
    RecordType operator()(const AaaaRecord&) const { return RecordType::kAaaa; }
    RecordType operator()(const NsRecord&) const { return RecordType::kNs; }
    RecordType operator()(const CnameRecord&) const { return RecordType::kCname; }
    RecordType operator()(const PtrRecord&) const { return RecordType::kPtr; }
    RecordType operator()(const SoaRecord&) const { return RecordType::kSoa; }
    RecordType operator()(const TxtRecord&) const { return RecordType::kTxt; }
    RecordType operator()(const SrvRecord&) const { return RecordType::kSrv; }
    RecordType operator()(const OptRecord&) const { return RecordType::kOpt; }
    RecordType operator()(const RawRecord& r) const {
      return static_cast<RecordType>(r.type);
    }
  };
  return std::visit(Visitor{}, rdata);
}

std::string ResourceRecord::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " " +
                    dns::to_string(cls) + " " + dns::to_string(type);
  if (const auto* a = std::get_if<ARecord>(&rdata)) {
    out += " " + a->address.to_string();
  } else if (const auto* cname = std::get_if<CnameRecord>(&rdata)) {
    out += " " + cname->target.to_string();
  } else if (const auto* ns = std::get_if<NsRecord>(&rdata)) {
    out += " " + ns->nameserver.to_string();
  } else if (const auto* txt = std::get_if<TxtRecord>(&rdata)) {
    for (const auto& s : txt->strings) out += " \"" + s + "\"";
  }
  return out;
}

ResourceRecord make_a(const DnsName& name, simnet::Ipv4Address addr,
                      std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::kA, RecordClass::kIn, ttl,
                        ARecord{addr}};
}

ResourceRecord make_cname(const DnsName& name, const DnsName& target,
                          std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::kCname, RecordClass::kIn, ttl,
                        CnameRecord{target}};
}

ResourceRecord make_ns(const DnsName& name, const DnsName& nameserver,
                       std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::kNs, RecordClass::kIn, ttl,
                        NsRecord{nameserver}};
}

ResourceRecord make_soa(const DnsName& name, const DnsName& mname,
                        std::uint32_t serial, std::uint32_t minimum,
                        std::uint32_t ttl) {
  SoaRecord soa;
  soa.mname = mname;
  soa.rname = DnsName::must_parse("hostmaster." + mname.to_string());
  soa.serial = serial;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = minimum;
  return ResourceRecord{name, RecordType::kSoa, RecordClass::kIn, ttl,
                        std::move(soa)};
}

ResourceRecord make_txt(const DnsName& name, std::vector<std::string> strings,
                        std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::kTxt, RecordClass::kIn, ttl,
                        TxtRecord{std::move(strings)}};
}

ResourceRecord make_ptr(const DnsName& name, const DnsName& target,
                        std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::kPtr, RecordClass::kIn, ttl,
                        PtrRecord{target}};
}

ResourceRecord make_srv(const DnsName& name, std::uint16_t priority,
                        std::uint16_t weight, std::uint16_t port,
                        const DnsName& target, std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::kSrv, RecordClass::kIn, ttl,
                        SrvRecord{priority, weight, port, target}};
}

}  // namespace mecdns::dns
