// CoreDNS-style plugin-chain DNS server with split-horizon views.
//
// The paper's P1 design re-purposes the MEC orchestrator's internal service
// DNS (CoreDNS in Kubernetes) as the mobile L-DNS, runs it with a *split
// namespace* — one view for internal VNFs, one for publicly visible
// MEC-CDN names — and chains the CDN's C-DNS behind a stub-domain
// ("configuration of stub-domain and upstream nameserver using CoreDNS").
// PluginChainServer implements exactly that composition model: an ordered
// chain of plugins per view, with the view chosen by the client's source
// address.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dns/cache.h"
#include "dns/server.h"
#include "dns/transport.h"
#include "dns/zone.h"
#include "obs/journal.h"

namespace mecdns::dns {

/// Context handed down the plugin chain.
struct PluginContext {
  Message query;
  QueryContext net;
};

/// One element of a chain. A plugin either answers (calls respond) or
/// passes to the rest of the chain via next — optionally wrapping the
/// responder to observe the downstream answer (how the cache plugin works).
class Plugin {
 public:
  using Respond = std::function<void(Message)>;
  using Next = std::function<void(Respond)>;

  virtual ~Plugin() = default;
  virtual std::string name() const = 0;
  virtual void serve(const PluginContext& ctx, Respond respond,
                     Next next) = 0;
};

/// Answers authoritatively from a Zone. With `registry zone` semantics this
/// is CoreDNS's `kubernetes` plugin: the mec library writes service records
/// into the zone and this plugin serves them. Out-of-zone queries fall
/// through to the next plugin.
class ZonePlugin : public Plugin {
 public:
  explicit ZonePlugin(std::shared_ptr<Zone> zone) : zone_(std::move(zone)) {}
  std::string name() const override { return "zone(" + zone_->origin().to_string() + ")"; }
  void serve(const PluginContext& ctx, Respond respond, Next next) override;

  Zone& zone() { return *zone_; }

 private:
  std::shared_ptr<Zone> zone_;
};

/// How ForwardPlugin picks among multiple upstreams (CoreDNS `policy`).
enum class ForwardPolicy {
  kSequential,  ///< primary/backup: always start at the first upstream
  kRoundRobin,  ///< rotate the starting upstream per query
};

/// Forwards queries under `match` to an upstream server (CoreDNS `forward`).
/// `match` = root forwards everything (the default-upstream case). The
/// upstream's response is relayed verbatim (with the client's id restored);
/// failed upstreams fail over to the next per the policy's order.
class ForwardPlugin : public Plugin {
 public:
  ForwardPlugin(DnsName match, std::vector<simnet::Endpoint> upstreams,
                DnsTransport& transport,
                DnsTransport::Options options = {});
  std::string name() const override { return "forward(" + match_.to_string() + ")"; }
  void serve(const PluginContext& ctx, Respond respond, Next next) override;

  const DnsName& match() const { return match_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t upstream_failures() const { return upstream_failures_; }
  /// Queries answered by a later upstream after an earlier one failed.
  std::uint64_t failovers() const { return failovers_; }
  /// Failovers triggered by a SERVFAIL answer (vs transport timeout).
  std::uint64_t servfail_failovers() const { return servfail_failovers_; }

  void set_policy(ForwardPolicy policy) { policy_ = policy; }
  ForwardPolicy policy() const { return policy_; }

  /// When enabled, a SERVFAIL answer from an upstream is treated like a
  /// dead upstream and the query fails over to the next one — the RFC 2136
  /// "try the next server" behaviour real resolvers apply to SERVFAIL.
  /// Off by default (SERVFAIL is relayed to the client).
  void set_failover_on_servfail(bool enable) {
    failover_on_servfail_ = enable;
  }
  bool failover_on_servfail() const { return failover_on_servfail_; }

  /// When enabled, attach an RFC 7871 Client Subnet option (synthesized
  /// from the client's source address, `prefix` bits) to upstream queries
  /// that lack one — "enabling ECS support at L-DNS" in §4's experiment.
  void set_add_ecs(bool enable, std::uint8_t prefix = 24) {
    add_ecs_ = enable;
    ecs_prefix_ = prefix;
  }
  bool add_ecs() const { return add_ecs_; }

  /// Journals the *edge into* failover operation (the first query that
  /// leaves the primary upstream after a run of primary answers) as
  /// ldns_failover, and the edge back as ldns_restore — not every
  /// failed-over query. For the C-DNS brownout and WAN-loss faults this
  /// forwarder is the component that reacts, so without this hook those
  /// incidents would grade as undetected.
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

 private:
  void try_upstream(Message upstream_query, std::uint16_t client_id,
                    std::size_t attempt, Respond respond);

  DnsName match_;
  bool add_ecs_ = false;
  bool failover_on_servfail_ = false;
  std::uint8_t ecs_prefix_ = 24;
  ForwardPolicy policy_ = ForwardPolicy::kSequential;
  std::vector<simnet::Endpoint> upstreams_;
  std::size_t next_upstream_ = 0;
  DnsTransport& transport_;
  DnsTransport::Options options_;
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;
  /// True between the first failover and the next primary answer.
  bool journal_failing_ = false;
  std::uint64_t forwarded_ = 0;
  std::uint64_t upstream_failures_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t servfail_failovers_ = 0;
};

/// Serves positive answers from a shared DnsCache and inserts downstream
/// answers into it (CoreDNS `cache`).
class CachePlugin : public Plugin {
 public:
  explicit CachePlugin(std::shared_ptr<DnsCache> cache)
      : cache_(std::move(cache)) {}
  std::string name() const override { return "cache"; }
  void serve(const PluginContext& ctx, Respond respond, Next next) override;

  DnsCache& cache() { return *cache_; }

  /// Answers rescued by RFC 8767 serve-stale after a downstream SERVFAIL
  /// (requires serve-stale enabled on the shared DnsCache).
  std::uint64_t stale_served() const { return stale_served_; }

 private:
  std::shared_ptr<DnsCache> cache_;
  std::uint64_t stale_served_ = 0;
};

/// Rewrites query names under `from` to the same labels under `to` before
/// passing on, and un-rewrites answer owner names (CoreDNS `rewrite`).
class RewritePlugin : public Plugin {
 public:
  RewritePlugin(DnsName from, DnsName to)
      : from_(std::move(from)), to_(std::move(to)) {}
  std::string name() const override { return "rewrite"; }
  void serve(const PluginContext& ctx, Respond respond, Next next) override;

 private:
  DnsName from_;
  DnsName to_;
};

/// Pass-through plugin that records a query log (CoreDNS `log`): arrival
/// time, qname, qtype, client and rcode, kept in a bounded ring. Useful
/// for debugging scenarios and asserting traffic in tests.
class LogPlugin : public Plugin {
 public:
  struct LogEntry {
    simnet::SimTime at;
    DnsName qname;
    RecordType qtype = RecordType::kA;
    simnet::Endpoint client;
    RCode rcode = RCode::kNoError;
  };

  explicit LogPlugin(std::size_t capacity = 512) : capacity_(capacity) {}
  std::string name() const override { return "log"; }
  void serve(const PluginContext& ctx, Respond respond, Next next) override;

  const std::deque<LogEntry>& entries() const { return entries_; }
  std::uint64_t total_logged() const { return total_; }
  /// Entries matching a qname (for test assertions).
  std::size_t count(const DnsName& qname) const;

 private:
  std::size_t capacity_;
  std::deque<LogEntry> entries_;
  std::uint64_t total_ = 0;
};

/// Terminal plugin: REFUSED for anything that reaches it. Implements the
/// paper's "have the MEC DNS ignore queries not related to MEC-CDN" policy
/// boundary (clients then fall back to their provider L-DNS).
class RefusePlugin : public Plugin {
 public:
  std::string name() const override { return "refuse"; }
  void serve(const PluginContext& ctx, Respond respond, Next next) override;

  std::uint64_t refused() const { return refused_; }

 private:
  std::uint64_t refused_ = 0;
};

/// Terminal plugin: silently drop (client times out). Models the multicast
/// workaround where the MEC DNS simply never answers non-MEC queries.
class DropPlugin : public Plugin {
 public:
  std::string name() const override { return "drop"; }
  void serve(const PluginContext&, Respond, Next) override { ++dropped_; }

  std::uint64_t dropped() const { return dropped_; }

 private:
  std::uint64_t dropped_ = 0;
};

/// A named, ordered plugin chain (one CoreDNS "server block").
class PluginChain {
 public:
  explicit PluginChain(std::string name) : name_(std::move(name)) {}

  PluginChain& add(std::unique_ptr<Plugin> plugin) {
    plugins_.push_back(std::move(plugin));
    return *this;
  }

  const std::string& name() const { return name_; }
  std::size_t size() const { return plugins_.size(); }
  Plugin& plugin(std::size_t i) { return *plugins_.at(i); }

  /// Runs the chain. If it falls off the end, responds REFUSED.
  void run(const PluginContext& ctx, Plugin::Respond respond) const;

 private:
  void run_from(std::size_t index, const PluginContext& ctx,
                Plugin::Respond respond) const;

  std::string name_;
  std::vector<std::unique_ptr<Plugin>> plugins_;
};

/// A DNS server hosting one or more views, each with its own plugin chain.
/// The view is selected per query from the client's source address — the
/// split-namespace mechanism of §3 P1.
class PluginChainServer : public DnsServer {
 public:
  PluginChainServer(simnet::Network& net, simnet::NodeId node,
                    std::string name, simnet::LatencyModel processing_delay,
                    simnet::Ipv4Address addr = simnet::Ipv4Address());

  /// Live-wire constructor: the same split-horizon MEC L-DNS, served from
  /// a real UDP port (with its forward transport on the same runtime).
  PluginChainServer(netio::Runtime& runtime, std::string name,
                    simnet::LatencyModel processing_delay,
                    std::uint16_t port = kDnsPort, std::uint64_t seed = 1,
                    simnet::Ipv4Address addr = simnet::Ipv4Address());

  /// Adds a view matching clients whose source address is inside any of
  /// `client_subnets`. Views are evaluated in insertion order.
  PluginChain& add_view(std::string view_name,
                        std::vector<simnet::Cidr> client_subnets);

  /// Adds the catch-all view (matches any client not matched earlier).
  PluginChain& add_default_view(std::string view_name);

  /// Transactions transport for this server's forward plugins.
  DnsTransport& transport() { return *transport_; }
  const DnsTransport& transport() const { return *transport_; }

  /// Which view answered the most recent query (test visibility).
  const std::string& last_view() const { return last_view_; }

  /// Per-view query counters.
  std::uint64_t view_queries(const std::string& view_name) const;

 protected:
  void handle(const Message& query, const QueryContext& ctx,
              Responder respond) override;

 private:
  struct View {
    std::vector<simnet::Cidr> subnets;  ///< empty = match everything
    PluginChain chain;
    std::uint64_t queries = 0;
  };

  std::unique_ptr<DnsTransport> transport_;
  std::vector<View> views_;
  std::string last_view_;
};

}  // namespace mecdns::dns
