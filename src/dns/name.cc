#include "dns/name.h"

#include <cctype>
#include <stdexcept>

#include "util/strings.h"

namespace mecdns::dns {

namespace {
char fold(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool label_equal_icase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fold(a[i]) != fold(b[i])) return false;
  }
  return true;
}
}  // namespace

util::Result<void> DnsName::validate_label(std::string_view label) {
  if (label.empty()) return util::Err("empty label");
  if (label.size() > 63) {
    return util::Err("label exceeds 63 octets: " + std::string(label));
  }
  // RFC 1035 hostnames are stricter, but DNS itself is 8-bit clean; we
  // forbid only '.' (structural) and whitespace/control characters, which
  // keeps presentation parsing unambiguous.
  for (const char c : label) {
    if (c == '.' || std::isspace(static_cast<unsigned char>(c)) ||
        std::iscntrl(static_cast<unsigned char>(c))) {
      return util::Err("invalid character in label");
    }
  }
  return util::Ok();
}

util::Result<DnsName> DnsName::parse(std::string_view text) {
  if (text.empty()) return util::Err("empty name");
  if (text == ".") return DnsName();
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label =
        dot == std::string_view::npos ? text.substr(start)
                                      : text.substr(start, dot - start);
    auto valid = validate_label(label);
    if (!valid.ok()) return valid.error();
    labels.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return from_labels(std::move(labels));
}

DnsName DnsName::must_parse(std::string_view text) {
  auto result = parse(text);
  if (!result.ok()) {
    throw std::invalid_argument("invalid DNS name '" + std::string(text) +
                                "': " + result.error().message);
  }
  return std::move(result).value();
}

util::Result<DnsName> DnsName::from_labels(std::vector<std::string> labels) {
  DnsName name;
  name.labels_ = std::move(labels);
  for (const auto& label : name.labels_) {
    auto valid = validate_label(label);
    if (!valid.ok()) return valid.error();
  }
  if (name.wire_length() > 255) return util::Err("name exceeds 255 octets");
  return name;
}

std::size_t DnsName::wire_length() const {
  std::size_t length = 1;  // terminating root label
  for (const auto& label : labels_) length += 1 + label.size();
  return length;
}

bool DnsName::is_subdomain_of(const DnsName& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (!label_equal_icase(labels_[offset + i], ancestor.labels_[i])) {
      return false;
    }
  }
  return true;
}

DnsName DnsName::parent() const {
  DnsName result;
  if (labels_.size() <= 1) return result;
  result.labels_.assign(labels_.begin() + 1, labels_.end());
  return result;
}

util::Result<DnsName> DnsName::with_prefix(std::string_view label) const {
  auto valid = validate_label(label);
  if (!valid.ok()) return valid.error();
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

util::Result<DnsName> DnsName::under(const DnsName& suffix) const {
  std::vector<std::string> labels = labels_;
  labels.insert(labels.end(), suffix.labels_.begin(), suffix.labels_.end());
  return from_labels(std::move(labels));
}

DnsName DnsName::wildcard_sibling() const {
  DnsName result = is_root() ? DnsName() : parent();
  result.labels_.insert(result.labels_.begin(), "*");
  return result;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

bool operator==(const DnsName& a, const DnsName& b) {
  if (a.labels_.size() != b.labels_.size()) return false;
  for (std::size_t i = 0; i < a.labels_.size(); ++i) {
    if (!label_equal_icase(a.labels_[i], b.labels_[i])) return false;
  }
  return true;
}

bool operator<(const DnsName& a, const DnsName& b) {
  // Compare right-to-left by label, case-folded.
  std::size_t ia = a.labels_.size();
  std::size_t ib = b.labels_.size();
  while (ia > 0 && ib > 0) {
    const std::string& la = a.labels_[ia - 1];
    const std::string& lb = b.labels_[ib - 1];
    const std::size_t n = std::min(la.size(), lb.size());
    for (std::size_t i = 0; i < n; ++i) {
      const char ca = fold(la[i]);
      const char cb = fold(lb[i]);
      if (ca != cb) return ca < cb;
    }
    if (la.size() != lb.size()) return la.size() < lb.size();
    --ia;
    --ib;
  }
  return ia < ib;
}

std::size_t DnsName::hash() const {
  std::size_t h = 14695981039346656037ULL;
  for (const auto& label : labels_) {
    for (const char c : label) {
      h ^= static_cast<std::size_t>(fold(c));
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // label separator so {"ab","c"} != {"a","bc"}
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace mecdns::dns
