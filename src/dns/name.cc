#include "dns/name.h"

#include <cctype>
#include <cstring>
#include <stdexcept>

namespace mecdns::dns {

namespace {
char fold(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

// Case-folded bytewise comparison over wire-label bytes. Length prefixes
// are 1..63, a range std::tolower never remaps, so folding the whole run
// (prefixes included) is equivalent to folding only the label characters.
bool wire_equal_icase(const char* a, const char* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (fold(a[i]) != fold(b[i])) return false;
  }
  return true;
}
}  // namespace

DnsName::DnsName(const DnsName& other)
    : size_(other.size_), count_(other.count_) {
  if (other.on_heap()) {
    heap_ = new char[kMaxData];
    std::memcpy(heap_, other.heap_, size_);
  } else {
    std::memcpy(inline_, other.inline_, size_);
  }
}

DnsName::DnsName(DnsName&& other) noexcept
    : size_(other.size_), count_(other.count_) {
  if (other.on_heap()) {
    heap_ = other.heap_;
    other.size_ = 0;
    other.count_ = 0;
  } else {
    std::memcpy(inline_, other.inline_, size_);
  }
}

DnsName& DnsName::operator=(const DnsName& other) {
  if (this == &other) return *this;
  if (on_heap()) delete[] heap_;
  size_ = other.size_;
  count_ = other.count_;
  if (other.on_heap()) {
    heap_ = new char[kMaxData];
    std::memcpy(heap_, other.heap_, size_);
  } else {
    std::memcpy(inline_, other.inline_, size_);
  }
  return *this;
}

DnsName& DnsName::operator=(DnsName&& other) noexcept {
  if (this == &other) return *this;
  if (on_heap()) delete[] heap_;
  size_ = other.size_;
  count_ = other.count_;
  if (other.on_heap()) {
    heap_ = other.heap_;
    other.size_ = 0;
    other.count_ = 0;
  } else {
    std::memcpy(inline_, other.inline_, size_);
  }
  return *this;
}

DnsName::~DnsName() {
  if (on_heap()) delete[] heap_;
}

util::Result<void> DnsName::validate_label(std::string_view label) {
  if (label.empty()) return util::Err("empty label");
  if (label.size() > 63) {
    return util::Err("label exceeds 63 octets: " + std::string(label));
  }
  // RFC 1035 hostnames are stricter, but DNS itself is 8-bit clean; we
  // forbid only '.' (structural) and whitespace/control characters, which
  // keeps presentation parsing unambiguous.
  for (const char c : label) {
    if (c == '.' || std::isspace(static_cast<unsigned char>(c)) ||
        std::iscntrl(static_cast<unsigned char>(c))) {
      return util::Err("invalid character in label");
    }
  }
  return util::Ok();
}

util::Result<void> DnsName::append_label(std::string_view label) {
  auto valid = validate_label(label);
  if (!valid.ok()) return valid.error();
  const std::size_t next = std::size_t{size_} + 1 + label.size();
  if (next > kMaxData) return util::Err("name exceeds 255 octets");
  if (!on_heap() && next > kInlineCapacity) {
    // Crossing into heap storage: one fixed-size buffer covers any name.
    char* heap = new char[kMaxData];
    std::memcpy(heap, inline_, size_);
    heap_ = heap;
  }
  // on_heap() keys off size_, which still holds the old length — write
  // through the pointer we just decided on.
  char* dst = (next > kInlineCapacity) ? heap_ : inline_;
  dst[size_] = static_cast<char>(label.size());
  std::memcpy(dst + size_ + 1, label.data(), label.size());
  size_ = static_cast<std::uint8_t>(next);
  ++count_;
  return util::Ok();
}

util::Result<DnsName> DnsName::parse(std::string_view text) {
  if (text.empty()) return util::Err("empty name");
  if (text == ".") return DnsName();
  if (text.back() == '.') text.remove_suffix(1);
  DnsName name;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label =
        dot == std::string_view::npos ? text.substr(start)
                                      : text.substr(start, dot - start);
    auto appended = name.append_label(label);
    if (!appended.ok()) return appended.error();
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return name;
}

DnsName DnsName::must_parse(std::string_view text) {
  auto result = parse(text);
  if (!result.ok()) {
    throw std::invalid_argument("invalid DNS name '" + std::string(text) +
                                "': " + result.error().message);
  }
  return std::move(result).value();
}

util::Result<DnsName> DnsName::from_labels(std::vector<std::string> labels) {
  DnsName name;
  for (const auto& label : labels) {
    auto appended = name.append_label(label);
    if (!appended.ok()) return appended.error();
  }
  return name;
}

DnsName DnsName::from_wire_trusted(const char* data, std::size_t size,
                                   std::size_t count) {
  DnsName name;
  name.size_ = static_cast<std::uint8_t>(size);
  name.count_ = static_cast<std::uint8_t>(count);
  if (name.on_heap()) {
    name.heap_ = new char[kMaxData];
    std::memcpy(name.heap_, data, size);
  } else {
    std::memcpy(name.inline_, data, size);
  }
  return name;
}

std::size_t DnsName::offset_of(std::size_t i) const {
  const char* d = data_ptr();
  std::size_t at = 0;
  for (std::size_t k = 0; k < i; ++k) {
    at += 1 + static_cast<unsigned char>(d[at]);
  }
  return at;
}

std::string_view DnsName::label(std::size_t i) const {
  if (i >= count_) throw std::out_of_range("DnsName::label index");
  const char* d = data_ptr();
  const std::size_t at = offset_of(i);
  const std::size_t len = static_cast<unsigned char>(d[at]);
  return {d + at + 1, len};
}

std::vector<std::string> DnsName::labels() const {
  std::vector<std::string> out;
  out.reserve(count_);
  const char* d = data_ptr();
  std::size_t at = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t len = static_cast<unsigned char>(d[at]);
    out.emplace_back(d + at + 1, len);
    at += 1 + len;
  }
  return out;
}

bool DnsName::is_subdomain_of(const DnsName& ancestor) const {
  if (ancestor.count_ > count_) return false;
  const std::size_t at = offset_of(count_ - ancestor.count_);
  if (size_ - at != ancestor.size_) return false;
  return wire_equal_icase(data_ptr() + at, ancestor.data_ptr(),
                          ancestor.size_);
}

DnsName DnsName::parent() const {
  if (count_ <= 1) return DnsName();
  const std::size_t drop = 1 + static_cast<unsigned char>(data_ptr()[0]);
  return from_wire_trusted(data_ptr() + drop, size_ - drop, count_ - 1);
}

DnsName DnsName::prefix(std::size_t n) const {
  if (n >= count_) return *this;
  return from_wire_trusted(data_ptr(), offset_of(n), n);
}

DnsName DnsName::suffix(std::size_t n) const {
  if (n >= count_) return *this;
  const std::size_t at = offset_of(count_ - n);
  return from_wire_trusted(data_ptr() + at, size_ - at, n);
}

util::Result<DnsName> DnsName::with_prefix(std::string_view label) const {
  DnsName name;
  auto appended = name.append_label(label);
  if (!appended.ok()) return appended.error();
  const std::size_t next = std::size_t{name.size_} + size_;
  if (next > kMaxData) return util::Err("name exceeds 255 octets");
  if (!name.on_heap() && next > kInlineCapacity) {
    char* heap = new char[kMaxData];
    std::memcpy(heap, name.inline_, name.size_);
    name.heap_ = heap;
  }
  char* dst = (next > kInlineCapacity) ? name.heap_ : name.inline_;
  std::memcpy(dst + name.size_, data_ptr(), size_);
  name.size_ = static_cast<std::uint8_t>(next);
  name.count_ = static_cast<std::uint8_t>(count_ + 1);
  return name;
}

util::Result<DnsName> DnsName::under(const DnsName& suffix) const {
  const std::size_t next = std::size_t{size_} + suffix.size_;
  if (next > kMaxData) return util::Err("name exceeds 255 octets");
  DnsName name = *this;
  if (!name.on_heap() && next > kInlineCapacity) {
    char* heap = new char[kMaxData];
    std::memcpy(heap, name.inline_, name.size_);
    name.heap_ = heap;
  }
  char* dst = (next > kInlineCapacity) ? name.heap_ : name.inline_;
  std::memcpy(dst + name.size_, suffix.data_ptr(), suffix.size_);
  name.size_ = static_cast<std::uint8_t>(next);
  name.count_ = static_cast<std::uint8_t>(count_ + suffix.count_);
  return name;
}

DnsName DnsName::wildcard_sibling() const {
  DnsName base = is_root() ? DnsName() : parent();
  DnsName star;
  (void)star.append_label("*");
  auto joined = star.under(base);
  // "*" plus a parent of a valid name always fits (we dropped a label of
  // >= 1 octet and added a 1-octet one).
  return std::move(joined).value();
}

std::string DnsName::to_string() const {
  if (count_ == 0) return ".";
  std::string out;
  out.reserve(size_);
  const char* d = data_ptr();
  std::size_t at = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t len = static_cast<unsigned char>(d[at]);
    if (i != 0) out.push_back('.');
    out.append(d + at + 1, len);
    at += 1 + len;
  }
  return out;
}

bool operator==(const DnsName& a, const DnsName& b) {
  if (a.size_ != b.size_ || a.count_ != b.count_) return false;
  return wire_equal_icase(a.data_ptr(), b.data_ptr(), a.size_);
}

bool DnsName::equals_exact(const DnsName& other) const {
  if (size_ != other.size_ || count_ != other.count_) return false;
  return std::memcmp(data_ptr(), other.data_ptr(), size_) == 0;
}

bool operator<(const DnsName& a, const DnsName& b) {
  // Compare right-to-left by label, case-folded.
  std::size_t ia = a.count_;
  std::size_t ib = b.count_;
  while (ia > 0 && ib > 0) {
    const std::string_view la = a.label(ia - 1);
    const std::string_view lb = b.label(ib - 1);
    const std::size_t n = std::min(la.size(), lb.size());
    for (std::size_t i = 0; i < n; ++i) {
      const char ca = fold(la[i]);
      const char cb = fold(lb[i]);
      if (ca != cb) return ca < cb;
    }
    if (la.size() != lb.size()) return la.size() < lb.size();
    --ia;
    --ib;
  }
  return ia < ib;
}

std::size_t DnsName::hash() const {
  std::size_t h = 14695981039346656037ULL;
  const char* d = data_ptr();
  std::size_t at = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t len = static_cast<unsigned char>(d[at]);
    for (std::size_t k = 0; k < len; ++k) {
      h ^= static_cast<std::size_t>(fold(d[at + 1 + k]));
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // label separator so {"ab","c"} != {"a","bc"}
    h *= 1099511628211ULL;
    at += 1 + len;
  }
  return h;
}

}  // namespace mecdns::dns
