// Builder for an in-simulation public DNS hierarchy.
//
// Creates a root server, TLD servers, and per-domain authoritative servers
// with correct delegations and glue, so RecursiveResolver instances resolve
// exactly as they would against the real tree. Used by the Figure 2/5
// scenarios and the resolver tests.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dns/server.h"
#include "simnet/network.h"

namespace mecdns::dns {

class PublicDnsHierarchy {
 public:
  /// Creates the root server on a fresh node attached to `backbone` via a
  /// link with the given one-way latency model.
  PublicDnsHierarchy(simnet::Network& net, simnet::NodeId backbone,
                     simnet::LatencyModel root_link,
                     simnet::LatencyModel server_processing,
                     simnet::Ipv4Address root_addr =
                         simnet::Ipv4Address::must_parse("198.41.0.4"));

  /// Ensures a TLD server exists (e.g. "com", "net", "test"); creates its
  /// node/zone and the root delegation on first use.
  void ensure_tld(const std::string& tld, simnet::Ipv4Address addr,
                  simnet::LatencyModel link);

  /// Creates an authoritative server for `zone_origin` on a fresh node and
  /// wires the TLD delegation + glue. Returns the server so the caller can
  /// populate the zone. The TLD must have been created via ensure_tld.
  AuthoritativeServer& add_authoritative(const DnsName& zone_origin,
                                         simnet::Ipv4Address addr,
                                         simnet::LatencyModel link);

  /// Registers an externally hosted authoritative server (e.g. a CDN's
  /// C-DNS living on an existing node): only writes the delegation + glue.
  void delegate_to(const DnsName& zone_origin, const DnsName& ns_name,
                   simnet::Ipv4Address ns_addr);

  simnet::Endpoint root_endpoint() const { return root_->endpoint(); }
  std::vector<simnet::Endpoint> root_hints() const {
    return {root_endpoint()};
  }

  AuthoritativeServer& root() { return *root_; }
  AuthoritativeServer& tld(const std::string& name) { return *tlds_.at(name); }

 private:
  Zone& tld_zone(const DnsName& zone_origin);

  simnet::Network& net_;
  simnet::NodeId backbone_;
  simnet::LatencyModel processing_;
  std::unique_ptr<AuthoritativeServer> root_;
  std::map<std::string, std::unique_ptr<AuthoritativeServer>> tlds_;
  std::vector<std::unique_ptr<AuthoritativeServer>> authoritatives_;
};

}  // namespace mecdns::dns
