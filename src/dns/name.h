// DNS domain names (RFC 1035 §2.3 / §3.1).
//
// A DnsName is a sequence of labels; comparison is ASCII case-insensitive
// per RFC 4343. Names are validated on construction: labels of 1..63
// octets, total wire length <= 255.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace mecdns::dns {

class DnsName {
 public:
  /// The root name (zero labels).
  DnsName() = default;

  /// Parses presentation format ("www.example.com" or "www.example.com.").
  /// A trailing dot is accepted and ignored; "." parses to the root.
  static util::Result<DnsName> parse(std::string_view text);

  /// Parses, throwing std::invalid_argument on failure; for literals.
  static DnsName must_parse(std::string_view text);

  static DnsName root() { return DnsName(); }

  /// Builds from already-validated labels (front = leftmost label).
  static util::Result<DnsName> from_labels(std::vector<std::string> labels);

  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& label(std::size_t i) const { return labels_.at(i); }

  /// Wire-format length in octets (labels + length bytes + root byte).
  std::size_t wire_length() const;

  /// True if this name is `ancestor` or a subdomain of it.
  bool is_subdomain_of(const DnsName& ancestor) const;

  /// Strips the leftmost label ("www.example.com" -> "example.com").
  /// Calling on the root returns the root.
  DnsName parent() const;

  /// Prepends a label ("www" + "example.com" -> "www.example.com").
  util::Result<DnsName> with_prefix(std::string_view label) const;

  /// Concatenates: this name becomes relative to `suffix`.
  util::Result<DnsName> under(const DnsName& suffix) const;

  /// Replaces the leftmost label with "*", for wildcard lookups. The root
  /// yields "*".
  DnsName wildcard_sibling() const;

  /// Presentation format without trailing dot; "." for the root.
  std::string to_string() const;

  /// Case-insensitive equality.
  friend bool operator==(const DnsName& a, const DnsName& b);
  friend bool operator!=(const DnsName& a, const DnsName& b) {
    return !(a == b);
  }
  /// Canonical ordering (case-folded, right-to-left by label) — the DNSSEC
  /// canonical order, also handy for using DnsName as a map key.
  friend bool operator<(const DnsName& a, const DnsName& b);

  /// Case-folded hash consistent with operator==.
  std::size_t hash() const;

 private:
  static util::Result<void> validate_label(std::string_view label);

  std::vector<std::string> labels_;
};

}  // namespace mecdns::dns

template <>
struct std::hash<mecdns::dns::DnsName> {
  std::size_t operator()(const mecdns::dns::DnsName& n) const noexcept {
    return n.hash();
  }
};
