// DNS domain names (RFC 1035 §2.3 / §3.1).
//
// A DnsName is a sequence of labels; comparison is ASCII case-insensitive
// per RFC 4343. Names are validated on construction: labels of 1..63
// octets, total wire length <= 255.
//
// Storage is a single wire-format buffer (length-prefixed labels, without
// the terminating root byte): up to 54 data octets inline — covering every
// realistic hostname — with a heap fallback for longer names up to the
// RFC limit of 254 data octets. This makes the common name a zero-allocation
// value type; the old std::vector<std::string> representation cost one heap
// allocation per label plus the vector itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace mecdns::dns {

class DnsName {
 public:
  /// Maximum data octets (255-octet wire limit minus the root byte).
  static constexpr std::size_t kMaxData = 254;
  /// Data octets stored inline before falling back to the heap.
  static constexpr std::size_t kInlineCapacity = 54;

  /// The root name (zero labels).
  DnsName() : size_(0), count_(0) {}

  DnsName(const DnsName& other);
  DnsName(DnsName&& other) noexcept;
  DnsName& operator=(const DnsName& other);
  DnsName& operator=(DnsName&& other) noexcept;
  ~DnsName();

  /// Parses presentation format ("www.example.com" or "www.example.com.").
  /// A trailing dot is accepted and ignored; "." parses to the root.
  static util::Result<DnsName> parse(std::string_view text);

  /// Parses, throwing std::invalid_argument on failure; for literals.
  static DnsName must_parse(std::string_view text);

  static DnsName root() { return DnsName(); }

  /// Builds from already-split labels (front = leftmost label).
  static util::Result<DnsName> from_labels(std::vector<std::string> labels);

  /// Validates and appends one label at the right (builder for parse and
  /// wire decoding). Fails on invalid labels or if the name would exceed
  /// the 255-octet wire limit; the name is unchanged on failure.
  util::Result<void> append_label(std::string_view label);

  bool is_root() const { return count_ == 0; }
  std::size_t label_count() const { return count_; }

  /// The i-th label (0 = leftmost). The view borrows this name's storage.
  std::string_view label(std::size_t i) const;

  /// Labels as owning strings — cold-path convenience (allocates).
  std::vector<std::string> labels() const;

  /// Wire-format bytes: length-prefixed labels WITHOUT the terminating
  /// root byte. Borrows this name's storage.
  std::string_view wire_labels() const { return {data_ptr(), size_}; }

  /// Wire-format length in octets (labels + length bytes + root byte).
  std::size_t wire_length() const { return std::size_t{size_} + 1; }

  /// True if this name is `ancestor` or a subdomain of it.
  bool is_subdomain_of(const DnsName& ancestor) const;

  /// Strips the leftmost label ("www.example.com" -> "example.com").
  /// Calling on the root returns the root.
  DnsName parent() const;

  /// The first (leftmost) n labels; n >= label_count() returns a copy.
  DnsName prefix(std::size_t n) const;

  /// The last (rightmost) n labels; n >= label_count() returns a copy.
  DnsName suffix(std::size_t n) const;

  /// Prepends a label ("www" + "example.com" -> "www.example.com").
  util::Result<DnsName> with_prefix(std::string_view label) const;

  /// Concatenates: this name becomes relative to `suffix`.
  util::Result<DnsName> under(const DnsName& suffix) const;

  /// Replaces the leftmost label with "*", for wildcard lookups. The root
  /// yields "*".
  DnsName wildcard_sibling() const;

  /// Presentation format without trailing dot; "." for the root.
  std::string to_string() const;

  /// Case-insensitive equality.
  friend bool operator==(const DnsName& a, const DnsName& b);
  friend bool operator!=(const DnsName& a, const DnsName& b) {
    return !(a == b);
  }
  /// Case-SENSITIVE equality (same bytes) — what DNS 0x20 verification
  /// needs; operator== folds case per RFC 4343.
  bool equals_exact(const DnsName& other) const;

  /// Canonical ordering (case-folded, right-to-left by label) — the DNSSEC
  /// canonical order, also handy for using DnsName as a map key.
  friend bool operator<(const DnsName& a, const DnsName& b);

  /// Case-folded hash consistent with operator==.
  std::size_t hash() const;

 private:
  static util::Result<void> validate_label(std::string_view label);

  bool on_heap() const { return size_ > kInlineCapacity; }
  const char* data_ptr() const { return on_heap() ? heap_ : inline_; }
  char* mutable_data() { return on_heap() ? heap_ : inline_; }

  /// Byte offset of label i (must be <= count_; count_ maps to size_).
  std::size_t offset_of(std::size_t i) const;

  /// Adopts `size` already-validated wire bytes holding `count` labels.
  static DnsName from_wire_trusted(const char* data, std::size_t size,
                                   std::size_t count);

  std::uint8_t size_;   ///< data octets used (0..254); >54 means heap
  std::uint8_t count_;  ///< number of labels
  union {
    char inline_[kInlineCapacity];
    char* heap_;  ///< kMaxData-byte buffer, active when size_ > 54
  };
};

}  // namespace mecdns::dns

template <>
struct std::hash<mecdns::dns::DnsName> {
  std::size_t operator()(const mecdns::dns::DnsName& n) const noexcept {
    return n.hash();
  }
};
