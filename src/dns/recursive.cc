#include "dns/recursive.h"

#include <algorithm>

#include "util/log.h"

namespace mecdns::dns {

RecursiveResolver::RecursiveResolver(simnet::Network& net,
                                     simnet::NodeId node, std::string name,
                                     simnet::LatencyModel processing_delay,
                                     Config config, simnet::Ipv4Address addr)
    : DnsServer(net, node, std::move(name), std::move(processing_delay), addr),
      config_(std::move(config)), cache_(config_.cache_entries) {
  transport_ = std::make_unique<DnsTransport>(net, node);
}

std::optional<ClientSubnet> RecursiveResolver::make_ecs(
    const Message& query, const QueryContext& ctx) const {
  if (config_.ecs_mode == EcsMode::kOff) return std::nullopt;
  if (query.edns.has_value() && query.edns->client_subnet.has_value()) {
    // Forward the client's own ECS (a stub or downstream forwarder sent it).
    return query.edns->client_subnet;
  }
  ClientSubnet ecs;
  ecs.address = ctx.client.addr;
  ecs.source_prefix = config_.ecs_prefix;
  ecs.scope_prefix = 0;
  return ecs;
}

void RecursiveResolver::handle(const Message& query, const QueryContext& ctx,
                               Responder respond) {
  const Question& q = query.question();

  auto job = std::make_shared<Job>();
  job->qname = q.name;
  job->qtype = q.type;
  job->ecs = make_ecs(query, ctx);
  job->budget_holder = std::make_shared<int>(config_.query_budget);
  job->budget = job->budget_holder.get();
  job->done = [this, query, respond = std::move(respond)](
                  RCode rcode, std::shared_ptr<Job> finished) {
    Message response = make_response(query, rcode);
    response.header.ra = true;
    response.answers = std::move(finished->answers);
    if (query.edns.has_value()) {
      response.edns = Edns{};
      if (query.edns->client_subnet.has_value()) {
        response.edns->client_subnet = query.edns->client_subnet;
      }
    }
    respond(std::move(response));
  };
  resolve(std::move(job));
}

void RecursiveResolver::resolve(std::shared_ptr<Job> job) {
  // 1. Serve from cache, following cached CNAME chains.
  while (true) {
    auto cached = cache_.lookup(job->qname, job->qtype, now());
    if (cached.has_value()) {
      if (cached->negative) {
        job->done(cached->rcode, job);
        return;
      }
      job->answers.insert(job->answers.end(), cached->records.begin(),
                          cached->records.end());
      job->done(RCode::kNoError, job);
      return;
    }
    if (job->qtype != RecordType::kCname) {
      auto cname = cache_.lookup(job->qname, RecordType::kCname,
                                 now());
      if (cname.has_value() && !cname->negative && !cname->records.empty()) {
        job->answers.insert(job->answers.end(), cname->records.begin(),
                            cname->records.end());
        const auto* target =
            std::get_if<CnameRecord>(&cname->records.front().rdata);
        if (target == nullptr || ++job->cname_hops > config_.max_cname_chain) {
          job->done(RCode::kServFail, job);
          return;
        }
        job->qname = target->target;
        continue;
      }
    }
    break;
  }

  // 2. Find servers to ask.
  DnsName glueless;
  std::vector<simnet::Endpoint> servers =
      candidate_servers(job->qname, &glueless);
  if (servers.empty()) {
    if (glueless.is_root()) {
      job->done(RCode::kServFail, job);
      return;
    }
    // Resolve a glue-less nameserver's address first, then retry.
    auto sub = std::make_shared<Job>();
    sub->qname = glueless;
    sub->qtype = RecordType::kA;
    sub->ecs = std::nullopt;  // infrastructure queries carry no client subnet
    sub->budget = job->budget;
    sub->budget_holder = job->budget_holder;
    sub->done = [this, job](RCode rcode, std::shared_ptr<Job> finished) {
      if (rcode != RCode::kNoError || finished->answers.empty()) {
        job->done(RCode::kServFail, job);
        return;
      }
      resolve(job);  // glue now cached; candidate_servers will find it
    };
    resolve(std::move(sub));
    return;
  }
  query_servers(std::move(job), std::move(servers), 0);
}

std::vector<simnet::Endpoint> RecursiveResolver::candidate_servers(
    const DnsName& qname, DnsName* glueless) {
  *glueless = DnsName::root();
  // Walk from the most specific cached delegation up to the root.
  DnsName zone = qname;
  while (true) {
    const auto it = delegations_.find(zone);
    if (it != delegations_.end()) {
      std::vector<simnet::Endpoint> servers;
      DnsName first_unresolved = DnsName::root();
      for (const DnsName& ns : it->second) {
        auto cached = cache_.lookup(ns, RecordType::kA, now());
        if (cached.has_value() && !cached->negative) {
          for (const auto& rr : cached->records) {
            if (const auto* a = std::get_if<ARecord>(&rr.rdata)) {
              servers.push_back({a->address, kDnsPort});
            }
          }
        } else if (first_unresolved.is_root()) {
          first_unresolved = ns;
        }
      }
      if (!servers.empty()) return servers;
      if (!first_unresolved.is_root() && !(first_unresolved == qname)) {
        *glueless = first_unresolved;
        return {};
      }
      // Delegation known but unusable: fall through toward the root.
    }
    if (zone.is_root()) break;
    zone = zone.parent();
  }
  return config_.root_servers;
}

void RecursiveResolver::query_servers(std::shared_ptr<Job> job,
                                      std::vector<simnet::Endpoint> servers,
                                      std::size_t index) {
  if (index >= servers.size()) {
    job->done(RCode::kServFail, job);
    return;
  }
  if (--(*job->budget) < 0) {
    job->done(RCode::kServFail, job);
    return;
  }
  ++upstream_queries_;

  Message upstream = make_query(0, job->qname, job->qtype,
                                /*recursion_desired=*/false);
  if (job->ecs.has_value()) {
    upstream.edns = Edns{};
    upstream.edns->client_subnet = job->ecs;
  }
  const simnet::Endpoint server = servers[index];
  transport_->query(
      server, std::move(upstream), config_.upstream,
      [this, job, servers = std::move(servers), index](
          util::Result<Message> result, simnet::SimTime) mutable {
        if (!result.ok()) {
          query_servers(job, std::move(servers), index + 1);  // next server
          return;
        }
        on_response(job, std::move(servers), index, result.value());
      });
}

void RecursiveResolver::cache_response_sections(const Message& response) {
  const bool scoped = response.edns.has_value() &&
                      response.edns->client_subnet.has_value() &&
                      response.edns->client_subnet->scope_prefix > 0;

  // Group answer records into RRsets and cache them — except answers a
  // C-DNS scoped to a client subnet, which are valid only for that client
  // (a shared cache must not serve them to others; we conservatively skip).
  if (!scoped) {
    std::map<std::pair<DnsName, RecordType>, std::vector<ResourceRecord>>
        rrsets;
    for (const auto& rr : response.answers) {
      rrsets[{rr.name, rr.type}].push_back(rr);
    }
    for (auto& [key, rrs] : rrsets) {
      cache_.insert(key.first, key.second, std::move(rrs), now());
    }
  }

  // Cache referral data: NS sets become delegation entries, glue becomes
  // address cache entries.
  std::map<DnsName, std::vector<DnsName>> ns_sets;
  for (const auto& rr : response.authorities) {
    if (const auto* ns = std::get_if<NsRecord>(&rr.rdata)) {
      ns_sets[rr.name].push_back(ns->nameserver);
    }
  }
  for (auto& [zone, names] : ns_sets) {
    delegations_[zone] = std::move(names);
  }
  std::map<std::pair<DnsName, RecordType>, std::vector<ResourceRecord>> glue;
  for (const auto& rr : response.additionals) {
    if (rr.type == RecordType::kA) glue[{rr.name, rr.type}].push_back(rr);
  }
  for (auto& [key, rrs] : glue) {
    cache_.insert(key.first, key.second, std::move(rrs), now());
  }
}

void RecursiveResolver::on_response(std::shared_ptr<Job> job,
                                    std::vector<simnet::Endpoint> servers,
                                    std::size_t index,
                                    const Message& response) {
  cache_response_sections(response);

  if (response.header.rcode == RCode::kNxDomain) {
    cache_.insert_negative(job->qname, job->qtype, RCode::kNxDomain,
                           response.authorities, now());
    job->done(RCode::kNxDomain, job);
    return;
  }
  if (response.header.rcode != RCode::kNoError) {
    query_servers(job, std::move(servers), index + 1);
    return;
  }

  if (!response.answers.empty()) {
    // Look for a terminal answer or a CNAME step for the current qname.
    bool advanced = true;
    while (advanced) {
      advanced = false;
      for (const auto& rr : response.answers) {
        if (!(rr.name == job->qname)) continue;
        if (rr.type == job->qtype) {
          for (const auto& match : response.answers) {
            if (match.name == job->qname && match.type == job->qtype) {
              job->answers.push_back(match);
            }
          }
          job->done(RCode::kNoError, job);
          return;
        }
        if (rr.type == RecordType::kCname && job->qtype != RecordType::kCname) {
          job->answers.push_back(rr);
          if (++job->cname_hops > config_.max_cname_chain) {
            job->done(RCode::kServFail, job);
            return;
          }
          const auto* target = std::get_if<CnameRecord>(&rr.rdata);
          if (target == nullptr) {
            job->done(RCode::kServFail, job);
            return;
          }
          job->qname = target->target;
          advanced = true;
          break;
        }
      }
    }
    // CNAME chain left the answer section: restart resolution at new name.
    resolve(std::move(job));
    return;
  }

  bool has_delegation = false;
  bool has_soa = false;
  for (const auto& rr : response.authorities) {
    if (rr.type == RecordType::kNs) has_delegation = true;
    if (rr.type == RecordType::kSoa) has_soa = true;
  }
  if (has_delegation) {
    resolve(std::move(job));  // delegation cached above; descend
    return;
  }
  if (has_soa || response.header.aa) {
    // NODATA.
    cache_.insert_negative(job->qname, job->qtype, RCode::kNoError,
                           response.authorities, now());
    job->done(RCode::kNoError, job);
    return;
  }
  query_servers(job, std::move(servers), index + 1);
}

}  // namespace mecdns::dns
