// Resource records (RFC 1035 §3.2, RFC 3596, RFC 2782, RFC 6891).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "simnet/ip.h"

namespace mecdns::dns {

enum class RecordType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
  kSrv = 33,
  kOpt = 41,
  kAny = 255,
};

enum class RecordClass : std::uint16_t {
  kIn = 1,
  kAny = 255,
};

std::string to_string(RecordType type);
std::string to_string(RecordClass cls);

// --- typed RDATA ------------------------------------------------------------

struct ARecord {
  simnet::Ipv4Address address;
  friend bool operator==(const ARecord&, const ARecord&) = default;
};

struct AaaaRecord {
  std::array<std::uint8_t, 16> address{};
  friend bool operator==(const AaaaRecord&, const AaaaRecord&) = default;
};

struct NsRecord {
  DnsName nameserver;
  friend bool operator==(const NsRecord&, const NsRecord&) = default;
};

struct CnameRecord {
  DnsName target;
  friend bool operator==(const CnameRecord&, const CnameRecord&) = default;
};

struct PtrRecord {
  DnsName target;
  friend bool operator==(const PtrRecord&, const PtrRecord&) = default;
};

struct SoaRecord {
  DnsName mname;  ///< primary nameserver
  DnsName rname;  ///< responsible mailbox
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;  ///< negative-caching TTL (RFC 2308)
  friend bool operator==(const SoaRecord&, const SoaRecord&) = default;
};

struct TxtRecord {
  std::vector<std::string> strings;
  friend bool operator==(const TxtRecord&, const TxtRecord&) = default;
};

struct SrvRecord {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  DnsName target;
  friend bool operator==(const SrvRecord&, const SrvRecord&) = default;
};

/// OPT pseudo-record RDATA: raw EDNS options (decoded by dns/edns.h).
struct OptRecord {
  std::vector<std::uint8_t> options;
  friend bool operator==(const OptRecord&, const OptRecord&) = default;
};

/// Fallback for record types this library does not model structurally.
struct RawRecord {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> data;
  friend bool operator==(const RawRecord&, const RawRecord&) = default;
};

using RData = std::variant<ARecord, AaaaRecord, NsRecord, CnameRecord,
                           PtrRecord, SoaRecord, TxtRecord, SrvRecord,
                           OptRecord, RawRecord>;

/// RecordType corresponding to the alternative held by an RData.
RecordType rdata_type(const RData& rdata);

struct ResourceRecord {
  DnsName name;
  RecordType type = RecordType::kA;
  RecordClass cls = RecordClass::kIn;
  std::uint32_t ttl = 0;
  RData rdata;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
  std::string to_string() const;
};

// --- construction helpers ----------------------------------------------------

ResourceRecord make_a(const DnsName& name, simnet::Ipv4Address addr,
                      std::uint32_t ttl);
ResourceRecord make_cname(const DnsName& name, const DnsName& target,
                          std::uint32_t ttl);
ResourceRecord make_ns(const DnsName& name, const DnsName& nameserver,
                       std::uint32_t ttl);
ResourceRecord make_soa(const DnsName& name, const DnsName& mname,
                        std::uint32_t serial, std::uint32_t minimum,
                        std::uint32_t ttl);
ResourceRecord make_txt(const DnsName& name, std::vector<std::string> strings,
                        std::uint32_t ttl);
ResourceRecord make_ptr(const DnsName& name, const DnsName& target,
                        std::uint32_t ttl);
ResourceRecord make_srv(const DnsName& name, std::uint16_t priority,
                        std::uint16_t weight, std::uint16_t port,
                        const DnsName& target, std::uint32_t ttl);

}  // namespace mecdns::dns
