#include "dns/transport.h"

#include <cctype>
#include <limits>
#include <utility>

#include "netio/sim_runtime.h"
#include "util/log.h"
#include "util/perfcount.h"

namespace mecdns::dns {

namespace {
/// Randomizes ASCII letter case per label character (DNS-0x20).
DnsName randomize_case(const DnsName& name, util::Rng& rng) {
  DnsName randomized;
  char scratch[64];
  for (std::size_t i = 0; i < name.label_count(); ++i) {
    const std::string_view label = name.label(i);
    for (std::size_t k = 0; k < label.size(); ++k) {
      char c = label[k];
      if (std::isalpha(static_cast<unsigned char>(c)) && rng.bernoulli(0.5)) {
        c = static_cast<char>(std::isupper(static_cast<unsigned char>(c))
                                  ? std::tolower(c)
                                  : std::toupper(c));
      }
      scratch[k] = c;
    }
    if (!randomized.append_label({scratch, label.size()}).ok()) return name;
  }
  return randomized;
}

/// Byte-exact (case-sensitive) name equality, for 0x20 verification.
bool exact_equal(const DnsName& a, const DnsName& b) {
  return a.equals_exact(b);
}
}  // namespace

DnsTransport::DnsTransport(simnet::Network& net, simnet::NodeId node,
                           std::uint64_t id_seed)
    : owned_runtime_(std::make_unique<netio::SimRuntime>(net, node)),
      rt_(owned_runtime_.get()),
      rng_(0x20202020u ^ (static_cast<std::uint64_t>(node) << 24) ^ id_seed),
      next_id_(static_cast<std::uint16_t>(id_seed * 40503u % 65535u + 1)) {
  socket_ = rt_->open_socket(0, [this](const simnet::Packet& packet) {
    on_packet(packet);
  });
}

DnsTransport::DnsTransport(netio::Runtime& runtime, std::uint64_t id_seed)
    : rt_(&runtime),
      rng_(0x20202020u ^ (0x11feULL << 24) ^ id_seed),
      next_id_(static_cast<std::uint16_t>(id_seed * 40503u % 65535u + 1)) {
  socket_ = rt_->open_socket(0, [this](const simnet::Packet& packet) {
    on_packet(packet);
  });
}

DnsTransport::~DnsTransport() {
  // Sockets are owned by the runtime; closing detaches our handler so late
  // packets cannot call into a destroyed object. Pending retry timers are
  // really cancelled where the runtime supports it; the alive flag disarms
  // the rest.
  *alive_ = false;
  for (auto& [id, p] : pending_) rt_->cancel(p.timer);
  rt_->close_socket(socket_);
}

void DnsTransport::query(const simnet::Endpoint& server, Message query,
                         const Options& options, Callback callback) {
  // With every one of the 65535 usable ids in flight, the id-hunt below
  // would spin forever. Fail fast instead — asynchronously, preserving the
  // "callback exactly once, never re-entrantly" contract.
  if (pending_.size() >= 0xFFFF) {
    ++id_exhausted_;
    rt_->schedule_after(
        simnet::SimTime::zero(),
        [alive = alive_, callback = std::move(callback),
         caller = simnet::current_trace_token()]() mutable {
          if (!*alive) return;
          simnet::TraceTokenGuard context(caller);
          callback(util::Err("transaction id space exhausted "
                             "(65535 queries in flight)"),
                   simnet::SimTime::zero());
        });
    return;
  }
  // Pick an unused transaction id.
  std::uint16_t id = next_id_;
  while (pending_.count(id) != 0 || id == 0) ++id;
  next_id_ = static_cast<std::uint16_t>(id + 1);
  query.header.id = id;
  if (options.use_0x20 && !query.questions.empty()) {
    query.questions.front().name =
        randomize_case(query.questions.front().name, rng_);
  }

  Pending pending;
  pending.server = server;
  pending.query = std::move(query);
  pending.options = options;
  pending.callback = std::move(callback);
  pending.first_sent = rt_->now();
  pending.generation = next_generation_++;
  pending.span = obs::begin_span(
      "transport",
      "query " + (pending.query.questions.empty()
                      ? std::string("<empty>")
                      : pending.query.questions.front().name.to_string()));
  pending.caller = simnet::current_trace_token();
  pending_.emplace(id, std::move(pending));
  send_attempt(id);
}

void DnsTransport::send_attempt(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  // Any previously armed timer is now for a superseded attempt. This is
  // what keeps a retargeted/failed-over transaction from waking the live
  // event loop for a server it no longer talks to (sim: no-op, the
  // generation bump below already neutralizes it).
  rt_->cancel(p.timer);
  // Saturate instead of wrapping: with max_retries near INT_MAX a busy
  // transaction could overflow `attempts` into UB; a saturated counter
  // keeps retrying (the configured budget really is that large) and keeps
  // the backoff exponent finite.
  if (p.attempts < std::numeric_limits<int>::max()) ++p.attempts;
  p.generation = next_generation_++;
  // Deliveries and the timeout timer nest under the transaction's span.
  obs::AmbientSpanGuard ambient(p.span);
  ++util::perf::counters().dns_queries_sent;
  // The wire bytes are borrowed straight from the encoder's arena — the
  // socket copies them into a pooled buffer (sim) or onto the wire (live),
  // so no per-send vector is allocated.
  socket_->send(p.server, encode_view(p.query));
  arm_timeout(id, p.generation);
}

simnet::SimTime DnsTransport::retry_interval(const Pending& pending) {
  // Uncapped configs still need a finite timer: 10^attempts milliseconds
  // overflows a double into +inf, and casting that to the int64 nanosecond
  // clock is UB. One hour is beyond any sane retransmission interval.
  constexpr double kUncappedCeilingMs = 3600.0 * 1000.0;
  // The fast path (no backoff, no jitter) must return the configured
  // timeout unmodified so default runs stay bit-identical.
  simnet::SimTime interval = pending.options.timeout;
  const simnet::SimTime cap = pending.options.max_backoff;
  if (pending.options.backoff_factor != 1.0 && pending.attempts > 1) {
    const double ceiling_ms =
        cap > simnet::SimTime::zero() ? cap.to_millis() : kUncappedCeilingMs;
    double ms = interval.to_millis();
    for (int i = 1; i < pending.attempts; ++i) {
      ms *= pending.options.backoff_factor;
      // Clamping inside the loop bounds both the value (no double
      // overflow) and the work (no O(attempts) multiplies once saturated).
      if (ms >= ceiling_ms) {
        ms = ceiling_ms;
        break;
      }
    }
    interval = simnet::SimTime::millis(ms);
  }
  if (cap > simnet::SimTime::zero() && interval > cap) interval = cap;
  if (pending.options.retry_jitter > 0.0) {
    interval = simnet::SimTime::millis(
        interval.to_millis() *
        (1.0 + rng_.uniform(0.0, pending.options.retry_jitter)));
    // Re-clamp after the jitter multiplier: the cap is a hard bound (RFC
    // 1035 §4.2.1 backoff caps mean it on a real wire), so jitter spreads
    // timers *below* it, never past it. The old order — clamp, then
    // jitter — let every jittered timer exceed max_backoff.
    if (cap > simnet::SimTime::zero() && interval > cap) interval = cap;
  }
  return interval;
}

bool DnsTransport::fail_over(std::uint16_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  Pending& p = it->second;
  if (p.server_index >= p.options.fallback_servers.size()) return false;
  p.server = p.options.fallback_servers[p.server_index++];
  p.attempts = 0;
  ++failovers_;
  MECDNS_LOG(kDebug, "transport")
      << "failing over to server #" << p.server_index << " of "
      << p.options.fallback_servers.size() + 1;
  p.span.tag("failover", std::to_string(p.server_index));
  send_attempt(id);
  return true;
}

std::size_t DnsTransport::retarget_pending(const simnet::Endpoint& from,
                                           const simnet::Endpoint& to) {
  if (from == to) return 0;
  // Collect first: send_attempt bumps generations and arms timers, so keep
  // the scan over the flat map free of re-entrant sends.
  std::vector<std::uint16_t> moved;
  for (auto& [id, p] : pending_) {
    if (p.server == from) moved.push_back(id);
  }
  // One span per batch (inert without an ambient trace): the handoff
  // decision, tagged with how many in-flight queries it dragged along.
  obs::SpanRef batch_span = obs::begin_span("transport", "retarget-pending");
  batch_span.tag("to", to.to_string());
  batch_span.tag("moved", std::to_string(moved.size()));
  if (!moved.empty()) {
    ++retarget_batches_;
    if (journal_ != nullptr) {
      journal_->record(rt_->now(), obs::JournalKind::kRetarget,
                       journal_cell_, to.to_string().c_str(), moved.size());
    }
  }
  for (const std::uint16_t id : moved) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    Pending& p = it->second;
    p.server = to;
    p.attempts = 0;  // the new server gets the full retry budget
    ++retargets_;
    p.span.tag("retarget", to.to_string());
    MECDNS_LOG(kDebug, "transport")
        << "retargeting in-flight query to " << to.to_string();
    send_attempt(id);
  }
  batch_span.end();
  return moved.size();
}

void DnsTransport::arm_timeout(std::uint16_t id, std::uint64_t generation) {
  pending_.at(id).timer = rt_->schedule_after(
      retry_interval(pending_.at(id)),
      [this, alive = alive_, id, generation] {
        if (!*alive) return;
        const auto it = pending_.find(id);
        if (it == pending_.end() || it->second.generation != generation) {
          return;  // answered or retransmitted since this timer was armed
        }
        it->second.timer = netio::kNoTimer;  // this timer just fired
        if (it->second.attempts <= it->second.options.max_retries) {
          ++retransmissions_;
          send_attempt(id);
          return;
        }
        ++timeouts_;
        if (fail_over(id)) return;
        Pending p = std::move(it->second);
        pending_.erase(it);
        MECDNS_LOG(kDebug, "transport")
            << "query timed out after " << p.attempts << " attempt(s)";
        p.span.tag("outcome", "timeout");
        p.span.tag("attempts", std::to_string(p.attempts));
        p.span.end();
        simnet::TraceTokenGuard context(p.caller);
        p.callback(util::Err("query timed out after " +
                             std::to_string(p.attempts) + " attempt(s)"),
                   rt_->now() - p.first_sent);
      });
}

void DnsTransport::on_packet(const simnet::Packet& packet) {
  auto decoded = decode(packet.payload);
  if (!decoded.ok()) return;  // malformed response: ignore, timeout handles it
  Message& response = decoded.value();
  if (!response.header.qr) return;

  const auto it = pending_.find(response.header.id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  // Anti-spoofing checks a real resolver performs: the response must come
  // from the queried server and echo the question.
  if (packet.src != p.server) return;
  ++util::perf::counters().dns_responses_received;
  if (!response.questions.empty() && !p.query.questions.empty()) {
    if (!(response.questions.front() == p.query.questions.front())) {
      return;
    }
    // 0x20 hardening: the echoed qname must match byte-exactly.
    if (p.options.use_0x20 &&
        !exact_equal(response.questions.front().name,
                     p.query.questions.front().name)) {
      return;
    }
  }

  // Truncated answer: retry once with a bigger advertised buffer.
  if (response.header.tc && p.options.bufsize_on_tc != 0) {
    const std::uint16_t current =
        p.query.edns.has_value() ? p.query.edns->udp_payload_size : 512;
    if (current < p.options.bufsize_on_tc) {
      ++tc_retries_;
      if (!p.query.edns.has_value()) p.query.edns = Edns{};
      p.query.edns->udp_payload_size = p.options.bufsize_on_tc;
      send_attempt(response.header.id);
      return;
    }
  }

  // SERVFAIL with fallback servers remaining: treat the server as failed
  // and move on, rather than delivering the failure to the caller.
  if (response.header.rcode == RCode::kServFail) {
    ++servfails_;
    if (p.options.failover_on_servfail &&
        p.server_index < p.options.fallback_servers.size()) {
      p.span.tag("servfail_from", std::to_string(p.server_index));
      fail_over(response.header.id);
      return;
    }
  }

  Pending done = std::move(p);
  pending_.erase(it);
  // The transaction is complete; its retry timer must not wake the live
  // event loop (no-op in sim — the erase alone makes the firing stale).
  rt_->cancel(done.timer);
  done.span.tag("rcode", to_string(response.header.rcode));
  if (done.attempts > 1) {
    done.span.tag("attempts", std::to_string(done.attempts));
  }
  done.span.end();
  simnet::TraceTokenGuard context(done.caller);
  done.callback(std::move(decoded), rt_->now() - done.first_sent);
}

}  // namespace mecdns::dns
