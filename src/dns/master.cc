#include "dns/master.h"

#include <charconv>
#include <vector>

#include "util/strings.h"

namespace mecdns::dns {

namespace {

struct ParserState {
  DnsName origin;
  std::uint32_t default_ttl;
};

util::Result<std::uint32_t> parse_u32(const std::string& text) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return util::Err("not a number: '" + text + "'");
  }
  return value;
}

bool is_number(const std::string& text) {
  return !text.empty() &&
         text.find_first_not_of("0123456789") == std::string::npos;
}

/// Tokenizes one line, honouring ';' comments and "quoted strings".
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  for (const char c : line) {
    if (in_quotes) {
      if (c == '"') {
        tokens.push_back("\"" + current);  // keep a quote marker prefix
        current.clear();
        in_quotes = false;
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      continue;
    }
    if (c == ';') break;  // comment
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

util::Result<DnsName> resolve_name(const std::string& token,
                                   const ParserState& state) {
  if (token == "@") return state.origin;
  if (!token.empty() && token.back() == '.') {
    return DnsName::parse(token);
  }
  auto relative = DnsName::parse(token);
  if (!relative.ok()) return relative.error();
  return relative.value().under(state.origin);
}

util::Result<void> parse_record(Zone& zone, ParserState& state,
                                const std::vector<std::string>& tokens) {
  std::size_t i = 0;
  auto owner = resolve_name(tokens[i++], state);
  if (!owner.ok()) return owner.error();

  std::uint32_t ttl = state.default_ttl;
  if (i < tokens.size() && is_number(tokens[i])) {
    auto parsed = parse_u32(tokens[i++]);
    if (!parsed.ok()) return parsed.error();
    ttl = parsed.value();
  }
  if (i < tokens.size() && util::to_lower(tokens[i]) == "in") ++i;
  // (TTL may also follow the class; accept both RFC orders.)
  if (i < tokens.size() && is_number(tokens[i])) {
    auto parsed = parse_u32(tokens[i++]);
    if (!parsed.ok()) return parsed.error();
    ttl = parsed.value();
  }
  if (i >= tokens.size()) return util::Err("missing record type");
  const std::string type = util::to_lower(tokens[i++]);
  const std::vector<std::string> rdata(tokens.begin() + static_cast<std::ptrdiff_t>(i),
                                       tokens.end());

  const auto need = [&](std::size_t n) -> util::Result<void> {
    if (rdata.size() != n) {
      return util::Err(type + " expects " + std::to_string(n) +
                       " RDATA field(s), got " + std::to_string(rdata.size()));
    }
    return util::Ok();
  };

  if (type == "a") {
    if (auto check = need(1); !check.ok()) return check;
    auto addr = simnet::Ipv4Address::parse(rdata[0]);
    if (!addr.ok()) return addr.error();
    return zone.add(make_a(owner.value(), addr.value(), ttl));
  }
  if (type == "ns" || type == "cname" || type == "ptr") {
    if (auto check = need(1); !check.ok()) return check;
    auto target = resolve_name(rdata[0], state);
    if (!target.ok()) return target.error();
    if (type == "ns") {
      return zone.add(make_ns(owner.value(), target.value(), ttl));
    }
    if (type == "cname") {
      return zone.add(make_cname(owner.value(), target.value(), ttl));
    }
    return zone.add(make_ptr(owner.value(), target.value(), ttl));
  }
  if (type == "txt") {
    if (rdata.empty()) return util::Err("TXT needs at least one string");
    TxtRecord txt;
    for (const auto& token : rdata) {
      // Quoted tokens carry a '"' marker prefix from the tokenizer.
      txt.strings.push_back(token.front() == '"' ? token.substr(1) : token);
    }
    return zone.add(ResourceRecord{owner.value(), RecordType::kTxt,
                                   RecordClass::kIn, ttl, std::move(txt)});
  }
  if (type == "soa") {
    if (auto check = need(7); !check.ok()) return check;
    auto mname = resolve_name(rdata[0], state);
    if (!mname.ok()) return mname.error();
    auto rname = resolve_name(rdata[1], state);
    if (!rname.ok()) return rname.error();
    SoaRecord soa;
    soa.mname = mname.value();
    soa.rname = rname.value();
    const util::Result<std::uint32_t> numbers[5] = {
        parse_u32(rdata[2]), parse_u32(rdata[3]), parse_u32(rdata[4]),
        parse_u32(rdata[5]), parse_u32(rdata[6])};
    for (const auto& n : numbers) {
      if (!n.ok()) return n.error();
    }
    soa.serial = numbers[0].value();
    soa.refresh = numbers[1].value();
    soa.retry = numbers[2].value();
    soa.expire = numbers[3].value();
    soa.minimum = numbers[4].value();
    return zone.add(ResourceRecord{owner.value(), RecordType::kSoa,
                                   RecordClass::kIn, ttl, std::move(soa)});
  }
  if (type == "srv") {
    if (auto check = need(4); !check.ok()) return check;
    const auto priority = parse_u32(rdata[0]);
    const auto weight = parse_u32(rdata[1]);
    const auto port = parse_u32(rdata[2]);
    if (!priority.ok()) return priority.error();
    if (!weight.ok()) return weight.error();
    if (!port.ok()) return port.error();
    auto target = resolve_name(rdata[3], state);
    if (!target.ok()) return target.error();
    return zone.add(make_srv(owner.value(),
                             static_cast<std::uint16_t>(priority.value()),
                             static_cast<std::uint16_t>(weight.value()),
                             static_cast<std::uint16_t>(port.value()),
                             target.value(), ttl));
  }
  return util::Err("unsupported record type '" + type + "'");
}

}  // namespace

util::Result<void> load_master_text(Zone& zone, std::string_view text,
                                    std::uint32_t default_ttl) {
  ParserState state{zone.origin(), default_ttl};
  std::size_t line_number = 0;
  for (const auto& raw_line : util::split(text, '\n')) {
    ++line_number;
    if (raw_line.find('(') != std::string::npos) {
      return util::Err("line " + std::to_string(line_number) +
                       ": multi-line records are not supported");
    }
    const auto tokens = tokenize(raw_line);
    if (tokens.empty()) continue;

    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2) {
        return util::Err("line " + std::to_string(line_number) +
                         ": $TTL expects one value");
      }
      auto ttl = parse_u32(tokens[1]);
      if (!ttl.ok()) {
        return util::Err("line " + std::to_string(line_number) + ": " +
                         ttl.error().message);
      }
      state.default_ttl = ttl.value();
      continue;
    }
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) {
        return util::Err("line " + std::to_string(line_number) +
                         ": $ORIGIN expects one name");
      }
      auto origin = DnsName::parse(tokens[1]);
      if (!origin.ok()) return origin.error();
      if (!origin.value().is_subdomain_of(zone.origin())) {
        return util::Err("line " + std::to_string(line_number) +
                         ": $ORIGIN outside the zone");
      }
      state.origin = origin.value();
      continue;
    }

    if (auto result = parse_record(zone, state, tokens); !result.ok()) {
      return util::Err("line " + std::to_string(line_number) + ": " +
                       result.error().message);
    }
  }
  return util::Ok();
}

}  // namespace mecdns::dns
