#include "dns/hierarchy.h"

#include <stdexcept>

#include "util/strings.h"

namespace mecdns::dns {

namespace {
constexpr std::uint32_t kInfraTtl = 172800;  // 2 days, like real root/TLD data
}  // namespace

PublicDnsHierarchy::PublicDnsHierarchy(simnet::Network& net,
                                       simnet::NodeId backbone,
                                       simnet::LatencyModel root_link,
                                       simnet::LatencyModel server_processing,
                                       simnet::Ipv4Address root_addr)
    : net_(net), backbone_(backbone), processing_(server_processing) {
  const simnet::NodeId node = net_.add_node("dns-root", root_addr);
  net_.add_link(backbone_, node, std::move(root_link));
  root_ = std::make_unique<AuthoritativeServer>(net_, node, "dns-root",
                                                processing_);
  Zone& zone = root_->add_zone(DnsName::root());
  zone.must_add(make_soa(DnsName::root(),
                         DnsName::must_parse("a.root-servers.net"), 1,
                         kInfraTtl, kInfraTtl));
}

void PublicDnsHierarchy::ensure_tld(const std::string& tld,
                                    simnet::Ipv4Address addr,
                                    simnet::LatencyModel link) {
  if (tlds_.count(tld) != 0) return;
  const DnsName origin = DnsName::must_parse(tld);
  const DnsName ns_name = DnsName::must_parse("a.gtld." + tld);

  const simnet::NodeId node = net_.add_node("dns-tld-" + tld, addr);
  net_.add_link(backbone_, node, std::move(link));
  auto server = std::make_unique<AuthoritativeServer>(net_, node,
                                                      "dns-tld-" + tld,
                                                      processing_);
  Zone& zone = server->add_zone(origin);
  zone.must_add(make_soa(origin, ns_name, 1, kInfraTtl, kInfraTtl));

  Zone* root_zone = root_->find_zone(DnsName::root());
  root_zone->must_add(make_ns(origin, ns_name, kInfraTtl));
  root_zone->must_add(make_a(ns_name, addr, kInfraTtl));
  tlds_.emplace(tld, std::move(server));
}

Zone& PublicDnsHierarchy::tld_zone(const DnsName& zone_origin) {
  if (zone_origin.is_root()) {
    throw std::invalid_argument("cannot delegate the root");
  }
  const std::string tld(zone_origin.label(zone_origin.label_count() - 1));
  const auto it = tlds_.find(tld);
  if (it == tlds_.end()) {
    throw std::logic_error("TLD '" + tld + "' not created; call ensure_tld");
  }
  return *it->second->find_zone(DnsName::must_parse(tld));
}

AuthoritativeServer& PublicDnsHierarchy::add_authoritative(
    const DnsName& zone_origin, simnet::Ipv4Address addr,
    simnet::LatencyModel link) {
  const DnsName ns_name =
      DnsName::must_parse("ns1." + zone_origin.to_string());

  const simnet::NodeId node =
      net_.add_node("dns-auth-" + zone_origin.to_string(), addr);
  net_.add_link(backbone_, node, std::move(link));
  auto server = std::make_unique<AuthoritativeServer>(
      net_, node, "dns-auth-" + zone_origin.to_string(), processing_);
  Zone& zone = server->add_zone(zone_origin);
  zone.must_add(make_soa(zone_origin, ns_name, 1, 300, 3600));
  zone.must_add(make_ns(zone_origin, ns_name, kInfraTtl));
  zone.must_add(make_a(ns_name, addr, kInfraTtl));

  delegate_to(zone_origin, ns_name, addr);
  authoritatives_.push_back(std::move(server));
  return *authoritatives_.back();
}

void PublicDnsHierarchy::delegate_to(const DnsName& zone_origin,
                                     const DnsName& ns_name,
                                     simnet::Ipv4Address ns_addr) {
  Zone& parent = tld_zone(zone_origin);
  // Delegate the origin itself from the TLD zone. (Delegating deeper,
  // multi-label origins directly from the TLD also works: the resolver
  // walks cached delegations most-specific first.)
  parent.must_add(make_ns(zone_origin, ns_name, kInfraTtl));
  parent.must_add(make_a(ns_name, ns_addr, kInfraTtl));
}

}  // namespace mecdns::dns
