#include "dns/wire.h"

#include <cctype>
#include <string>

#include "dns/edns.h"
#include "util/arena.h"
#include "util/bytes.h"
#include "util/perfcount.h"
#include "util/small_vector.h"
#include "util/thread_fresh.h"

namespace mecdns::dns {

namespace {

constexpr std::uint8_t kPointerTag = 0xc0;
constexpr std::size_t kMaxPointerChases = 32;

char fold_char(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

/// Tracks previously written names so later occurrences can point at them
/// (RFC 1035 §4.1.4).
///
/// Instead of a std::map keyed by lowercased dotted-suffix strings (one
/// string build + tree walk per label), this records the byte offset of
/// every label start it writes and, on lookup, compares the candidate
/// suffix against the name already in the output buffer at each recorded
/// offset — chasing compression pointers, case-insensitively. Offsets are
/// scanned in recording order, so the earliest occurrence of a suffix wins,
/// exactly as std::map::emplace kept the first insertion.
class NameCompressor {
 public:
  void write_name(util::ByteWriter& out, const DnsName& name) {
    const std::string_view wire = name.wire_labels();
    std::size_t at = 0;
    while (at < wire.size()) {
      const std::size_t found = find_suffix(out, wire.substr(at));
      if (found != kNotFound) {
        out.u16(static_cast<std::uint16_t>(0xc000 | found));
        return;
      }
      if (out.size() < 0x3fff) {
        offsets_.push_back(static_cast<std::uint16_t>(out.size()));
      }
      const std::size_t len = static_cast<unsigned char>(wire[at]);
      out.bytes(wire.substr(at, 1 + len));
      at += 1 + len;
    }
    out.u8(0);  // root
  }

 private:
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  /// Earliest recorded offset whose in-buffer name equals `want` (a run of
  /// length-prefixed labels without the terminating root byte).
  std::size_t find_suffix(const util::ByteWriter& out,
                          std::string_view want) const {
    for (const std::uint16_t offset : offsets_) {
      if (matches_at(out, offset, want)) return offset;
    }
    return kNotFound;
  }

  static bool matches_at(const util::ByteWriter& out, std::size_t pos,
                         std::string_view want) {
    const std::uint8_t* buf = out.raw();
    const std::size_t size = out.size();
    std::size_t w = 0;
    std::size_t chases = 0;
    while (true) {
      if (pos >= size) return false;
      const std::uint8_t len = buf[pos];
      if ((len & kPointerTag) == kPointerTag) {
        if (++chases > kMaxPointerChases || pos + 1 >= size) return false;
        pos = (static_cast<std::size_t>(len & 0x3f) << 8) | buf[pos + 1];
        continue;
      }
      if (w == want.size()) return len == 0;
      if (len != static_cast<std::uint8_t>(want[w])) return false;
      if (pos + 1 + len > size) return false;
      for (std::size_t k = 0; k < len; ++k) {
        if (fold_char(static_cast<char>(buf[pos + 1 + k])) !=
            fold_char(want[w + 1 + k])) {
          return false;
        }
      }
      pos += 1 + len;
      w += 1 + len;
    }
  }

  util::SmallVector<std::uint16_t, 32> offsets_;
};

void write_uncompressed_name(util::ByteWriter& out, const DnsName& name) {
  out.bytes(name.wire_labels());
  out.u8(0);
}

void write_record(util::ByteWriter& out, NameCompressor& names,
                  const ResourceRecord& rr) {
  names.write_name(out, rr.name);
  out.u16(static_cast<std::uint16_t>(rr.type));
  out.u16(static_cast<std::uint16_t>(rr.cls));
  out.u32(rr.ttl);
  const std::size_t rdlength_at = out.size();
  out.u16(0);  // patched below
  const std::size_t rdata_start = out.size();

  struct RDataWriter {
    util::ByteWriter& out;
    NameCompressor& names;

    void operator()(const ARecord& a) { out.u32(a.address.value()); }
    void operator()(const AaaaRecord& a) {
      for (const std::uint8_t b : a.address) out.u8(b);
    }
    void operator()(const NsRecord& ns) { names.write_name(out, ns.nameserver); }
    void operator()(const CnameRecord& c) { names.write_name(out, c.target); }
    void operator()(const PtrRecord& p) { names.write_name(out, p.target); }
    void operator()(const SoaRecord& soa) {
      names.write_name(out, soa.mname);
      names.write_name(out, soa.rname);
      out.u32(soa.serial);
      out.u32(soa.refresh);
      out.u32(soa.retry);
      out.u32(soa.expire);
      out.u32(soa.minimum);
    }
    void operator()(const TxtRecord& txt) {
      for (const auto& s : txt.strings) {
        const std::size_t n = std::min<std::size_t>(s.size(), 255);
        out.u8(static_cast<std::uint8_t>(n));
        out.bytes(std::string_view(s).substr(0, n));
      }
    }
    void operator()(const SrvRecord& srv) {
      out.u16(srv.priority);
      out.u16(srv.weight);
      out.u16(srv.port);
      write_uncompressed_name(out, srv.target);  // RFC 2782: no compression
    }
    void operator()(const OptRecord& opt) {
      out.bytes(std::span<const std::uint8_t>(opt.options));
    }
    void operator()(const RawRecord& raw) {
      out.bytes(std::span<const std::uint8_t>(raw.data));
    }
  };
  std::visit(RDataWriter{out, names}, rr.rdata);
  out.patch_u16(rdlength_at,
                static_cast<std::uint16_t>(out.size() - rdata_start));
}

/// Materializes the OPT pseudo-record described by Edns (RFC 6891 §6.1.2):
/// owner = root, CLASS = requestor's UDP payload size, TTL = extended
/// rcode/version/DO flags.
ResourceRecord make_opt_record(const Edns& edns) {
  ResourceRecord rr;
  rr.name = DnsName::root();
  rr.type = RecordType::kOpt;
  rr.cls = static_cast<RecordClass>(edns.udp_payload_size);
  rr.ttl = (static_cast<std::uint32_t>(edns.extended_rcode) << 24) |
           (static_cast<std::uint32_t>(edns.version) << 16) |
           (edns.dnssec_ok ? 0x8000u : 0u);
  rr.rdata = OptRecord{encode_edns_options(edns)};
  return rr;
}

util::Result<DnsName> read_name(util::ByteReader& reader) {
  DnsName name;
  std::size_t chases = 0;
  bool jumped = false;
  std::size_t resume_at = 0;

  while (true) {
    auto len_result = reader.u8();
    if (!len_result.ok()) return len_result.error();
    const std::uint8_t len = len_result.value();

    if ((len & kPointerTag) == kPointerTag) {
      auto low = reader.u8();
      if (!low.ok()) return low.error();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low.value();
      if (!jumped) {
        resume_at = reader.position();
        jumped = true;
      }
      if (++chases > kMaxPointerChases) {
        return util::Err("compression pointer loop");
      }
      if (target >= reader.size()) {
        return util::Err("compression pointer past end");
      }
      auto seek = reader.seek(target);
      if (!seek.ok()) return seek.error();
      continue;
    }
    if ((len & kPointerTag) != 0) {
      return util::Err("reserved label type");
    }
    if (len == 0) break;
    auto label = reader.view(len);
    if (!label.ok()) return label.error();
    auto appended = name.append_label(label.value());
    if (!appended.ok()) return appended.error();
    if (name.label_count() > 127) return util::Err("too many labels");
  }

  if (jumped) {
    auto seek = reader.seek(resume_at);
    if (!seek.ok()) return seek.error();
  }
  return name;
}

util::Result<ResourceRecord> read_record(util::ByteReader& reader) {
  ResourceRecord rr;
  auto name = read_name(reader);
  if (!name.ok()) return name.error();
  rr.name = std::move(name.value());

  auto type = reader.u16();
  if (!type.ok()) return type.error();
  auto cls = reader.u16();
  if (!cls.ok()) return cls.error();
  auto ttl = reader.u32();
  if (!ttl.ok()) return ttl.error();
  auto rdlength = reader.u16();
  if (!rdlength.ok()) return rdlength.error();

  rr.type = static_cast<RecordType>(type.value());
  rr.cls = static_cast<RecordClass>(cls.value());
  rr.ttl = ttl.value();
  const std::size_t rdata_end = reader.position() + rdlength.value();
  if (rdata_end > reader.size()) return util::Err("RDATA past end of message");

  switch (rr.type) {
    case RecordType::kA: {
      if (rdlength.value() != 4) return util::Err("A RDATA must be 4 octets");
      auto v = reader.u32();
      if (!v.ok()) return v.error();
      rr.rdata = ARecord{simnet::Ipv4Address(v.value())};
      break;
    }
    case RecordType::kAaaa: {
      if (rdlength.value() != 16) {
        return util::Err("AAAA RDATA must be 16 octets");
      }
      AaaaRecord rec;
      for (auto& b : rec.address) {
        auto v = reader.u8();
        if (!v.ok()) return v.error();
        b = v.value();
      }
      rr.rdata = rec;
      break;
    }
    case RecordType::kNs: {
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      rr.rdata = NsRecord{std::move(target.value())};
      break;
    }
    case RecordType::kCname: {
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      rr.rdata = CnameRecord{std::move(target.value())};
      break;
    }
    case RecordType::kPtr: {
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      rr.rdata = PtrRecord{std::move(target.value())};
      break;
    }
    case RecordType::kSoa: {
      SoaRecord soa;
      auto mname = read_name(reader);
      if (!mname.ok()) return mname.error();
      soa.mname = std::move(mname.value());
      auto rname = read_name(reader);
      if (!rname.ok()) return rname.error();
      soa.rname = std::move(rname.value());
      auto serial = reader.u32();
      if (!serial.ok()) return serial.error();
      auto refresh = reader.u32();
      if (!refresh.ok()) return refresh.error();
      auto retry = reader.u32();
      if (!retry.ok()) return retry.error();
      auto expire = reader.u32();
      if (!expire.ok()) return expire.error();
      auto minimum = reader.u32();
      if (!minimum.ok()) return minimum.error();
      soa.serial = serial.value();
      soa.refresh = refresh.value();
      soa.retry = retry.value();
      soa.expire = expire.value();
      soa.minimum = minimum.value();
      rr.rdata = std::move(soa);
      break;
    }
    case RecordType::kTxt: {
      TxtRecord txt;
      while (reader.position() < rdata_end) {
        auto len = reader.u8();
        if (!len.ok()) return len.error();
        if (reader.position() + len.value() > rdata_end) {
          return util::Err("TXT string past RDATA");
        }
        auto s = reader.str(len.value());
        if (!s.ok()) return s.error();
        txt.strings.push_back(std::move(s.value()));
      }
      rr.rdata = std::move(txt);
      break;
    }
    case RecordType::kSrv: {
      SrvRecord srv;
      auto priority = reader.u16();
      if (!priority.ok()) return priority.error();
      auto weight = reader.u16();
      if (!weight.ok()) return weight.error();
      auto port = reader.u16();
      if (!port.ok()) return port.error();
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      srv.priority = priority.value();
      srv.weight = weight.value();
      srv.port = port.value();
      srv.target = std::move(target.value());
      rr.rdata = std::move(srv);
      break;
    }
    case RecordType::kOpt: {
      auto data = reader.bytes(rdlength.value());
      if (!data.ok()) return data.error();
      rr.rdata = OptRecord{std::move(data.value())};
      break;
    }
    default: {
      auto data = reader.bytes(rdlength.value());
      if (!data.ok()) return data.error();
      rr.rdata = RawRecord{type.value(), std::move(data.value())};
      break;
    }
  }
  if (reader.position() != rdata_end) {
    return util::Err("RDATA length mismatch for " + to_string(rr.type));
  }
  return rr;
}

/// Per-thread scratch for encode temporaries: reset (not freed) per message,
/// so the steady state allocates only the final wire vector. Registered with
/// the thread-fresh registry so the campaign runner can return it to a cold
/// state before each job — otherwise a job landing on a warm worker thread
/// would see different refill/allocation counts than the same job on a
/// fresh thread, breaking worker-count byte-identity.
util::Arena& encode_arena() {
  thread_local struct Holder {
    util::Arena arena{2048};
    Holder() {
      util::register_thread_cache(
          [](void* ctx) { static_cast<util::Arena*>(ctx)->release(); },
          &arena);
    }
  } holder;
  return holder.arena;
}

}  // namespace

namespace {
/// Shared encode body: leaves the wire bytes in the thread-local arena and
/// returns the writer (whose data() views them).
util::ByteWriter encode_to_arena(const Message& message) {
  util::Arena& arena = encode_arena();
  arena.reset();
  util::ByteWriter out(&arena);
  NameCompressor names;

  std::uint16_t flags = 0;
  const Header& h = message.header;
  if (h.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.opcode) & 0xf)
           << 11;
  if (h.aa) flags |= 0x0400;
  if (h.tc) flags |= 0x0200;
  if (h.rd) flags |= 0x0100;
  if (h.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.rcode) & 0xf);

  const std::size_t arcount =
      message.additionals.size() + (message.edns.has_value() ? 1 : 0);

  out.u16(h.id);
  out.u16(flags);
  out.u16(static_cast<std::uint16_t>(message.questions.size()));
  out.u16(static_cast<std::uint16_t>(message.answers.size()));
  out.u16(static_cast<std::uint16_t>(message.authorities.size()));
  out.u16(static_cast<std::uint16_t>(arcount));

  for (const auto& q : message.questions) {
    names.write_name(out, q.name);
    out.u16(static_cast<std::uint16_t>(q.type));
    out.u16(static_cast<std::uint16_t>(q.cls));
  }
  for (const auto& rr : message.answers) write_record(out, names, rr);
  for (const auto& rr : message.authorities) write_record(out, names, rr);
  for (const auto& rr : message.additionals) write_record(out, names, rr);
  // The OPT pseudo-record rides last in additionals, written directly from
  // Message::edns — no section copy just to append it.
  if (message.edns.has_value()) {
    write_record(out, names, make_opt_record(*message.edns));
  }
  auto& perf = util::perf::counters();
  ++perf.dns_encoded;
  perf.dns_bytes_encoded += out.size();
  return out;
}
}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  return encode_to_arena(message).take();
}

std::span<const std::uint8_t> encode_view(const Message& message) {
  // The writer's bytes live in the thread-local arena, which outlives the
  // writer object itself — the view stays valid until the next encode.
  return encode_to_arena(message).data();
}

util::Result<Message> decode(std::span<const std::uint8_t> wire) {
  auto& perf = util::perf::counters();
  ++perf.dns_decoded;
  perf.dns_bytes_decoded += wire.size();
  util::ByteReader reader(wire);
  Message msg;

  auto id = reader.u16();
  if (!id.ok()) return id.error();
  auto flags_result = reader.u16();
  if (!flags_result.ok()) return flags_result.error();
  const std::uint16_t flags = flags_result.value();

  msg.header.id = id.value();
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.rcode = static_cast<RCode>(flags & 0xf);

  auto qdcount = reader.u16();
  if (!qdcount.ok()) return qdcount.error();
  auto ancount = reader.u16();
  if (!ancount.ok()) return ancount.error();
  auto nscount = reader.u16();
  if (!nscount.ok()) return nscount.error();
  auto arcount = reader.u16();
  if (!arcount.ok()) return arcount.error();

  for (std::uint16_t i = 0; i < qdcount.value(); ++i) {
    Question q;
    auto name = read_name(reader);
    if (!name.ok()) return name.error();
    q.name = std::move(name.value());
    auto type = reader.u16();
    if (!type.ok()) return type.error();
    auto cls = reader.u16();
    if (!cls.ok()) return cls.error();
    q.type = static_cast<RecordType>(type.value());
    q.cls = static_cast<RecordClass>(cls.value());
    msg.questions.push_back(std::move(q));
  }

  const auto read_section = [&](std::uint16_t count,
                                RecordList& section) -> util::Result<void> {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = read_record(reader);
      if (!rr.ok()) return rr.error();
      section.push_back(std::move(rr.value()));
    }
    return util::Ok();
  };

  if (auto r = read_section(ancount.value(), msg.answers); !r.ok()) {
    return r.error();
  }
  if (auto r = read_section(nscount.value(), msg.authorities); !r.ok()) {
    return r.error();
  }
  if (auto r = read_section(arcount.value(), msg.additionals); !r.ok()) {
    return r.error();
  }

  // Lift the OPT pseudo-record (if any) into Message::edns.
  for (auto it = msg.additionals.begin(); it != msg.additionals.end(); ++it) {
    if (it->type != RecordType::kOpt) continue;
    Edns edns;
    edns.udp_payload_size = static_cast<std::uint16_t>(it->cls);
    edns.extended_rcode = static_cast<std::uint8_t>(it->ttl >> 24);
    edns.version = static_cast<std::uint8_t>(it->ttl >> 16);
    edns.dnssec_ok = (it->ttl & 0x8000) != 0;
    if (const auto* opt = std::get_if<OptRecord>(&it->rdata)) {
      auto decoded = decode_edns_options(opt->options, edns);
      if (!decoded.ok()) return decoded.error();
    }
    msg.edns = edns;
    msg.additionals.erase(it);
    break;
  }
  return msg;
}

}  // namespace mecdns::dns
