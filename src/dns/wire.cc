#include "dns/wire.h"

#include <map>
#include <string>

#include "dns/edns.h"
#include "util/bytes.h"
#include "util/perfcount.h"
#include "util/strings.h"

namespace mecdns::dns {

namespace {

constexpr std::uint8_t kPointerTag = 0xc0;
constexpr std::size_t kMaxPointerChases = 32;

/// Tracks previously written names so later occurrences can point at them.
class NameCompressor {
 public:
  void write_name(util::ByteWriter& out, const DnsName& name) {
    // For each suffix of the name (longest first), check whether we already
    // wrote it; if so emit a pointer, otherwise write the label and recurse.
    const auto& labels = name.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const std::string key = suffix_key(labels, i);
      const auto it = offsets_.find(key);
      if (it != offsets_.end() && it->second < 0x3fff) {
        out.u16(static_cast<std::uint16_t>(0xc000 | it->second));
        return;
      }
      if (out.size() < 0x3fff) {
        offsets_.emplace(key, out.size());
      }
      out.u8(static_cast<std::uint8_t>(labels[i].size()));
      out.bytes(labels[i]);
    }
    out.u8(0);  // root
  }

 private:
  static std::string suffix_key(const std::vector<std::string>& labels,
                                std::size_t from) {
    std::string key;
    for (std::size_t i = from; i < labels.size(); ++i) {
      key += util::to_lower(labels[i]);
      key += '.';
    }
    return key;
  }

  std::map<std::string, std::size_t> offsets_;
};

void write_uncompressed_name(util::ByteWriter& out, const DnsName& name) {
  for (const auto& label : name.labels()) {
    out.u8(static_cast<std::uint8_t>(label.size()));
    out.bytes(label);
  }
  out.u8(0);
}

void write_record(util::ByteWriter& out, NameCompressor& names,
                  const ResourceRecord& rr) {
  names.write_name(out, rr.name);
  out.u16(static_cast<std::uint16_t>(rr.type));
  out.u16(static_cast<std::uint16_t>(rr.cls));
  out.u32(rr.ttl);
  const std::size_t rdlength_at = out.size();
  out.u16(0);  // patched below
  const std::size_t rdata_start = out.size();

  struct RDataWriter {
    util::ByteWriter& out;
    NameCompressor& names;

    void operator()(const ARecord& a) { out.u32(a.address.value()); }
    void operator()(const AaaaRecord& a) {
      for (const std::uint8_t b : a.address) out.u8(b);
    }
    void operator()(const NsRecord& ns) { names.write_name(out, ns.nameserver); }
    void operator()(const CnameRecord& c) { names.write_name(out, c.target); }
    void operator()(const PtrRecord& p) { names.write_name(out, p.target); }
    void operator()(const SoaRecord& soa) {
      names.write_name(out, soa.mname);
      names.write_name(out, soa.rname);
      out.u32(soa.serial);
      out.u32(soa.refresh);
      out.u32(soa.retry);
      out.u32(soa.expire);
      out.u32(soa.minimum);
    }
    void operator()(const TxtRecord& txt) {
      for (const auto& s : txt.strings) {
        const std::size_t n = std::min<std::size_t>(s.size(), 255);
        out.u8(static_cast<std::uint8_t>(n));
        out.bytes(s.substr(0, n));
      }
    }
    void operator()(const SrvRecord& srv) {
      out.u16(srv.priority);
      out.u16(srv.weight);
      out.u16(srv.port);
      write_uncompressed_name(out, srv.target);  // RFC 2782: no compression
    }
    void operator()(const OptRecord& opt) {
      out.bytes(std::span<const std::uint8_t>(opt.options));
    }
    void operator()(const RawRecord& raw) {
      out.bytes(std::span<const std::uint8_t>(raw.data));
    }
  };
  std::visit(RDataWriter{out, names}, rr.rdata);
  out.patch_u16(rdlength_at,
                static_cast<std::uint16_t>(out.size() - rdata_start));
}

/// Materializes the OPT pseudo-record described by Edns (RFC 6891 §6.1.2):
/// owner = root, CLASS = requestor's UDP payload size, TTL = extended
/// rcode/version/DO flags.
ResourceRecord make_opt_record(const Edns& edns) {
  ResourceRecord rr;
  rr.name = DnsName::root();
  rr.type = RecordType::kOpt;
  rr.cls = static_cast<RecordClass>(edns.udp_payload_size);
  rr.ttl = (static_cast<std::uint32_t>(edns.extended_rcode) << 24) |
           (static_cast<std::uint32_t>(edns.version) << 16) |
           (edns.dnssec_ok ? 0x8000u : 0u);
  rr.rdata = OptRecord{encode_edns_options(edns)};
  return rr;
}

util::Result<DnsName> read_name(util::ByteReader& reader) {
  std::vector<std::string> labels;
  std::size_t chases = 0;
  bool jumped = false;
  std::size_t resume_at = 0;

  while (true) {
    auto len_result = reader.u8();
    if (!len_result.ok()) return len_result.error();
    const std::uint8_t len = len_result.value();

    if ((len & kPointerTag) == kPointerTag) {
      auto low = reader.u8();
      if (!low.ok()) return low.error();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low.value();
      if (!jumped) {
        resume_at = reader.position();
        jumped = true;
      }
      if (++chases > kMaxPointerChases) {
        return util::Err("compression pointer loop");
      }
      if (target >= reader.size()) {
        return util::Err("compression pointer past end");
      }
      auto seek = reader.seek(target);
      if (!seek.ok()) return seek.error();
      continue;
    }
    if ((len & kPointerTag) != 0) {
      return util::Err("reserved label type");
    }
    if (len == 0) break;
    auto label = reader.str(len);
    if (!label.ok()) return label.error();
    labels.push_back(std::move(label.value()));
    if (labels.size() > 128) return util::Err("too many labels");
  }

  if (jumped) {
    auto seek = reader.seek(resume_at);
    if (!seek.ok()) return seek.error();
  }
  return DnsName::from_labels(std::move(labels));
}

util::Result<ResourceRecord> read_record(util::ByteReader& reader) {
  ResourceRecord rr;
  auto name = read_name(reader);
  if (!name.ok()) return name.error();
  rr.name = std::move(name.value());

  auto type = reader.u16();
  if (!type.ok()) return type.error();
  auto cls = reader.u16();
  if (!cls.ok()) return cls.error();
  auto ttl = reader.u32();
  if (!ttl.ok()) return ttl.error();
  auto rdlength = reader.u16();
  if (!rdlength.ok()) return rdlength.error();

  rr.type = static_cast<RecordType>(type.value());
  rr.cls = static_cast<RecordClass>(cls.value());
  rr.ttl = ttl.value();
  const std::size_t rdata_end = reader.position() + rdlength.value();
  if (rdata_end > reader.size()) return util::Err("RDATA past end of message");

  switch (rr.type) {
    case RecordType::kA: {
      if (rdlength.value() != 4) return util::Err("A RDATA must be 4 octets");
      auto v = reader.u32();
      if (!v.ok()) return v.error();
      rr.rdata = ARecord{simnet::Ipv4Address(v.value())};
      break;
    }
    case RecordType::kAaaa: {
      if (rdlength.value() != 16) {
        return util::Err("AAAA RDATA must be 16 octets");
      }
      AaaaRecord rec;
      for (auto& b : rec.address) {
        auto v = reader.u8();
        if (!v.ok()) return v.error();
        b = v.value();
      }
      rr.rdata = rec;
      break;
    }
    case RecordType::kNs: {
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      rr.rdata = NsRecord{std::move(target.value())};
      break;
    }
    case RecordType::kCname: {
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      rr.rdata = CnameRecord{std::move(target.value())};
      break;
    }
    case RecordType::kPtr: {
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      rr.rdata = PtrRecord{std::move(target.value())};
      break;
    }
    case RecordType::kSoa: {
      SoaRecord soa;
      auto mname = read_name(reader);
      if (!mname.ok()) return mname.error();
      soa.mname = std::move(mname.value());
      auto rname = read_name(reader);
      if (!rname.ok()) return rname.error();
      soa.rname = std::move(rname.value());
      auto serial = reader.u32();
      if (!serial.ok()) return serial.error();
      auto refresh = reader.u32();
      if (!refresh.ok()) return refresh.error();
      auto retry = reader.u32();
      if (!retry.ok()) return retry.error();
      auto expire = reader.u32();
      if (!expire.ok()) return expire.error();
      auto minimum = reader.u32();
      if (!minimum.ok()) return minimum.error();
      soa.serial = serial.value();
      soa.refresh = refresh.value();
      soa.retry = retry.value();
      soa.expire = expire.value();
      soa.minimum = minimum.value();
      rr.rdata = std::move(soa);
      break;
    }
    case RecordType::kTxt: {
      TxtRecord txt;
      while (reader.position() < rdata_end) {
        auto len = reader.u8();
        if (!len.ok()) return len.error();
        if (reader.position() + len.value() > rdata_end) {
          return util::Err("TXT string past RDATA");
        }
        auto s = reader.str(len.value());
        if (!s.ok()) return s.error();
        txt.strings.push_back(std::move(s.value()));
      }
      rr.rdata = std::move(txt);
      break;
    }
    case RecordType::kSrv: {
      SrvRecord srv;
      auto priority = reader.u16();
      if (!priority.ok()) return priority.error();
      auto weight = reader.u16();
      if (!weight.ok()) return weight.error();
      auto port = reader.u16();
      if (!port.ok()) return port.error();
      auto target = read_name(reader);
      if (!target.ok()) return target.error();
      srv.priority = priority.value();
      srv.weight = weight.value();
      srv.port = port.value();
      srv.target = std::move(target.value());
      rr.rdata = std::move(srv);
      break;
    }
    case RecordType::kOpt: {
      auto data = reader.bytes(rdlength.value());
      if (!data.ok()) return data.error();
      rr.rdata = OptRecord{std::move(data.value())};
      break;
    }
    default: {
      auto data = reader.bytes(rdlength.value());
      if (!data.ok()) return data.error();
      rr.rdata = RawRecord{type.value(), std::move(data.value())};
      break;
    }
  }
  if (reader.position() != rdata_end) {
    return util::Err("RDATA length mismatch for " + to_string(rr.type));
  }
  return rr;
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  util::ByteWriter out;
  NameCompressor names;

  std::uint16_t flags = 0;
  const Header& h = message.header;
  if (h.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.opcode) & 0xf)
           << 11;
  if (h.aa) flags |= 0x0400;
  if (h.tc) flags |= 0x0200;
  if (h.rd) flags |= 0x0100;
  if (h.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.rcode) & 0xf);

  std::vector<ResourceRecord> additionals = message.additionals;
  if (message.edns.has_value()) {
    additionals.push_back(make_opt_record(*message.edns));
  }

  out.u16(h.id);
  out.u16(flags);
  out.u16(static_cast<std::uint16_t>(message.questions.size()));
  out.u16(static_cast<std::uint16_t>(message.answers.size()));
  out.u16(static_cast<std::uint16_t>(message.authorities.size()));
  out.u16(static_cast<std::uint16_t>(additionals.size()));

  for (const auto& q : message.questions) {
    names.write_name(out, q.name);
    out.u16(static_cast<std::uint16_t>(q.type));
    out.u16(static_cast<std::uint16_t>(q.cls));
  }
  for (const auto& rr : message.answers) write_record(out, names, rr);
  for (const auto& rr : message.authorities) write_record(out, names, rr);
  for (const auto& rr : additionals) write_record(out, names, rr);
  std::vector<std::uint8_t> wire = out.take();
  auto& perf = util::perf::counters();
  ++perf.dns_encoded;
  perf.dns_bytes_encoded += wire.size();
  return wire;
}

util::Result<Message> decode(std::span<const std::uint8_t> wire) {
  auto& perf = util::perf::counters();
  ++perf.dns_decoded;
  perf.dns_bytes_decoded += wire.size();
  util::ByteReader reader(wire);
  Message msg;

  auto id = reader.u16();
  if (!id.ok()) return id.error();
  auto flags_result = reader.u16();
  if (!flags_result.ok()) return flags_result.error();
  const std::uint16_t flags = flags_result.value();

  msg.header.id = id.value();
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.rcode = static_cast<RCode>(flags & 0xf);

  auto qdcount = reader.u16();
  if (!qdcount.ok()) return qdcount.error();
  auto ancount = reader.u16();
  if (!ancount.ok()) return ancount.error();
  auto nscount = reader.u16();
  if (!nscount.ok()) return nscount.error();
  auto arcount = reader.u16();
  if (!arcount.ok()) return arcount.error();

  for (std::uint16_t i = 0; i < qdcount.value(); ++i) {
    Question q;
    auto name = read_name(reader);
    if (!name.ok()) return name.error();
    q.name = std::move(name.value());
    auto type = reader.u16();
    if (!type.ok()) return type.error();
    auto cls = reader.u16();
    if (!cls.ok()) return cls.error();
    q.type = static_cast<RecordType>(type.value());
    q.cls = static_cast<RecordClass>(cls.value());
    msg.questions.push_back(std::move(q));
  }

  const auto read_section = [&](std::uint16_t count,
                                std::vector<ResourceRecord>& section)
      -> util::Result<void> {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = read_record(reader);
      if (!rr.ok()) return rr.error();
      section.push_back(std::move(rr.value()));
    }
    return util::Ok();
  };

  if (auto r = read_section(ancount.value(), msg.answers); !r.ok()) {
    return r.error();
  }
  if (auto r = read_section(nscount.value(), msg.authorities); !r.ok()) {
    return r.error();
  }
  if (auto r = read_section(arcount.value(), msg.additionals); !r.ok()) {
    return r.error();
  }

  // Lift the OPT pseudo-record (if any) into Message::edns.
  for (auto it = msg.additionals.begin(); it != msg.additionals.end(); ++it) {
    if (it->type != RecordType::kOpt) continue;
    Edns edns;
    edns.udp_payload_size = static_cast<std::uint16_t>(it->cls);
    edns.extended_rcode = static_cast<std::uint8_t>(it->ttl >> 24);
    edns.version = static_cast<std::uint8_t>(it->ttl >> 16);
    edns.dnssec_ok = (it->ttl & 0x8000) != 0;
    if (const auto* opt = std::get_if<OptRecord>(&it->rdata)) {
      auto decoded = decode_edns_options(opt->options, edns);
      if (!decoded.ok()) return decoded.error();
    }
    msg.edns = edns;
    msg.additionals.erase(it);
    break;
  }
  return msg;
}

}  // namespace mecdns::dns
