// Recursive (iterative-resolving) DNS server.
//
// Implements the full resolution loop of RFC 1034 §5.3.3: start from the
// root hints (or the closest cached delegation), follow referrals down the
// hierarchy, chase CNAMEs, resolve glue-less nameservers out of band, cache
// positive and negative answers. This is the model of the "hierarchical DNS
// deployed behind the cellular core" and of the public resolvers (Google,
// Cloudflare) in the paper's Figure 5, and — with ECS enabled — of the
// RFC 7871 deployments its §4 evaluates.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dns/cache.h"
#include "dns/server.h"
#include "dns/transport.h"

namespace mecdns::dns {

/// How the resolver uses EDNS Client Subnet on upstream queries.
enum class EcsMode {
  kOff,      ///< never attach ECS
  kForward,  ///< forward the client's ECS, or synthesize one from the
             ///< client's source address (RFC 7871 recursive behaviour)
};

class RecursiveResolver : public DnsServer {
 public:
  struct Config {
    std::vector<simnet::Endpoint> root_servers;  ///< root hints (required)
    std::size_t cache_entries = 8192;
    int query_budget = 24;   ///< max upstream queries per client query
    int max_cname_chain = 8;
    DnsTransport::Options upstream;
    EcsMode ecs_mode = EcsMode::kOff;
    std::uint8_t ecs_prefix = 24;  ///< synthesized SOURCE PREFIX-LENGTH
  };

  RecursiveResolver(simnet::Network& net, simnet::NodeId node,
                    std::string name, simnet::LatencyModel processing_delay,
                    Config config,
                    simnet::Ipv4Address addr = simnet::Ipv4Address());

  DnsCache& cache() { return cache_; }
  const Config& config() const { return config_; }
  void set_ecs_mode(EcsMode mode) { config_.ecs_mode = mode; }

  /// Upstream queries issued since construction (visibility for tests and
  /// the ablation benches).
  std::uint64_t upstream_queries() const { return upstream_queries_; }

 protected:
  void handle(const Message& query, const QueryContext& ctx,
              Responder respond) override;

 private:
  /// One in-flight resolution (client-facing or internal NS lookup).
  struct Job : std::enable_shared_from_this<Job> {
    DnsName qname;            ///< current name being chased
    RecordType qtype = RecordType::kA;
    std::optional<ClientSubnet> ecs;  ///< attached to upstream queries
    std::vector<ResourceRecord> answers;  ///< accumulated (CNAME chain + final)
    int cname_hops = 0;
    int* budget = nullptr;    ///< shared across a job tree
    std::shared_ptr<int> budget_holder;
    /// Completion: rcode + whether answers are meaningful.
    std::function<void(RCode, std::shared_ptr<Job>)> done;
  };

  void resolve(std::shared_ptr<Job> job);
  void query_servers(std::shared_ptr<Job> job,
                     std::vector<simnet::Endpoint> servers, std::size_t index);
  void on_response(std::shared_ptr<Job> job,
                   std::vector<simnet::Endpoint> servers, std::size_t index,
                   const Message& response);
  /// Candidate nameserver addresses for qname from cached delegations; falls
  /// back to the root hints. If a delegation exists but no address is known,
  /// `glueless` receives one NS owner name to resolve first.
  std::vector<simnet::Endpoint> candidate_servers(const DnsName& qname,
                                                  DnsName* glueless);
  void cache_response_sections(const Message& response);
  std::optional<ClientSubnet> make_ecs(const Message& query,
                                       const QueryContext& ctx) const;

  Config config_;
  DnsCache cache_;
  /// zone origin -> NS owner names (delegation cache).
  std::map<DnsName, std::vector<DnsName>> delegations_;
  std::unique_ptr<DnsTransport> transport_;
  std::uint64_t upstream_queries_ = 0;
};

}  // namespace mecdns::dns
