// Master-file (zone file) text format (RFC 1035 §5), single-line subset.
//
// Lets zones be authored as text — in tests, examples and scenario
// configuration — instead of record-constructor calls:
//
//   $TTL 300
//   @            IN SOA ns1 hostmaster 1 7200 900 1209600 60
//   @            IN NS  ns1
//   ns1          IN A   198.51.100.5
//   www      60  IN A   198.18.0.1
//   alias        IN CNAME www
//   *.apps       IN A   198.18.0.7
//
// Supported: $TTL and $ORIGIN directives, '@' for the origin, relative
// names (no trailing dot), per-record TTL, optional IN class, comments with
// ';', and the A / NS / CNAME / PTR / TXT / SOA / SRV types. Multi-line
// parenthesized records are not supported (keep each record on one line).
#pragma once

#include <string_view>

#include "dns/zone.h"
#include "util/result.h"

namespace mecdns::dns {

/// Parses `text` and adds every record to `zone`. Names are interpreted
/// relative to the zone origin (or a $ORIGIN directive). On error, reports
/// the offending line; records on earlier lines remain added.
util::Result<void> load_master_text(Zone& zone, std::string_view text,
                                    std::uint32_t default_ttl = 3600);

}  // namespace mecdns::dns
