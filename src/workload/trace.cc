#include "workload/trace.h"

#include <charconv>
#include <sstream>

#include "util/rng.h"
#include "util/strings.h"
#include "workload/zipf.h"

namespace mecdns::workload {

namespace {

util::Result<double> parse_seconds(const std::string& text) {
  // std::from_chars for double is not universally available; strtod with
  // full-consumption check is equivalent here.
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty() || value < 0) {
    return util::Err("bad timestamp: '" + text + "'");
  }
  return value;
}

/// Splits a line into at most two fields, dropping '#' comments.
util::Result<std::pair<std::string, std::string>> two_fields(
    const std::string& raw, std::size_t line_number) {
  std::string line = raw;
  if (const auto hash = line.find('#'); hash != std::string::npos) {
    line = line.substr(0, hash);
  }
  std::istringstream stream(line);
  std::string first;
  std::string second;
  if (!(stream >> first)) return std::make_pair(std::string(), std::string());
  if (!(stream >> second)) {
    return util::Err("line " + std::to_string(line_number) +
                     ": expected two fields");
  }
  std::string extra;
  if (stream >> extra) {
    return util::Err("line " + std::to_string(line_number) +
                     ": trailing content '" + extra + "'");
  }
  return std::make_pair(first, second);
}

}  // namespace

util::Result<MobilityTrace> parse_mobility_trace(std::string_view text) {
  MobilityTrace trace;
  std::size_t line_number = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++line_number;
    auto fields = two_fields(raw, line_number);
    if (!fields.ok()) return fields.error();
    if (fields.value().first.empty()) continue;

    auto seconds = parse_seconds(fields.value().first);
    if (!seconds.ok()) {
      return util::Err("line " + std::to_string(line_number) + ": " +
                       seconds.error().message);
    }
    std::size_t cell = 0;
    const std::string& cell_text = fields.value().second;
    const auto [ptr, ec] = std::from_chars(
        cell_text.data(), cell_text.data() + cell_text.size(), cell);
    if (ec != std::errc() || ptr != cell_text.data() + cell_text.size()) {
      return util::Err("line " + std::to_string(line_number) +
                       ": bad cell index '" + cell_text + "'");
    }
    const auto at = simnet::SimTime::seconds(seconds.value());
    if (!trace.empty() && at < trace.back().at) {
      return util::Err("line " + std::to_string(line_number) +
                       ": timestamps must be nondecreasing");
    }
    trace.push_back(MobilityEvent{at, cell});
  }
  return trace;
}

MobilityTrace synth_commute(simnet::SimTime duration,
                            simnet::SimTime dwell_mean, std::size_t cells,
                            std::uint64_t seed) {
  MobilityTrace trace;
  if (cells == 0) return trace;
  util::Rng rng(seed);
  simnet::SimTime t = simnet::SimTime::zero();
  std::size_t cell = 0;
  while (t <= duration) {
    trace.push_back(MobilityEvent{t, cell});
    t += simnet::SimTime::nanos(static_cast<std::int64_t>(rng.exponential(
        static_cast<double>(dwell_mean.count_nanos()))));
    cell = (cell + 1) % cells;
  }
  return trace;
}

util::Result<RequestTrace> parse_request_trace(std::string_view text) {
  RequestTrace trace;
  std::size_t line_number = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++line_number;
    auto fields = two_fields(raw, line_number);
    if (!fields.ok()) return fields.error();
    if (fields.value().first.empty()) continue;

    auto seconds = parse_seconds(fields.value().first);
    if (!seconds.ok()) {
      return util::Err("line " + std::to_string(line_number) + ": " +
                       seconds.error().message);
    }
    auto url = cdn::Url::parse(fields.value().second);
    if (!url.ok()) {
      return util::Err("line " + std::to_string(line_number) + ": " +
                       url.error().message);
    }
    const auto at = simnet::SimTime::seconds(seconds.value());
    if (!trace.empty() && at < trace.back().at) {
      return util::Err("line " + std::to_string(line_number) +
                       ": timestamps must be nondecreasing");
    }
    trace.push_back(RequestEvent{at, std::move(url.value())});
  }
  return trace;
}

RequestTrace synth_requests(const cdn::ContentCatalog& catalog, double zipf_s,
                            simnet::SimTime duration,
                            simnet::SimTime mean_gap, std::uint64_t seed) {
  RequestTrace trace;
  RequestGenerator generator(catalog, zipf_s, seed);
  util::Rng rng(seed ^ 0x5deece66d);
  simnet::SimTime t = simnet::SimTime::zero();
  while (true) {
    t += simnet::SimTime::nanos(static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(mean_gap.count_nanos()))));
    if (t > duration) break;
    trace.push_back(RequestEvent{t, generator.next()});
  }
  return trace;
}

std::string to_text(const MobilityTrace& trace) {
  std::ostringstream out;
  for (const auto& event : trace) {
    out << event.at.to_seconds() << " " << event.cell << "\n";
  }
  return out.str();
}

std::string to_text(const RequestTrace& trace) {
  std::ostringstream out;
  for (const auto& event : trace) {
    out << event.at.to_seconds() << " " << event.url.to_string() << "\n";
  }
  return out.str();
}

}  // namespace mecdns::workload
