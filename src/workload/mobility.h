// Large-scale UE mobility scenarios: deterministic movement workloads over
// the load generator's compact per-UE state.
//
// The paper re-points a UE's resolver "as part of the cellular hand-off
// process" (§3 P1); what it never stresses is the regime where *many* UEs
// hand off or converge at once. This model drives three canonical churn
// workloads over a population of UEs spread across MEC cells:
//
//   * commute wave  — a participating fraction of the population migrates,
//     spread across the event window, to one target cell (morning rush into
//     downtown) and stays;
//   * flash crowd   — the same fraction converges in a tight burst at the
//     event start (stadium gates open) and disperses home after the event;
//   * handoff storm — every UE hands off continuously with exponential
//     dwell times (highway cells), so the churn is in the *rate* of
//     re-targets, not the population distribution.
//
// State is struct-of-arrays like workload::LoadGenerator: one SplitMix64
// stream position, a current cell and a home cell per UE, plus a binary
// min-heap of pending moves drained by a single armed pump event. Every
// move is a pure function of (seed, ue), so campaigns stay byte-identical
// at any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::workload {

enum class MobilityScenario {
  kCommuteWave,
  kFlashCrowd,
  kHandoffStorm,
};

const char* mobility_slug(MobilityScenario scenario);
std::optional<MobilityScenario> mobility_from_slug(std::string_view slug);
std::vector<MobilityScenario> all_mobility_scenarios();

class MobilityModel {
 public:
  struct Options {
    std::uint32_t ues = 1000;
    std::uint16_t cells = 3;
    MobilityScenario scenario = MobilityScenario::kFlashCrowd;
    /// Moves are generated in [start, start + duration).
    simnet::SimTime duration = simnet::SimTime::seconds(40);
    /// Event window (commute wave spreads over it; flash crowd converges
    /// at its start and disperses at its end).
    simnet::SimTime event_start = simnet::SimTime::seconds(10);
    simnet::SimTime event_end = simnet::SimTime::seconds(25);
    /// Cell the wave/crowd converges on (downtown / the stadium).
    std::uint16_t target_cell = 0;
    /// Fraction of the population that takes part in the wave/crowd.
    double participation = 0.8;
    /// Flash crowd: converge within this span after event_start.
    simnet::SimTime crowd_burst = simnet::SimTime::seconds(2);
    /// Handoff storm: mean (exponential) dwell time in a cell.
    simnet::SimTime dwell = simnet::SimTime::seconds(3);
    std::uint64_t seed = 1;
  };

  /// Invoked for every executed move, after the model's own cell table is
  /// updated (cell_of(ue) == to inside the callback).
  using Move = std::function<void(std::uint32_t ue, std::uint16_t from,
                                  std::uint16_t to)>;

  MobilityModel(simnet::Simulator& sim, Options options, Move move);

  /// Assigns every UE its initial cell (uniform per-UE stream draw) and
  /// schedules the scenario's moves relative to the simulator's current
  /// time. Initial placement does NOT invoke the move callback.
  void start();

  std::uint16_t cell_of(std::uint32_t ue) const { return cell_[ue]; }
  std::uint16_t home_of(std::uint32_t ue) const { return home_[ue]; }
  std::uint64_t moves() const { return moves_; }
  bool drained() const { return heap_.empty(); }
  /// Population currently in `cell` (O(UEs); for tests and summaries).
  std::uint32_t population(std::uint16_t cell) const;
  const Options& options() const { return options_; }

 private:
  struct Pending {
    std::int64_t at_nanos;
    std::uint32_t ue;
    std::uint16_t to;
    bool operator>(const Pending& other) const {
      if (at_nanos != other.at_nanos) return at_nanos > other.at_nanos;
      return ue > other.ue;
    }
  };

  double uniform(std::uint32_t ue);
  simnet::SimTime exp_gap(std::uint32_t ue, double mean_seconds);
  /// A uniformly random cell different from `from`.
  std::uint16_t other_cell(std::uint32_t ue, std::uint16_t from);
  void push(std::int64_t at_nanos, std::uint32_t ue, std::uint16_t to);
  void arm();
  void pump(std::int64_t fired_for);

  simnet::Simulator& sim_;
  Options options_;
  Move move_;
  std::vector<std::uint64_t> rng_;   ///< SoA: SplitMix64 state per UE
  std::vector<std::uint16_t> cell_;  ///< current cell per UE
  std::vector<std::uint16_t> home_;  ///< initial cell (crowd disperses home)
  std::vector<Pending> heap_;        ///< min-heap on (time, ue)
  std::int64_t start_nanos_ = 0;
  std::int64_t window_end_nanos_ = 0;
  std::int64_t armed_at_nanos_ = -1;
  std::uint64_t moves_ = 0;
};

}  // namespace mecdns::workload
