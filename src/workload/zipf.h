// Zipf-distributed content popularity and request generation.
//
// CDN object popularity is classically Zipfian; the cache-locality
// ablations and the AR/VR example draw their request streams from here.
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/content.h"
#include "simnet/time.h"
#include "util/rng.h"

namespace mecdns::workload {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double s);

  std::size_t sample(util::Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }
  double skew() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

/// Draws URLs from a catalog by Zipf popularity (catalog iteration order
/// defines the rank order).
class RequestGenerator {
 public:
  RequestGenerator(const cdn::ContentCatalog& catalog, double zipf_s,
                   std::uint64_t seed);

  const cdn::Url& next();
  std::size_t distinct() const { return urls_.size(); }

 private:
  std::vector<cdn::Url> urls_;
  ZipfGenerator zipf_;
  util::Rng rng_;
};

/// Poisson arrival schedule: `count` timestamps with the given mean
/// inter-arrival, starting at `start`.
std::vector<simnet::SimTime> poisson_arrivals(std::size_t count,
                                              simnet::SimTime mean_gap,
                                              simnet::SimTime start,
                                              std::uint64_t seed);

/// Evenly spaced schedule (the dig-in-a-loop measurement pattern).
std::vector<simnet::SimTime> periodic_arrivals(std::size_t count,
                                               simnet::SimTime gap,
                                               simnet::SimTime start);

}  // namespace mecdns::workload
