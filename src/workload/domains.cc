#include "workload/domains.h"

namespace mecdns::workload {

const std::vector<std::string>& network_classes() {
  static const std::vector<std::string> kClasses = {
      kWiredCampus, kWifiHome, kCellularMobile};
  return kClasses;
}

const std::vector<Table1Entry>& table1_domains() {
  static const std::vector<Table1Entry> kTable1 = {
      {"Airbnb", "a0.muscache.com"},
      {"Booking.com", "q-cf.bstatic.com"},
      {"TripAdvisor", "static.tacdn.com"},
      {"Agoda", "cdn0.agoda.net"},
      {"Expedia", "a.cdn.intentmedia.net"},
  };
  return kTable1;
}

const std::vector<SiteCdnProfile>& figure3_profiles() {
  // Pools are the Figure 3 legends verbatim (the Edgecast-Verizon pool had
  // no CIDR printed; 192.229.0.0/16 is a representative Edgecast range).
  // Weights are calibrated to reproduce the figure's qualitative shapes:
  // each site's answer mix shifts with the resolver class, and the carrier
  // path concentrates on different pools than the campus path.
  static const std::vector<SiteCdnProfile> kProfiles = {
      {"Airbnb",
       "a0.muscache.com",
       {{"Akamai", "23.55.124.0/24"},
        {"Fastly", "151.101.0.0/16"},
        {"Fastly", "199.232.0.0/16"}},
       {{kWiredCampus, {0.55, 0.35, 0.10}},
        {kWifiHome, {0.25, 0.45, 0.30}},
        {kCellularMobile, {0.10, 0.25, 0.65}}},
       10.0},
      {"Agoda",
       "cdn0.agoda.net",
       {{"Akamai", "23.55.124.0/24"}, {"Akamai", "23.0.0.0/8"}},
       {{kWiredCampus, {0.80, 0.20}},
        {kWifiHome, {0.45, 0.55}},
        {kCellularMobile, {0.15, 0.85}}},
       9.0},
      {"Booking.com",
       "q-cf.bstatic.com",
       {{"Amazon CloudFront", "13.249.0.0/16"},
        {"Amazon CloudFront", "54.230.0.0/16"}},
       {{kWiredCampus, {0.70, 0.30}},
        {kWifiHome, {0.40, 0.60}},
        {kCellularMobile, {0.20, 0.80}}},
       16.0},
      {"Expedia",
       "a.cdn.intentmedia.net",
       {{"Amazon CloudFront", "13.249.0.0/16"},
        {"Amazon CloudFront", "54.230.0.0/16"},
        {"Fastly", "151.101.0.0/16"},
        {"Fastly", "199.232.0.0/16"}},
       {{kWiredCampus, {0.40, 0.20, 0.30, 0.10}},
        {kWifiHome, {0.20, 0.35, 0.25, 0.20}},
        {kCellularMobile, {0.10, 0.20, 0.20, 0.50}}},
       18.0},
      {"TripAdvisor",
       "static.tacdn.com",
       {{"Akamai", "23.0.0.0/8"},
        {"Akamai", "104.127.91.0/24"},
        {"Fastly", "151.101.0.0/16"},
        {"Fastly", "199.232.0.0/16"},
        {"Edgecast-Verizon", "192.229.0.0/16"}},
       {{kWiredCampus, {0.35, 0.25, 0.20, 0.10, 0.10}},
        {kWifiHome, {0.20, 0.15, 0.30, 0.20, 0.15}},
        {kCellularMobile, {0.10, 0.05, 0.20, 0.30, 0.35}}},
       12.0},
  };
  return kProfiles;
}

}  // namespace mecdns::workload
