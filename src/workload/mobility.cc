#include "workload/mobility.h"

#include <algorithm>
#include <cmath>

namespace mecdns::workload {

namespace {

/// SplitMix64 step, same stream construction as the load generator so a
/// (seed, ue) pair fully determines a UE's movement history.
std::uint64_t split_mix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(split_mix64_next(state) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* mobility_slug(MobilityScenario scenario) {
  switch (scenario) {
    case MobilityScenario::kCommuteWave:
      return "commute-wave";
    case MobilityScenario::kFlashCrowd:
      return "flash-crowd";
    case MobilityScenario::kHandoffStorm:
      return "handoff-storm";
  }
  return "unknown";
}

std::optional<MobilityScenario> mobility_from_slug(std::string_view slug) {
  for (const MobilityScenario scenario : all_mobility_scenarios()) {
    if (slug == mobility_slug(scenario)) return scenario;
  }
  return std::nullopt;
}

std::vector<MobilityScenario> all_mobility_scenarios() {
  return {MobilityScenario::kCommuteWave, MobilityScenario::kFlashCrowd,
          MobilityScenario::kHandoffStorm};
}

MobilityModel::MobilityModel(simnet::Simulator& sim, Options options,
                             Move move)
    : sim_(sim), options_(options), move_(std::move(move)) {
  rng_.resize(options_.ues);
  cell_.resize(options_.ues, 0);
  home_.resize(options_.ues, 0);
  for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
    // Distinct constant from the load generator's stream so sharing a seed
    // with it does not correlate arrivals with movements.
    std::uint64_t s =
        options_.seed ^ (0xd1b54a32d192ed03ULL * (ue + 1));
    split_mix64_next(s);
    rng_[ue] = s;
  }
}

double MobilityModel::uniform(std::uint32_t ue) { return uniform01(rng_[ue]); }

simnet::SimTime MobilityModel::exp_gap(std::uint32_t ue,
                                       double mean_seconds) {
  const double u = uniform01(rng_[ue]);
  return simnet::SimTime::seconds(-mean_seconds * std::log(1.0 - u));
}

std::uint16_t MobilityModel::other_cell(std::uint32_t ue,
                                        std::uint16_t from) {
  if (options_.cells <= 1) return from;
  const std::uint16_t step = static_cast<std::uint16_t>(
      1 + split_mix64_next(rng_[ue]) % (options_.cells - 1));
  return static_cast<std::uint16_t>((from + step) % options_.cells);
}

void MobilityModel::push(std::int64_t at_nanos, std::uint32_t ue,
                         std::uint16_t to) {
  heap_.push_back(Pending{at_nanos, ue, to});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void MobilityModel::start() {
  start_nanos_ = sim_.now().count_nanos();
  window_end_nanos_ = start_nanos_ + options_.duration.count_nanos();
  if (options_.ues == 0 || options_.cells == 0) return;

  for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
    const std::uint16_t initial = static_cast<std::uint16_t>(
        split_mix64_next(rng_[ue]) % options_.cells);
    cell_[ue] = initial;
    home_[ue] = initial;

    switch (options_.scenario) {
      case MobilityScenario::kCommuteWave: {
        // Participants migrate to the target cell at a time uniform in the
        // event window, and stay (the morning rush has no return leg
        // inside the measurement window).
        if (uniform(ue) >= options_.participation) break;
        if (cell_[ue] == options_.target_cell) break;
        const double span_s =
            (options_.event_end - options_.event_start).to_seconds();
        const std::int64_t at =
            start_nanos_ + options_.event_start.count_nanos() +
            simnet::SimTime::seconds(uniform(ue) * span_s).count_nanos();
        if (at < window_end_nanos_) push(at, ue, options_.target_cell);
        break;
      }
      case MobilityScenario::kFlashCrowd: {
        // Participants converge within the burst after event_start and
        // disperse home (with the same jitter profile) at event_end.
        if (uniform(ue) >= options_.participation) break;
        if (cell_[ue] == options_.target_cell) break;
        const double burst_s = options_.crowd_burst.to_seconds();
        const std::int64_t converge =
            start_nanos_ + options_.event_start.count_nanos() +
            simnet::SimTime::seconds(uniform(ue) * burst_s).count_nanos();
        if (converge < window_end_nanos_) {
          push(converge, ue, options_.target_cell);
        }
        break;
      }
      case MobilityScenario::kHandoffStorm: {
        const std::int64_t at =
            start_nanos_ +
            exp_gap(ue, options_.dwell.to_seconds()).count_nanos();
        if (at < window_end_nanos_) push(at, ue, other_cell(ue, initial));
        break;
      }
    }
  }
  arm();
}

std::uint32_t MobilityModel::population(std::uint16_t cell) const {
  std::uint32_t n = 0;
  for (const std::uint16_t c : cell_) n += (c == cell) ? 1 : 0;
  return n;
}

void MobilityModel::arm() {
  if (heap_.empty()) return;
  const std::int64_t top = heap_.front().at_nanos;
  if (armed_at_nanos_ >= 0 && armed_at_nanos_ <= top) return;
  armed_at_nanos_ = top;
  sim_.schedule_at(simnet::SimTime::nanos(top), [this, top] { pump(top); });
}

void MobilityModel::pump(std::int64_t fired_for) {
  if (armed_at_nanos_ == fired_for) armed_at_nanos_ = -1;
  const std::int64_t now = sim_.now().count_nanos();
  while (!heap_.empty() && heap_.front().at_nanos <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const Pending next = heap_.back();
    heap_.pop_back();

    const std::uint16_t from = cell_[next.ue];
    if (next.to != from) {
      cell_[next.ue] = next.to;
      ++moves_;
      move_(next.ue, from, next.to);
    }

    // Schedule the follow-up move, per scenario.
    switch (options_.scenario) {
      case MobilityScenario::kCommuteWave:
        break;  // one leg
      case MobilityScenario::kFlashCrowd: {
        // After converging, go home at event_end + the same jitter span.
        if (next.to == options_.target_cell &&
            home_[next.ue] != options_.target_cell) {
          const double burst_s = options_.crowd_burst.to_seconds();
          const std::int64_t disperse =
              start_nanos_ + options_.event_end.count_nanos() +
              simnet::SimTime::seconds(uniform(next.ue) * burst_s)
                  .count_nanos();
          if (disperse < window_end_nanos_) {
            push(disperse, next.ue, home_[next.ue]);
          }
        }
        break;
      }
      case MobilityScenario::kHandoffStorm: {
        const std::int64_t at =
            next.at_nanos +
            exp_gap(next.ue, options_.dwell.to_seconds()).count_nanos();
        if (at < window_end_nanos_) {
          push(at, next.ue, other_cell(next.ue, next.to));
        }
        break;
      }
    }
  }
  arm();
}

}  // namespace mecdns::workload
