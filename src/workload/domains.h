// The paper's measured web-site/CDN data (Tables 1 and the Figure 3
// legends), as model inputs.
//
// Table 1 lists the five travel sites and the CDN domain each uses for
// static content; Figure 3's legends give the provider CIDR pools observed
// answering those domains. The per-network-class weights encode the
// paper's observation that the *mix* of answering pools differs by access
// network (campus / home-ISP / carrier resolvers are classified differently
// by the CDNs' opaque load balancing).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mecdns::workload {

/// Network classes used throughout the Figure 2/3 experiments.
inline constexpr const char* kWiredCampus = "wired-campus";
inline constexpr const char* kWifiHome = "wifi-home";
inline constexpr const char* kCellularMobile = "cellular-mobile";

/// The three classes, in the paper's presentation order.
const std::vector<std::string>& network_classes();

struct Table1Entry {
  std::string website;
  std::string cdn_domain;
};

/// Table 1 verbatim.
const std::vector<Table1Entry>& table1_domains();

struct ProviderPool {
  std::string provider;  ///< "Akamai", "Fastly", "Amazon CloudFront", ...
  std::string cidr;      ///< e.g. "23.55.124.0/24"
};

struct SiteCdnProfile {
  std::string website;
  std::string cdn_domain;
  std::vector<ProviderPool> pools;
  /// network class -> per-pool weights (same order as `pools`).
  std::map<std::string, std::vector<double>> weights;
  /// Mean one-way WAN distance (ms) from the measurement site to this
  /// site's C-DNS — drives the per-domain differences in Figure 2's bars.
  double cdns_wan_ms = 12.0;
};

/// One profile per Table 1 site, with the Figure 3 pools.
const std::vector<SiteCdnProfile>& figure3_profiles();

}  // namespace mecdns::workload
