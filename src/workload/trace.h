// Mobility and request traces: parseable from text, synthesizable from
// simple models. Traces make scenario inputs reproducible artifacts rather
// than code.
#pragma once

#include <string_view>
#include <vector>

#include "cdn/content.h"
#include "simnet/time.h"
#include "util/result.h"

namespace mecdns::workload {

/// The UE attaches to `cell` (an index the scenario maps to a base
/// station) at time `at`.
struct MobilityEvent {
  simnet::SimTime at;
  std::size_t cell = 0;

  friend bool operator==(const MobilityEvent&, const MobilityEvent&) = default;
};
using MobilityTrace = std::vector<MobilityEvent>;

/// Parses lines of "<seconds> <cell-index>"; '#' starts a comment. Events
/// must be in nondecreasing time order.
util::Result<MobilityTrace> parse_mobility_trace(std::string_view text);

/// A commute: the UE dwells in each cell for an exponential time with the
/// given mean, cycling 0,1,...,cells-1,0,... for `duration`.
MobilityTrace synth_commute(simnet::SimTime duration,
                            simnet::SimTime dwell_mean, std::size_t cells,
                            std::uint64_t seed);

/// The UE requests `url` at time `at`.
struct RequestEvent {
  simnet::SimTime at;
  cdn::Url url;

  friend bool operator==(const RequestEvent&, const RequestEvent&) = default;
};
using RequestTrace = std::vector<RequestEvent>;

/// Parses lines of "<seconds> <url>"; '#' starts a comment. Events must be
/// in nondecreasing time order.
util::Result<RequestTrace> parse_request_trace(std::string_view text);

/// Zipf-popularity requests with Poisson arrivals over `duration`.
RequestTrace synth_requests(const cdn::ContentCatalog& catalog, double zipf_s,
                            simnet::SimTime duration,
                            simnet::SimTime mean_gap, std::uint64_t seed);

/// Renders a trace back to its text format (round-trips with the parser).
std::string to_text(const MobilityTrace& trace);
std::string to_text(const RequestTrace& trace);

}  // namespace mecdns::workload
