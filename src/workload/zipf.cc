#include "workload/zipf.h"

#include <cmath>
#include <stdexcept>

namespace mecdns::workload {

ZipfGenerator::ZipfGenerator(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("Zipf over empty support");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t ZipfGenerator::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  // Binary search the CDF.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

RequestGenerator::RequestGenerator(const cdn::ContentCatalog& catalog,
                                   double zipf_s, std::uint64_t seed)
    : zipf_(catalog.size() == 0 ? 1 : catalog.size(), zipf_s), rng_(seed) {
  urls_.reserve(catalog.size());
  for (const auto& [url, object] : catalog.objects()) {
    urls_.push_back(url);
  }
  if (urls_.empty()) {
    throw std::invalid_argument("RequestGenerator over empty catalog");
  }
}

const cdn::Url& RequestGenerator::next() {
  return urls_[zipf_.sample(rng_) % urls_.size()];
}

std::vector<simnet::SimTime> poisson_arrivals(std::size_t count,
                                              simnet::SimTime mean_gap,
                                              simnet::SimTime start,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<simnet::SimTime> out;
  out.reserve(count);
  simnet::SimTime t = start;
  for (std::size_t i = 0; i < count; ++i) {
    t += simnet::SimTime::nanos(static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(mean_gap.count_nanos()))));
    out.push_back(t);
  }
  return out;
}

std::vector<simnet::SimTime> periodic_arrivals(std::size_t count,
                                               simnet::SimTime gap,
                                               simnet::SimTime start) {
  std::vector<simnet::SimTime> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(start + gap * static_cast<std::int64_t>(i));
  }
  return out;
}

}  // namespace mecdns::workload
