#include "workload/loadgen.h"

#include <algorithm>
#include <cmath>

namespace mecdns::workload {

namespace {

/// SplitMix64 step: advances `state` and returns the mixed output. The same
/// finalizer core/parallel.h uses for job seeds, so per-UE streams inherit
/// its avalanche quality with zero stored state beyond the counter.
std::uint64_t split_mix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from one stream step.
double uniform01(std::uint64_t& state) {
  return static_cast<double>(split_mix64_next(state) >> 11) * 0x1.0p-53;
}

}  // namespace

LoadGenerator::LoadGenerator(simnet::Simulator& sim, Options options,
                             Issue issue)
    : sim_(sim), options_(options), issue_(std::move(issue)) {
  rng_.resize(options_.ues);
  for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
    // Decorrelate neighbouring UEs: the stream position starts at the mixed
    // (seed, ue) pair rather than at small consecutive integers.
    std::uint64_t s = options_.seed ^ (0x9e3779b97f4a7c15ULL * (ue + 1));
    split_mix64_next(s);
    rng_[ue] = s;
  }
  heap_.reserve(options_.ues);
}

simnet::SimTime LoadGenerator::next_gap(std::uint32_t ue,
                                        double mean_seconds) {
  // Exponential via inverse CDF on 1-u (u in [0,1) keeps the log argument
  // in (0,1], so the gap is finite and non-negative).
  const double u = uniform01(rng_[ue]);
  const double gap = -mean_seconds * std::log(1.0 - u);
  return simnet::SimTime::seconds(gap);
}

void LoadGenerator::push(std::int64_t at_nanos, std::uint32_t ue) {
  heap_.push_back(Arrival{at_nanos, ue});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void LoadGenerator::start() {
  const std::int64_t now = sim_.now().count_nanos();
  window_end_nanos_ = now + options_.duration.count_nanos();
  if (options_.rate_hz <= 0.0 || options_.ues == 0) return;
  const double mean_gap_s = 1.0 / options_.rate_hz;
  for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
    const std::int64_t at = now + next_gap(ue, mean_gap_s).count_nanos();
    if (at < window_end_nanos_) push(at, ue);
  }
  arm();
}

void LoadGenerator::complete(std::uint32_t ue) {
  ++completed_;
  if (!options_.closed_loop) return;
  const std::int64_t at =
      sim_.now().count_nanos() +
      next_gap(ue, options_.mean_think.to_seconds()).count_nanos();
  if (at >= window_end_nanos_) return;
  push(at, ue);
  arm();
}

void LoadGenerator::arm() {
  if (heap_.empty()) return;
  const std::int64_t top = heap_.front().at_nanos;
  // One live pump event suffices unless an earlier arrival appeared (a
  // closed-loop completion); then arm a second, earlier event. The stale
  // later event degenerates to a no-op wakeup — pump() drains by time, not
  // by which event woke it.
  if (armed_at_nanos_ >= 0 && armed_at_nanos_ <= top) return;
  armed_at_nanos_ = top;
  sim_.schedule_at(simnet::SimTime::nanos(top),
                   [this, top] { pump(top); });
}

void LoadGenerator::pump(std::int64_t fired_for) {
  if (armed_at_nanos_ == fired_for) armed_at_nanos_ = -1;
  const std::int64_t now = sim_.now().count_nanos();
  const double mean_gap_s =
      options_.rate_hz > 0.0 ? 1.0 / options_.rate_hz : 0.0;
  while (!heap_.empty() && heap_.front().at_nanos <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const std::uint32_t ue = heap_.back().ue;
    const std::int64_t at = heap_.back().at_nanos;
    heap_.pop_back();
    ++issued_;
    issue_(ue);
    if (!options_.closed_loop) {
      const std::int64_t next = at + next_gap(ue, mean_gap_s).count_nanos();
      if (next < window_end_nanos_) push(next, ue);
    }
  }
  arm();
}

}  // namespace mecdns::workload
