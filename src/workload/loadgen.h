// Million-UE load generator: open- and closed-loop arrival processes over
// compact per-UE state.
//
// The paper's measurements run 32 dig-style queries per scenario; serving a
// dense edge population means sustaining load from 10^5–10^6 UEs, which no
// per-UE object graph survives. This generator keeps exactly 8 bytes of
// state per UE — a SplitMix64 stream position, stored struct-of-arrays —
// plus a binary heap of pending arrivals (16 bytes each), and drives any
// query-issuing callback:
//
//   * open loop: each UE emits queries as an independent Poisson process of
//     `rate_hz`; arrivals are scheduled regardless of completions (the
//     arrival rate is the experiment's independent variable — the right
//     model for a regression gate, where a slower system must not be
//     allowed to lower its own offered load).
//   * closed loop: each UE waits for its previous query to complete, thinks
//     for an exponential `mean_think`, then issues the next (a user tapping
//     through an app).
//
// Scheduling discipline: the generator keeps ONE simulator event armed for
// the earliest pending arrival and batch-issues everything due at that
// instant, so the simulator's queue depth stays O(in-flight queries), not
// O(UEs). Heap ties break on UE index; per-UE randomness is a pure function
// of (seed, ue), so runs are bit-identical regardless of how the campaign
// parallelizes around them.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::workload {

class LoadGenerator {
 public:
  struct Options {
    std::uint32_t ues = 1000;
    /// Per-UE mean arrival rate (open loop), queries per simulated second.
    double rate_hz = 1.0;
    /// Arrivals are generated in [start, start + duration).
    simnet::SimTime duration = simnet::SimTime::seconds(10);
    bool closed_loop = false;
    /// Closed loop: exponential think time between completion and the next
    /// query. The first query of each UE still arrives Poisson(rate_hz).
    simnet::SimTime mean_think = simnet::SimTime::seconds(1);
    std::uint64_t seed = 1;
  };

  /// Issues one query for `ue`. Closed-loop issuers must eventually call
  /// complete(ue) (open-loop issuers may skip it).
  using Issue = std::function<void(std::uint32_t ue)>;

  LoadGenerator(simnet::Simulator& sim, Options options, Issue issue);

  /// Seeds every UE's first arrival and arms the pump. Arrivals start
  /// relative to the simulator's current time.
  void start();

  /// Closed-loop completion signal: schedules `ue`'s next arrival after a
  /// think time, if it still lands inside the generation window.
  void complete(std::uint32_t ue);

  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }
  /// True once the window has passed and no arrivals remain pending.
  bool drained() const { return heap_.empty(); }
  const Options& options() const { return options_; }

 private:
  struct Arrival {
    std::int64_t at_nanos;
    std::uint32_t ue;
    bool operator>(const Arrival& other) const {
      if (at_nanos != other.at_nanos) return at_nanos > other.at_nanos;
      return ue > other.ue;
    }
  };

  /// Next exponential inter-arrival gap for `ue`, advancing its stream.
  simnet::SimTime next_gap(std::uint32_t ue, double mean_seconds);
  void push(std::int64_t at_nanos, std::uint32_t ue);
  void arm();
  void pump(std::int64_t fired_for);

  simnet::Simulator& sim_;
  Options options_;
  Issue issue_;
  std::vector<std::uint64_t> rng_;  ///< SoA: one SplitMix64 state per UE
  std::vector<Arrival> heap_;       ///< min-heap on (time, ue)
  std::int64_t window_end_nanos_ = 0;
  std::int64_t armed_at_nanos_ = -1;  ///< earliest armed pump event, -1 none
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace mecdns::workload
