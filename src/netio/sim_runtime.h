// Runtime adapter over the discrete-event simulator.
//
// Binds the abstract clock/IO interface to one node of a simulated Network.
// The adapter is deliberately thin — every call forwards to the exact
// Simulator/Network entry points the pre-abstraction code used, in the same
// order, so sim-mode artifacts (event counts, ephemeral-port allocation,
// RNG draws) stay byte-identical.
#pragma once

#include <memory>
#include <vector>

#include "netio/runtime.h"
#include "simnet/network.h"

namespace mecdns::netio {

class SimRuntime final : public Runtime {
 public:
  /// All sockets opened through this runtime live on `node`.
  SimRuntime(simnet::Network& net, simnet::NodeId node);

  SimRuntime(const SimRuntime&) = delete;
  SimRuntime& operator=(const SimRuntime&) = delete;
  ~SimRuntime() override;

  simnet::SimTime now() const override { return net_.now(); }

  /// Returns kNoTimer: simulator events are not individually cancellable
  /// (see Runtime::cancel) — callers' generation guards make stale firings
  /// harmless, and the firings themselves are part of the pinned
  /// deterministic event counts.
  TimerId schedule_after(simnet::SimTime delay, Callback fn) override {
    net_.simulator().schedule_after(delay, std::move(fn));
    return kNoTimer;
  }

  void cancel(TimerId) override {}

  DatagramSocket* open_socket(
      std::uint16_t port, DatagramSocket::ReceiveHandler handler,
      simnet::Ipv4Address addr = simnet::Ipv4Address()) override;
  void close_socket(DatagramSocket* socket) override;

  simnet::Network& network() { return net_; }
  simnet::NodeId node() const { return node_; }

 private:
  class Socket;

  simnet::Network& net_;
  simnet::NodeId node_;
  std::vector<std::unique_ptr<Socket>> sockets_;
};

}  // namespace mecdns::netio
