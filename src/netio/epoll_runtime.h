// Runtime over real UDP sockets: an epoll event loop with wall-clock
// timers.
//
// The live half of the clock/IO split. now() is CLOCK_MONOTONIC relative to
// construction (a nanosecond duration, exactly like sim time), timers live
// in a binary min-heap whose next deadline bounds the epoll_wait timeout,
// and sockets are non-blocking AF_INET datagram sockets delivered to the
// same `Packet` handler signature the simulated Network uses. Single
// threaded by design: handlers and timer callbacks run on the thread that
// calls run()/run_until(), so ported components need no locking — the same
// property the simulator gave them.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "netio/runtime.h"
#include "simnet/context.h"

namespace mecdns::netio {

class EpollRuntime final : public Runtime {
 public:
  EpollRuntime();
  EpollRuntime(const EpollRuntime&) = delete;
  EpollRuntime& operator=(const EpollRuntime&) = delete;
  ~EpollRuntime() override;

  simnet::SimTime now() const override;
  TimerId schedule_after(simnet::SimTime delay, Callback fn) override;
  void cancel(TimerId timer) override;
  /// Binds a real UDP socket; default address is 127.0.0.1 (the loopback
  /// prototype case). Throws std::system_error on bind failure.
  DatagramSocket* open_socket(
      std::uint16_t port, DatagramSocket::ReceiveHandler handler,
      simnet::Ipv4Address addr = simnet::Ipv4Address()) override;
  void close_socket(DatagramSocket* socket) override;

  /// Runs the loop until stop() is called (checked at least every 250 ms,
  /// so a signal handler that sets a flag polled by a timer works).
  void run();

  /// Runs until `deadline` (a now()-relative instant) or stop(), whichever
  /// comes first. Returns false if stopped early.
  bool run_until(simnet::SimTime deadline);

  /// Ends the current run()/run_until() after the in-progress poll round;
  /// a later run() starts fresh (pending timers and sockets are kept).
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Open sockets right now — the CI smoke job's leak check: after every
  /// component is destroyed this must read 0.
  std::size_t open_sockets() const { return sockets_.size(); }

  std::uint64_t timers_fired() const { return timers_fired_; }
  std::uint64_t timers_cancelled() const { return timers_cancelled_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  /// sendto() failures (EAGAIN, unreachable, ...) — the datagram is dropped
  /// exactly as a congested real network would.
  std::uint64_t send_errors() const { return send_errors_; }

 private:
  class Socket;

  struct Timer {
    simnet::SimTime at;
    TimerId id = kNoTimer;
    simnet::TraceToken trace;
    Callback fn;
  };
  /// Min-heap order for std::push_heap/pop_heap: "greater" deadline sinks;
  /// equal deadlines fire in schedule order (ids are monotonic), matching
  /// the simulator's sequence tiebreak.
  struct TimerAfter {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  /// One epoll_wait + drain + fire-due-timers round, sleeping at most until
  /// `wake_by` (clamped to 250 ms so stop() stays responsive).
  void poll_once(simnet::SimTime wake_by);
  void fire_due_timers();
  /// Earliest live (non-cancelled) timer deadline, or SimTime::max().
  simnet::SimTime next_timer_deadline();
  void drain_socket(Socket& socket);

  int epoll_fd_ = -1;
  std::int64_t epoch_ns_ = 0;
  std::vector<std::unique_ptr<Socket>> sockets_;
  std::vector<Timer> timer_heap_;
  /// Armed = scheduled and not yet fired; cancelled ids wait in the heap as
  /// tombstones until popped (lazy deletion keeps cancel O(1)).
  std::unordered_set<TimerId> armed_;
  std::unordered_set<TimerId> cancelled_;
  TimerId next_timer_id_ = 1;
  bool stopped_ = false;
  std::uint64_t timers_fired_ = 0;
  std::uint64_t timers_cancelled_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t send_errors_ = 0;
  /// Receive scratch reused across datagrams (payload capacity persists).
  simnet::Packet recv_packet_;
};

}  // namespace mecdns::netio
