#include "netio/sim_runtime.h"

#include <algorithm>
#include <utility>

namespace mecdns::netio {

/// Wraps a Network-owned UdpSocket. send() borrows the caller's bytes and
/// copies them into a pooled payload vector inside the Network, so the
/// per-send allocation disappears in steady state.
class SimRuntime::Socket final : public DatagramSocket {
 public:
  explicit Socket(simnet::UdpSocket* inner) : inner_(inner) {}

  simnet::Endpoint endpoint() const override { return inner_->endpoint(); }

  void send(const simnet::Endpoint& dst, std::span<const std::uint8_t> payload,
            std::size_t virtual_size) override {
    inner_->send(dst, payload, virtual_size);
  }

  simnet::UdpSocket* inner() const { return inner_; }

 private:
  simnet::UdpSocket* inner_;
};

SimRuntime::SimRuntime(simnet::Network& net, simnet::NodeId node)
    : net_(net), node_(node) {}

SimRuntime::~SimRuntime() {
  for (auto& socket : sockets_) net_.close_socket(socket->inner());
}

DatagramSocket* SimRuntime::open_socket(std::uint16_t port,
                                        DatagramSocket::ReceiveHandler handler,
                                        simnet::Ipv4Address addr) {
  simnet::UdpSocket* inner =
      net_.open_socket(node_, port, std::move(handler), addr);
  sockets_.push_back(std::make_unique<Socket>(inner));
  return sockets_.back().get();
}

void SimRuntime::close_socket(DatagramSocket* socket) {
  if (socket == nullptr) return;
  const auto it = std::find_if(
      sockets_.begin(), sockets_.end(),
      [socket](const std::unique_ptr<Socket>& s) { return s.get() == socket; });
  if (it == sockets_.end()) return;
  net_.close_socket((*it)->inner());
  sockets_.erase(it);
}

}  // namespace mecdns::netio
