#include "netio/epoll_runtime.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace mecdns::netio {

namespace {

constexpr int kMaxEpollEvents = 64;
/// Longest single epoll_wait sleep: stop() and run_until deadlines are
/// re-checked at least this often.
constexpr int kMaxPollMs = 250;
/// Datagrams drained per socket per wake-up before yielding to timers, so
/// one chatty peer cannot starve the retransmission ladder.
constexpr int kMaxDrainPerWake = 64;

std::int64_t monotonic_nanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

sockaddr_in to_sockaddr(const simnet::Endpoint& ep) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.addr.value());
  sa.sin_port = htons(ep.port);
  return sa;
}

simnet::Endpoint from_sockaddr(const sockaddr_in& sa) {
  return simnet::Endpoint{simnet::Ipv4Address(ntohl(sa.sin_addr.s_addr)),
                          ntohs(sa.sin_port)};
}

}  // namespace

/// A bound non-blocking UDP socket registered with the epoll set.
class EpollRuntime::Socket final : public DatagramSocket {
 public:
  Socket(EpollRuntime* owner, int fd, simnet::Endpoint local,
         ReceiveHandler handler)
      : owner_(owner), fd_(fd), local_(local), handler_(std::move(handler)) {}

  ~Socket() override {
    if (fd_ >= 0) ::close(fd_);
  }

  simnet::Endpoint endpoint() const override { return local_; }

  void send(const simnet::Endpoint& dst, std::span<const std::uint8_t> payload,
            std::size_t /*virtual_size*/) override {
    const sockaddr_in sa = to_sockaddr(dst);
    const ssize_t sent =
        ::sendto(fd_, payload.data(), payload.size(), 0,
                 reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    if (sent < 0) {
      ++owner_->send_errors_;
    } else {
      ++owner_->packets_sent_;
    }
  }

  int fd() const { return fd_; }
  void deliver(const simnet::Packet& packet) {
    if (handler_) handler_(packet);
  }

 private:
  EpollRuntime* owner_;
  int fd_;
  simnet::Endpoint local_;
  ReceiveHandler handler_;
};

EpollRuntime::EpollRuntime() : epoch_ns_(monotonic_nanos()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
  recv_packet_.payload.reserve(4096);
}

EpollRuntime::~EpollRuntime() {
  sockets_.clear();  // each Socket closes its fd
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

simnet::SimTime EpollRuntime::now() const {
  return simnet::SimTime::nanos(monotonic_nanos() - epoch_ns_);
}

TimerId EpollRuntime::schedule_after(simnet::SimTime delay, Callback fn) {
  const TimerId id = next_timer_id_++;
  timer_heap_.push_back(
      Timer{now() + delay, id, simnet::current_trace_token(), std::move(fn)});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), TimerAfter{});
  armed_.insert(id);
  return id;
}

void EpollRuntime::cancel(TimerId timer) {
  if (timer == kNoTimer) return;
  if (armed_.erase(timer) == 0) return;  // already fired (or never existed)
  cancelled_.insert(timer);
  ++timers_cancelled_;
}

DatagramSocket* EpollRuntime::open_socket(std::uint16_t port,
                                          DatagramSocket::ReceiveHandler handler,
                                          simnet::Ipv4Address addr) {
  if (addr.is_unspecified()) addr = simnet::Ipv4Address(127, 0, 0, 1);
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  sockaddr_in sa = to_sockaddr(simnet::Endpoint{addr, port});
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "bind " + addr.to_string() + ":" +
                                std::to_string(port));
  }
  // Resolve the actual endpoint (port 0 -> kernel-assigned ephemeral).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "getsockname");
  }

  auto socket = std::make_unique<Socket>(this, fd, from_sockaddr(bound),
                                         std::move(handler));
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = socket.get();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl add");
  }
  sockets_.push_back(std::move(socket));
  return sockets_.back().get();
}

void EpollRuntime::close_socket(DatagramSocket* socket) {
  if (socket == nullptr) return;
  const auto it = std::find_if(
      sockets_.begin(), sockets_.end(),
      [socket](const std::unique_ptr<Socket>& s) { return s.get() == socket; });
  if (it == sockets_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, (*it)->fd(), nullptr);
  sockets_.erase(it);  // destructor closes the fd
}

simnet::SimTime EpollRuntime::next_timer_deadline() {
  // Purge cancelled tombstones at the head so a dead timer never shortens
  // the epoll sleep.
  while (!timer_heap_.empty() &&
         cancelled_.count(timer_heap_.front().id) != 0) {
    cancelled_.erase(timer_heap_.front().id);
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerAfter{});
    timer_heap_.pop_back();
  }
  if (timer_heap_.empty()) return simnet::SimTime::max();
  return timer_heap_.front().at;
}

void EpollRuntime::fire_due_timers() {
  while (!timer_heap_.empty()) {
    if (cancelled_.count(timer_heap_.front().id) != 0) {
      cancelled_.erase(timer_heap_.front().id);
      std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerAfter{});
      timer_heap_.pop_back();
      continue;
    }
    if (timer_heap_.front().at > now()) return;
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), TimerAfter{});
    Timer timer = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    armed_.erase(timer.id);
    ++timers_fired_;
    simnet::TraceTokenGuard context(timer.trace);
    timer.fn();
  }
}

void EpollRuntime::drain_socket(Socket& socket) {
  sockaddr_in src{};
  socklen_t src_len = sizeof(src);
  std::uint8_t buf[65536];
  for (int i = 0; i < kMaxDrainPerWake; ++i) {
    src_len = sizeof(src);
    const ssize_t len =
        ::recvfrom(socket.fd(), buf, sizeof(buf), 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (len < 0) return;  // EAGAIN (drained) or transient error: move on
    ++packets_received_;
    recv_packet_.id = packets_received_;
    recv_packet_.src = from_sockaddr(src);
    recv_packet_.dst = socket.endpoint();
    recv_packet_.payload.assign(buf, buf + len);
    recv_packet_.virtual_size = 0;
    recv_packet_.hops.clear();
    socket.deliver(recv_packet_);
  }
}

void EpollRuntime::poll_once(simnet::SimTime wake_by) {
  const simnet::SimTime next_timer = next_timer_deadline();
  const simnet::SimTime wake = std::min(wake_by, next_timer);
  int timeout_ms = kMaxPollMs;
  if (wake != simnet::SimTime::max()) {
    const simnet::SimTime until = wake - now();
    if (until <= simnet::SimTime::zero()) {
      timeout_ms = 0;
    } else {
      // Round up so we never wake a hair early and spin.
      const std::int64_t ms = (until.count_nanos() + 999'999) / 1'000'000;
      timeout_ms = static_cast<int>(std::min<std::int64_t>(ms, kMaxPollMs));
    }
  }

  epoll_event events[kMaxEpollEvents];
  const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout_ms);
  if (n < 0 && errno != EINTR) {
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  for (int i = 0; i < std::max(n, 0); ++i) {
    auto* socket = static_cast<Socket*>(events[i].data.ptr);
    // A handler earlier in this batch may have closed this socket; the
    // socket list is small, so re-validate the pointer before touching it.
    const bool live = std::any_of(
        sockets_.begin(), sockets_.end(),
        [socket](const std::unique_ptr<Socket>& s) { return s.get() == socket; });
    if (live) drain_socket(*socket);
  }
  fire_due_timers();
}

void EpollRuntime::run() {
  stopped_ = false;
  while (!stopped_) poll_once(simnet::SimTime::max());
}

bool EpollRuntime::run_until(simnet::SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && now() < deadline) poll_once(deadline);
  return !stopped_;
}

}  // namespace mecdns::netio
