// Clock/IO abstraction: the seam between the DNS/MEC/CDN stack and the
// thing that moves time and datagrams.
//
// Everything above this interface — DnsTransport's retransmission ladder,
// DnsServer's processing-delay scheduling, the plugin chain, the mec
// ingress guard — only ever needs three primitives: what time is it
// (`now`), run this later (`schedule_after`/`cancel`), and send/receive
// datagrams (`open_socket` → DatagramSocket). Two implementations provide
// them:
//
//   * SimRuntime (sim_runtime.h) adapts the existing discrete-event
//     simulator + simulated Network, so every sim-mode artifact stays
//     byte-identical to the pre-abstraction code.
//   * EpollRuntime (epoll_runtime.h) is an epoll event loop with
//     CLOCK_MONOTONIC wall-clock timers and real UDP sockets, turning the
//     identical resolver/server code into a live prototype `dig` can query.
//
// The interface deliberately reuses simnet's value types (SimTime as a
// nanosecond duration since the runtime's epoch, Endpoint, Packet) so
// porting a component is a constructor change, not a rewrite.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "simnet/ip.h"
#include "simnet/network.h"
#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::netio {

/// Handle for a scheduled timer, usable with Runtime::cancel. kNoTimer is
/// never returned for a live cancellable timer; implementations that cannot
/// cancel (SimRuntime) return it from schedule_after.
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

/// A bound datagram endpoint. Owned by the Runtime; obtained via
/// open_socket() and returned with close_socket().
class DatagramSocket {
 public:
  using ReceiveHandler = std::function<void(const simnet::Packet&)>;

  virtual ~DatagramSocket() = default;

  /// The bound local address/port (after ephemeral-port resolution).
  virtual simnet::Endpoint endpoint() const = 0;

  /// Sends a datagram to `dst`, borrowing `payload` — the bytes are copied
  /// (or written to the wire) before return, so callers may pass a view of
  /// the encoder's arena scratch. `virtual_size` only matters to simulated
  /// bandwidth-limited links; real sockets ignore it.
  virtual void send(const simnet::Endpoint& dst,
                    std::span<const std::uint8_t> payload,
                    std::size_t virtual_size = 0) = 0;
};

/// The clock + scheduler + datagram fabric a protocol component runs on.
class Runtime {
 public:
  using Callback = simnet::Simulator::Callback;

  virtual ~Runtime() = default;

  /// Sim: current simulated time. Live: monotonic time since the runtime
  /// was constructed. Either way a nanosecond duration, so intervals and
  /// RTT math are mode-independent.
  virtual simnet::SimTime now() const = 0;

  /// Runs `fn` once, `delay` from now. The returned id is valid for
  /// cancel() until the timer fires.
  virtual TimerId schedule_after(simnet::SimTime delay, Callback fn) = 0;

  /// Best-effort: a cancelled timer never runs. SimRuntime implements this
  /// as a no-op (callers there carry generation guards, and firing stale
  /// timers is part of the pinned deterministic event counts); EpollRuntime
  /// really removes the timer so a live process does not wake up for work
  /// that was superseded.
  virtual void cancel(TimerId timer) = 0;

  /// Binds a datagram socket (port 0 = ephemeral). `addr` selects the local
  /// address when the node/host has several; default picks the runtime's
  /// primary (sim: node's first address, live: 127.0.0.1).
  virtual DatagramSocket* open_socket(std::uint16_t port,
                                      DatagramSocket::ReceiveHandler handler,
                                      simnet::Ipv4Address addr =
                                          simnet::Ipv4Address()) = 0;

  virtual void close_socket(DatagramSocket* socket) = 0;
};

}  // namespace mecdns::netio
