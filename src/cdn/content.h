// Content model and the minimal HTTP-like fetch protocol.
//
// CDN content is addressed by URL (host + path); the host is the CDN domain
// the DNS layer resolves (Table 1 of the paper), the path names the object.
// Fetches use a tiny GET/response protocol over simulated UDP — enough to
// measure end-to-end "resolve then fetch" latencies and drive cache-miss
// paths, without modelling TCP.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "util/result.h"

namespace mecdns::cdn {

/// A parsed content URL: "video.demo1.mycdn.test/segments/0001.ts".
struct Url {
  dns::DnsName host;
  std::string path;  ///< always begins with '/'

  static util::Result<Url> parse(std::string_view text);
  static Url must_parse(std::string_view text);

  std::string to_string() const { return host.to_string() + path; }

  friend bool operator==(const Url& a, const Url& b) {
    return a.host == b.host && a.path == b.path;
  }
  friend bool operator<(const Url& a, const Url& b) {
    if (a.host == b.host) return a.path < b.path;
    return a.host < b.host;
  }

  /// Consistent with operator== (host compares case-insensitively).
  std::size_t hash() const {
    std::size_t h = host.hash();
    for (const char c : path) {
      h ^= static_cast<std::size_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Immutable description of one object.
struct ContentObject {
  Url url;
  std::uint64_t size_bytes = 0;
};

/// The set of objects an origin (or a delivery service) owns.
class ContentCatalog {
 public:
  void add(Url url, std::uint64_t size_bytes);
  /// Adds `count` objects "<prefix>NNNN" under `host` with the given size.
  void add_series(const dns::DnsName& host, const std::string& prefix,
                  std::size_t count, std::uint64_t size_bytes);

  std::optional<ContentObject> find(const Url& url) const;
  bool contains(const Url& url) const { return find(url).has_value(); }
  std::size_t size() const { return objects_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

  const std::map<Url, ContentObject>& objects() const { return objects_; }

 private:
  std::map<Url, ContentObject> objects_;
  std::uint64_t total_bytes_ = 0;
};

// --- wire helpers for the GET protocol --------------------------------------

inline constexpr std::uint16_t kContentPort = 80;

struct ContentRequest {
  std::uint64_t id = 0;
  Url url;
};

struct ContentResponse {
  std::uint64_t id = 0;
  Url url;
  std::uint16_t status = 200;  ///< 200 or 404
  std::uint64_t size_bytes = 0;
  bool served_from_cache = false;  ///< hit at the answering tier
};

std::vector<std::uint8_t> encode(const ContentRequest& request);
std::vector<std::uint8_t> encode(const ContentResponse& response);
util::Result<ContentRequest> decode_request(
    const std::vector<std::uint8_t>& payload);
util::Result<ContentResponse> decode_response(
    const std::vector<std::uint8_t>& payload);

}  // namespace mecdns::cdn
