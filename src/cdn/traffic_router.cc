#include "cdn/traffic_router.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/trace.h"

namespace mecdns::cdn {

TrafficRouter::TrafficRouter(simnet::Network& net, simnet::NodeId node,
                             std::string name,
                             simnet::LatencyModel processing_delay,
                             Config config, simnet::Ipv4Address addr)
    : dns::DnsServer(net, node, std::move(name), std::move(processing_delay),
                     addr),
      config_(std::move(config)) {}

void TrafficRouter::add_cache_group(const std::string& group) {
  groups_.emplace(group, Group{});
}

void TrafficRouter::add_cache(const std::string& group, CacheInfo cache) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    it = groups_.emplace(group, Group{}).first;
  }
  it->second.caches.push_back(std::move(cache));
  rebuild_ring(it->second);
}

void TrafficRouter::set_cache_healthy(const std::string& group,
                                      const std::string& cache, bool healthy) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  for (auto& info : it->second.caches) {
    if (info.name == cache) info.healthy = healthy;
  }
  rebuild_ring(it->second);
}

void TrafficRouter::rebuild_ring(Group& group) {
  ConsistentHashRing next(64);
  for (const auto& cache : group.caches) {
    if (cache.healthy) {
      next.add(cache.name);
      if (config_.cache_capacity_per_window > 0) {
        next.set_capacity(cache.name, config_.cache_capacity_per_window);
      }
    }
  }
  // Churn accounting: what fraction of the key space this membership change
  // moved. Bounded-load consistent hashing promises O(K/n); the counters
  // let benches and tests hold it to that.
  if (!group.ring.empty() && !next.empty()) {
    const double fraction =
        ConsistentHashRing::remap_fraction(group.ring, next);
    ++router_stats_.topology_changes;
    router_stats_.last_remap_fraction = fraction;
    router_stats_.max_remap_fraction =
        std::max(router_stats_.max_remap_fraction, fraction);
    router_stats_.remap_fraction_sum += fraction;
  }
  // Loads do not carry across a rebuild: the window restarts with the new
  // membership (deterministic, and conservative for the fuller ring).
  group.load_window = UINT64_MAX;
  group.ring = std::move(next);
}

void TrafficRouter::set_cache_capacity(std::uint64_t per_window,
                                       simnet::SimTime window) {
  config_.cache_capacity_per_window = per_window;
  config_.capacity_window = window;
  for (auto& [name, group] : groups_) {
    for (const auto& cache : group.caches) {
      if (cache.healthy) group.ring.set_capacity(cache.name, per_window);
    }
    group.load_window = UINT64_MAX;
  }
}

void TrafficRouter::add_delivery_service(DeliveryService service) {
  services_.push_back(std::move(service));
}

bool TrafficRouter::has_delivery_service(const std::string& id) const {
  return std::any_of(services_.begin(), services_.end(),
                     [&](const DeliveryService& s) { return s.id == id; });
}

void TrafficRouter::remove_delivery_service(const std::string& id) {
  services_.erase(std::remove_if(services_.begin(), services_.end(),
                                 [&](const DeliveryService& s) {
                                   return s.id == id;
                                 }),
                  services_.end());
}

const DeliveryService* TrafficRouter::match_service(
    const dns::DnsName& qname) const {
  const DeliveryService* best = nullptr;
  for (const auto& service : services_) {
    if (!qname.is_subdomain_of(service.domain)) continue;
    if (best == nullptr ||
        service.domain.label_count() > best->domain.label_count()) {
      best = &service;
    }
  }
  return best;
}

std::optional<std::string> TrafficRouter::choose_group(
    const DeliveryService& service, simnet::Ipv4Address client_addr) {
  const auto allowed = [&](const std::string& group) {
    return std::find(service.cache_groups.begin(), service.cache_groups.end(),
                     group) != service.cache_groups.end();
  };

  // 1. Coverage zone file: authoritative client-subnet knowledge.
  if (auto group = coverage_.lookup(client_addr);
      group.has_value() && allowed(*group)) {
    ++router_stats_.coverage_hits;
    return group;
  }

  // 2. Geo fallback: nearest allowed group by (imperfect) GeoIP distance.
  if (auto client_location = geo_.locate(client_addr);
      client_location.has_value() && !config_.group_locations.empty()) {
    ++router_stats_.geo_fallbacks;
    const std::string* best = nullptr;
    double best_distance = std::numeric_limits<double>::max();
    for (const auto& [group, location] : config_.group_locations) {
      if (!allowed(group)) continue;
      const double d = distance_km(*client_location, location);
      if (d < best_distance) {
        best_distance = d;
        best = &group;
      }
    }
    if (best != nullptr) return *best;
  }

  // 3. Coverage default group, then first allowed group with any cache.
  if (const auto& fallback = coverage_.default_group();
      fallback.has_value() && allowed(*fallback)) {
    return fallback;
  }
  for (const auto& group : service.cache_groups) {
    if (groups_.count(group) != 0) return group;
  }
  return std::nullopt;
}

std::optional<CacheInfo> TrafficRouter::choose_cache(
    const std::string& group, const dns::DnsName& qname) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return std::nullopt;
  Group& g = it->second;

  std::optional<std::string> member;
  if (config_.cache_capacity_per_window > 0 &&
      config_.capacity_window > simnet::SimTime::zero()) {
    const std::uint64_t window = static_cast<std::uint64_t>(
        now().count_nanos() /
        config_.capacity_window.count_nanos());
    if (window != g.load_window) {
      g.load_window = window;
      g.ring.reset_loads();
    }
    bool overflowed = false;
    member = g.ring.pick_bounded(qname.to_string(), &overflowed);
    if (member.has_value()) {
      g.ring.add_load(*member);
      if (overflowed) ++router_stats_.bounded_overflows;
    } else if (!g.ring.empty()) {
      // Site over capacity this window: count it and let handle() degrade
      // via the parent-tier referral.
      ++router_stats_.capacity_exhausted;
    }
  } else {
    member = g.ring.pick(qname.to_string());
  }

  if (!member.has_value()) return std::nullopt;
  for (const auto& cache : g.caches) {
    if (cache.name == *member) return cache;
  }
  return std::nullopt;
}

void TrafficRouter::handle(const dns::Message& query,
                           const dns::QueryContext& ctx, Responder respond) {
  const dns::Question& q = query.question();

  if (!q.name.is_subdomain_of(config_.cdn_domain)) {
    respond(dns::make_response(query, dns::RCode::kRefused));
    return;
  }

  // Determine the localization address: ECS subnet when offered and
  // enabled, else the resolver's own source address — the paper's "based on
  // L-DNS's location, C-DNS returns the IP address of a cache server".
  simnet::Ipv4Address client_addr = ctx.client.addr;
  bool localized_by_ecs = false;
  std::uint8_t ecs_source_prefix = 0;
  if (config_.use_ecs && query.edns.has_value() &&
      query.edns->client_subnet.has_value()) {
    client_addr = query.edns->client_subnet->subnet().network();
    ecs_source_prefix = query.edns->client_subnet->source_prefix;
    localized_by_ecs = true;
    ++router_stats_.ecs_localized;
    obs::ambient_span().tag("ecs", "true");
  }

  const auto finish = [&](dns::Message response) {
    if (localized_by_ecs) {
      // Extra work: option parsing, subnet validation, scoped answer
      // bookkeeping. The paper measured ECS shifting latency by roughly
      // 1.01x-1.08x; this models that small cost explicitly.
      runtime().schedule_after(
          config_.ecs_processing,
          [respond, response = std::move(response)]() mutable {
            respond(std::move(response));
          });
    } else {
      respond(std::move(response));
    }
  };

  const DeliveryService* service = match_service(q.name);
  dns::Message response = dns::make_response(query);
  response.header.aa = true;
  if (query.edns.has_value()) {
    response.edns = dns::Edns{};
    if (query.edns->client_subnet.has_value()) {
      dns::ClientSubnet ecs = *query.edns->client_subnet;
      ecs.scope_prefix = localized_by_ecs ? ecs_source_prefix : 0;
      response.edns->client_subnet = ecs;
    }
  }

  if (q.type != dns::RecordType::kA && q.type != dns::RecordType::kAny) {
    // Routers only synthesize A records; other types get NODATA.
    finish(std::move(response));
    return;
  }

  if (service == nullptr) {
    // Unknown delivery service at this tier: refer into the parent tier via
    // a cascading CNAME when configured, else NXDOMAIN.
    if (config_.parent_domain.has_value() &&
        q.name.label_count() > config_.cdn_domain.label_count()) {
      const dns::DnsName relative_name = q.name.prefix(
          q.name.label_count() - config_.cdn_domain.label_count());
      auto target = relative_name.under(*config_.parent_domain);
      if (target.ok()) {
        ++router_stats_.referred_to_parent;
        obs::ambient_span().tag("route", "parent-referral");
        response.answers.push_back(
            dns::make_cname(q.name, target.value(), config_.answer_ttl));
        finish(std::move(response));
        return;
      }
    }
    response.header.rcode = dns::RCode::kNxDomain;
    finish(std::move(response));
    return;
  }

  const auto group = choose_group(*service, client_addr);
  const auto cache =
      group.has_value() ? choose_cache(*group, q.name) : std::nullopt;
  if (!cache.has_value()) {
    // No healthy cache anywhere for this service at this tier: refer up if
    // possible, else SERVFAIL (the router knows the name but cannot serve).
    if (config_.parent_domain.has_value()) {
      const dns::DnsName relative_name = q.name.prefix(
          q.name.label_count() - config_.cdn_domain.label_count());
      if (auto target = relative_name.under(*config_.parent_domain);
          target.ok()) {
        ++router_stats_.referred_to_parent;
        // Journal the edge into referral mode: local caches became
        // unusable and traffic started cascading to the parent tier.
        if (!referring_) {
          referring_ = true;
          if (journal_ != nullptr) {
            journal_->record(ctx.received, obs::JournalKind::kParentReferral,
                             journal_cell_, "no healthy local cache");
          }
        }
        obs::ambient_span().tag("route", "parent-referral");
        response.answers.push_back(
            dns::make_cname(q.name, target.value(), config_.answer_ttl));
        finish(std::move(response));
        return;
      }
    }
    ++router_stats_.no_cache_available;
    obs::ambient_span().tag("route", "no-cache-available");
    response.header.rcode = dns::RCode::kServFail;
    finish(std::move(response));
    return;
  }

  ++router_stats_.routed;
  referring_ = false;
  ++selections_[cache->name];
  obs::ambient_span().tag("route", "routed");
  obs::ambient_span().tag("cache", cache->name);
  obs::ambient_span().tag("group", *group);
  response.answers.push_back(
      dns::make_a(q.name, cache->address, config_.answer_ttl));
  finish(std::move(response));
}

}  // namespace mecdns::cdn
