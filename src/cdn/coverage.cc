#include "cdn/coverage.h"

namespace mecdns::cdn {

void CoverageZoneMap::add(simnet::Cidr subnet, std::string cache_group) {
  zones_.push_back(ZoneEntry{subnet, std::move(cache_group)});
}

std::optional<std::string> CoverageZoneMap::lookup(
    simnet::Ipv4Address addr) const {
  const ZoneEntry* best = nullptr;
  for (const auto& zone : zones_) {
    if (!zone.subnet.contains(addr)) continue;
    if (best == nullptr ||
        zone.subnet.prefix_len() > best->subnet.prefix_len()) {
      best = &zone;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->group;
}

std::optional<std::string> CoverageZoneMap::resolve(
    simnet::Ipv4Address addr) const {
  auto group = lookup(addr);
  if (group.has_value()) return group;
  return default_group_;
}

}  // namespace mecdns::cdn
