// Coverage zone map: client subnet -> cache group.
//
// Apache Traffic Control resolves the requester's address against a
// "coverage zone file" before falling back to geo lookup; the paper's
// C-DNS-at-MEC gets its precision from exactly this: the MEC site's client
// subnets map to the MEC cache group with certainty, rather than relying on
// GeoIP ("limited accuracy", §1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "simnet/ip.h"

namespace mecdns::cdn {

class CoverageZoneMap {
 public:
  /// Maps every address in `subnet` to `cache_group`.
  void add(simnet::Cidr subnet, std::string cache_group);

  /// Longest-prefix match; nullopt when no zone covers the address.
  std::optional<std::string> lookup(simnet::Ipv4Address addr) const;

  /// Group to use when lookup fails (the geo fallback's answer).
  void set_default_group(std::string group) { default_group_ = group; }
  const std::optional<std::string>& default_group() const {
    return default_group_;
  }

  /// lookup() falling back to the default group.
  std::optional<std::string> resolve(simnet::Ipv4Address addr) const;

  std::size_t size() const { return zones_.size(); }

 private:
  struct ZoneEntry {
    simnet::Cidr subnet;
    std::string group;
  };
  std::vector<ZoneEntry> zones_;
  std::optional<std::string> default_group_;
};

}  // namespace mecdns::cdn
