#include "cdn/traffic_monitor.h"

#include "util/log.h"

namespace mecdns::cdn {

TrafficMonitor::TrafficMonitor(simnet::Network& net, simnet::NodeId node,
                               TrafficRouter& router, Config config)
    : net_(net), router_(router), config_(config) {
  client_ = std::make_unique<ContentClient>(net, node);
}

void TrafficMonitor::watch(const std::string& group,
                           const std::string& cache_name,
                           simnet::Endpoint endpoint, Url probe_url) {
  watched_.push_back(Watched{group, cache_name, endpoint,
                             std::move(probe_url), true, 0, 0});
}

void TrafficMonitor::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  rounds_done_ = 0;
  probe_all();
}

void TrafficMonitor::probe_all() {
  if (!running_) return;
  if (config_.rounds != 0 && rounds_done_ >= config_.rounds) {
    running_ = false;
    return;
  }
  ++rounds_done_;
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    ++probes_sent_;
    client_->get(
        watched_[i].endpoint, watched_[i].probe_url,
        [this, i](util::Result<ContentResponse> result, simnet::SimTime) {
          on_result(i, result.ok() && result.value().status == 200);
        },
        config_.probe_timeout);
  }
  net_.simulator().schedule_after(config_.probe_interval,
                                  [this, alive = alive_] {
                                    if (!*alive) return;
                                    probe_all();
                                  });
}

void TrafficMonitor::on_result(std::size_t index, bool success) {
  Watched& cache = watched_[index];
  if (success) {
    cache.failures = 0;
    if (!cache.healthy && ++cache.successes >= config_.up_threshold) {
      cache.healthy = true;
      cache.successes = 0;
      ++transitions_;
      if (journal_ != nullptr) {
        journal_->record(net_.now(), obs::JournalKind::kCacheReadmit,
                         journal_cell_, cache.name.c_str());
      }
      MECDNS_LOG(kInfo, "monitor") << cache.name << " is healthy again";
      router_.set_cache_healthy(cache.group, cache.name, true);
    }
  } else {
    cache.successes = 0;
    if (cache.healthy && ++cache.failures >= config_.down_threshold) {
      cache.healthy = false;
      cache.failures = 0;
      ++transitions_;
      if (journal_ != nullptr) {
        journal_->record(net_.now(), obs::JournalKind::kCacheDrain,
                         journal_cell_, cache.name.c_str(),
                         static_cast<std::uint64_t>(config_.down_threshold));
      }
      MECDNS_LOG(kWarn, "monitor") << cache.name << " marked down after "
                                   << config_.down_threshold << " failures";
      router_.set_cache_healthy(cache.group, cache.name, false);
    }
  }
}

bool TrafficMonitor::healthy(const std::string& cache_name) const {
  for (const auto& cache : watched_) {
    if (cache.name == cache_name) return cache.healthy;
  }
  return false;
}

}  // namespace mecdns::cdn
