// Consistent hashing for cache-server selection.
//
// Apache Traffic Control's Traffic Router consistent-hashes request paths
// onto the caches of the selected cache group so that each object lives on
// a stable server — crucial at a small MEC site, where spraying requests
// across caches would multiply the working set ("disaggregation of requests
// ... may increase the cache miss rate", §2 observation 2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mecdns::cdn {

class ConsistentHashRing {
 public:
  /// `vnodes` = virtual nodes per member; more gives smoother balance.
  explicit ConsistentHashRing(unsigned vnodes = 64) : vnodes_(vnodes) {}

  void add(const std::string& member);
  void remove(const std::string& member);
  bool contains(const std::string& member) const;
  std::size_t size() const { return members_; }
  bool empty() const { return members_ == 0; }

  /// The member owning `key`, or nullopt when the ring is empty.
  std::optional<std::string> pick(const std::string& key) const;

  /// The first `n` distinct members clockwise from `key` (for replica
  /// placement / failover ordering).
  std::vector<std::string> pick_n(const std::string& key, std::size_t n) const;

  /// Stable 64-bit hash used for ring positions and keys (FNV-1a).
  static std::uint64_t hash(const std::string& text);

 private:
  unsigned vnodes_;
  std::size_t members_ = 0;
  std::map<std::uint64_t, std::string> ring_;
};

}  // namespace mecdns::cdn
