// Consistent hashing for cache-server selection.
//
// Apache Traffic Control's Traffic Router consistent-hashes request paths
// onto the caches of the selected cache group so that each object lives on
// a stable server — crucial at a small MEC site, where spraying requests
// across caches would multiply the working set ("disaggregation of requests
// ... may increase the cache miss rate", §2 observation 2).
//
// The ring also supports *bounded-load* consistent hashing (Mirrokni et
// al. style): each member can carry a capacity, and `pick_bounded` walks
// clockwise past members that are already full. Combined with the churn
// helper `remap_fraction`, this gives the consistency objective of Huang
// et al. (Consistent User-Traffic Allocation and Load Balancing in Mobile
// Edge Caching): membership changes move O(K/n) keys and no member is
// ever loaded past its capacity.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mecdns::cdn {

class ConsistentHashRing {
 public:
  /// `vnodes` = virtual nodes per member; more gives smoother balance.
  explicit ConsistentHashRing(unsigned vnodes = 64) : vnodes_(vnodes) {}

  /// Test seam: replace the position hash (e.g. to force virtual-node
  /// collisions). Must be called before any `add`.
  void set_hasher(std::function<std::uint64_t(const std::string&)> hasher) {
    hasher_ = std::move(hasher);
  }

  void add(const std::string& member);
  void remove(const std::string& member);
  bool contains(const std::string& member) const {
    return members_.count(member) != 0;
  }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }
  std::vector<std::string> members() const;

  /// The member owning `key`, or nullopt when the ring is empty.
  std::optional<std::string> pick(const std::string& key) const;

  /// The first `n` distinct members clockwise from `key` (for replica
  /// placement / failover ordering).
  std::vector<std::string> pick_n(const std::string& key, std::size_t n) const;

  // --- bounded load -------------------------------------------------------
  /// Capacity in load units (whatever `add_load` counts); 0 = unlimited.
  void set_capacity(const std::string& member, std::uint64_t capacity);
  std::uint64_t capacity(const std::string& member) const;
  std::uint64_t load(const std::string& member) const;
  void add_load(const std::string& member, std::uint64_t units = 1);
  /// Zero every member's load (start of a new accounting window).
  void reset_loads();

  /// The first member clockwise from `key` with spare capacity; nullopt
  /// when the ring is empty or every member is at capacity. `overflowed`,
  /// when non-null, reports whether the pick differs from the unbounded
  /// owner (i.e. the primary was full).
  std::optional<std::string> pick_bounded(const std::string& key,
                                          bool* overflowed = nullptr) const;

  /// Fraction of `probes` synthetic keys whose (unbounded) owner differs
  /// between two rings — the allocation-churn cost of a topology change.
  static double remap_fraction(const ConsistentHashRing& before,
                               const ConsistentHashRing& after,
                               std::size_t probes = 256);

  /// Stable 64-bit hash used for ring positions and keys (FNV-1a).
  static std::uint64_t hash(const std::string& text);

 private:
  struct Member {
    std::uint64_t capacity = 0;  // 0 = unlimited
    std::uint64_t load = 0;
  };

  std::uint64_t position(const std::string& text) const {
    return hasher_ ? hasher_(text) : hash(text);
  }
  bool has_room(const Member& m) const {
    return m.capacity == 0 || m.load < m.capacity;
  }

  unsigned vnodes_;
  std::function<std::uint64_t(const std::string&)> hasher_;
  // Virtual-node positions can collide (notably under an injected test
  // hasher), so the ring is a multimap: colliding vnodes coexist and
  // removal erases only the departing member's entries.
  std::multimap<std::uint64_t, std::string> ring_;
  std::map<std::string, Member> members_;
};

}  // namespace mecdns::cdn
