// CDN cache server: LRU object cache with parent/origin miss fetch.
//
// The edge tier of the MEC-CDN (and the mid/cloud tiers behind it). On a
// miss the server fetches from its configured parent — origin or a
// higher-tier cache — then answers the client; the extra round trip is what
// makes cache locality visible in end-to-end latency.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>

#include "cdn/content.h"
#include "obs/trace.h"
#include "simnet/context.h"
#include "simnet/latency.h"
#include "simnet/network.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace mecdns::cdn {

struct CacheServerStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t parent_fetches = 0;
  std::uint64_t parent_failures = 0;
  std::uint64_t not_found = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_served = 0;

  double hit_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
};

class CacheServer {
 public:
  struct Config {
    std::uint64_t capacity_bytes = 256ull * 1024 * 1024;
    /// Per-request service time (lookup + response serialization).
    simnet::LatencyModel service_time =
        simnet::LatencyModel::constant(simnet::SimTime::micros(200));
    /// Parent to fetch misses from; unset means answer 404 on miss.
    std::optional<simnet::Endpoint> parent;
    simnet::SimTime parent_timeout = simnet::SimTime::millis(2000);
  };

  CacheServer(simnet::Network& net, simnet::NodeId node, std::string name,
              Config config, simnet::Ipv4Address addr = simnet::Ipv4Address());
  ~CacheServer();
  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  const std::string& name() const { return name_; }
  simnet::Endpoint endpoint() const { return socket_->endpoint(); }
  const CacheServerStats& stats() const { return stats_; }

  /// Pre-populates the cache (content pushed to the edge at deploy time).
  void warm(const ContentObject& object);
  bool cached(const Url& url) const { return index_.count(url) != 0; }
  std::uint64_t used_bytes() const { return used_bytes_; }

  void set_parent(std::optional<simnet::Endpoint> parent) {
    config_.parent = parent;
  }

  /// Drops every cached object (chaos cache-content wipe): subsequent
  /// requests miss and re-fetch from the parent. Stats are preserved.
  void wipe();

  /// Fixed latency added to each sampled service time — the chaos layer's
  /// brownout knob for a degraded-but-alive cache. Zero restores nominal
  /// service; no RNG is drawn.
  void set_extra_service_time(simnet::SimTime extra) { extra_service_ = extra; }
  simnet::SimTime extra_service_time() const { return extra_service_; }

 private:
  void on_packet(const simnet::Packet& packet);
  void serve(const ContentRequest& request, const simnet::Endpoint& client);
  void respond(const ContentRequest& request, const simnet::Endpoint& client,
               std::uint16_t status, std::uint64_t size, bool from_cache);
  void touch(const Url& url);
  void insert(const ContentObject& object);

  simnet::Network& net_;
  std::string name_;
  Config config_;
  simnet::UdpSocket* socket_;
  simnet::UdpSocket* parent_socket_;
  util::Rng rng_;
  /// Disarms scheduled service/timeout events after destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  struct UrlHash {
    std::size_t operator()(const Url& url) const { return url.hash(); }
  };
  struct U64Hash {
    std::size_t operator()(std::uint64_t v) const {
      v *= 0x9e3779b97f4a7c15ULL;
      return v ^ (v >> 32);
    }
  };

  // LRU: most-recent at front.
  std::list<ContentObject> lru_;
  util::FlatHashMap<Url, std::list<ContentObject>::iterator, UrlHash> index_;
  std::uint64_t used_bytes_ = 0;
  simnet::SimTime extra_service_ = simnet::SimTime::zero();

  struct PendingFetch {
    ContentRequest request;
    simnet::Endpoint client;
    std::uint64_t generation;
    obs::SpanRef span;          ///< "parent-fetch" span (inert if untraced)
    simnet::TraceToken owner;   ///< serve span, restored for the response
  };
  util::FlatHashMap<std::uint64_t, PendingFetch, U64Hash> pending_;
  std::uint64_t next_fetch_id_ = 1;
  CacheServerStats stats_;
};

/// Origin server: owns a catalog, never misses (the content's home).
class OriginServer {
 public:
  OriginServer(simnet::Network& net, simnet::NodeId node, std::string name,
               ContentCatalog catalog,
               simnet::LatencyModel service_time =
                   simnet::LatencyModel::constant(simnet::SimTime::millis(2)),
               simnet::Ipv4Address addr = simnet::Ipv4Address());
  ~OriginServer();
  OriginServer(const OriginServer&) = delete;
  OriginServer& operator=(const OriginServer&) = delete;

  simnet::Endpoint endpoint() const { return socket_->endpoint(); }
  const ContentCatalog& catalog() const { return catalog_; }
  std::uint64_t requests() const { return requests_; }

 private:
  void on_packet(const simnet::Packet& packet);

  simnet::Network& net_;
  std::string name_;
  ContentCatalog catalog_;
  simnet::LatencyModel service_time_;
  simnet::UdpSocket* socket_;
  util::Rng rng_;
  std::uint64_t requests_ = 0;
};

/// Client-side fetch helper (used by the UE and by examples).
class ContentClient {
 public:
  using Callback = std::function<void(util::Result<ContentResponse>,
                                      simnet::SimTime latency)>;

  ContentClient(simnet::Network& net, simnet::NodeId node);
  ~ContentClient();
  ContentClient(const ContentClient&) = delete;
  ContentClient& operator=(const ContentClient&) = delete;

  void get(const simnet::Endpoint& server, const Url& url, Callback callback,
           simnet::SimTime timeout = simnet::SimTime::millis(3000));

 private:
  void on_packet(const simnet::Packet& packet);

  simnet::Network& net_;
  simnet::UdpSocket* socket_;
  /// Disarms scheduled timeout events once this client is destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  struct Pending {
    Callback callback;
    simnet::SimTime sent;
    std::uint64_t generation;
    obs::SpanRef span;          ///< "content get" span (inert if untraced)
    simnet::TraceToken caller;  ///< restored around the callback
  };
  struct U64Hash {
    std::size_t operator()(std::uint64_t v) const {
      v *= 0x9e3779b97f4a7c15ULL;
      return v ^ (v >> 32);
    }
  };
  util::FlatHashMap<std::uint64_t, Pending, U64Hash> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_generation_ = 1;
};

}  // namespace mecdns::cdn
