#include "cdn/opaque_router.h"

#include <stdexcept>

namespace mecdns::cdn {

OpaqueCdnRouter::OpaqueCdnRouter(simnet::Network& net, simnet::NodeId node,
                                 std::string name,
                                 simnet::LatencyModel processing_delay,
                                 dns::DnsName domain, std::uint64_t seed,
                                 simnet::Ipv4Address addr)
    : dns::DnsServer(net, node, std::move(name), std::move(processing_delay),
                     addr),
      domain_(std::move(domain)), rng_(seed) {}

std::size_t OpaqueCdnRouter::add_pool(std::string provider,
                                      simnet::Cidr range) {
  pools_.push_back(Pool{std::move(provider), range});
  return pools_.size() - 1;
}

void OpaqueCdnRouter::add_resolver_class(simnet::Cidr subnet,
                                         std::string cls) {
  classes_.emplace_back(subnet, std::move(cls));
}

void OpaqueCdnRouter::set_weights(const std::string& cls,
                                  std::vector<double> weights) {
  if (weights.size() != pools_.size()) {
    throw std::invalid_argument("weight count must equal pool count");
  }
  weights_[cls] = std::move(weights);
}

std::string OpaqueCdnRouter::classify(simnet::Ipv4Address resolver) const {
  const std::pair<simnet::Cidr, std::string>* best = nullptr;
  for (const auto& entry : classes_) {
    if (!entry.first.contains(resolver)) continue;
    if (best == nullptr ||
        entry.first.prefix_len() > best->first.prefix_len()) {
      best = &entry;
    }
  }
  return best == nullptr ? "" : best->second;
}

const util::FrequencyTable& OpaqueCdnRouter::distribution(
    const std::string& cls) const {
  static const util::FrequencyTable kEmpty;
  const auto it = distributions_.find(cls);
  return it == distributions_.end() ? kEmpty : it->second;
}

void OpaqueCdnRouter::handle(const dns::Message& query,
                             const dns::QueryContext& ctx,
                             Responder respond) {
  const dns::Question& q = query.question();
  if (!q.name.is_subdomain_of(domain_)) {
    respond(dns::make_response(query, dns::RCode::kRefused));
    return;
  }
  if (pools_.empty()) {
    respond(dns::make_response(query, dns::RCode::kServFail));
    return;
  }
  if (q.type != dns::RecordType::kA && q.type != dns::RecordType::kAny) {
    respond(dns::make_response(query));  // NODATA
    return;
  }

  const std::string cls = classify(ctx.client.addr);
  auto weight_it = weights_.find(cls);
  if (weight_it == weights_.end()) weight_it = weights_.find("");
  std::size_t pool_index;
  if (weight_it == weights_.end()) {
    pool_index = rng_.uniform_int(pools_.size());
  } else {
    pool_index = rng_.weighted_index(weight_it->second);
  }
  const Pool& pool = pools_[pool_index];
  // Draw a host within the pool's CIDR (skipping .0 network addresses).
  const std::uint64_t hosts = pool.range.size();
  const std::uint32_t offset =
      hosts <= 2 ? 1
                 : 1 + static_cast<std::uint32_t>(rng_.uniform_int(hosts - 2));
  const simnet::Ipv4Address answer = pool.range.host(offset);

  distributions_[cls].add(pool_label(pool));

  dns::Message response = dns::make_response(query);
  response.header.aa = true;
  response.answers.push_back(dns::make_a(q.name, answer, answer_ttl_));
  respond(std::move(response));
}

}  // namespace mecdns::cdn
