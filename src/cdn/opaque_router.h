// Opaque commercial CDN router.
//
// Models the behaviour the paper *measured* in §2 (Figure 3): for a fixed
// CDN domain queried from one geographic location, the set and mix of cache
// servers answering depends on which resolver asked — campus, home-ISP, or
// carrier L-DNS — through load-balancing and cascading-CNAME policies that
// are "opaque to end users and sometimes to the CDN itself" [45]. The
// router owns provider CIDR pools and a per-resolver-class weight table; it
// answers each A query with a host drawn from a pool sampled by those
// weights. This is deliberately a behavioural model, not a mechanism model:
// the paper's point is precisely that the mechanism is not observable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dns/server.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mecdns::cdn {

class OpaqueCdnRouter : public dns::DnsServer {
 public:
  struct Pool {
    std::string provider;  ///< e.g. "Akamai"
    simnet::Cidr range;    ///< e.g. 23.55.124.0/24
  };

  OpaqueCdnRouter(simnet::Network& net, simnet::NodeId node, std::string name,
                  simnet::LatencyModel processing_delay, dns::DnsName domain,
                  std::uint64_t seed,
                  simnet::Ipv4Address addr = simnet::Ipv4Address());

  /// Adds a cache-server pool. Returns its index (weights refer to it).
  std::size_t add_pool(std::string provider, simnet::Cidr range);

  /// Classifies resolvers: queries from inside `subnet` belong to `cls`.
  void add_resolver_class(simnet::Cidr subnet, std::string cls);

  /// Per-class pool weights (same length as the number of pools). The
  /// class "" is the default for unclassified resolvers.
  void set_weights(const std::string& cls, std::vector<double> weights);

  std::uint32_t answer_ttl() const { return answer_ttl_; }
  void set_answer_ttl(std::uint32_t ttl) { answer_ttl_ = ttl; }

  /// Distribution of answers per resolver class: pool label -> count.
  /// Pool label is "<provider> (<cidr>)", matching the paper's legend.
  const util::FrequencyTable& distribution(const std::string& cls) const;

  static std::string pool_label(const Pool& pool) {
    return pool.provider + " (" + pool.range.to_string() + ")";
  }

 protected:
  void handle(const dns::Message& query, const dns::QueryContext& ctx,
              Responder respond) override;

 private:
  std::string classify(simnet::Ipv4Address resolver) const;

  dns::DnsName domain_;
  std::uint32_t answer_ttl_ = 20;
  std::vector<Pool> pools_;
  std::vector<std::pair<simnet::Cidr, std::string>> classes_;
  std::map<std::string, std::vector<double>> weights_;
  std::map<std::string, util::FrequencyTable> distributions_;
  util::Rng rng_;
};

}  // namespace mecdns::cdn
