#include "cdn/cache_server.h"

#include "util/log.h"

namespace mecdns::cdn {

CacheServer::CacheServer(simnet::Network& net, simnet::NodeId node,
                         std::string name, Config config,
                         simnet::Ipv4Address addr)
    : net_(net), name_(std::move(name)), config_(std::move(config)),
      rng_(0x8f1bbcdc ^ (static_cast<std::uint64_t>(node) << 21)) {
  socket_ = net_.open_socket(
      node, kContentPort,
      [this](const simnet::Packet& packet) { on_packet(packet); }, addr);
  // Separate ephemeral socket for parent fetches so parent responses are
  // not confused with client requests.
  parent_socket_ = net_.open_socket(
      node, 0, [this](const simnet::Packet& packet) {
        auto response = decode_response(packet.payload);
        if (!response.ok()) return;
        const auto it = pending_.find(response.value().id);
        if (it == pending_.end()) return;
        PendingFetch fetch = std::move(it->second);
        pending_.erase(it);
        fetch.span.tag("status", std::to_string(response.value().status));
        fetch.span.end();
        // Answer the client under the serve span, not the fetch span.
        simnet::TraceTokenGuard context(fetch.owner);
        if (response.value().status == 200) {
          insert(ContentObject{fetch.request.url,
                               response.value().size_bytes});
          respond(fetch.request, fetch.client, 200,
                  response.value().size_bytes, /*from_cache=*/false);
        } else {
          ++stats_.not_found;
          respond(fetch.request, fetch.client, 404, 0, false);
        }
      });
}

CacheServer::~CacheServer() {
  *alive_ = false;
  net_.close_socket(socket_);
  net_.close_socket(parent_socket_);
}

void CacheServer::warm(const ContentObject& object) { insert(object); }

void CacheServer::wipe() {
  lru_.clear();
  index_.clear();
  used_bytes_ = 0;
}

void CacheServer::on_packet(const simnet::Packet& packet) {
  auto request = decode_request(packet.payload);
  if (!request.ok()) return;
  ++stats_.requests;
  // One span per request, named after this cache; serve() and its respond
  // run under it via the ambient token the scheduled event captures.
  obs::SpanRef span = obs::begin_span(name_, "get " + request.value().url.to_string());
  obs::AmbientSpanGuard ambient(span);
  const simnet::SimTime service =
      config_.service_time.sample(rng_) + extra_service_;
  net_.simulator().schedule_after(
      service, [this, alive = alive_, request = std::move(request.value()),
                client = packet.src] {
        if (!*alive) return;
        serve(request, client);
      });
}

void CacheServer::serve(const ContentRequest& request,
                        const simnet::Endpoint& client) {
  const auto it = index_.find(request.url);
  if (it != index_.end()) {
    ++stats_.hits;
    obs::ambient_span().tag("cache", "hit");
    MECDNS_LOG(kInfo, name_) << "hit for " << request.url.to_string();
    touch(request.url);
    respond(request, client, 200, it->second->size_bytes, true);
    return;
  }
  ++stats_.misses;
  obs::ambient_span().tag("cache", "miss");
  MECDNS_LOG(kInfo, name_) << "miss for " << request.url.to_string();
  if (!config_.parent.has_value()) {
    ++stats_.not_found;
    respond(request, client, 404, 0, false);
    return;
  }
  ++stats_.parent_fetches;
  const std::uint64_t fetch_id = next_fetch_id_++;
  PendingFetch pending{request, client, fetch_id,
                       obs::begin_span(name_, "parent-fetch"),
                       simnet::current_trace_token()};
  obs::AmbientSpanGuard ambient(pending.span);
  pending_.emplace(fetch_id, std::move(pending));
  ContentRequest upstream{fetch_id, request.url};
  parent_socket_->send_to(*config_.parent, encode(upstream));
  net_.simulator().schedule_after(config_.parent_timeout, [this,
                                                           alive = alive_,
                                                           fetch_id] {
    if (!*alive) return;
    const auto pending_it = pending_.find(fetch_id);
    if (pending_it == pending_.end()) return;
    PendingFetch fetch = std::move(pending_it->second);
    pending_.erase(pending_it);
    ++stats_.parent_failures;
    MECDNS_LOG(kWarn, name_) << "parent fetch timed out for "
                             << fetch.request.url.to_string();
    fetch.span.tag("outcome", "timeout");
    fetch.span.end();
    simnet::TraceTokenGuard context(fetch.owner);
    respond(fetch.request, fetch.client, 404, 0, false);
  });
}

void CacheServer::respond(const ContentRequest& request,
                          const simnet::Endpoint& client, std::uint16_t status,
                          std::uint64_t size, bool from_cache) {
  ContentResponse response;
  response.id = request.id;
  response.url = request.url;
  response.status = status;
  response.size_bytes = size;
  response.served_from_cache = from_cache;
  if (status == 200) stats_.bytes_served += size;
  // The response stands in for the whole object: bandwidth-limited links
  // charge its full transfer size.
  socket_->send_to(client, encode(response),
                   static_cast<std::size_t>(size));
  // The ambient span here is this request's serve span (restored by the
  // parent-fetch paths); close it once the reply is on the wire.
  obs::SpanRef span = obs::ambient_span();
  span.tag("status", std::to_string(status));
  span.end();
}

void CacheServer::touch(const Url& url) {
  const auto it = index_.find(url);
  if (it == index_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
  index_[url] = lru_.begin();
}

void CacheServer::insert(const ContentObject& object) {
  if (index_.count(object.url) != 0) {
    touch(object.url);
    return;
  }
  if (object.size_bytes > config_.capacity_bytes) return;  // uncacheable
  while (used_bytes_ + object.size_bytes > config_.capacity_bytes &&
         !lru_.empty()) {
    const ContentObject& victim = lru_.back();
    used_bytes_ -= victim.size_bytes;
    index_.erase(victim.url);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(object);
  index_[object.url] = lru_.begin();
  used_bytes_ += object.size_bytes;
}

OriginServer::OriginServer(simnet::Network& net, simnet::NodeId node,
                           std::string name, ContentCatalog catalog,
                           simnet::LatencyModel service_time,
                           simnet::Ipv4Address addr)
    : net_(net), name_(std::move(name)), catalog_(std::move(catalog)),
      service_time_(std::move(service_time)),
      rng_(0xca62c1d6 ^ (static_cast<std::uint64_t>(node) << 13)) {
  socket_ = net_.open_socket(
      node, kContentPort,
      [this](const simnet::Packet& packet) { on_packet(packet); }, addr);
}

OriginServer::~OriginServer() { net_.close_socket(socket_); }

void OriginServer::on_packet(const simnet::Packet& packet) {
  auto request = decode_request(packet.payload);
  if (!request.ok()) return;
  ++requests_;
  const simnet::SimTime service = service_time_.sample(rng_);
  net_.simulator().schedule_after(
      service, [this, request = std::move(request.value()),
                client = packet.src] {
        const auto object = catalog_.find(request.url);
        ContentResponse response;
        response.id = request.id;
        response.url = request.url;
        if (object.has_value()) {
          response.status = 200;
          response.size_bytes = object->size_bytes;
        } else {
          response.status = 404;
        }
        socket_->send_to(client, encode(response),
                         static_cast<std::size_t>(response.size_bytes));
      });
}

ContentClient::ContentClient(simnet::Network& net, simnet::NodeId node)
    : net_(net) {
  socket_ = net_.open_socket(node, 0, [this](const simnet::Packet& packet) {
    on_packet(packet);
  });
}

ContentClient::~ContentClient() {
  *alive_ = false;
  net_.close_socket(socket_);
}

void ContentClient::get(const simnet::Endpoint& server, const Url& url,
                        Callback callback, simnet::SimTime timeout) {
  const std::uint64_t id = next_id_++;
  const std::uint64_t generation = next_generation_++;
  Pending pending{std::move(callback), net_.now(), generation,
                  obs::begin_span("content", "get " + url.to_string()),
                  simnet::current_trace_token()};
  obs::AmbientSpanGuard ambient(pending.span);
  pending_.emplace(id, std::move(pending));
  socket_->send_to(server, encode(ContentRequest{id, url}));
  net_.simulator().schedule_after(timeout, [this, alive = alive_, id,
                                            generation] {
    if (!*alive) return;
    const auto it = pending_.find(id);
    if (it == pending_.end() || it->second.generation != generation) return;
    Pending pending = std::move(it->second);
    pending_.erase(it);
    pending.span.tag("outcome", "timeout");
    pending.span.end();
    simnet::TraceTokenGuard context(pending.caller);
    pending.callback(util::Err("content fetch timed out"),
                     net_.now() - pending.sent);
  });
}

void ContentClient::on_packet(const simnet::Packet& packet) {
  auto response = decode_response(packet.payload);
  if (!response.ok()) return;
  const auto it = pending_.find(response.value().id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  pending.span.tag("status", std::to_string(response.value().status));
  pending.span.tag("from_cache",
                   response.value().served_from_cache ? "true" : "false");
  pending.span.end();
  simnet::TraceTokenGuard context(pending.caller);
  pending.callback(std::move(response), net_.now() - pending.sent);
}

}  // namespace mecdns::cdn
