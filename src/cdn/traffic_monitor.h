// Traffic Monitor: cache-server health probing.
//
// Apache Traffic Control pairs its Traffic Router with a Traffic Monitor
// that polls every cache and feeds availability into routing decisions.
// TrafficMonitor probes each registered cache over the content protocol at
// a fixed interval; after `down_threshold` consecutive failures the cache
// is reported unhealthy to the router, and after `up_threshold` consecutive
// successes it is restored — so cache failures heal without operator
// action, which is what makes a small MEC cache group dependable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cdn/cache_server.h"
#include "cdn/traffic_router.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace mecdns::cdn {

class TrafficMonitor {
 public:
  struct Config {
    simnet::SimTime probe_interval = simnet::SimTime::seconds(1);
    simnet::SimTime probe_timeout = simnet::SimTime::millis(400);
    int down_threshold = 2;  ///< consecutive failures before marking down
    int up_threshold = 2;    ///< consecutive successes before marking up
    /// Probe rounds to run; 0 = keep probing until stop(). A bounded count
    /// lets Simulator::run() drain; unbounded monitors need run_until().
    std::size_t rounds = 0;
  };

  /// Probes run from `node`; health transitions are pushed to `router`.
  TrafficMonitor(simnet::Network& net, simnet::NodeId node,
                 TrafficRouter& router, Config config);

  /// Registers a cache to watch. `probe_url` should be cheap and always
  /// present (a health object warmed on every cache).
  void watch(const std::string& group, const std::string& cache_name,
             simnet::Endpoint endpoint, Url probe_url);

  /// Starts the periodic probing loop.
  void start();
  /// Stops scheduling further rounds (in-flight probes still complete).
  void stop() { running_ = false; }

  ~TrafficMonitor() { *alive_ = false; }

  bool healthy(const std::string& cache_name) const;
  std::uint64_t transitions() const { return transitions_; }
  std::uint64_t probes_sent() const { return probes_sent_; }

  /// Health transitions become journal events: cache_drain when a cache is
  /// taken out of rotation, cache_readmit when it returns (detail = cache
  /// name).
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

  /// Snapshots probe/transition counters plus a per-cache health gauge
  /// (1 = healthy) into `registry` under `prefix`.
  void export_metrics(obs::Registry& registry,
                      const std::string& prefix = "monitor.") const {
    registry.add(prefix + "probes_sent", probes_sent_);
    registry.add(prefix + "transitions", transitions_);
    for (const auto& watched : watched_) {
      registry.set_gauge(prefix + "healthy." + watched.name,
                         watched.healthy ? 1.0 : 0.0);
    }
  }

 private:
  struct Watched {
    std::string group;
    std::string name;
    simnet::Endpoint endpoint;
    Url probe_url;
    bool healthy = true;
    int failures = 0;
    int successes = 0;
  };

  void probe_all();
  void on_result(std::size_t index, bool success);

  simnet::Network& net_;
  TrafficRouter& router_;
  Config config_;
  std::unique_ptr<ContentClient> client_;
  std::vector<Watched> watched_;
  bool started_ = false;
  bool running_ = false;
  std::size_t rounds_done_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::uint64_t transitions_ = 0;
  std::uint64_t probes_sent_ = 0;
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;
};

}  // namespace mecdns::cdn
