#include "cdn/content.h"

#include <charconv>
#include <stdexcept>

#include "util/strings.h"

namespace mecdns::cdn {

util::Result<Url> Url::parse(std::string_view text) {
  // Strip an optional scheme.
  if (const auto scheme = text.find("://"); scheme != std::string_view::npos) {
    text.remove_prefix(scheme + 3);
  }
  const std::size_t slash = text.find('/');
  const std::string_view host_text =
      slash == std::string_view::npos ? text : text.substr(0, slash);
  auto host = dns::DnsName::parse(host_text);
  if (!host.ok()) return host.error();
  Url url;
  url.host = std::move(host.value());
  url.path = slash == std::string_view::npos ? "/"
                                             : std::string(text.substr(slash));
  return url;
}

Url Url::must_parse(std::string_view text) {
  auto result = parse(text);
  if (!result.ok()) {
    throw std::invalid_argument("invalid URL '" + std::string(text) +
                                "': " + result.error().message);
  }
  return std::move(result).value();
}

void ContentCatalog::add(Url url, std::uint64_t size_bytes) {
  ContentObject object{url, size_bytes};
  const auto [it, inserted] = objects_.emplace(std::move(url), object);
  if (inserted) total_bytes_ += size_bytes;
}

void ContentCatalog::add_series(const dns::DnsName& host,
                                const std::string& prefix, std::size_t count,
                                std::uint64_t size_bytes) {
  for (std::size_t i = 0; i < count; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04zu", i);
    Url url;
    url.host = host;
    url.path = "/" + prefix + buf;
    add(std::move(url), size_bytes);
  }
}

std::optional<ContentObject> ContentCatalog::find(const Url& url) const {
  const auto it = objects_.find(url);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

// The protocol is a single text line; fields are space-separated and the
// URL is last so paths may not contain spaces (enforced by Url::parse via
// DnsName label rules and by construction in catalogs).
std::vector<std::uint8_t> encode(const ContentRequest& request) {
  const std::string line =
      "GET " + std::to_string(request.id) + " " + request.url.to_string();
  return {line.begin(), line.end()};
}

std::vector<std::uint8_t> encode(const ContentResponse& response) {
  const std::string line = "RSP " + std::to_string(response.id) + " " +
                           std::to_string(response.status) + " " +
                           std::to_string(response.size_bytes) + " " +
                           (response.served_from_cache ? "1" : "0") + " " +
                           response.url.to_string();
  return {line.begin(), line.end()};
}

namespace {
util::Result<std::uint64_t> parse_u64(const std::string& text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return util::Err("bad integer: " + text);
  }
  return value;
}
}  // namespace

util::Result<ContentRequest> decode_request(
    const std::vector<std::uint8_t>& payload) {
  const std::string line(payload.begin(), payload.end());
  const auto parts = util::split(line, ' ');
  if (parts.size() != 3 || parts[0] != "GET") {
    return util::Err("malformed content request");
  }
  auto id = parse_u64(parts[1]);
  if (!id.ok()) return id.error();
  auto url = Url::parse(parts[2]);
  if (!url.ok()) return url.error();
  return ContentRequest{id.value(), std::move(url.value())};
}

util::Result<ContentResponse> decode_response(
    const std::vector<std::uint8_t>& payload) {
  const std::string line(payload.begin(), payload.end());
  const auto parts = util::split(line, ' ');
  if (parts.size() != 6 || parts[0] != "RSP") {
    return util::Err("malformed content response");
  }
  auto id = parse_u64(parts[1]);
  if (!id.ok()) return id.error();
  auto status = parse_u64(parts[2]);
  if (!status.ok()) return status.error();
  auto size = parse_u64(parts[3]);
  if (!size.ok()) return size.error();
  auto url = Url::parse(parts[5]);
  if (!url.ok()) return url.error();
  ContentResponse response;
  response.id = id.value();
  response.status = static_cast<std::uint16_t>(status.value());
  response.size_bytes = size.value();
  response.served_from_cache = parts[4] == "1";
  response.url = std::move(url.value());
  return response;
}

}  // namespace mecdns::cdn
