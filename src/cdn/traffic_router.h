// CDN request router (C-DNS), modelled on Apache Traffic Control's Traffic
// Router in DNS-routing mode.
//
// Answers A queries for delivery-service names with the address of a cache
// server chosen by: coverage zone (client subnet -> cache group), geo
// fallback, health, and consistent hashing within the group. When the
// content's delivery service is not deployed at this tier, it emits a
// cascading CNAME into a parent tier's CDN domain — the paper's "C-DNS
// simply returns the address of another C-DNS running at a different CDN
// tier". With ECS enabled it localizes on the client subnet instead of the
// resolver address and reports the answer's scope (RFC 7871).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cdn/consistent_hash.h"
#include "cdn/coverage.h"
#include "cdn/geo.h"
#include "dns/server.h"
#include "obs/journal.h"

namespace mecdns::cdn {

struct CacheInfo {
  std::string name;
  simnet::Ipv4Address address;
  bool healthy = true;
};

/// One delivery service: a content family routed under `domain`.
struct DeliveryService {
  std::string id;
  dns::DnsName domain;  ///< A-queries for this name or below are routed
  std::vector<std::string> cache_groups;  ///< groups allowed to serve it
};

struct RouterStats {
  std::uint64_t routed = 0;
  std::uint64_t referred_to_parent = 0;
  std::uint64_t no_cache_available = 0;
  std::uint64_t coverage_hits = 0;
  std::uint64_t geo_fallbacks = 0;
  std::uint64_t ecs_localized = 0;
  // Bounded-load allocation (only moves when cache_capacity_per_window > 0).
  std::uint64_t bounded_overflows = 0;   ///< primary cache full, walked on
  std::uint64_t capacity_exhausted = 0;  ///< every cache in the group full
  // Allocation churn: how many keys a cache-group membership change moved.
  std::uint64_t topology_changes = 0;
  double last_remap_fraction = 0.0;
  double max_remap_fraction = 0.0;
  double remap_fraction_sum = 0.0;  ///< sum over changes (mean = sum/changes)
};

class TrafficRouter : public dns::DnsServer {
 public:
  struct Config {
    dns::DnsName cdn_domain;   ///< apex this router is authoritative for
    std::uint32_t answer_ttl = 30;  ///< small, like real CDN A records
    bool use_ecs = false;      ///< localize on ECS subnet when present
    /// Extra processing per query when an ECS option must be parsed,
    /// validated and scoped (the small delta the paper measured).
    simnet::SimTime ecs_processing = simnet::SimTime::micros(150);
    /// Parent-tier CDN domain for content not deployed here.
    std::optional<dns::DnsName> parent_domain;
    /// Location of this router's client base, for geo fallback distance.
    std::map<std::string, GeoPoint> group_locations;
    /// Bounded-load consistent hashing: max selections per cache per
    /// accounting window (0 disables; plain consistent hashing). When the
    /// primary cache is full the pick overflows clockwise; when every cache
    /// in the group is full the query takes the no-cache path (parent-tier
    /// referral when configured) — overload degrades to the next tier
    /// instead of melting the local caches.
    std::uint64_t cache_capacity_per_window = 0;
    simnet::SimTime capacity_window = simnet::SimTime::seconds(1);
  };

  TrafficRouter(simnet::Network& net, simnet::NodeId node, std::string name,
                simnet::LatencyModel processing_delay, Config config,
                simnet::Ipv4Address addr = simnet::Ipv4Address());

  // --- topology management (what Traffic Ops feeds the router) -----------
  void add_cache_group(const std::string& group);
  void add_cache(const std::string& group, CacheInfo cache);
  void set_cache_healthy(const std::string& group, const std::string& cache,
                         bool healthy);
  void add_delivery_service(DeliveryService service);
  bool has_delivery_service(const std::string& id) const;
  void remove_delivery_service(const std::string& id);

  CoverageZoneMap& coverage() { return coverage_; }
  GeoIpDatabase& geo() { return geo_; }
  const Config& router_config() const { return config_; }
  void set_use_ecs(bool use) { config_.use_ecs = use; }
  void set_answer_ttl(std::uint32_t ttl) { config_.answer_ttl = ttl; }
  /// Registers a group's location for the geo fallback's distance choice.
  void set_group_location(const std::string& group, GeoPoint location) {
    config_.group_locations[group] = location;
  }
  /// (Re)configures bounded-load allocation and applies the capacity to
  /// every healthy cache already on a ring.
  void set_cache_capacity(std::uint64_t per_window,
                          simnet::SimTime window = simnet::SimTime::seconds(1));

  /// Journals the *edge into* parent-referral mode (first referral after
  /// any locally routed query), not every referred query — referral storms
  /// are per-query traffic, the transition is the control-plane fact.
  void set_journal(obs::Journal* journal, int cell = -1) {
    journal_ = journal;
    journal_cell_ = cell;
  }

  const RouterStats& router_stats() const { return router_stats_; }
  /// Per-cache selection counts (cache name -> queries routed to it).
  const std::map<std::string, std::uint64_t>& selections() const {
    return selections_;
  }

 protected:
  void handle(const dns::Message& query, const dns::QueryContext& ctx,
              Responder respond) override;

 private:
  struct Group {
    std::vector<CacheInfo> caches;
    ConsistentHashRing ring{64};
    // Accounting window the ring's loads belong to; sentinel forces a
    // reset on first use.
    std::uint64_t load_window = UINT64_MAX;
  };

  const DeliveryService* match_service(const dns::DnsName& qname) const;
  std::optional<std::string> choose_group(const DeliveryService& service,
                                          simnet::Ipv4Address client_addr);
  std::optional<CacheInfo> choose_cache(const std::string& group,
                                        const dns::DnsName& qname);
  void rebuild_ring(Group& group);

  Config config_;
  std::map<std::string, Group> groups_;
  std::vector<DeliveryService> services_;
  CoverageZoneMap coverage_;
  GeoIpDatabase geo_;
  RouterStats router_stats_;
  std::map<std::string, std::uint64_t> selections_;
  obs::Journal* journal_ = nullptr;
  int journal_cell_ = -1;
  /// True between the first parent referral and the next locally routed
  /// query; journals the transition only.
  bool referring_ = false;
};

}  // namespace mecdns::cdn
