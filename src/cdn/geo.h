// GeoIP database model with configurable accuracy.
//
// Commercial CDNs localize requests by geo-locating the *resolver's* (or,
// with ECS, the client subnet's) IP address via databases like MaxMind.
// The paper stresses this is done "with limited accuracy" [18] and that
// mobile gateways obscure the true client location. GeoIpDatabase models a
// prefix -> coordinate table whose answers can be wrong with a configured
// probability and noisy within an error radius.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "simnet/ip.h"
#include "util/rng.h"

namespace mecdns::cdn {

/// Planar coordinates in kilometres (a flat map is plenty for a metro/
/// continental simulation).
struct GeoPoint {
  double x_km = 0.0;
  double y_km = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

inline double distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

struct GeoEntry {
  simnet::Cidr prefix;
  GeoPoint location;
  std::string label;
};

/// Error model for GeoIP answers.
struct GeoAccuracy {
  /// Probability a lookup returns a *different* entry's location (models
  /// stale/incorrect database rows).
  double mislocate_probability = 0.0;
  /// Uniform noise radius applied to returned coordinates.
  double noise_radius_km = 0.0;
};

class GeoIpDatabase {
 public:
  explicit GeoIpDatabase(GeoAccuracy accuracy = GeoAccuracy{},
                         std::uint64_t seed = 1)
      : accuracy_(accuracy), rng_(seed) {}

  void add(simnet::Cidr prefix, GeoPoint location, std::string label);

  /// Longest-prefix lookup with the configured error model applied.
  std::optional<GeoPoint> locate(simnet::Ipv4Address addr);

  /// Exact longest-prefix lookup (no error model); for tests/calibration.
  std::optional<GeoEntry> locate_exact(simnet::Ipv4Address addr) const;

  std::size_t size() const { return entries_.size(); }

 private:
  GeoAccuracy accuracy_;
  util::Rng rng_;
  std::vector<GeoEntry> entries_;
};

}  // namespace mecdns::cdn
