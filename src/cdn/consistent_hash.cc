#include "cdn/consistent_hash.h"

namespace mecdns::cdn {

std::uint64_t ConsistentHashRing::hash(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  // FNV-1a alone avalanches poorly for near-identical keys ("cache-1#7" vs
  // "cache-2#7"), which skews ring arcs badly; a murmur3-style finalizer
  // decorrelates the positions.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

void ConsistentHashRing::add(const std::string& member) {
  if (contains(member)) return;
  for (unsigned i = 0; i < vnodes_; ++i) {
    ring_.emplace(position(member + "#" + std::to_string(i)), member);
  }
  members_.emplace(member, Member{});
}

void ConsistentHashRing::remove(const std::string& member) {
  const auto it = members_.find(member);
  if (it == members_.end()) return;
  for (unsigned i = 0; i < vnodes_; ++i) {
    const std::uint64_t pos = position(member + "#" + std::to_string(i));
    const auto [lo, hi] = ring_.equal_range(pos);
    for (auto r = lo; r != hi;) {
      if (r->second == member) {
        r = ring_.erase(r);
      } else {
        ++r;
      }
    }
  }
  members_.erase(it);
}

std::vector<std::string> ConsistentHashRing::members() const {
  std::vector<std::string> out;
  out.reserve(members_.size());
  for (const auto& [name, unused] : members_) out.push_back(name);
  return out;
}

std::optional<std::string> ConsistentHashRing::pick(
    const std::string& key) const {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(position(key));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::string> ConsistentHashRing::pick_n(const std::string& key,
                                                    std::size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  auto it = ring_.lower_bound(position(key));
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < n;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    bool seen = false;
    for (const auto& member : out) {
      if (member == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(it->second);
    ++it;
  }
  return out;
}

void ConsistentHashRing::set_capacity(const std::string& member,
                                      std::uint64_t capacity) {
  const auto it = members_.find(member);
  if (it != members_.end()) it->second.capacity = capacity;
}

std::uint64_t ConsistentHashRing::capacity(const std::string& member) const {
  const auto it = members_.find(member);
  return it == members_.end() ? 0 : it->second.capacity;
}

std::uint64_t ConsistentHashRing::load(const std::string& member) const {
  const auto it = members_.find(member);
  return it == members_.end() ? 0 : it->second.load;
}

void ConsistentHashRing::add_load(const std::string& member,
                                  std::uint64_t units) {
  const auto it = members_.find(member);
  if (it != members_.end()) it->second.load += units;
}

void ConsistentHashRing::reset_loads() {
  for (auto& [name, m] : members_) m.load = 0;
}

std::optional<std::string> ConsistentHashRing::pick_bounded(
    const std::string& key, bool* overflowed) const {
  if (overflowed != nullptr) *overflowed = false;
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(position(key));
  bool first = true;
  // Walk clockwise past full members; each member appears vnodes_ times so
  // the full loop visits everyone before giving up.
  for (std::size_t steps = 0; steps < ring_.size(); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const auto m = members_.find(it->second);
    if (m != members_.end() && has_room(m->second)) {
      if (overflowed != nullptr) *overflowed = !first;
      return it->second;
    }
    first = false;
    ++it;
  }
  return std::nullopt;  // every member at capacity
}

double ConsistentHashRing::remap_fraction(const ConsistentHashRing& before,
                                          const ConsistentHashRing& after,
                                          std::size_t probes) {
  if (probes == 0 || before.empty() || after.empty()) return 0.0;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < probes; ++i) {
    const std::string key = "probe#" + std::to_string(i);
    if (before.pick(key) != after.pick(key)) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(probes);
}

}  // namespace mecdns::cdn
