#include "cdn/consistent_hash.h"

namespace mecdns::cdn {

std::uint64_t ConsistentHashRing::hash(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  // FNV-1a alone avalanches poorly for near-identical keys ("cache-1#7" vs
  // "cache-2#7"), which skews ring arcs badly; a murmur3-style finalizer
  // decorrelates the positions.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

void ConsistentHashRing::add(const std::string& member) {
  if (contains(member)) return;
  for (unsigned i = 0; i < vnodes_; ++i) {
    ring_.emplace(hash(member + "#" + std::to_string(i)), member);
  }
  ++members_;
}

void ConsistentHashRing::remove(const std::string& member) {
  if (!contains(member)) return;
  for (unsigned i = 0; i < vnodes_; ++i) {
    const std::uint64_t position = hash(member + "#" + std::to_string(i));
    const auto [lo, hi] = ring_.equal_range(position);
    for (auto it = lo; it != hi;) {
      if (it->second == member) {
        it = ring_.erase(it);
      } else {
        ++it;
      }
    }
  }
  --members_;
}

bool ConsistentHashRing::contains(const std::string& member) const {
  for (unsigned i = 0; i < vnodes_; ++i) {
    const auto it = ring_.find(hash(member + "#" + std::to_string(i)));
    if (it != ring_.end() && it->second == member) return true;
  }
  return false;
}

std::optional<std::string> ConsistentHashRing::pick(
    const std::string& key) const {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(hash(key));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::string> ConsistentHashRing::pick_n(const std::string& key,
                                                    std::size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  auto it = ring_.lower_bound(hash(key));
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < n;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    bool seen = false;
    for (const auto& member : out) {
      if (member == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(it->second);
    ++it;
  }
  return out;
}

}  // namespace mecdns::cdn
