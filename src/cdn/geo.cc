#include "cdn/geo.h"

namespace mecdns::cdn {

void GeoIpDatabase::add(simnet::Cidr prefix, GeoPoint location,
                        std::string label) {
  entries_.push_back(GeoEntry{prefix, location, std::move(label)});
}

std::optional<GeoEntry> GeoIpDatabase::locate_exact(
    simnet::Ipv4Address addr) const {
  const GeoEntry* best = nullptr;
  for (const auto& entry : entries_) {
    if (!entry.prefix.contains(addr)) continue;
    if (best == nullptr ||
        entry.prefix.prefix_len() > best->prefix.prefix_len()) {
      best = &entry;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<GeoPoint> GeoIpDatabase::locate(simnet::Ipv4Address addr) {
  auto exact = locate_exact(addr);
  if (!exact.has_value()) return std::nullopt;
  GeoPoint point = exact->location;
  if (!entries_.empty() && accuracy_.mislocate_probability > 0.0 &&
      rng_.bernoulli(accuracy_.mislocate_probability)) {
    point = entries_[rng_.uniform_int(entries_.size())].location;
  }
  if (accuracy_.noise_radius_km > 0.0) {
    const double angle = rng_.uniform(0.0, 6.283185307179586);
    const double radius = rng_.uniform(0.0, accuracy_.noise_radius_km);
    point.x_km += radius * std::cos(angle);
    point.y_km += radius * std::sin(angle);
  }
  return point;
}

}  // namespace mecdns::cdn
