// Deterministic fault-injection schedules over the simulated network.
//
// A FaultSchedule is a declarative list of scripted events — node crashes
// and restarts, link outages and flapping, loss-burst windows, and custom
// actions (server brownout, cache wipe) — each pinned to an exact sim
// time. The schedule itself is inert data; a ChaosController arms it onto
// a Simulator. Because events fire at fixed times through the same ordered
// event queue as everything else, and applying them draws no randomness,
// a run with a given schedule and seed is exactly reproducible — and a run
// with an *empty* schedule is bit-identical to a run without the chaos
// layer at all (no extra RNG draws, no event reordering).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "simnet/network.h"
#include "simnet/time.h"

namespace mecdns::chaos {

// --- fault actions ---------------------------------------------------------

/// Crash a node: packets to/through it are dropped (dropped_node_down).
struct NodeDown {
  simnet::NodeId node = simnet::kInvalidNode;
};

/// Restart a crashed node.
struct NodeUp {
  simnet::NodeId node = simnet::kInvalidNode;
};

/// Take a link down: routing recomputes around it; packets in flight on
/// other links are unaffected.
struct LinkDown {
  simnet::LinkId link = 0;
};

/// Bring a link back up.
struct LinkUp {
  simnet::LinkId link = 0;
};

/// Set random per-packet loss on a link (0 restores lossless delivery).
struct LinkLoss {
  simnet::LinkId link = 0;
  double probability = 0.0;
};

/// An arbitrary labelled action bound by a higher layer — e.g. "add 200 ms
/// service latency to this DNS server" (brownout) or "wipe this cache's
/// content store". The label is what metrics/traces record.
struct Custom {
  std::string label;
  std::function<void()> apply;
};

using FaultAction =
    std::variant<NodeDown, NodeUp, LinkDown, LinkUp, LinkLoss, Custom>;

/// Short machine-friendly kind ("node_down", "link_loss", "custom").
std::string kind_of(const FaultAction& action);
/// Human-readable description ("node_down node=3", "custom wipe-cache").
std::string describe(const FaultAction& action);

/// One scripted injection.
struct FaultEvent {
  simnet::SimTime at;
  FaultAction action;
};

// --- the schedule ----------------------------------------------------------

/// An ordered script of fault events. Built fluently:
///
///   FaultSchedule s;
///   s.node_outage(ms(2000), ms(6000), ldns_node)
///    .loss_burst(ms(1000), ms(3000), wan_link, 0.4);
///
/// Events may be appended in any order; the controller arms them at their
/// absolute times and the simulator's queue keeps execution deterministic.
class FaultSchedule {
 public:
  FaultSchedule& at(simnet::SimTime when, FaultAction action);

  // Convenience builders for the common fault shapes.
  FaultSchedule& crash_node(simnet::SimTime when, simnet::NodeId node);
  FaultSchedule& restart_node(simnet::SimTime when, simnet::NodeId node);
  /// Crash at `from`, restart at `to`.
  FaultSchedule& node_outage(simnet::SimTime from, simnet::SimTime to,
                             simnet::NodeId node);
  /// Link down at `from`, up at `to`.
  FaultSchedule& link_outage(simnet::SimTime from, simnet::SimTime to,
                             simnet::LinkId link);
  /// Alternates the link down/up every `period` within [from, to); ends up.
  FaultSchedule& link_flap(simnet::SimTime from, simnet::SimTime to,
                           simnet::SimTime period, simnet::LinkId link);
  /// Loss `probability` on the link during [from, to), lossless after.
  FaultSchedule& loss_burst(simnet::SimTime from, simnet::SimTime to,
                            simnet::LinkId link, double probability);
  FaultSchedule& custom(simnet::SimTime when, std::string label,
                        std::function<void()> apply);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace mecdns::chaos
