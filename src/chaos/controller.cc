#include "chaos/controller.h"

#include <utility>

#include "util/log.h"

namespace mecdns::chaos {

ChaosController::ChaosController(simnet::Network& net, std::string scenario)
    : net_(net), scenario_(std::move(scenario)) {}

ChaosController::~ChaosController() { *alive_ = false; }

void ChaosController::arm(const FaultSchedule& schedule) {
  for (const FaultEvent& event : schedule.events()) {
    // Copying the action into the closure keeps the schedule free to die
    // before the simulation runs; `alive_` guards the reverse order.
    net_.simulator().schedule_at(
        event.at, [this, alive = alive_, action = event.action] {
          if (!*alive) return;
          inject_now(action);
        });
  }
}

void ChaosController::inject_now(const FaultAction& action) {
  const std::string kind = kind_of(action);
  const std::string what = describe(action);
  MECDNS_LOG(kInfo, "chaos")
      << (scenario_.empty() ? "" : "[" + scenario_ + "] ") << "inject "
      << what;
  if (registry_ != nullptr) {
    registry_->add("chaos.injections");
    registry_->add("chaos." + kind);
  }
  if (trace_ != nullptr) {
    // Instant span: injections show up as zero-width markers on a "chaos"
    // track alongside the query tracks.
    obs::SpanRef span = obs::begin_root_span(trace_, "chaos", what);
    if (!scenario_.empty()) span.tag("scenario", scenario_);
    span.end();
  }
  if (timeseries_ != nullptr) timeseries_->annotate(kind, what);
  if (journal_ != nullptr) {
    // Custom actions follow the schedule-builder naming convention: a label
    // ending "-off" or "-heal" undoes an earlier injection.
    const auto label_restores = [](const std::string& label) {
      const auto ends_with = [&label](const char* suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        return label.size() >= n &&
               label.compare(label.size() - n, n, suffix) == 0;
      };
      return ends_with("-off") || ends_with("-heal");
    };
    const bool restores =
        std::holds_alternative<NodeUp>(action) ||
        std::holds_alternative<LinkUp>(action) ||
        (std::holds_alternative<LinkLoss>(action) &&
         std::get<LinkLoss>(action).probability <= 0.0) ||
        (std::holds_alternative<Custom>(action) &&
         label_restores(std::get<Custom>(action).label));
    journal_->record(net_.now(),
                     restores ? obs::JournalKind::kFaultClear
                              : obs::JournalKind::kFaultInject,
                     /*cell=*/-1, what.c_str());
  }
  injections_.push_back(InjectionRecord{net_.now(), kind, what});
  apply(action);
}

void ChaosController::apply(const FaultAction& action) {
  if (const auto* a = std::get_if<NodeDown>(&action)) {
    net_.set_node_up(a->node, false);
  } else if (const auto* a = std::get_if<NodeUp>(&action)) {
    net_.set_node_up(a->node, true);
  } else if (const auto* a = std::get_if<LinkDown>(&action)) {
    net_.set_link_up(a->link, false);
  } else if (const auto* a = std::get_if<LinkUp>(&action)) {
    net_.set_link_up(a->link, true);
  } else if (const auto* a = std::get_if<LinkLoss>(&action)) {
    net_.set_link_loss(a->link, a->probability);
  } else if (const auto* a = std::get_if<Custom>(&action)) {
    if (a->apply) a->apply();
  }
}

}  // namespace mecdns::chaos
