#include "chaos/fault_schedule.h"

#include <sstream>
#include <utility>

namespace mecdns::chaos {

namespace {
struct KindVisitor {
  std::string operator()(const NodeDown&) const { return "node_down"; }
  std::string operator()(const NodeUp&) const { return "node_up"; }
  std::string operator()(const LinkDown&) const { return "link_down"; }
  std::string operator()(const LinkUp&) const { return "link_up"; }
  std::string operator()(const LinkLoss&) const { return "link_loss"; }
  std::string operator()(const Custom&) const { return "custom"; }
};

struct DescribeVisitor {
  std::string operator()(const NodeDown& a) const {
    return "node_down node=" + std::to_string(a.node);
  }
  std::string operator()(const NodeUp& a) const {
    return "node_up node=" + std::to_string(a.node);
  }
  std::string operator()(const LinkDown& a) const {
    return "link_down link=" + std::to_string(a.link);
  }
  std::string operator()(const LinkUp& a) const {
    return "link_up link=" + std::to_string(a.link);
  }
  std::string operator()(const LinkLoss& a) const {
    std::ostringstream out;
    out << "link_loss link=" << a.link << " p=" << a.probability;
    return out.str();
  }
  std::string operator()(const Custom& a) const {
    return "custom " + a.label;
  }
};
}  // namespace

std::string kind_of(const FaultAction& action) {
  return std::visit(KindVisitor{}, action);
}

std::string describe(const FaultAction& action) {
  return std::visit(DescribeVisitor{}, action);
}

FaultSchedule& FaultSchedule::at(simnet::SimTime when, FaultAction action) {
  events_.push_back(FaultEvent{when, std::move(action)});
  return *this;
}

FaultSchedule& FaultSchedule::crash_node(simnet::SimTime when,
                                         simnet::NodeId node) {
  return at(when, NodeDown{node});
}

FaultSchedule& FaultSchedule::restart_node(simnet::SimTime when,
                                           simnet::NodeId node) {
  return at(when, NodeUp{node});
}

FaultSchedule& FaultSchedule::node_outage(simnet::SimTime from,
                                          simnet::SimTime to,
                                          simnet::NodeId node) {
  return crash_node(from, node).restart_node(to, node);
}

FaultSchedule& FaultSchedule::link_outage(simnet::SimTime from,
                                          simnet::SimTime to,
                                          simnet::LinkId link) {
  return at(from, LinkDown{link}).at(to, LinkUp{link});
}

FaultSchedule& FaultSchedule::link_flap(simnet::SimTime from,
                                        simnet::SimTime to,
                                        simnet::SimTime period,
                                        simnet::LinkId link) {
  bool down = true;
  for (simnet::SimTime t = from; t < to; t = t + period) {
    if (down) {
      at(t, LinkDown{link});
    } else {
      at(t, LinkUp{link});
    }
    down = !down;
  }
  return at(to, LinkUp{link});
}

FaultSchedule& FaultSchedule::loss_burst(simnet::SimTime from,
                                         simnet::SimTime to,
                                         simnet::LinkId link,
                                         double probability) {
  return at(from, LinkLoss{link, probability}).at(to, LinkLoss{link, 0.0});
}

FaultSchedule& FaultSchedule::custom(simnet::SimTime when, std::string label,
                                     std::function<void()> apply) {
  return at(when, Custom{std::move(label), std::move(apply)});
}

}  // namespace mecdns::chaos
