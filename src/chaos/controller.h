// ChaosController: arms FaultSchedules onto a simulation and records what
// was injected.
//
// The controller is the execution side of the chaos layer: given a network
// and a schedule it places one simulator event per scripted fault, applies
// the fault through the Network's public failure knobs (or the event's
// bound Custom action), and records every injection into the attached
// obs::Registry (counters per fault kind) and obs::TraceSink (one instant
// span per injection on a "chaos" track), plus the log. With an empty
// schedule arm() is a no-op — nothing is scheduled and no RNG is drawn, so
// the run is bit-identical to one without the chaos layer.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_schedule.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "simnet/network.h"

namespace mecdns::chaos {

/// One applied injection, for post-run inspection (time-to-recover etc.).
struct InjectionRecord {
  simnet::SimTime at;
  std::string kind;
  std::string description;
};

class ChaosController {
 public:
  explicit ChaosController(simnet::Network& net, std::string scenario = "");
  ~ChaosController();

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  /// Counters land under "chaos.<kind>" (and "chaos.injections") in
  /// `registry`; nullptr detaches. The registry must outlive the run.
  void set_metrics(obs::Registry* registry) { registry_ = registry; }

  /// Each injection becomes an instant span (component "chaos") in `sink`.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  /// Each injection becomes a sim-time annotation in `series`, so fault
  /// windows line up with the per-window metrics they perturb.
  void set_timeseries(obs::TimeSeries* series) { timeseries_ = series; }

  /// Each injection becomes a journal event: restorative actions (node_up,
  /// link_up, link_loss at probability 0) record fault_clear, everything
  /// else fault_inject — the seeds incident correlation grows around.
  void set_journal(obs::Journal* journal) { journal_ = journal; }

  /// Schedules every event of `schedule` at its absolute sim time. May be
  /// called multiple times (schedules compose). An empty schedule arms
  /// nothing. Faults scheduled in the past run immediately (simulator
  /// clamping), preserving order.
  void arm(const FaultSchedule& schedule);

  /// Applies one action right now (outside any schedule) and records it.
  void inject_now(const FaultAction& action);

  const std::string& scenario() const { return scenario_; }
  std::size_t injected() const { return injections_.size(); }
  const std::vector<InjectionRecord>& injections() const {
    return injections_;
  }

 private:
  void apply(const FaultAction& action);

  simnet::Network& net_;
  std::string scenario_;
  obs::Registry* registry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::TimeSeries* timeseries_ = nullptr;
  obs::Journal* journal_ = nullptr;
  /// Disarms scheduled fault events if the controller dies before they fire.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<InjectionRecord> injections_;
};

}  // namespace mecdns::chaos
