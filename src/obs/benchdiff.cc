#include "obs/benchdiff.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace mecdns::obs {

namespace {

std::string scenario_key(const util::JsonValue& scenario) {
  std::string key = scenario.get("scenario").as_string();
  if (scenario.has("mode")) key += "/" + scenario.get("mode").as_string();
  return key;
}

const util::JsonValue* find_scenario(const util::JsonValue& scenarios,
                                     const std::string& key) {
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (scenario_key(scenarios.at(i)) == key) return &scenarios.at(i);
  }
  return nullptr;
}

const MetricRule* find_rule(const std::vector<MetricRule>& rules,
                            const std::string& key) {
  for (const MetricRule& rule : rules) {
    if (rule.key == key) return &rule;
  }
  return nullptr;
}

/// Worsening movement in the rule's direction; <= 0 means no worse.
double worsening(const MetricRule& rule, double before, double after) {
  return rule.direction == Direction::kHigherIsWorse ? after - before
                                                     : before - after;
}

bool regressed(const MetricRule& rule, double before, double after) {
  const double delta = worsening(rule, before, after);
  if (delta <= rule.abs) return false;
  const double base = std::fabs(before);
  return base <= 0.0 || delta / base > rule.rel;
}

/// Scalar rendering for provenance members (numbers, strings, bools).
std::string meta_scalar(const util::JsonValue& value) {
  if (value.is_number()) return format_double(value.as_double());
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "true" : "false";
  return "?";
}

/// Provenance changes are context, never verdicts: report each differing
/// (or one-sided) "meta" member as a note.
void diff_meta(const util::JsonValue& baseline,
               const util::JsonValue& candidate, BenchDiff& diff) {
  const bool old_has = baseline.has("meta");
  const bool new_has = candidate.has("meta");
  if (!old_has && !new_has) return;
  static const util::JsonValue kEmpty;
  const util::JsonValue& before = old_has ? baseline.get("meta") : kEmpty;
  const util::JsonValue& after = new_has ? candidate.get("meta") : kEmpty;
  auto note = [&](const std::string& name, const std::string& was,
                  const std::string& now) {
    DiffEntry entry;
    entry.kind = DiffEntry::Kind::kMetaChanged;
    entry.scenario = "meta";
    entry.metric = name + ": " + was + " -> " + now;
    diff.notes.push_back(entry);
  };
  if (before.is_object()) {
    for (const auto& [name, value] : before.members()) {
      if (!after.is_object() || !after.has(name)) {
        note(name, meta_scalar(value), "(gone)");
      } else if (meta_scalar(value) != meta_scalar(after.get(name))) {
        note(name, meta_scalar(value), meta_scalar(after.get(name)));
      }
    }
  }
  if (after.is_object()) {
    for (const auto& [name, value] : after.members()) {
      if (before.is_object() && before.has(name)) continue;
      note(name, "(none)", meta_scalar(value));
    }
  }
}

}  // namespace

std::vector<MetricRule> default_metric_rules(double rel, double abs_ms) {
  const Direction up = Direction::kHigherIsWorse;
  const Direction down = Direction::kLowerIsWorse;
  return {
      // Latency benches (BENCH_fig2/fig5/fault/...): milliseconds.
      {"mean", up, rel, abs_ms},
      {"p50", up, rel, abs_ms},
      {"p99", up, rel, abs_ms},
      {"success_rate", down, rel, 0.0},
      // Throughput bench: per-query hot-path cost and offered load. No
      // absolute slack — these are deterministic, so any drift is real.
      {"qps_sim", down, rel, 0.0},
      {"events_per_query", up, rel, 0.0},
      {"allocs_per_query", up, rel, 0.0},
      {"alloc_bytes_per_query", up, rel, 0.0},
      {"dns_encoded_per_query", up, rel, 0.0},
      {"dns_decoded_per_query", up, rel, 0.0},
      {"wire_bytes_per_query", up, rel, 0.0},
      {"failures", up, rel, 0.0},
      // A couple of extra pending events is noise; a doubling is a leak.
      {"peak_queue_depth", up, rel, 2.0},
      // Incident forensics (BENCH_incidents): detection and recovery
      // times regress upward like latencies. The absolute slack absorbs
      // one SLO-window quantum of wobble.
      {"mttd_ms", up, rel, abs_ms},
      {"mttr_ms", up, rel, abs_ms},
      {"orphan_events", up, rel, 0.0},
      {"journal_dropped", up, rel, 0.0},
  };
}

bool apply_tolerances(std::vector<MetricRule>& rules, const std::string& spec,
                      std::string& error) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      error = "bad tolerance '" + item + "' (want metric=percent)";
      return false;
    }
    const std::string key = item.substr(0, eq);
    char* end = nullptr;
    const double percent = std::strtod(item.c_str() + eq + 1, &end);
    if (end == item.c_str() + eq + 1 || *end != '\0' || percent < 0.0) {
      error = "bad tolerance percent in '" + item + "'";
      return false;
    }
    bool found = false;
    for (MetricRule& rule : rules) {
      if (rule.key == key) {
        rule.rel = percent / 100.0;
        found = true;
      }
    }
    if (!found) {
      rules.push_back(
          {key, Direction::kHigherIsWorse, percent / 100.0, 0.0});
    }
  }
  return true;
}

BenchDiff diff_bench(const util::JsonValue& baseline,
                     const util::JsonValue& candidate,
                     const std::vector<MetricRule>& rules) {
  BenchDiff diff;
  diff_meta(baseline, candidate, diff);
  const util::JsonValue& old_scenarios = baseline.get("scenarios");
  const util::JsonValue& new_scenarios = candidate.get("scenarios");

  for (std::size_t i = 0; i < new_scenarios.size(); ++i) {
    const util::JsonValue& after = new_scenarios.at(i);
    const std::string key = scenario_key(after);
    const util::JsonValue* before = find_scenario(old_scenarios, key);
    if (before == nullptr) {
      diff.notes.push_back({DiffEntry::Kind::kScenarioNew, key, "", 0, 0});
      continue;
    }
    ++diff.scenarios_compared;
    for (const auto& [name, value] : after.members()) {
      if (!value.is_number()) continue;
      if (!before->has(name)) {
        diff.notes.push_back({DiffEntry::Kind::kMetricNew, key, name, 0.0,
                              value.as_double()});
        continue;
      }
      const util::JsonValue& was = before->get(name);
      if (!was.is_number()) continue;
      const MetricRule* rule = find_rule(rules, name);
      if (rule == nullptr) continue;  // unknown key: tolerated, not gated
      ++diff.metrics_compared;
      if (regressed(*rule, was.as_double(), value.as_double())) {
        diff.regressions.push_back({DiffEntry::Kind::kRegression, key, name,
                                    was.as_double(), value.as_double()});
      }
    }
    for (const auto& [name, value] : before->members()) {
      if (!value.is_number() || after.has(name)) continue;
      diff.notes.push_back({DiffEntry::Kind::kMetricMissing, key, name,
                            value.as_double(), 0.0});
    }
  }
  for (std::size_t i = 0; i < old_scenarios.size(); ++i) {
    const std::string key = scenario_key(old_scenarios.at(i));
    if (find_scenario(new_scenarios, key) == nullptr) {
      diff.regressions.push_back(
          {DiffEntry::Kind::kScenarioMissing, key, "", 0, 0});
    }
  }
  return diff;
}

std::string diff_report(const BenchDiff& diff) {
  std::string out;
  char line[256];
  for (const DiffEntry& e : diff.regressions) {
    if (e.kind == DiffEntry::Kind::kScenarioMissing) {
      std::snprintf(line, sizeof(line),
                    "  REGRESSION %-32s scenario disappeared\n",
                    e.scenario.c_str());
    } else {
      const double base = std::fabs(e.before);
      const double pct =
          base > 0.0 ? 100.0 * (e.after - e.before) / base : 0.0;
      std::snprintf(line, sizeof(line),
                    "  REGRESSION %-32s %s: %s -> %s (%+.1f%%)\n",
                    e.scenario.c_str(), e.metric.c_str(),
                    format_double(e.before).c_str(),
                    format_double(e.after).c_str(), pct);
    }
    out += line;
  }
  for (const DiffEntry& e : diff.notes) {
    switch (e.kind) {
      case DiffEntry::Kind::kScenarioNew:
        std::snprintf(line, sizeof(line),
                      "  %-43s new scenario (no baseline)\n",
                      e.scenario.c_str());
        break;
      case DiffEntry::Kind::kMetricNew:
        std::snprintf(line, sizeof(line),
                      "  %-43s new metric %s = %s (no baseline)\n",
                      e.scenario.c_str(), e.metric.c_str(),
                      format_double(e.after).c_str());
        break;
      case DiffEntry::Kind::kMetricMissing:
        std::snprintf(line, sizeof(line),
                      "  %-43s metric %s gone (was %s)\n",
                      e.scenario.c_str(), e.metric.c_str(),
                      format_double(e.before).c_str());
        break;
      case DiffEntry::Kind::kMetaChanged:
        std::snprintf(line, sizeof(line), "  %-43s %s (provenance note)\n",
                      e.scenario.c_str(), e.metric.c_str());
        break;
      default:
        line[0] = '\0';
        break;
    }
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  %zu scenario(s), %zu metric(s) compared, "
                "%zu regression(s)\n",
                diff.scenarios_compared, diff.metrics_compared,
                diff.regressions.size());
  out += line;
  return out;
}

}  // namespace mecdns::obs
