// Metrics registry: counters, gauges and log-linear latency histograms.
//
// A passive, deterministic container components export their counters into
// (and hot paths record latencies into). Unlike util::Histogram, the
// LatencyHistogram here has a *fixed* log-linear bucket layout — every
// instance shares the same bucket edges — which makes histograms from
// different runs, shards or components mergeable with exact associativity
// on counts. That is the property a fleet of MEC sites needs to aggregate
// latency distributions without shipping raw samples.
//
// Dump formats: a human-readable text table and a JSON document (the
// testbed's --metrics-out). Iteration is name-sorted (std::map) so dumps
// are byte-stable across runs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace mecdns::obs {

/// Locale-independent, round-trippable double formatting (std::to_chars
/// shortest form, the %.17g idea without the trailing noise): parsing the
/// result back yields bit-identical doubles, so report diffs never flag
/// formatting noise. Used by every JSON/text emitter in obs/.
std::string format_double(double value);

/// Appends `text` to `out` as a JSON string literal (quoted + escaped).
void append_json_string(std::string& out, const std::string& text);

/// Writes `body` to `path`, returning false on any I/O failure. Benches
/// that serialize artifacts inside parallel campaign jobs use this to
/// defer the actual write to the (single-threaded) merge phase.
bool write_text_file(const std::string& path, const std::string& body);

/// Log-linear histogram over positive values (milliseconds by convention).
/// Buckets: kSubBuckets linear sub-buckets per power of two, spanning
/// 2^kMinExp .. 2^kMaxExp ms (≈1 µs .. ≈17 min), plus underflow/overflow.
class LatencyHistogram {
 public:
  static constexpr int kMinExp = -10;
  static constexpr int kMaxExp = 20;
  static constexpr int kSubBuckets = 8;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void add(double value_ms, std::uint64_t n = 1);
  /// Adds every bucket of `other` into this histogram. Because the layout
  /// is fixed, (a.merge(b)).merge(c) == a.merge(b.merge(c)) exactly on
  /// counts, count, min and max.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Bucket-interpolated percentile, p in [0,100]; clamped to [min,max].
  double percentile(double p) const;

  std::size_t bucket_count() const { return kBuckets; }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  /// Lower/upper value bound of bucket `i` (underflow: [0, lowest edge);
  /// overflow: [highest edge, inf → reported as the edge).
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;

  bool operator==(const LatencyHistogram& other) const;

 private:
  static std::size_t index_for(double value_ms);

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named counters (monotonic uint64), gauges (double, last-write or
/// high-water) and latency histograms.
class Registry {
 public:
  /// Returns the counter, creating it at 0.
  std::uint64_t& counter(const std::string& name);
  void add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter_value(const std::string& name) const;

  double& gauge(const std::string& name);
  void set_gauge(const std::string& name, double value);
  /// Keeps the maximum of the existing and new value (high-water mark).
  void set_gauge_max(const std::string& name, double value);
  double gauge_value(const std::string& name) const;

  LatencyHistogram& histogram(const std::string& name);
  const LatencyHistogram* find_histogram(const std::string& name) const;

  /// Adds counters, max-combines gauges, merges histograms.
  void merge(const Registry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  std::string to_text() const;
  std::string to_json() const;
  bool write_text(const std::string& path) const;
  bool write_json(const std::string& path) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace mecdns::obs
