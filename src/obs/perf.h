// obs/perf — snapshots of the hot-path performance counters, exported
// through the metrics registry.
//
// util::perf::counters() gives every instrumented layer a cheap place to
// count; this header turns those raw counts into observability:
//
//   obs::PerfSnapshot before = obs::PerfSnapshot::take();
//   ... run the measured phase ...
//   const util::perf::Counters delta = before.delta();
//   obs::export_perf(registry, "perf.", delta, queries);
//
// export_perf writes absolute counters (perf.allocs, perf.dns_encoded, ...)
// plus per-query cost gauges (perf.allocs_per_query, ...) so the existing
// time-series/report tooling picks them up with zero extra plumbing.
//
// Allocation counts are only non-zero in binaries that link
// obs/alloc_hooks.cc (an object library — see src/obs/CMakeLists.txt);
// alloc_counting_active() reports whether the hooks are present so reports
// can distinguish "0 allocations" from "not measured".
#pragma once

#include <string>

#include "obs/metrics.h"
#include "util/perfcount.h"

namespace mecdns::obs {

/// True when the global operator new/delete replacements from
/// obs/alloc_hooks.cc are linked into this binary.
bool alloc_counting_active();

/// A copy of the calling thread's counters at a point in time.
class PerfSnapshot {
 public:
  static PerfSnapshot take() { return PerfSnapshot(util::perf::counters()); }

  /// Counter increments on this thread since the snapshot was taken.
  util::perf::Counters delta() const;

 private:
  explicit PerfSnapshot(const util::perf::Counters& at) : at_(at) {}
  util::perf::Counters at_;
};

/// Exports `delta` into `registry` under `prefix`: every counter verbatim,
/// plus *_per_query cost gauges when `queries` > 0. Alloc-derived entries
/// are only written when the counting allocator is linked, so registries
/// from uninstrumented binaries don't report a misleading zero.
void export_perf(Registry& registry, const std::string& prefix,
                 const util::perf::Counters& delta, std::uint64_t queries);

}  // namespace mecdns::obs
