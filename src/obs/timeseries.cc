#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace mecdns::obs {

TimeSeries::Window& TimeSeries::window_for_index(std::int64_t index) {
  // Sim time is monotonic, so the common case is the last window (or a new
  // one past it); merge() is the only caller that lands in the middle.
  if (!windows_.empty() && windows_.back().index == index) {
    return windows_.back();
  }
  Window window;
  window.index = index;
  window.start = simnet::SimTime::nanos(index * window_.count_nanos());
  window.end = window.start + window_;
  if (windows_.empty() || windows_.back().index < index) {
    windows_.push_back(std::move(window));
    return windows_.back();
  }
  const auto it = std::lower_bound(
      windows_.begin(), windows_.end(), index,
      [](const Window& w, std::int64_t i) { return w.index < i; });
  if (it != windows_.end() && it->index == index) return *it;
  return *windows_.insert(it, std::move(window));
}

TimeSeries::Window& TimeSeries::current() {
  const std::int64_t index =
      window_.count_nanos() <= 0
          ? 0
          : now().count_nanos() / window_.count_nanos();
  return window_for_index(index);
}

void TimeSeries::annotate(std::string kind, std::string description) {
  annotations_.push_back(
      Annotation{now(), std::move(kind), std::move(description)});
}

const TimeSeries::Window* TimeSeries::window_at(simnet::SimTime t) const {
  if (window_.count_nanos() <= 0) return nullptr;
  const std::int64_t index = t.count_nanos() / window_.count_nanos();
  const auto it = std::lower_bound(
      windows_.begin(), windows_.end(), index,
      [](const Window& w, std::int64_t i) { return w.index < i; });
  if (it == windows_.end() || it->index != index) return nullptr;
  return &*it;
}

Registry TimeSeries::totals() const {
  Registry out;
  for (const auto& window : windows_) out.merge(window.metrics);
  return out;
}

bool TimeSeries::merge(const TimeSeries& other) {
  if (other.window_ != window_) return false;
  for (const auto& window : other.windows_) {
    window_for_index(window.index).metrics.merge(window.metrics);
  }
  for (const auto& annotation : other.annotations_) {
    annotations_.push_back(annotation);
  }
  std::stable_sort(annotations_.begin(), annotations_.end(),
                   [](const Annotation& a, const Annotation& b) {
                     return a.at < b.at;
                   });
  return true;
}

std::string TimeSeries::to_json() const {
  std::string out = "{\"window_ms\":";
  out += format_double(window_.to_millis());
  out += ",\"windows\":[";
  bool first = true;
  for (const auto& window : windows_) {
    if (!first) out += ',';
    first = false;
    out += "{\"index\":";
    out += std::to_string(window.index);
    out += ",\"start_ms\":";
    out += format_double(window.start.to_millis());
    out += ",\"end_ms\":";
    out += format_double(window.end.to_millis());
    out += ",\"metrics\":";
    out += window.metrics.to_json();
    out += '}';
  }
  out += "],\"annotations\":[";
  first = true;
  for (const auto& annotation : annotations_) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_ms\":";
    out += format_double(annotation.at.to_millis());
    out += ",\"kind\":";
    append_json_string(out, annotation.kind);
    out += ",\"description\":";
    append_json_string(out, annotation.description);
    out += '}';
  }
  out += "]}";
  return out;
}

bool TimeSeries::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mecdns::obs
