#include "obs/slo.h"

#include <algorithm>
#include <utility>

namespace mecdns::obs {

SloSpec mec_latency_slo(std::string histogram, double threshold_ms) {
  SloSpec spec;
  spec.name = "lookup-latency";
  spec.kind = SloSpec::Kind::kLatencyQuantile;
  spec.histogram = std::move(histogram);
  spec.threshold_ms = threshold_ms;
  return spec;
}

SloSpec success_slo(std::string total_counter, std::string bad_counter,
                    double target) {
  SloSpec spec;
  spec.name = "success";
  spec.kind = SloSpec::Kind::kSuccessRatio;
  spec.total_counter = std::move(total_counter);
  spec.bad_counter = std::move(bad_counter);
  spec.target = target;
  return spec;
}

namespace {
/// Good/bad split of a histogram at a latency threshold: a sample is bad
/// when its whole bucket lies above the threshold, and the straddling
/// bucket counts bad too (conservative — a possibly-over sample burns
/// budget).
std::pair<std::uint64_t, std::uint64_t> split_at(
    const LatencyHistogram& hist, double threshold_ms) {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    if (hist.bucket(i) == 0) continue;
    if (hist.bucket_high(i) <= threshold_ms) {
      good += hist.bucket(i);
    } else {
      bad += hist.bucket(i);
    }
  }
  return {good, bad};
}
}  // namespace

SloResult evaluate_slo(const SloSpec& spec, const TimeSeries& series) {
  SloResult result;
  result.spec = spec;
  result.allowed_bad_fraction =
      spec.kind == SloSpec::Kind::kLatencyQuantile
          ? std::max(0.0, 1.0 - spec.quantile / 100.0)
          : std::max(0.0, 1.0 - spec.target);

  for (const auto& window : series.windows()) {
    SloWindow verdict;
    verdict.index = window.index;
    verdict.start = window.start;
    verdict.end = window.end;

    if (spec.kind == SloSpec::Kind::kLatencyQuantile) {
      const LatencyHistogram* hist =
          window.metrics.find_histogram(spec.histogram);
      if (hist == nullptr || hist->count() == 0) continue;  // no data
      const auto [good, bad] = split_at(*hist, spec.threshold_ms);
      verdict.good = good;
      verdict.bad = bad;
      verdict.value = hist->percentile(spec.quantile);
      verdict.ok = verdict.value <= spec.threshold_ms;
    } else {
      const std::uint64_t total =
          window.metrics.counter_value(spec.total_counter);
      if (total == 0) continue;  // no data
      const std::uint64_t bad =
          std::min(total, window.metrics.counter_value(spec.bad_counter));
      verdict.good = total - bad;
      verdict.bad = bad;
      verdict.value =
          static_cast<double>(verdict.good) / static_cast<double>(total);
      verdict.ok = verdict.value >= spec.target;
    }

    const std::uint64_t total = verdict.good + verdict.bad;
    const double bad_fraction =
        total == 0 ? 0.0
                   : static_cast<double>(verdict.bad) /
                         static_cast<double>(total);
    verdict.burn_rate = result.allowed_bad_fraction > 0.0
                            ? bad_fraction / result.allowed_bad_fraction
                            : (verdict.bad > 0 ? -1.0 : 0.0);

    result.good += verdict.good;
    result.bad += verdict.bad;
    result.worst_burn_rate =
        std::max(result.worst_burn_rate, verdict.burn_rate);
    if (!verdict.ok) {
      result.ok = false;
      ++result.windows_violated;
      if (result.first_violation_ms < 0.0) {
        result.first_violation_ms = verdict.start.to_millis();
      }
      result.last_violation_ms = verdict.end.to_millis();
    }
    result.windows.push_back(verdict);
  }

  const double allowed_bad = result.allowed_bad_fraction *
                             static_cast<double>(result.good + result.bad);
  result.budget_consumed =
      allowed_bad > 0.0 ? static_cast<double>(result.bad) / allowed_bad
                        : (result.bad > 0 ? -1.0 : 0.0);
  return result;
}

void export_slo(const SloResult& result, Registry& registry) {
  const std::string prefix = "slo." + result.spec.name + ".";
  registry.add(prefix + "windows", result.windows.size());
  registry.add(prefix + "windows_violated", result.windows_violated);
  registry.add(prefix + "good", result.good);
  registry.add(prefix + "bad", result.bad);
  registry.set_gauge(prefix + "ok", result.ok ? 1.0 : 0.0);
  registry.set_gauge(prefix + "budget_consumed", result.budget_consumed);
  registry.set_gauge(prefix + "worst_burn_rate", result.worst_burn_rate);
}

std::string slo_summary(const SloResult& result) {
  std::string objective;
  if (result.spec.kind == SloSpec::Kind::kLatencyQuantile) {
    objective = "p" + format_double(result.spec.quantile) + "(" +
                result.spec.histogram + ")<=" +
                format_double(result.spec.threshold_ms) + "ms";
  } else {
    objective =
        "success>=" + format_double(100.0 * result.spec.target) + "%";
  }
  std::string out = "slo[" + result.spec.name + ": " + objective + "]: ";
  if (result.ok) {
    out += "OK (" + std::to_string(result.windows.size()) + " windows, " +
           "budget " + format_double(result.budget_consumed) + "x)";
  } else {
    out += "VIOLATED " + std::to_string(result.windows_violated) + "/" +
           std::to_string(result.windows.size()) + " windows, budget " +
           format_double(result.budget_consumed) + "x, burn peak " +
           format_double(result.worst_burn_rate) + "x, violations " +
           format_double(result.first_violation_ms) + ".." +
           format_double(result.last_violation_ms) + " ms";
  }
  return out;
}

}  // namespace mecdns::obs
