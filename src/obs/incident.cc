#include "obs/incident.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mecdns::obs {

namespace {

bool cell_matches(const Incident& incident, std::int16_t cell) {
  if (cell < 0) return true;  // global event joins anything
  if (incident.cells.empty()) return true;  // global-only incident so far
  return std::binary_search(incident.cells.begin(), incident.cells.end(),
                            static_cast<int>(cell));
}

void add_cell(Incident& incident, std::int16_t cell) {
  if (cell < 0) return;
  const int value = static_cast<int>(cell);
  auto it =
      std::lower_bound(incident.cells.begin(), incident.cells.end(), value);
  if (it == incident.cells.end() || *it != value) {
    incident.cells.insert(it, value);
  }
}

void append_event(Incident& incident, const JournalEvent& event) {
  incident.timeline.push_back(event);
  if (incident.timeline.size() == 1) incident.start = event.at;
  incident.end = event.at;
  add_cell(incident, event.cell);
  if (journal_kind_is_action(event.kind)) {
    ++incident.actions;
    ++incident.action_counts[journal_kind_slug(event.kind)];
  }
  if (event.kind == JournalKind::kRetarget) ++incident.retarget_batches;
  switch (event.kind) {
    case JournalKind::kFaultInject:
    case JournalKind::kLoadStart:
    case JournalKind::kSloBreach:
      ++incident.open_causes;
      break;
    case JournalKind::kFaultClear:
    case JournalKind::kLoadEnd:
    case JournalKind::kSloRecover:
      // Floor at zero: a clear can join an incident whose inject opened a
      // different (cell-mismatched) incident.
      if (incident.open_causes > 0) --incident.open_causes;
      break;
    default:
      break;
  }
}

void grade(Incident& incident) {
  // Detection clock starts at the first physical cause; an incident seeded
  // only by a breach (nothing journaled the cause) measures from the
  // breach itself.
  simnet::SimTime detect_from;
  bool have_cause = false;
  for (const JournalEvent& e : incident.timeline) {
    if (e.kind == JournalKind::kFaultInject ||
        e.kind == JournalKind::kLoadStart) {
      detect_from = e.at;
      have_cause = true;
      break;
    }
  }
  if (!have_cause) {
    for (const JournalEvent& e : incident.timeline) {
      if (e.kind == JournalKind::kSloBreach) {
        detect_from = e.at;
        have_cause = true;
        break;
      }
    }
  }
  incident.mttd_ms = -1.0;
  if (have_cause) {
    for (const JournalEvent& e : incident.timeline) {
      if (e.at >= detect_from && journal_kind_is_action(e.kind)) {
        incident.mttd_ms = (e.at - detect_from).to_millis();
        break;
      }
    }
  }

  // Recovery: first breach to the recover event after which no further
  // breach appears in this incident.
  bool breached = false;
  simnet::SimTime first_breach;
  bool recovered = false;
  simnet::SimTime last_recover;
  for (const JournalEvent& e : incident.timeline) {
    if (e.kind == JournalKind::kSloBreach) {
      if (!breached) {
        breached = true;
        first_breach = e.at;
      }
      recovered = false;
    } else if (e.kind == JournalKind::kSloRecover) {
      recovered = true;
      last_recover = e.at;
    }
  }
  if (!breached) {
    incident.mttr_ms = 0.0;
  } else if (recovered) {
    incident.mttr_ms = (last_recover - first_breach).to_millis();
  } else {
    incident.mttr_ms = -1.0;
  }

  // A fault the system absorbed — no SLO breach, no control reaction —
  // needed no detection: MTTD 0, not "undetected". -1 is reserved for the
  // damning case where the objective broke and nothing reacted.
  if (incident.mttd_ms < 0.0 && incident.actions == 0 && !breached) {
    incident.mttd_ms = 0.0;
  }
}

double aggregate_worst(const std::vector<Incident>& incidents,
                       double Incident::* field) {
  double worst = 0.0;
  for (const Incident& incident : incidents) {
    const double value = incident.*field;
    if (value < 0.0) return -1.0;
    worst = std::max(worst, value);
  }
  return worst;
}

}  // namespace

double IncidentReport::mttd_ms() const {
  return aggregate_worst(incidents, &Incident::mttd_ms);
}

double IncidentReport::mttr_ms() const {
  return aggregate_worst(incidents, &Incident::mttr_ms);
}

std::uint64_t IncidentReport::total_actions() const {
  std::uint64_t total = 0;
  for (const Incident& incident : incidents) total += incident.actions;
  return total;
}

std::size_t IncidentReport::cells_affected() const {
  std::vector<int> all;
  for (const Incident& incident : incidents) {
    all.insert(all.end(), incident.cells.begin(), incident.cells.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all.size();
}

void append_slo_journal(const SloResult& result, Journal& journal, int cell) {
  bool in_violation = false;
  simnet::SimTime run_end;
  for (const SloWindow& window : result.windows) {
    if (!window.ok) {
      if (!in_violation) {
        journal.record(window.start, JournalKind::kSloBreach, cell,
                       result.spec.name.c_str(),
                       static_cast<std::uint64_t>(window.index));
        in_violation = true;
      }
      run_end = window.end;
    } else if (in_violation) {
      journal.record(run_end, JournalKind::kSloRecover, cell,
                     result.spec.name.c_str());
      in_violation = false;
    }
  }
  // A violation run still open at the end of the series never recovered:
  // no slo_recover event, so the incident grades MTTR = -1.
}

IncidentReport correlate_incidents(const Journal& journal,
                                   const IncidentConfig& config) {
  IncidentReport report;
  report.journal_recorded = journal.recorded();
  report.journal_dropped = journal.dropped();

  const std::vector<JournalEvent> events = journal.sorted_events();
  for (const JournalEvent& event : events) {
    // Latest open incident that is close enough in time and cell. Walking
    // newest-first keeps a storm of overlapping faults from funneling
    // everything into the oldest incident.
    Incident* open = nullptr;
    for (auto it = report.incidents.rbegin(); it != report.incidents.rend();
         ++it) {
      if (it->open_causes == 0 && event.at - it->end > config.join_gap) {
        continue;
      }
      if (!cell_matches(*it, event.cell)) continue;
      open = &*it;
      break;
    }
    if (open != nullptr) {
      append_event(*open, event);
    } else if (journal_kind_is_seed(event.kind)) {
      Incident incident;
      incident.id = static_cast<int>(report.incidents.size()) + 1;
      append_event(incident, event);
      report.incidents.push_back(std::move(incident));
    } else {
      ++report.orphan_events;
    }
  }
  for (Incident& incident : report.incidents) grade(incident);
  return report;
}

std::string incident_json(const Incident& incident) {
  std::string out = "{\"id\": " + std::to_string(incident.id);
  out += ", \"start_ms\": " + format_double(incident.start.to_millis());
  out += ", \"end_ms\": " + format_double(incident.end.to_millis());
  out += ", \"mttd_ms\": " + format_double(incident.mttd_ms);
  out += ", \"mttr_ms\": " + format_double(incident.mttr_ms);
  out += ", \"actions\": " + std::to_string(incident.actions);
  out += ", \"retarget_batches\": " +
         std::to_string(incident.retarget_batches);
  out += ", \"cells\": [";
  for (std::size_t i = 0; i < incident.cells.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(incident.cells[i]);
  }
  out += "], \"action_counts\": {";
  bool first = true;
  for (const auto& [slug, count] : incident.action_counts) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, slug);
    out += ": " + std::to_string(count);
  }
  out += "}, \"timeline\": [";
  for (std::size_t i = 0; i < incident.timeline.size(); ++i) {
    if (i > 0) out += ", ";
    append_journal_event_json(out, incident.timeline[i]);
  }
  out += "]}";
  return out;
}

std::string incident_report_json(const IncidentReport& report) {
  std::string out;
  out += "\"incidents\": " + std::to_string(report.incidents.size());
  out += ", \"orphan_events\": " + std::to_string(report.orphan_events);
  out += ", \"journal_events\": " + std::to_string(report.journal_recorded);
  out += ", \"journal_dropped\": " + std::to_string(report.journal_dropped);
  out += ", \"mttd_ms\": " + format_double(report.mttd_ms());
  out += ", \"mttr_ms\": " + format_double(report.mttr_ms());
  out += ", \"actions\": " + std::to_string(report.total_actions());
  out += ", \"cells_affected\": " + std::to_string(report.cells_affected());
  out += ", \"detail\": [";
  for (std::size_t i = 0; i < report.incidents.size(); ++i) {
    if (i > 0) out += ", ";
    out += incident_json(report.incidents[i]);
  }
  out += "]";
  return out;
}

}  // namespace mecdns::obs
