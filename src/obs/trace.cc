#include "obs/trace.h"

#include <cstdio>
#include <utility>

namespace mecdns::obs {

const std::string* SpanRecord::tag(const std::string& key) const {
  for (const auto& t : tags) {
    if (t.key == key) return &t.value;
  }
  return nullptr;
}

SpanId TraceSink::begin(SpanId parent, std::string component,
                        std::string name) {
  SpanRecord record;
  record.id = spans_.size() + 1;
  record.parent = parent;
  record.component = std::move(component);
  record.name = std::move(name);
  record.start = now();
  record.end = record.start;
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void TraceSink::end(SpanId id) {
  if (id == 0 || id > spans_.size()) return;
  SpanRecord& record = spans_[id - 1];
  record.end = now();
  record.finished = true;
}

void TraceSink::add_tag(SpanId id, std::string key, std::string value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].tags.push_back(SpanTag{std::move(key), std::move(value)});
}

const SpanRecord* TraceSink::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

std::vector<const SpanRecord*> TraceSink::by_component(
    const std::string& component) const {
  std::vector<const SpanRecord*> out;
  for (const auto& span : spans_) {
    if (span.component == component) out.push_back(&span);
  }
  return out;
}

std::vector<const SpanRecord*> TraceSink::children_of(SpanId parent) const {
  std::vector<const SpanRecord*> out;
  for (const auto& span : spans_) {
    if (span.parent == parent) out.push_back(&span);
  }
  return out;
}

SpanId TraceSink::root_of(SpanId id) const {
  const SpanRecord* span = find(id);
  while (span != nullptr && span->parent != 0) {
    span = find(span->parent);
  }
  return span == nullptr ? 0 : span->id;
}

std::size_t TraceSink::depth(SpanId id) const {
  std::size_t d = 0;
  const SpanRecord* span = find(id);
  while (span != nullptr && span->parent != 0) {
    span = find(span->parent);
    ++d;
  }
  return d;
}

std::size_t TraceSink::max_depth() const {
  std::size_t deepest = 0;
  for (const auto& span : spans_) {
    const std::size_t d = depth(span.id) + 1;
    if (d > deepest) deepest = d;
  }
  return deepest;
}

namespace {
void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_micros(std::string& out, simnet::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t.to_micros());
  out += buf;
}
}  // namespace

std::string TraceSink::to_chrome_trace() const {
  std::string out;
  out.reserve(256 + spans_.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span.component);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(root_of(span.id));
    out += ",\"ts\":";
    append_micros(out, span.start);
    out += ",\"dur\":";
    append_micros(out, span.finished ? span.duration()
                                     : simnet::SimTime::zero());
    out += ",\"args\":{\"span\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    if (!span.finished) out += ",\"unfinished\":true";
    for (const auto& tag : span.tags) {
      out += ',';
      append_json_string(out, tag.key);
      out += ':';
      append_json_string(out, tag.value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool TraceSink::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_trace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

SpanRef ambient_span() {
  const simnet::TraceToken token = simnet::current_trace_token();
  if (!token.active()) return SpanRef{};
  return SpanRef{static_cast<TraceSink*>(token.sink), token.span};
}

SpanRef begin_span(const std::string& component, const std::string& name) {
  const simnet::TraceToken token = simnet::current_trace_token();
  if (!token.active()) return SpanRef{};
  auto* sink = static_cast<TraceSink*>(token.sink);
  return SpanRef{sink, sink->begin(token.span, component, name)};
}

SpanRef begin_root_span(TraceSink* sink, const std::string& component,
                        const std::string& name) {
  if (sink == nullptr) return begin_span(component, name);
  return SpanRef{sink, sink->begin(0, component, name)};
}

}  // namespace mecdns::obs
