#include "obs/trace.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace mecdns::obs {

const std::string* SpanRecord::tag(const std::string& key) const {
  for (const auto& t : tags) {
    if (t.key == key) return &t.value;
  }
  return nullptr;
}

namespace {
/// FNV-1a over an arbitrary byte span.
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}
}  // namespace

bool TraceSink::head_sampled(const std::string& name,
                             std::size_t ordinal) const {
  if (sampling_.head_rate >= 1.0) return true;
  if (sampling_.head_rate <= 0.0) return false;
  std::uint64_t hash = 14695981039346656037ull;
  hash = fnv1a(hash, &sampling_.seed, sizeof(sampling_.seed));
  hash = fnv1a(hash, name.data(), name.size());
  const auto ord = static_cast<std::uint64_t>(ordinal);
  hash = fnv1a(hash, &ord, sizeof(ord));
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(hash >> 11) * (1.0 / 9007199254740992.0);
  return u < sampling_.head_rate;
}

SpanId TraceSink::begin(SpanId parent, std::string component,
                        std::string name) {
  std::size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = spans_.size();
    spans_.emplace_back();
  }
  SpanRecord& record = spans_[slot];
  record = SpanRecord{};
  record.id = next_id_++;
  record.parent = parent;
  record.component = std::move(component);
  record.name = std::move(name);
  record.start = now();
  record.end = record.start;
  if (sampling_enabled_) {
    slot_of_[record.id] = slot;
    if (parent == 0) {
      ++roots_seen_;
      PendingRoot pending;
      pending.head_keep = head_sampled(record.name, roots_seen_);
      pending.subtree.push_back(record.id);
      pending_.emplace(record.id, std::move(pending));
    } else if (const SpanId root = root_of(record.id); root != 0) {
      if (const auto it = pending_.find(root); it != pending_.end()) {
        it->second.subtree.push_back(record.id);
      }
    }
  }
  return record.id;
}

void TraceSink::finish_root(const SpanRecord& root) {
  const auto it = pending_.find(root.id);
  if (it == pending_.end()) return;
  const bool keep = it->second.head_keep || it->second.force_keep ||
                    root.duration() >= sampling_.keep_slower_than;
  if (!keep) {
    for (const SpanId span : it->second.subtree) {
      const auto slot_it = slot_of_.find(span);
      if (slot_it == slot_of_.end()) continue;
      spans_[slot_it->second] = SpanRecord{};  // id == 0 tombstone
      free_.push_back(slot_it->second);
      slot_of_.erase(slot_it);
    }
    ++roots_dropped_;
  }
  pending_.erase(it);
}

void TraceSink::end(SpanId id) {
  SpanRecord* record = find_mutable(id);
  if (record == nullptr) return;
  record->end = now();
  record->finished = true;
  if (sampling_enabled_ && record->parent == 0) finish_root(*record);
}

void TraceSink::add_tag(SpanId id, std::string key, std::string value) {
  SpanRecord* record = find_mutable(id);
  if (record == nullptr) return;
  record->tags.push_back(SpanTag{std::move(key), std::move(value)});
}

void TraceSink::force_keep(SpanId id) {
  if (!sampling_enabled_) return;
  const SpanId root = root_of(id);
  if (const auto it = pending_.find(root); it != pending_.end()) {
    it->second.force_keep = true;
  }
}

std::size_t TraceSink::unfinished() const {
  std::size_t n = 0;
  for (const auto& span : spans_) {
    if (span.id != 0 && !span.finished) ++n;
  }
  return n;
}

void TraceSink::clear() {
  spans_.clear();
  free_.clear();
  slot_of_.clear();
  pending_.clear();
  next_id_ = 1;
  roots_seen_ = 0;
  roots_dropped_ = 0;
}

const SpanRecord* TraceSink::find(SpanId id) const {
  if (id == 0) return nullptr;
  if (sampling_enabled_) {
    const auto it = slot_of_.find(id);
    return it == slot_of_.end() ? nullptr : &spans_[it->second];
  }
  if (id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

SpanRecord* TraceSink::find_mutable(SpanId id) {
  return const_cast<SpanRecord*>(
      static_cast<const TraceSink*>(this)->find(id));
}

std::vector<const SpanRecord*> TraceSink::by_component(
    const std::string& component) const {
  std::vector<const SpanRecord*> out;
  for (const auto& span : spans_) {
    if (span.id != 0 && span.component == component) out.push_back(&span);
  }
  return out;
}

std::vector<const SpanRecord*> TraceSink::children_of(SpanId parent) const {
  std::vector<const SpanRecord*> out;
  for (const auto& span : spans_) {
    if (span.id != 0 && span.parent == parent) out.push_back(&span);
  }
  return out;
}

SpanId TraceSink::root_of(SpanId id) const {
  const SpanRecord* span = find(id);
  while (span != nullptr && span->parent != 0) {
    span = find(span->parent);
  }
  return span == nullptr ? 0 : span->id;
}

std::size_t TraceSink::depth(SpanId id) const {
  std::size_t d = 0;
  const SpanRecord* span = find(id);
  while (span != nullptr && span->parent != 0) {
    span = find(span->parent);
    ++d;
  }
  return d;
}

std::size_t TraceSink::max_depth() const {
  std::size_t deepest = 0;
  for (const auto& span : spans_) {
    if (span.id == 0) continue;
    const std::size_t d = depth(span.id) + 1;
    if (d > deepest) deepest = d;
  }
  return deepest;
}

namespace {
void append_micros(std::string& out, simnet::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t.to_micros());
  out += buf;
}
}  // namespace

std::string TraceSink::to_chrome_trace() const {
  std::string out;
  out.reserve(256 + spans_.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans_) {
    if (span.id == 0) continue;  // reclaimed by sampling
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span.component);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(root_of(span.id));
    out += ",\"ts\":";
    append_micros(out, span.start);
    out += ",\"dur\":";
    append_micros(out, span.finished ? span.duration()
                                     : simnet::SimTime::zero());
    out += ",\"args\":{\"span\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    if (!span.finished) out += ",\"unfinished\":true";
    for (const auto& tag : span.tags) {
      out += ',';
      append_json_string(out, tag.key);
      out += ':';
      append_json_string(out, tag.value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool TraceSink::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_trace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

SpanRef ambient_span() {
  const simnet::TraceToken token = simnet::current_trace_token();
  if (!token.active()) return SpanRef{};
  return SpanRef{static_cast<TraceSink*>(token.sink), token.span};
}

SpanRef begin_span(const std::string& component, const std::string& name) {
  const simnet::TraceToken token = simnet::current_trace_token();
  if (!token.active()) return SpanRef{};
  auto* sink = static_cast<TraceSink*>(token.sink);
  return SpanRef{sink, sink->begin(token.span, component, name)};
}

SpanRef begin_root_span(TraceSink* sink, const std::string& component,
                        const std::string& name) {
  if (sink == nullptr) return begin_span(component, name);
  return SpanRef{sink, sink->begin(0, component, name)};
}

}  // namespace mecdns::obs
