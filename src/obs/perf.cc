#include "obs/perf.h"

namespace mecdns::obs {

namespace detail {
// Set (pre-main) by the dynamic initializer in alloc_hooks.cc. Plain bool:
// written once before any thread exists, read-only afterwards.
bool g_alloc_hooks_linked = false;
}  // namespace detail

bool alloc_counting_active() { return detail::g_alloc_hooks_linked; }

util::perf::Counters PerfSnapshot::delta() const {
  const util::perf::Counters& now = util::perf::counters();
  util::perf::Counters d;
  d.allocs = now.allocs - at_.allocs;
  d.alloc_bytes = now.alloc_bytes - at_.alloc_bytes;
  d.frees = now.frees - at_.frees;
  d.dns_encoded = now.dns_encoded - at_.dns_encoded;
  d.dns_decoded = now.dns_decoded - at_.dns_decoded;
  d.dns_bytes_encoded = now.dns_bytes_encoded - at_.dns_bytes_encoded;
  d.dns_bytes_decoded = now.dns_bytes_decoded - at_.dns_bytes_decoded;
  d.dns_queries_sent = now.dns_queries_sent - at_.dns_queries_sent;
  d.dns_responses_received =
      now.dns_responses_received - at_.dns_responses_received;
  d.dns_queries_served = now.dns_queries_served - at_.dns_queries_served;
  d.cache_lookups = now.cache_lookups - at_.cache_lookups;
  d.events_scheduled = now.events_scheduled - at_.events_scheduled;
  d.events_fired = now.events_fired - at_.events_fired;
  d.pool_refills = now.pool_refills - at_.pool_refills;
  return d;
}

void export_perf(Registry& registry, const std::string& prefix,
                 const util::perf::Counters& delta, std::uint64_t queries) {
  const bool allocs = alloc_counting_active();
  if (allocs) {
    registry.add(prefix + "allocs", delta.allocs);
    registry.add(prefix + "alloc_bytes", delta.alloc_bytes);
    registry.add(prefix + "frees", delta.frees);
  }
  registry.add(prefix + "dns_encoded", delta.dns_encoded);
  registry.add(prefix + "dns_decoded", delta.dns_decoded);
  registry.add(prefix + "dns_bytes_encoded", delta.dns_bytes_encoded);
  registry.add(prefix + "dns_bytes_decoded", delta.dns_bytes_decoded);
  registry.add(prefix + "dns_queries_sent", delta.dns_queries_sent);
  registry.add(prefix + "dns_responses_received",
               delta.dns_responses_received);
  registry.add(prefix + "dns_queries_served", delta.dns_queries_served);
  registry.add(prefix + "cache_lookups", delta.cache_lookups);
  registry.add(prefix + "events_scheduled", delta.events_scheduled);
  registry.add(prefix + "events_fired", delta.events_fired);
  registry.add(prefix + "pool_refills", delta.pool_refills);
  if (queries == 0) return;
  const auto per_query = [&](const std::string& name, std::uint64_t n) {
    registry.set_gauge(prefix + name + "_per_query",
                       static_cast<double>(n) /
                           static_cast<double>(queries));
  };
  if (allocs) {
    per_query("allocs", delta.allocs);
    per_query("alloc_bytes", delta.alloc_bytes);
  }
  per_query("dns_encoded", delta.dns_encoded);
  per_query("dns_decoded", delta.dns_decoded);
  per_query("wire_bytes", delta.dns_bytes_encoded + delta.dns_bytes_decoded);
  per_query("events", delta.events_fired);
}

}  // namespace mecdns::obs
