#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mecdns::obs {

std::string format_double(double value) {
  // Shortest representation that round-trips exactly, independent of the
  // process locale (to_chars never writes a locale decimal separator).
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "0";  // cannot happen for finite doubles
  return std::string(buf, ptr);
}

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {
// Value at the lower edge of log-linear slot `slot` (0-based over the
// non-underflow, non-overflow range).
double edge_value(std::size_t slot) {
  const int octave = LatencyHistogram::kMinExp +
                     static_cast<int>(slot / LatencyHistogram::kSubBuckets);
  const int sub = static_cast<int>(slot % LatencyHistogram::kSubBuckets);
  const double base = std::ldexp(1.0, octave);
  return base * (1.0 + static_cast<double>(sub) /
                           LatencyHistogram::kSubBuckets);
}

constexpr std::size_t kLogLinearSlots =
    static_cast<std::size_t>(LatencyHistogram::kMaxExp -
                             LatencyHistogram::kMinExp) *
    LatencyHistogram::kSubBuckets;
}  // namespace

std::size_t LatencyHistogram::index_for(double value_ms) {
  if (!(value_ms >= std::ldexp(1.0, kMinExp))) return 0;  // underflow / NaN
  if (value_ms >= std::ldexp(1.0, kMaxExp)) return kBuckets - 1;  // overflow
  int exp = 0;
  const double frac = std::frexp(value_ms, &exp);  // frac in [0.5, 1)
  const int octave = exp - 1;  // value in [2^octave, 2^(octave+1))
  // Position within the octave: frac*2 is in [1, 2).
  const int sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);
  const std::size_t slot =
      static_cast<std::size_t>(octave - kMinExp) * kSubBuckets +
      static_cast<std::size_t>(std::min(sub, kSubBuckets - 1));
  return 1 + std::min(slot, kLogLinearSlots - 1);
}

void LatencyHistogram::add(double value_ms, std::uint64_t n) {
  if (n == 0) return;
  counts_[index_for(value_ms)] += n;
  if (count_ == 0) {
    min_ = value_ms;
    max_ = value_ms;
  } else {
    min_ = std::min(min_, value_ms);
    max_ = std::max(max_, value_ms);
  }
  count_ += n;
  sum_ += value_ms * static_cast<double>(n);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::bucket_low(std::size_t i) const {
  if (i == 0) return 0.0;
  if (i == kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  return edge_value(i - 1);
}

double LatencyHistogram::bucket_high(std::size_t i) const {
  if (i == 0) return std::ldexp(1.0, kMinExp);
  if (i == kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  return i < kLogLinearSlots ? edge_value(i) : std::ldexp(1.0, kMaxExp);
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = seen + counts_[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = std::max(bucket_low(i), min_);
      // The overflow bucket is unbounded above; its only honest upper
      // edge is the largest value actually observed.
      const double hi = i == kBuckets - 1 ? max_
                                          : std::min(bucket_high(i), max_);
      const double within =
          (rank - static_cast<double>(seen)) /
          static_cast<double>(counts_[i]);
      return std::clamp(lo + (hi - lo) * std::clamp(within, 0.0, 1.0), min_,
                        max_);
    }
    seen = next;
  }
  return max_;
}

bool LatencyHistogram::operator==(const LatencyHistogram& other) const {
  return counts_ == other.counts_ && count_ == other.count_ &&
         min_ == other.min_ && max_ == other.max_;
}

std::uint64_t& Registry::counter(const std::string& name) {
  return counters_[name];
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double& Registry::gauge(const std::string& name) { return gauges_[name]; }

void Registry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void Registry::set_gauge_max(const std::string& name, double value) {
  auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

double Registry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

LatencyHistogram& Registry::histogram(const std::string& name) {
  return histograms_[name];
}

const LatencyHistogram* Registry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) set_gauge_max(name, value);
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].merge(hist);
  }
}

std::string Registry::to_text() const {
  std::string out;
  if (!counters_.empty()) {
    out += "# counters\n";
    for (const auto& [name, value] : counters_) {
      out += name;
      out += ' ';
      out += std::to_string(value);
      out += '\n';
    }
  }
  if (!gauges_.empty()) {
    out += "# gauges\n";
    for (const auto& [name, value] : gauges_) {
      out += name;
      out += ' ';
      out += format_double(value);
      out += '\n';
    }
  }
  if (!histograms_.empty()) {
    out += "# histograms (ms)\n";
    for (const auto& [name, hist] : histograms_) {
      out += name;
      out += " count=";
      out += std::to_string(hist.count());
      out += " mean=";
      out += format_double(hist.mean());
      out += " min=";
      out += format_double(hist.min());
      out += " p50=";
      out += format_double(hist.percentile(50.0));
      out += " p95=";
      out += format_double(hist.percentile(95.0));
      out += " p99=";
      out += format_double(hist.percentile(99.0));
      out += " max=";
      out += format_double(hist.max());
      out += '\n';
    }
  }
  return out;
}

std::string Registry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += format_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(hist.count());
    out += ",\"mean\":";
    out += format_double(hist.mean());
    out += ",\"min\":";
    out += format_double(hist.min());
    out += ",\"p50\":";
    out += format_double(hist.percentile(50.0));
    out += ",\"p95\":";
    out += format_double(hist.percentile(95.0));
    out += ",\"p99\":";
    out += format_double(hist.percentile(99.0));
    out += ",\"max\":";
    out += format_double(hist.max());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
      if (hist.bucket(i) == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "{\"le\":";
      out += format_double(hist.bucket_high(i));
      out += ",\"n\":";
      out += std::to_string(hist.bucket(i));
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

bool Registry::write_text(const std::string& path) const {
  return write_text_file(path, to_text());
}

bool Registry::write_json(const std::string& path) const {
  return write_text_file(path, to_json());
}

}  // namespace mecdns::obs
