#include "obs/journal.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace mecdns::obs {

namespace {

struct KindSlug {
  JournalKind kind;
  const char* slug;
};

constexpr KindSlug kSlugs[] = {
    {JournalKind::kFaultInject, "fault_inject"},
    {JournalKind::kFaultClear, "fault_clear"},
    {JournalKind::kSloBreach, "slo_breach"},
    {JournalKind::kSloRecover, "slo_recover"},
    {JournalKind::kLoadStart, "load_start"},
    {JournalKind::kLoadEnd, "load_end"},
    {JournalKind::kGuardTrip, "guard_trip"},
    {JournalKind::kGuardRecover, "guard_recover"},
    {JournalKind::kQueueProbeShed, "queue_probe_shed"},
    {JournalKind::kScaleUp, "scale_up"},
    {JournalKind::kScaleDown, "scale_down"},
    {JournalKind::kLdnsFailover, "ldns_failover"},
    {JournalKind::kLdnsRestore, "ldns_restore"},
    {JournalKind::kCacheDrain, "cache_drain"},
    {JournalKind::kCacheReadmit, "cache_readmit"},
    {JournalKind::kParentReferral, "parent_referral"},
    {JournalKind::kRetarget, "retarget"},
    {JournalKind::kStaleServe, "stale_serve"},
};

}  // namespace

const char* journal_kind_slug(JournalKind kind) {
  for (const KindSlug& entry : kSlugs) {
    if (entry.kind == kind) return entry.slug;
  }
  return "unknown";
}

bool journal_kind_from_slug(const std::string& slug, JournalKind& out) {
  for (const KindSlug& entry : kSlugs) {
    if (slug == entry.slug) {
      out = entry.kind;
      return true;
    }
  }
  return false;
}

bool journal_kind_is_seed(JournalKind kind) {
  switch (kind) {
    case JournalKind::kFaultInject:
    case JournalKind::kSloBreach:
    case JournalKind::kLoadStart:
      return true;
    default:
      return false;
  }
}

bool journal_kind_is_action(JournalKind kind) {
  switch (kind) {
    case JournalKind::kGuardTrip:
    case JournalKind::kQueueProbeShed:
    case JournalKind::kScaleUp:
    case JournalKind::kScaleDown:
    case JournalKind::kLdnsFailover:
    case JournalKind::kLdnsRestore:
    case JournalKind::kCacheDrain:
    case JournalKind::kCacheReadmit:
    case JournalKind::kParentReferral:
    case JournalKind::kRetarget:
    case JournalKind::kStaleServe:
      return true;
    default:
      return false;
  }
}

Journal::Journal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void Journal::record(simnet::SimTime at, JournalKind kind, int cell,
                     const char* detail, std::uint64_t a, std::uint64_t b) {
  JournalEvent& slot = ring_[head_];
  slot.at = at;
  slot.seq = seq_++;
  slot.kind = kind;
  slot.cell = static_cast<std::int16_t>(cell);
  slot.a = a;
  slot.b = b;
  // Bounded copy into the fixed buffer; silently truncates long details.
  std::size_t n = 0;
  if (detail != nullptr) {
    while (n + 1 < sizeof(slot.detail) && detail[n] != '\0') {
      slot.detail[n] = detail[n];
      ++n;
    }
  }
  slot.detail[n] = '\0';
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  if (count_ < capacity_) {
    ++count_;
  } else {
    ++dropped_;
  }
}

void Journal::clear() {
  head_ = 0;
  count_ = 0;
  seq_ = 0;
  dropped_ = 0;
}

std::vector<JournalEvent> Journal::sorted_events() const {
  std::vector<JournalEvent> events;
  events.reserve(count_);
  // Oldest surviving entry first: with a full ring head_ points at it.
  const std::size_t start = count_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < count_; ++i) {
    events.push_back(ring_[(start + i) % capacity_]);
  }
  std::sort(events.begin(), events.end(),
            [](const JournalEvent& x, const JournalEvent& y) {
              if (x.at != y.at) return x.at < y.at;
              return x.seq < y.seq;
            });
  return events;
}

void append_journal_event_json(std::string& out, const JournalEvent& event) {
  out += "{\"t_ms\": ";
  out += format_double(event.at.to_millis());
  out += ", \"kind\": ";
  append_json_string(out, journal_kind_slug(event.kind));
  out += ", \"cell\": ";
  out += std::to_string(event.cell);
  out += ", \"a\": ";
  out += std::to_string(event.a);
  out += ", \"b\": ";
  out += std::to_string(event.b);
  out += ", \"detail\": ";
  append_json_string(out, event.detail);
  out += "}";
}

std::string Journal::to_json() const {
  std::string out = "{\n  \"events\": [";
  const std::vector<JournalEvent> events = sorted_events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_journal_event_json(out, events[i]);
  }
  out += events.empty() ? "],\n" : "\n  ],\n";
  out += "  \"recorded\": " + std::to_string(seq_) + ",\n";
  out += "  \"dropped\": " + std::to_string(dropped_) + "\n}\n";
  return out;
}

bool Journal::write_json(const std::string& path) const {
  return write_text_file(path, to_json());
}

}  // namespace mecdns::obs
