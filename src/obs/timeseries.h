// Sim-time-windowed metrics: the time dimension the flat Registry lacks.
//
// A TimeSeries buckets counters, gauges and latency histograms into fixed
// sim-time windows (default 500 ms), so a run's telemetry answers *when*
// questions: did the fault window blow the latency budget, how long did
// the error budget burn, when did recovery complete. Chaos injections (and
// any other point event) attach as annotations carrying their exact sim
// timestamp, so fault markers align with the windows they perturbed.
//
// Windows are stored sparsely in index order and created on first write —
// a quiet series costs nothing. Each window owns a full Registry, so every
// per-window aggregate inherits the registry's exact merge algebra, and
// two series from different runs (or shards) merge window-by-window.
// Export is byte-stable JSON with round-trippable doubles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::obs {

class TimeSeries {
 public:
  struct Window {
    std::int64_t index = 0;  ///< floor(sim_time / window_size)
    simnet::SimTime start;
    simnet::SimTime end;
    Registry metrics;
  };

  /// A point event on the series (chaos injection, phase change).
  struct Annotation {
    simnet::SimTime at;
    std::string kind;
    std::string description;
  };

  /// `sim` provides timestamps and must outlive the series.
  explicit TimeSeries(const simnet::Simulator& sim,
                      simnet::SimTime window = simnet::SimTime::millis(500))
      : sim_(&sim), window_(window) {}

  simnet::SimTime window_size() const { return window_; }
  simnet::SimTime now() const { return sim_->now(); }

  // --- recording (timestamped with the current sim time) -----------------
  void add(const std::string& name, std::uint64_t delta = 1) {
    current().metrics.add(name, delta);
  }
  void set_gauge(const std::string& name, double value) {
    current().metrics.set_gauge(name, value);
  }
  void set_gauge_max(const std::string& name, double value) {
    current().metrics.set_gauge_max(name, value);
  }
  void observe(const std::string& name, double value_ms) {
    current().metrics.histogram(name).add(value_ms);
  }
  void annotate(std::string kind, std::string description);

  // --- inspection --------------------------------------------------------
  const std::vector<Window>& windows() const { return windows_; }
  const std::vector<Annotation>& annotations() const { return annotations_; }
  /// Window holding sim time `t`, or nullptr if nothing was recorded there.
  const Window* window_at(simnet::SimTime t) const;
  bool empty() const { return windows_.empty() && annotations_.empty(); }

  /// Collapses every window into one Registry (whole-run totals).
  Registry totals() const;

  /// Merges `other` window-by-window (indices must align, i.e. both series
  /// use the same window size); annotations are interleaved in time order.
  /// Returns false (and merges nothing) on a window-size mismatch.
  bool merge(const TimeSeries& other);

  /// Byte-stable JSON: {"window_ms":..., "windows":[{"index":...,
  /// "start_ms":..., "end_ms":..., "metrics":{...}}], "annotations":[...]}.
  std::string to_json() const;
  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  Window& current();
  Window& window_for_index(std::int64_t index);

  const simnet::Simulator* sim_;
  simnet::SimTime window_;
  std::vector<Window> windows_;  ///< sorted by index, sparse
  std::vector<Annotation> annotations_;
};

}  // namespace mecdns::obs
