// Incident forensics: correlates journal events into incidents and grades
// each with MTTD/MTTR, action counts and blast radius.
//
// An incident opens on a *seed* event (fault injection, SLO breach, or a
// mobility load event) and accumulates every later event that is close in
// time (within `join_gap` of the incident's last event) and overlapping in
// cell (cell -1 is a wildcard: global events join any incident and any
// event joins a global incident). Non-seed events with no open incident to
// join are counted as orphans — a nonzero orphan count means a control
// fired with no visible cause, which is itself a finding.
//
// Per incident:
//   MTTD  fault (or load start; falling back to the first breach) to the
//         first control action at or after it; -1 when nothing reacted.
//   MTTR  first SLO breach to the final SLO recovery (the recover event
//         after which no further breach joins the incident); 0 when the
//         objective never broke, -1 when it broke and never came back.
//   actions      count + per-kind breakdown of control actions.
//   blast radius distinct non-negative cells touched, and the number of
//                in-flight retarget batches (≈ UE handoffs affected).
//
// The whole pass is deterministic: it consumes the journal's (time, seq)
// order and emits byte-stable JSON, so BENCH_incidents.json inherits the
// campaign runner's any-worker-count byte-identity contract.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/slo.h"
#include "simnet/time.h"

namespace mecdns::obs {

struct IncidentConfig {
  /// Maximum quiet gap between an incident's last event and a new event
  /// that still joins it; a larger gap opens a fresh incident instead.
  /// The gap only applies to *closed* incidents: while an incident has an
  /// open cause (a fault injected but not cleared, a load event still
  /// running, an SLO breach not yet recovered) it stays joinable no matter
  /// how long the system is quiet — a fragile run that does nothing for
  /// the whole fault window must still attribute the eventual clear and
  /// recovery to the fault that caused them.
  simnet::SimTime join_gap = simnet::SimTime::seconds(8);
};

struct Incident {
  int id = 0;  ///< 1-based, in order of opening
  std::vector<JournalEvent> timeline;  ///< (time, seq)-ordered
  simnet::SimTime start;
  simnet::SimTime end;
  double mttd_ms = -1.0;
  double mttr_ms = 0.0;
  std::uint64_t actions = 0;
  std::map<std::string, std::uint64_t> action_counts;  ///< slug -> count
  std::vector<int> cells;  ///< sorted distinct non-negative cells
  std::uint64_t retarget_batches = 0;  ///< ≈ UE handoffs affected
  /// Correlation bookkeeping (not serialized): causes opened minus causes
  /// closed. Nonzero keeps the incident joinable past join_gap.
  int open_causes = 0;
};

struct IncidentReport {
  std::vector<Incident> incidents;
  std::size_t orphan_events = 0;
  std::uint64_t journal_recorded = 0;
  std::uint64_t journal_dropped = 0;

  /// Scenario-level worst-case aggregates: the maximum across incidents
  /// when every incident is finite, -1 as soon as any incident is not
  /// (so "some incident went undetected/unrecovered" survives the merge).
  double mttd_ms() const;
  double mttr_ms() const;
  std::uint64_t total_actions() const;
  std::size_t cells_affected() const;
};

/// Derives SLO breach/recover journal events from a window-level verdict:
/// one slo_breach at the start of each violation run, one slo_recover at
/// the end of the last violated window of the run. Call after the
/// simulation, before correlate_incidents().
void append_slo_journal(const SloResult& result, Journal& journal,
                        int cell = -1);

/// Groups the journal into incidents. Consumes Journal::sorted_events().
IncidentReport correlate_incidents(const Journal& journal,
                                   const IncidentConfig& config = {});

/// JSON object body for one incident (id, spans, mttd/mttr, actions,
/// cells, timeline). Byte-stable.
std::string incident_json(const Incident& incident);

/// JSON fields for a scenario row of BENCH_incidents.json: the aggregate
/// verdict columns plus a "detail" array of per-incident objects. The
/// caller wraps it with its own "scenario"/"mode" members.
std::string incident_report_json(const IncidentReport& report);

}  // namespace mecdns::obs
