#include "obs/analysis.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace mecdns::obs {

std::vector<SpanInfo> snapshot(const TraceSink& sink) {
  std::vector<SpanInfo> out;
  out.reserve(sink.size());
  for (const auto& span : sink.spans()) {
    if (span.id == 0) continue;  // reclaimed by sampling
    SpanInfo info;
    info.id = span.id;
    info.parent = span.parent;
    info.component = span.component;
    info.name = span.name;
    info.start_ms = span.start.to_millis();
    info.dur_ms = span.duration().to_millis();
    info.finished = span.finished;
    out.push_back(std::move(info));
  }
  return out;
}

CriticalPathReport critical_path(const std::vector<SpanInfo>& spans,
                                 std::size_t slowest_n) {
  CriticalPathReport report;

  // Sum of direct children's durations per parent, then self = dur - that.
  std::unordered_map<SpanId, double> child_ms;
  child_ms.reserve(spans.size());
  for (const auto& span : spans) {
    if (!span.finished) continue;
    if (span.parent != 0) child_ms[span.parent] += span.dur_ms;
  }

  std::unordered_map<std::string, std::size_t> stage_index;
  for (const auto& span : spans) {
    if (!span.finished) {
      ++report.unfinished;
      continue;
    }
    const auto [it, inserted] =
        stage_index.try_emplace(span.component, report.stages.size());
    if (inserted) {
      StageStat stat;
      stat.stage = span.component;
      report.stages.push_back(std::move(stat));
    }
    StageStat& stat = report.stages[it->second];
    const auto child_it = child_ms.find(span.id);
    const double children = child_it == child_ms.end() ? 0.0
                                                       : child_it->second;
    // Clamp: overlapping/async children can cover more wall time than the
    // parent; negative self time is attribution noise, not signal.
    const double self = std::max(0.0, span.dur_ms - children);
    ++stat.spans;
    stat.total_self_ms += self;
    stat.total_child_ms += span.dur_ms - self;
    stat.self_ms.add(self);

    if (span.parent == 0) {
      ++report.roots;
      report.total_root_ms += span.dur_ms;
    }
  }

  // Slowest roots, by descending duration then ascending id.
  std::vector<CriticalPathReport::Exemplar> roots;
  for (const auto& span : spans) {
    if (span.parent != 0 || !span.finished) continue;
    roots.push_back(
        CriticalPathReport::Exemplar{span.id, span.name, span.dur_ms});
  }
  std::sort(roots.begin(), roots.end(),
            [](const auto& a, const auto& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.root < b.root;
            });
  if (roots.size() > slowest_n) roots.resize(slowest_n);
  report.slowest = std::move(roots);
  return report;
}

void export_critical_path(const CriticalPathReport& report,
                          Registry& registry) {
  registry.add("critpath.roots", report.roots);
  registry.add("critpath.unfinished", report.unfinished);
  for (const auto& stage : report.stages) {
    registry.add("critpath." + stage.stage + ".spans", stage.spans);
    registry.histogram("critpath." + stage.stage + ".self_ms")
        .merge(stage.self_ms);
  }
}

std::string stage_table(const CriticalPathReport& report) {
  double total_self = 0.0;
  for (const auto& stage : report.stages) total_self += stage.total_self_ms;

  std::vector<const StageStat*> order;
  for (const auto& stage : report.stages) order.push_back(&stage);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->total_self_ms != b->total_self_ms) {
      return a->total_self_ms > b->total_self_ms;
    }
    return a->stage < b->stage;
  });

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-18s %8s %12s %8s %10s %10s %10s\n",
                "stage", "spans", "self(ms)", "share", "mean", "p50", "p99");
  out += line;
  for (const auto* stage : order) {
    const double share =
        total_self > 0.0 ? 100.0 * stage->total_self_ms / total_self : 0.0;
    std::snprintf(line, sizeof(line),
                  "%-18s %8llu %12.3f %7.1f%% %10.3f %10.3f %10.3f\n",
                  stage->stage.c_str(),
                  static_cast<unsigned long long>(stage->spans),
                  stage->total_self_ms, share, stage->self_ms.mean(),
                  stage->self_ms.percentile(50.0),
                  stage->self_ms.percentile(99.0));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%zu roots, %.3f ms total root time, %zu unfinished spans\n",
                report.roots, report.total_root_ms, report.unfinished);
  out += line;
  if (!report.slowest.empty()) {
    out += "slowest roots (trace ids for Perfetto):\n";
    for (const auto& exemplar : report.slowest) {
      std::snprintf(line, sizeof(line), "  #%llu %-48s %10.3f ms\n",
                    static_cast<unsigned long long>(exemplar.root),
                    exemplar.name.c_str(), exemplar.total_ms);
      out += line;
    }
  }
  return out;
}

}  // namespace mecdns::obs
