// Provenance stamps for bench artifacts.
//
// Every BENCH_*.json is a claim about the system at some configuration;
// six months later nobody remembers which seed or build produced it. The
// shared `meta` block records the answer inside the artifact itself:
// schema version, bench name, campaign seed, and build flavor. `workers`
// is deliberately the fixed string "any" — worker count must never leak
// into artifact bytes (the parallel-campaign determinism contract,
// byte-compared in check.sh stages 5-8), so the stamp documents the
// contract instead of a number that would break it.
//
// benchdiff reports meta changes as notes, never regressions: a re-seeded
// baseline is context for a human, not a gate verdict.
#pragma once

#include <cstdint>
#include <string>

namespace mecdns::obs {

/// Bumped when any BENCH_*.json shape changes incompatibly.
inline constexpr int kBenchSchemaVersion = 2;

/// One-line `"meta": {...}` JSON fragment (no trailing separator), e.g.
/// "meta": {"schema": 2, "bench": "fault", "seed": 42,
///          "workers": "any", "build": "release"}
std::string provenance_json(const std::string& bench, std::uint64_t seed);

}  // namespace mecdns::obs
