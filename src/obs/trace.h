// Per-query span tracing for the MEC-CDN resolution path.
//
// The paper's whole argument is a latency *breakdown* — where inside the
// DNS→C-DNS→cache chain each millisecond goes. A TraceSink collects
// sim-time-stamped spans emitted along a request's path: the stub's lookup
// is the root, each transport RPC, DNS-server stage, plugin, C-DNS route
// and cache fetch is a child. Context flows across asynchronous boundaries
// via simnet::TraceToken, which the Simulator captures per scheduled event,
// so components never thread an explicit context parameter.
//
// Zero overhead when disabled: with no sink attached the ambient token is
// null, begin_span() returns an inert SpanRef, and every tag()/end() call
// is a single branch.
//
// The collected trace exports to the Chrome trace-event JSON format, which
// chrome://tracing and https://ui.perfetto.dev load directly: each lookup
// becomes one track (tid = root span id) with nested slices per stage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/context.h"
#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::obs {

using SpanId = std::uint64_t;

struct SpanTag {
  std::string key;
  std::string value;
};

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root
  std::string component;
  std::string name;
  simnet::SimTime start;
  simnet::SimTime end;
  bool finished = false;
  std::vector<SpanTag> tags;

  simnet::SimTime duration() const { return end - start; }
  const std::string* tag(const std::string& key) const;
};

/// Collects the spans of one run. Span ids are 1-based indices into the
/// record vector, so lookups are O(1) and allocation is a vector append.
class TraceSink {
 public:
  /// `sim` provides the timestamps; it must outlive the sink.
  explicit TraceSink(const simnet::Simulator& sim) : sim_(&sim) {}

  SpanId begin(SpanId parent, std::string component, std::string name);
  void end(SpanId id);
  void add_tag(SpanId id, std::string key, std::string value);

  simnet::SimTime now() const { return sim_->now(); }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  const SpanRecord* find(SpanId id) const;

  /// All spans whose component matches (insertion order).
  std::vector<const SpanRecord*> by_component(
      const std::string& component) const;
  std::vector<const SpanRecord*> children_of(SpanId parent) const;
  /// Follows parent links to the root ancestor (a root returns itself).
  SpanId root_of(SpanId id) const;
  /// Nesting depth; a root span has depth 0.
  std::size_t depth(SpanId id) const;
  /// Deepest nesting level in the sink, +1 (i.e. number of span levels).
  std::size_t max_depth() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds,
  /// one track per root span). Loadable in chrome://tracing and Perfetto.
  std::string to_chrome_trace() const;
  /// Writes to_chrome_trace() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  void clear() { spans_.clear(); }

 private:
  const simnet::Simulator* sim_;
  std::vector<SpanRecord> spans_;
};

/// Cheap copyable handle to a span in a sink; inert when default-built.
class SpanRef {
 public:
  SpanRef() = default;
  SpanRef(TraceSink* sink, SpanId id) : sink_(sink), id_(id) {}

  bool active() const { return sink_ != nullptr; }
  TraceSink* sink() const { return sink_; }
  SpanId id() const { return id_; }

  void end() const {
    if (sink_ != nullptr) sink_->end(id_);
  }
  void tag(const std::string& key, const std::string& value) const {
    if (sink_ != nullptr) sink_->add_tag(id_, key, value);
  }

  simnet::TraceToken token() const {
    return simnet::TraceToken{sink_, id_};
  }

 private:
  TraceSink* sink_ = nullptr;
  SpanId id_ = 0;
};

/// The span the current event is running under (inert if untraced).
SpanRef ambient_span();

/// Starts a child of the ambient span. Inert when nothing is ambient —
/// component code calls this unconditionally; the disabled cost is one
/// thread-local read and a null check.
SpanRef begin_span(const std::string& component, const std::string& name);

/// Starts a root span in `sink` (nullptr → falls back to a child of the
/// ambient span, or inert). Entry points (the stub resolver) use this.
SpanRef begin_root_span(TraceSink* sink, const std::string& component,
                        const std::string& name);

/// RAII: makes `span` ambient for the current scope (no-op when inert), so
/// events scheduled inside the scope — packet deliveries, processing
/// delays — inherit it.
class AmbientSpanGuard {
 public:
  explicit AmbientSpanGuard(const SpanRef& span)
      : engaged_(span.active()), saved_(simnet::current_trace_token()) {
    if (engaged_) simnet::set_current_trace_token(span.token());
  }
  ~AmbientSpanGuard() {
    if (engaged_) simnet::set_current_trace_token(saved_);
  }

  AmbientSpanGuard(const AmbientSpanGuard&) = delete;
  AmbientSpanGuard& operator=(const AmbientSpanGuard&) = delete;

 private:
  bool engaged_;
  simnet::TraceToken saved_;
};

}  // namespace mecdns::obs
