// Per-query span tracing for the MEC-CDN resolution path.
//
// The paper's whole argument is a latency *breakdown* — where inside the
// DNS→C-DNS→cache chain each millisecond goes. A TraceSink collects
// sim-time-stamped spans emitted along a request's path: the stub's lookup
// is the root, each transport RPC, DNS-server stage, plugin, C-DNS route
// and cache fetch is a child. Context flows across asynchronous boundaries
// via simnet::TraceToken, which the Simulator captures per scheduled event,
// so components never thread an explicit context parameter.
//
// Zero overhead when disabled: with no sink attached the ambient token is
// null, begin_span() returns an inert SpanRef, and every tag()/end() call
// is a single branch.
//
// The collected trace exports to the Chrome trace-event JSON format, which
// chrome://tracing and https://ui.perfetto.dev load directly: each lookup
// becomes one track (tid = root span id) with nested slices per stage.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/context.h"
#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::obs {

using SpanId = std::uint64_t;

struct SpanTag {
  std::string key;
  std::string value;
};

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root
  std::string component;
  std::string name;
  simnet::SimTime start;
  simnet::SimTime end;
  bool finished = false;
  std::vector<SpanTag> tags;

  simnet::SimTime duration() const { return end - start; }
  const std::string* tag(const std::string& key) const;
};

/// Collects the spans of one run. Span ids are 1-based and monotonically
/// increasing; without sampling they are indices into the record vector, so
/// lookups are O(1) and allocation is a vector append.
///
/// With sampling enabled the sink stays bounded on million-query runs:
/// every root is recorded provisionally, and when it ends the sink keeps it
/// only if (a) it was head-sampled in — a seeded hash of the root's name
/// and ordinal, deterministic across runs — or (b) it ran slower than the
/// tail threshold, or (c) a component forced it kept (failed lookups).
/// Dropped subtrees release their slots for reuse, so memory is
/// proportional to kept + in-flight spans, not to total traffic. At
/// head_rate 1.0 nothing is ever dropped and the recorded spans are
/// byte-identical to an unsampled sink.
class TraceSink {
 public:
  struct SamplingConfig {
    /// Probability a root is head-sampled in; >= 1.0 keeps everything.
    double head_rate = 1.0;
    /// Seed for the head-sampling hash: the same seed selects the same
    /// roots on every run; different seeds select independent subsets.
    std::uint64_t seed = 0;
    /// Tail criterion: roots at least this slow are always kept.
    simnet::SimTime keep_slower_than = simnet::SimTime::millis(20);
  };

  /// `sim` provides the timestamps; it must outlive the sink.
  explicit TraceSink(const simnet::Simulator& sim) : sim_(&sim) {}

  /// Enables sampling. Must be called before the first span is recorded.
  void set_sampling(const SamplingConfig& config) {
    sampling_enabled_ = true;
    sampling_ = config;
  }
  bool sampling_enabled() const { return sampling_enabled_; }

  SpanId begin(SpanId parent, std::string component, std::string name);
  void end(SpanId id);
  void add_tag(SpanId id, std::string key, std::string value);
  /// Tail override: marks `id`'s root as always-keep (failed lookups call
  /// this so errors survive any sampling rate).
  void force_keep(SpanId id);

  simnet::SimTime now() const { return sim_->now(); }

  /// Raw record storage. With sampling enabled, reclaimed slots show up as
  /// tombstones with id == 0 — iterate with a skip, as the accessors below
  /// do.
  const std::vector<SpanRecord>& spans() const { return spans_; }
  /// Number of live (kept or in-flight) spans.
  std::size_t size() const { return spans_.size() - free_.size(); }
  /// Live spans that were never end()ed — a dropped-context bug signal
  /// after a completed run.
  std::size_t unfinished() const;
  std::size_t roots_seen() const { return roots_seen_; }
  std::size_t roots_dropped() const { return roots_dropped_; }
  const SpanRecord* find(SpanId id) const;

  /// All spans whose component matches (insertion order).
  std::vector<const SpanRecord*> by_component(
      const std::string& component) const;
  std::vector<const SpanRecord*> children_of(SpanId parent) const;
  /// Follows parent links to the root ancestor (a root returns itself).
  SpanId root_of(SpanId id) const;
  /// Nesting depth; a root span has depth 0.
  std::size_t depth(SpanId id) const;
  /// Deepest nesting level in the sink, +1 (i.e. number of span levels).
  std::size_t max_depth() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds,
  /// one track per root span). Loadable in chrome://tracing and Perfetto.
  std::string to_chrome_trace() const;
  /// Writes to_chrome_trace() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  void clear();

 private:
  /// One provisionally-recorded root awaiting its keep/drop verdict.
  struct PendingRoot {
    bool head_keep = false;
    bool force_keep = false;
    std::vector<SpanId> subtree;  ///< every span id under this root
  };

  SpanRecord* find_mutable(SpanId id);
  /// Seeded hash decision for root number `ordinal` named `name`.
  bool head_sampled(const std::string& name, std::size_t ordinal) const;
  /// Applies the keep/drop verdict to a finished provisional root.
  void finish_root(const SpanRecord& root);

  const simnet::Simulator* sim_;
  std::vector<SpanRecord> spans_;
  bool sampling_enabled_ = false;
  SamplingConfig sampling_;
  SpanId next_id_ = 1;
  std::vector<std::size_t> free_;                  ///< reclaimed slots
  std::unordered_map<SpanId, std::size_t> slot_of_;  ///< sampling mode only
  std::unordered_map<SpanId, PendingRoot> pending_;
  std::size_t roots_seen_ = 0;
  std::size_t roots_dropped_ = 0;
};

/// Cheap copyable handle to a span in a sink; inert when default-built.
class SpanRef {
 public:
  SpanRef() = default;
  SpanRef(TraceSink* sink, SpanId id) : sink_(sink), id_(id) {}

  bool active() const { return sink_ != nullptr; }
  TraceSink* sink() const { return sink_; }
  SpanId id() const { return id_; }

  void end() const {
    if (sink_ != nullptr) sink_->end(id_);
  }
  void tag(const std::string& key, const std::string& value) const {
    if (sink_ != nullptr) sink_->add_tag(id_, key, value);
  }
  /// Marks this span's root as always-keep under sampling (tail-based
  /// retention for failures); no-op when inert or sampling is off.
  void keep() const {
    if (sink_ != nullptr) sink_->force_keep(id_);
  }

  simnet::TraceToken token() const {
    return simnet::TraceToken{sink_, id_};
  }

 private:
  TraceSink* sink_ = nullptr;
  SpanId id_ = 0;
};

/// The span the current event is running under (inert if untraced).
SpanRef ambient_span();

/// Starts a child of the ambient span. Inert when nothing is ambient —
/// component code calls this unconditionally; the disabled cost is one
/// thread-local read and a null check.
SpanRef begin_span(const std::string& component, const std::string& name);

/// Starts a root span in `sink` (nullptr → falls back to a child of the
/// ambient span, or inert). Entry points (the stub resolver) use this.
SpanRef begin_root_span(TraceSink* sink, const std::string& component,
                        const std::string& name);

/// RAII: makes `span` ambient for the current scope (no-op when inert), so
/// events scheduled inside the scope — packet deliveries, processing
/// delays — inherit it.
class AmbientSpanGuard {
 public:
  explicit AmbientSpanGuard(const SpanRef& span)
      : engaged_(span.active()), saved_(simnet::current_trace_token()) {
    if (engaged_) simnet::set_current_trace_token(span.token());
  }
  ~AmbientSpanGuard() {
    if (engaged_) simnet::set_current_trace_token(saved_);
  }

  AmbientSpanGuard(const AmbientSpanGuard&) = delete;
  AmbientSpanGuard& operator=(const AmbientSpanGuard&) = delete;

 private:
  bool engaged_;
  simnet::TraceToken saved_;
};

}  // namespace mecdns::obs
