#include "obs/provenance.h"

#include "obs/metrics.h"

namespace mecdns::obs {

std::string provenance_json(const std::string& bench, std::uint64_t seed) {
#ifdef NDEBUG
  const char* build = "release";
#else
  const char* build = "debug";
#endif
  std::string out = "\"meta\": {\"schema\": ";
  out += std::to_string(kBenchSchemaVersion);
  out += ", \"bench\": ";
  append_json_string(out, bench);
  out += ", \"seed\": ";
  out += std::to_string(seed);
  out += ", \"workers\": \"any\", \"build\": \"";
  out += build;
  out += "\"}";
  return out;
}

}  // namespace mecdns::obs
