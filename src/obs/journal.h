// Control-plane flight recorder: a bounded, typed, sim-time-stamped event
// journal.
//
// Eight PRs of robustness machinery (chaos injection, ingress-guard
// hysteresis, autoscaling, L-DNS failover, cache drain/re-admit, in-flight
// retargeting, serve-stale) react to faults — but counters only say *how
// often* each control fired, not *in what order* or *how long after the
// fault*. The journal records control-plane **transitions** (never
// per-query traffic) into a ring buffer preallocated at construction:
// record() copies a POD event into the next slot, so steady-state appends
// are allocation-free and safe on the hot path. When the ring overflows it
// keeps the newest events and counts the drop — forensics wants the
// reaction tail, not the quiet prefix.
//
// Events carry an explicit SimTime (components pass their own clock), a
// cell id (-1 = global/single-cell), two kind-specific integer args and a
// short fixed-size detail string. Export sorts by (time, sequence) —
// post-run passes such as SLO breach derivation append out of order — and
// serializes to byte-stable JSON, so journals and everything derived from
// them (obs/incident) stay byte-identical at any --workers count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/time.h"

namespace mecdns::obs {

/// Control-plane event taxonomy. Seeds open incidents, actions are the
/// system's reactions (MTTD = seed -> first action), recoveries close the
/// loop (MTTR = first breach -> final slo_recover).
enum class JournalKind : std::uint8_t {
  // Seeds (chaos/, obs/slo, workload phases).
  kFaultInject,    ///< chaos: node/link taken down or degraded
  kFaultClear,     ///< chaos: fault lifted (node_up / link_up / loss off)
  kSloBreach,      ///< slo: first bad window of a violation run
  kSloRecover,     ///< slo: objective back in budget after a violation run
  kLoadStart,      ///< mobility: churn event (wave/crowd/storm) begins
  kLoadEnd,        ///< mobility: churn event ends
  // Control actions (mec/, cdn/, dns/).
  kGuardTrip,      ///< ingress overload guard starts shedding
  kGuardRecover,   ///< ingress overload guard stops shedding
  kQueueProbeShed, ///< ingress queue probe began rejecting (transition)
  kScaleUp,        ///< autoscaler added a replica
  kScaleDown,      ///< autoscaler retired a replica
  kLdnsFailover,   ///< client switched to fallback resolver
  kLdnsRestore,    ///< client switched back to primary resolver
  kCacheDrain,     ///< traffic monitor took an origin out of rotation
  kCacheReadmit,   ///< traffic monitor re-admitted an origin
  kParentReferral, ///< forwarder referred a miss to the parent tier
  kRetarget,       ///< in-flight queries re-pointed across a handoff
  kStaleServe,     ///< cache served a stale (RFC 8767) answer (transition)
};

/// Stable snake_case slug, used in JSON and report tables.
const char* journal_kind_slug(JournalKind kind);
/// Parses a slug back; returns false on unknown input.
bool journal_kind_from_slug(const std::string& slug, JournalKind& out);

/// True for kinds that open an incident (fault_inject, slo_breach,
/// load_start).
bool journal_kind_is_seed(JournalKind kind);
/// True for control actions — the events MTTD measures to.
bool journal_kind_is_action(JournalKind kind);

/// One journal entry. POD: record() copies it into a preallocated ring
/// slot, no allocation, no pointers out.
struct JournalEvent {
  simnet::SimTime at;
  std::uint64_t seq = 0;  ///< record order, tiebreak for equal timestamps
  JournalKind kind = JournalKind::kFaultInject;
  std::int16_t cell = -1;  ///< site/cell index; -1 = global / single-cell
  std::uint64_t a = 0;     ///< kind-specific (e.g. retarget: moved queries)
  std::uint64_t b = 0;     ///< kind-specific (e.g. retarget: new server)
  char detail[40] = {};    ///< short free text, truncated to fit
};

/// Bounded ring of JournalEvents. All storage is allocated in the
/// constructor; record() never allocates. Overflow keeps the newest
/// `capacity` events and counts what was dropped.
class Journal {
 public:
  explicit Journal(std::size_t capacity = 2048);

  void record(simnet::SimTime at, JournalKind kind, int cell = -1,
              const char* detail = "", std::uint64_t a = 0,
              std::uint64_t b = 0);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return count_; }
  std::uint64_t recorded() const { return seq_; }
  std::uint64_t dropped() const { return dropped_; }
  bool overflowed() const { return dropped_ > 0; }
  void clear();

  /// Events ordered by (at, seq). Post-run passes append with past
  /// timestamps, so the ring order alone is not the causal order.
  std::vector<JournalEvent> sorted_events() const;

  /// Byte-stable JSON: {"events": [...], "recorded": N, "dropped": N}.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  std::vector<JournalEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next slot to write
  std::size_t count_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Appends one event's JSON object (no trailing separator) to `out`.
void append_journal_event_json(std::string& out, const JournalEvent& event);

}  // namespace mecdns::obs
