// Counting allocator: global operator new/delete replacements that bump the
// thread-local perf counters, making allocs/query and bytes/query measurable
// in any binary that links this translation unit.
//
// This file is built as an OBJECT library (mecdns_alloc_hooks) and linked
// only into binaries that opt in (bench_throughput, the perf tests): object
// files are always pulled into the link, so the replacements reliably take
// effect there, while every other binary keeps the toolchain allocator
// untouched. obs::alloc_counting_active() tells instrumented code which
// world it is in.
//
// The hooks forward to std::malloc/std::free, so AddressSanitizer (which
// intercepts malloc) still tracks every block in sanitizer builds. Nothing
// here allocates, locks or recurses: one thread_local access and two adds
// per call.
#include <cstdlib>
#include <new>

#include "util/perfcount.h"

namespace mecdns::obs::detail {
extern bool g_alloc_hooks_linked;  // defined in perf.cc
namespace {
const bool g_registered = [] {
  g_alloc_hooks_linked = true;
  return true;
}();
}  // namespace
}  // namespace mecdns::obs::detail

namespace {

inline void count_alloc(std::size_t size) {
  auto& c = mecdns::util::perf::counters();
  ++c.allocs;
  c.alloc_bytes += size;
}

inline void count_free() { ++mecdns::util::perf::counters().frees; }

void* alloc_or_throw(std::size_t size) {
  for (;;) {
    void* p = std::malloc(size == 0 ? 1 : size);
    if (p != nullptr) {
      count_alloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* alloc_or_null(std::size_t size) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) count_alloc(size);
  return p;
}

void* alloc_aligned_or_throw(std::size_t size, std::align_val_t alignment) {
  const auto align = static_cast<std::size_t>(alignment);
  for (;;) {
    void* p = nullptr;
    // posix_memalign requires alignment to be a power-of-two multiple of
    // sizeof(void*); operator new alignments always are on this platform.
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size == 0 ? 1 : size) == 0) {
      count_alloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void free_counted(void* p) noexcept {
  if (p == nullptr) return;
  count_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return alloc_or_throw(size); }
void* operator new[](std::size_t size) { return alloc_or_throw(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_or_null(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return alloc_or_null(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return alloc_aligned_or_throw(size, alignment);
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return alloc_aligned_or_throw(size, alignment);
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  try {
    return alloc_aligned_or_throw(size, alignment);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  try {
    return alloc_aligned_or_throw(size, alignment);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { free_counted(p); }
void operator delete[](void* p) noexcept { free_counted(p); }
void operator delete(void* p, std::size_t) noexcept { free_counted(p); }
void operator delete[](void* p, std::size_t) noexcept { free_counted(p); }
void operator delete(void* p, std::align_val_t) noexcept { free_counted(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  free_counted(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  free_counted(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  free_counted(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  free_counted(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  free_counted(p);
}
