// Bench-artifact regression diffing: the engine behind
// `mecdns_report --diff`.
//
// Compares two BENCH_*.json documents (objects with a "scenarios" array)
// scenario by scenario against a rule table. Each rule names one metric
// key, its regression direction (latency and per-query cost regress
// upward, success rate and offered load regress downward) and a pair of
// thresholds: a metric must move past BOTH the absolute slack and the
// relative fraction before it counts as a regression, so tiny absolute
// wobbles on tiny baselines don't trip the gate.
//
// Forward compatibility is deliberate: keys present in only one side are
// *reported* (as new/missing notes), never errors and never regressions —
// an old report binary must keep working when a newer bench adds columns,
// and a baseline from an uninstrumented binary (no allocs_per_query) must
// not fail against an instrumented candidate. Only the disappearance of a
// whole scenario gates, because that usually means the bench lost coverage.
//
// Lives in obs/ (not the report tool) so tests can drive the verdict logic
// directly with synthetic documents.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/json.h"

namespace mecdns::obs {

enum class Direction {
  kHigherIsWorse,  ///< latency, per-query cost, queue depth, failures
  kLowerIsWorse,   ///< success rate, offered load
};

struct MetricRule {
  std::string key;
  Direction direction = Direction::kHigherIsWorse;
  double rel = 0.05;  ///< relative threshold (fraction of the baseline)
  double abs = 0.0;   ///< absolute slack, in the metric's own unit
};

/// The built-in rule table, covering both the latency benches (mean/p50/p99
/// in ms, success_rate) and the throughput bench (per-query cost gauges,
/// qps_sim, peak_queue_depth, failures). `rel` and `abs_ms` seed the
/// latency rules exactly like the pre-existing --rel/--abs-ms flags;
/// throughput cost metrics default to `rel` with zero absolute slack.
std::vector<MetricRule> default_metric_rules(double rel, double abs_ms);

/// Applies a "metric=percent[,metric=percent]" override spec (e.g.
/// "p99=10,allocs_per_query=2" for 10% and 2%) to `rules`, adjusting the
/// relative threshold of existing rules or appending a higher-is-worse rule
/// for metrics the table doesn't know. Returns false with `error` set on a
/// malformed spec.
bool apply_tolerances(std::vector<MetricRule>& rules, const std::string& spec,
                      std::string& error);

struct DiffEntry {
  enum class Kind {
    kRegression,       ///< metric moved past both thresholds
    kScenarioMissing,  ///< baseline scenario absent from candidate (gates)
    kScenarioNew,      ///< candidate scenario with no baseline (note)
    kMetricNew,        ///< candidate key absent from baseline (note)
    kMetricMissing,    ///< baseline key absent from candidate (note)
    kMetaChanged,      ///< top-level "meta" provenance member differs (note)
  };
  Kind kind = Kind::kRegression;
  std::string scenario;
  std::string metric;  ///< empty for scenario-level entries
  double before = 0.0;
  double after = 0.0;
};

struct BenchDiff {
  std::size_t scenarios_compared = 0;
  std::size_t metrics_compared = 0;
  std::vector<DiffEntry> regressions;  ///< nonempty -> the gate trips
  std::vector<DiffEntry> notes;        ///< informational only
  bool clean() const { return regressions.empty(); }
};

/// Diffs candidate against baseline. Both must be objects with a
/// "scenarios" array of objects; scenarios match on "scenario" (suffixed
/// with "/mode" when present). Non-numeric members are ignored.
BenchDiff diff_bench(const util::JsonValue& baseline,
                     const util::JsonValue& candidate,
                     const std::vector<MetricRule>& rules);

/// Human-readable rendering: one line per entry plus a summary line.
std::string diff_report(const BenchDiff& diff);

}  // namespace mecdns::obs
