// Declarative SLOs evaluated over a TimeSeries: per-window verdicts,
// error-budget accounting, and burn rates.
//
// The paper's argument hinges on a hard budget — MEC applications need
// sub-20 ms lookups — so "did this run meet the budget" should be a
// machine verdict, not an eyeballed histogram. An SloSpec names a latency
// quantile objective (p99 lookup <= 20 ms) or a success-ratio objective
// (>= 99% of fetches succeed); evaluate_slo() walks the series window by
// window and reports, per window, the measured value, the good/bad event
// split, and the burn rate (bad fraction divided by the allowed bad
// fraction — burn rate 1.0 consumes budget exactly as fast as the
// objective allows, the SRE convention). Whole-run aggregates say whether
// the budget survived and exactly when it was burning: under an injected
// fault the violation interval must line up with the chaos annotations on
// the same series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace mecdns::obs {

struct SloSpec {
  enum class Kind {
    kLatencyQuantile,  ///< quantile(histogram) <= threshold_ms per window
    kSuccessRatio,     ///< 1 - bad/total >= target per window
  };

  std::string name;  ///< registry/export key, e.g. "lookup-latency"
  Kind kind = Kind::kLatencyQuantile;

  // kLatencyQuantile: source histogram and objective. A sample counts
  // "bad" when its bucket lies above the threshold (conservative on the
  // straddling bucket).
  std::string histogram = "runner.lookup_ms";
  double quantile = 99.0;
  double threshold_ms = 20.0;  ///< the paper's MEC budget

  // kSuccessRatio: counter pair; good = total - bad.
  std::string total_counter = "runner.queries";
  std::string bad_counter = "runner.failures";
  double target = 0.99;  ///< required good fraction
};

/// The paper's MEC budget: p99 of `histogram` at or under 20 ms.
SloSpec mec_latency_slo(std::string histogram = "runner.lookup_ms",
                        double threshold_ms = 20.0);
/// Lookup/fetch success ratio objective.
SloSpec success_slo(std::string total_counter, std::string bad_counter,
                    double target = 0.99);

struct SloWindow {
  std::int64_t index = 0;
  simnet::SimTime start;
  simnet::SimTime end;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  double value = 0.0;      ///< measured quantile (ms) or good ratio
  bool ok = true;          ///< objective held in this window
  double burn_rate = 0.0;  ///< bad fraction / allowed bad fraction
};

struct SloResult {
  SloSpec spec;
  std::vector<SloWindow> windows;  ///< windows with data, in time order
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  bool ok = true;  ///< every window met the objective
  std::size_t windows_violated = 0;
  double allowed_bad_fraction = 0.0;
  /// Whole-run bad events over allowed bad events; > 1 = budget exhausted.
  double budget_consumed = 0.0;
  double worst_burn_rate = 0.0;
  /// Start of the first / end of the last violated window (ms); -1 = none.
  double first_violation_ms = -1.0;
  double last_violation_ms = -1.0;
};

/// Evaluates `spec` over every window of `series` that has data for it.
SloResult evaluate_slo(const SloSpec& spec, const TimeSeries& series);

/// Exports the verdict into `registry` under "slo.<name>.*": counters
/// windows / windows_violated / good / bad, gauges ok (0|1),
/// budget_consumed, worst_burn_rate.
void export_slo(const SloResult& result, Registry& registry);

/// One-line human verdict, e.g.
/// "slo[fetch-success>=99%]: VIOLATED 12/45 windows, budget 25.45x, ...".
std::string slo_summary(const SloResult& result);

}  // namespace mecdns::obs
