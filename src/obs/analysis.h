// Critical-path analysis over a collected trace: which stage ate the
// budget.
//
// A span's *self time* is its duration minus the time covered by its
// direct children — the milliseconds that stage itself is responsible for,
// as opposed to merely waiting on a callee. Summed per component across
// every root lookup, self times turn a pile of Chrome-trace slices into
// the paper's stage breakdown: wireless vs L-DNS serve vs C-DNS route vs
// cache, with a mergeable LatencyHistogram per stage so breakdowns from
// different runs or shards combine exactly.
//
// The analysis consumes a flat SpanInfo list rather than a live TraceSink,
// so the same code serves both an in-process sink (snapshot()) and a trace
// file read back by mecdns_report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mecdns::obs {

/// One span, decoupled from sink storage. Times in milliseconds.
struct SpanInfo {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root
  std::string component;
  std::string name;
  double start_ms = 0.0;
  double dur_ms = 0.0;
  bool finished = true;
};

/// Flattens a sink's live spans (sampling tombstones skipped).
std::vector<SpanInfo> snapshot(const TraceSink& sink);

/// Per-stage aggregate across every root. Stage key = span component.
struct StageStat {
  std::string stage;
  std::uint64_t spans = 0;
  double total_self_ms = 0.0;
  double total_child_ms = 0.0;  ///< time attributed to callees instead
  LatencyHistogram self_ms;     ///< per-span self time, mergeable
};

struct CriticalPathReport {
  /// Stages in first-appearance order (deterministic for a given trace).
  std::vector<StageStat> stages;
  std::size_t roots = 0;
  std::size_t unfinished = 0;  ///< dropped-context bug signal when > 0
  double total_root_ms = 0.0;  ///< summed root durations

  struct Exemplar {
    SpanId root = 0;
    std::string name;
    double total_ms = 0.0;
  };
  /// Slowest roots, descending duration (ties by id), capped at slowest_n —
  /// the trace ids to open in Perfetto when a percentile looks wrong.
  std::vector<Exemplar> slowest;
};

/// Computes self/child attribution per stage plus slowest-N exemplars.
/// Unfinished spans are counted but excluded from the timing aggregates.
CriticalPathReport critical_path(const std::vector<SpanInfo>& spans,
                                 std::size_t slowest_n = 5);

/// Exports the breakdown into `registry`: "critpath.<stage>.self_ms"
/// histograms, "critpath.<stage>.spans" counters, "critpath.roots" and
/// "critpath.unfinished".
void export_critical_path(const CriticalPathReport& report,
                          Registry& registry);

/// Human-readable stage table (share of total self time, descending).
std::string stage_table(const CriticalPathReport& report);

}  // namespace mecdns::obs
