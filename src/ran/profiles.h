// Access-technology delay profiles.
//
// Calibrated to the paper's measurements: the LTE air interface contributes
// ~10 ms one-way with a heavy tail ("a dominant component of the MEC L-DNS
// time is the wireless LTE latency (approx. 10 ms one way)"), Wi-Fi adds a
// few jittery milliseconds, wired campus links are sub-millisecond, and 5G
// NR is the "drastically reduced" future case the paper anticipates.
#pragma once

#include <string>

#include "simnet/latency.h"

namespace mecdns::ran {

struct AccessProfile {
  std::string name;
  simnet::LatencyModel uplink;    ///< UE -> network, one way
  simnet::LatencyModel downlink;  ///< network -> UE, one way
};

/// 4G LTE air interface: ~10 ms one-way mean, heavy-tailed.
AccessProfile lte();

/// 5G NR: ~1.5 ms one-way, much tighter distribution.
AccessProfile nr5g();

/// Home Wi-Fi hop: ~2.5 ms with moderate jitter.
AccessProfile wifi_home();

/// Wired campus Ethernet: ~0.3 ms, near-deterministic.
AccessProfile wired_campus();

// --- non-access link helpers (shared by scenario builders) -----------------

/// Intra-cluster (same-rack Kubernetes) link: ~0.15 ms.
simnet::LatencyModel cluster_link();

/// Same-site LAN link: ~1.2 ms.
simnet::LatencyModel lan_link();

/// Metro backhaul (cell site to operator core): ~5 ms, some jitter.
simnet::LatencyModel metro_backhaul();

/// Wide-area (inter-city / cloud) link with mean one-way ~`mean_ms`.
simnet::LatencyModel wan_link(double mean_ms);

}  // namespace mecdns::ran
