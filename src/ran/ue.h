// User equipment: a mobile client with a stub resolver and content client.
#pragma once

#include <memory>
#include <string>

#include "cdn/cache_server.h"
#include "dns/stub.h"
#include "ran/segment.h"

namespace mecdns::ran {

class UserEquipment {
 public:
  /// Attaches a new UE to `segment`. `dns_server` is the initially
  /// configured resolver (re-targetable via resolver().set_server()).
  UserEquipment(simnet::Network& net, RanSegment& segment, std::string name,
                simnet::Ipv4Address addr, simnet::Endpoint dns_server,
                dns::DnsTransport::Options dns_options = {});

  simnet::NodeId node() const { return node_; }
  simnet::Ipv4Address address() const { return addr_; }
  const std::string& name() const { return name_; }
  simnet::Network& network() { return net_; }

  dns::StubResolver& resolver() { return *resolver_; }
  cdn::ContentClient& content() { return *content_; }

  /// Resolves `url`'s host then fetches the object from the answered
  /// address; reports combined and per-phase latency.
  struct FetchOutcome {
    bool ok = false;
    std::string error;
    simnet::SimTime dns_latency;
    simnet::SimTime fetch_latency;
    simnet::SimTime total;
    simnet::Ipv4Address server;
    cdn::ContentResponse response;
  };
  using FetchCallback = std::function<void(const FetchOutcome&)>;
  void resolve_and_fetch(const cdn::Url& url, FetchCallback callback);

  /// Extra resolve-and-fetch attempts after a failed one (default 0 — a
  /// single attempt, the paper-measurement behaviour). Each retry redoes
  /// the DNS lookup, so a re-resolution can route around a dead cache once
  /// the router has drained it or the cached answer expired.
  void set_fetch_retries(std::size_t retries) { fetch_retries_ = retries; }
  std::size_t fetch_retries() const { return fetch_retries_; }
  /// Retries actually spent (visibility for benches).
  std::uint64_t fetch_retries_used() const { return fetch_retries_used_; }

 private:
  void attempt_fetch(const cdn::Url& url, std::size_t retries_left,
                     simnet::SimTime accumulated, FetchCallback callback);
  void finish_or_retry(const cdn::Url& url, std::size_t retries_left,
                       FetchOutcome outcome, FetchCallback callback);

  simnet::Network& net_;
  std::string name_;
  simnet::Ipv4Address addr_;
  simnet::NodeId node_;
  std::unique_ptr<dns::StubResolver> resolver_;
  std::unique_ptr<cdn::ContentClient> content_;
  std::size_t fetch_retries_ = 0;
  std::uint64_t fetch_retries_used_ = 0;
};

}  // namespace mecdns::ran
