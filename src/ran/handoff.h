// Cellular handoff with DNS re-targeting.
//
// §3 P1: "when an end user connects to a particular base station, its
// target DNS is switched to that of the MEC DNS. This can be performed ...
// as part of the cellular hand-off process." HandoffManager moves a UE's
// air-interface link between cells and (optionally) re-points its stub
// resolver at the new cell's MEC DNS — the behaviour the handoff ablation
// bench compares against a sticky resolver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ran/segment.h"
#include "ran/ue.h"

namespace mecdns::ran {

class HandoffManager {
 public:
  struct Cell {
    std::string name;
    RanSegment* segment = nullptr;
    simnet::LinkId air_link = 0;          ///< UE <-> this cell's eNB
    simnet::Endpoint mec_dns;             ///< the cell's MEC L-DNS
  };

  HandoffManager(simnet::Network& net, UserEquipment& ue)
      : net_(net), ue_(ue) {}

  /// Registers a cell. The UE must already have an air link to the cell's
  /// eNB (created up front; inactive cells' links are set down).
  std::size_t add_cell(Cell cell);

  /// Activates `cell_index`: brings its air link up, takes all others down,
  /// and, if `retarget_dns`, points the UE's resolver at the cell's MEC DNS.
  void attach(std::size_t cell_index, bool retarget_dns = true);

  std::size_t active_cell() const { return active_; }
  std::uint64_t handoffs() const { return handoffs_; }
  const Cell& cell(std::size_t i) const { return cells_.at(i); }

 private:
  simnet::Network& net_;
  UserEquipment& ue_;
  std::vector<Cell> cells_;
  std::size_t active_ = static_cast<std::size_t>(-1);
  std::uint64_t handoffs_ = 0;
};

}  // namespace mecdns::ran
