#include "ran/handoff.h"

#include <stdexcept>

namespace mecdns::ran {

std::size_t HandoffManager::add_cell(Cell cell) {
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

void HandoffManager::attach(std::size_t cell_index, bool retarget_dns) {
  if (cell_index >= cells_.size()) {
    throw std::out_of_range("no such cell");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    net_.set_link_up(cells_[i].air_link, i == cell_index);
  }
  if (retarget_dns) {
    ue_.resolver().set_server(cells_[cell_index].mec_dns);
  }
  if (active_ != cell_index) ++handoffs_;
  active_ = cell_index;
}

}  // namespace mecdns::ran
