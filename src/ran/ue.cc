#include "ran/ue.h"

namespace mecdns::ran {

UserEquipment::UserEquipment(simnet::Network& net, RanSegment& segment,
                             std::string name, simnet::Ipv4Address addr,
                             simnet::Endpoint dns_server,
                             dns::DnsTransport::Options dns_options)
    : net_(net), name_(std::move(name)), addr_(addr) {
  node_ = segment.attach_ue(name_, addr);
  resolver_ = std::make_unique<dns::StubResolver>(net_, node_, dns_server,
                                                  dns_options);
  content_ = std::make_unique<cdn::ContentClient>(net_, node_);
}

void UserEquipment::resolve_and_fetch(const cdn::Url& url,
                                      FetchCallback callback) {
  resolver_->resolve(
      url.host, dns::RecordType::kA,
      [this, url, callback = std::move(callback)](
          const dns::StubResult& dns_result) {
        FetchOutcome outcome;
        outcome.dns_latency = dns_result.latency;
        if (!dns_result.ok || !dns_result.address.has_value()) {
          outcome.error = dns_result.ok ? "no A record in answer"
                                        : dns_result.error;
          outcome.total = dns_result.latency;
          callback(outcome);
          return;
        }
        outcome.server = *dns_result.address;
        content_->get(
            simnet::Endpoint{*dns_result.address, cdn::kContentPort}, url,
            [outcome, callback](util::Result<cdn::ContentResponse> response,
                                simnet::SimTime fetch_latency) mutable {
              outcome.fetch_latency = fetch_latency;
              outcome.total = outcome.dns_latency + fetch_latency;
              if (!response.ok()) {
                outcome.error = response.error().message;
                callback(outcome);
                return;
              }
              outcome.response = response.value();
              outcome.ok = outcome.response.status == 200;
              if (!outcome.ok) {
                outcome.error = "status " +
                                std::to_string(outcome.response.status);
              }
              callback(outcome);
            });
      });
}

}  // namespace mecdns::ran
