#include "ran/ue.h"

namespace mecdns::ran {

UserEquipment::UserEquipment(simnet::Network& net, RanSegment& segment,
                             std::string name, simnet::Ipv4Address addr,
                             simnet::Endpoint dns_server,
                             dns::DnsTransport::Options dns_options)
    : net_(net), name_(std::move(name)), addr_(addr) {
  node_ = segment.attach_ue(name_, addr);
  resolver_ = std::make_unique<dns::StubResolver>(net_, node_, dns_server,
                                                  dns_options);
  content_ = std::make_unique<cdn::ContentClient>(net_, node_);
}

void UserEquipment::resolve_and_fetch(const cdn::Url& url,
                                      FetchCallback callback) {
  attempt_fetch(url, fetch_retries_, simnet::SimTime::zero(),
                std::move(callback));
}

void UserEquipment::attempt_fetch(const cdn::Url& url,
                                  std::size_t retries_left,
                                  simnet::SimTime accumulated,
                                  FetchCallback callback) {
  resolver_->resolve(
      url.host, dns::RecordType::kA,
      [this, url, retries_left, accumulated, callback = std::move(callback)](
          const dns::StubResult& dns_result) {
        FetchOutcome outcome;
        outcome.dns_latency = dns_result.latency;
        if (!dns_result.ok || !dns_result.address.has_value()) {
          outcome.error = dns_result.ok ? "no A record in answer"
                                        : dns_result.error;
          outcome.total = accumulated + dns_result.latency;
          finish_or_retry(url, retries_left, std::move(outcome),
                          std::move(callback));
          return;
        }
        outcome.server = *dns_result.address;
        content_->get(
            simnet::Endpoint{*dns_result.address, cdn::kContentPort}, url,
            [this, url, retries_left, accumulated, outcome,
             callback = std::move(callback)](
                util::Result<cdn::ContentResponse> response,
                simnet::SimTime fetch_latency) mutable {
              outcome.fetch_latency = fetch_latency;
              outcome.total =
                  accumulated + outcome.dns_latency + fetch_latency;
              if (!response.ok()) {
                outcome.error = response.error().message;
              } else {
                outcome.response = response.value();
                outcome.ok = outcome.response.status == 200;
                if (!outcome.ok) {
                  outcome.error = "status " +
                                  std::to_string(outcome.response.status);
                }
              }
              finish_or_retry(url, retries_left, std::move(outcome),
                              std::move(callback));
            });
      });
}

void UserEquipment::finish_or_retry(const cdn::Url& url,
                                    std::size_t retries_left,
                                    FetchOutcome outcome,
                                    FetchCallback callback) {
  if (outcome.ok || retries_left == 0) {
    callback(outcome);
    return;
  }
  ++fetch_retries_used_;
  // A fresh resolution: by now the router may have drained the dead cache
  // or the stale cached answer expired. Latency keeps accumulating.
  attempt_fetch(url, retries_left - 1, outcome.total, std::move(callback));
}

}  // namespace mecdns::ran
