#include "ran/profiles.h"

namespace mecdns::ran {

using simnet::LatencyModel;
using simnet::SimTime;

AccessProfile lte() {
  // floor 7 ms scheduling/HARQ + lognormal(median 2.4 ms, sigma 0.75)
  // => mean one-way ~10.2 ms, p99 tail into the tens of ms — matching the
  // high variability of the paper's "cellular-mobile" bars.
  return AccessProfile{
      "lte",
      LatencyModel::lognormal(SimTime::millis(7.0), SimTime::millis(2.4), 0.75),
      LatencyModel::lognormal(SimTime::millis(7.0), SimTime::millis(2.4), 0.75),
  };
}

AccessProfile nr5g() {
  return AccessProfile{
      "5g-nr",
      LatencyModel::lognormal(SimTime::millis(0.9), SimTime::millis(0.5), 0.5),
      LatencyModel::lognormal(SimTime::millis(0.9), SimTime::millis(0.5), 0.5),
  };
}

AccessProfile wifi_home() {
  return AccessProfile{
      "wifi-home",
      LatencyModel::lognormal(SimTime::millis(1.2), SimTime::millis(1.1), 0.6),
      LatencyModel::lognormal(SimTime::millis(1.2), SimTime::millis(1.1), 0.6),
  };
}

AccessProfile wired_campus() {
  return AccessProfile{
      "wired-campus",
      LatencyModel::normal(SimTime::millis(0.3), SimTime::micros(60),
                           SimTime::micros(100)),
      LatencyModel::normal(SimTime::millis(0.3), SimTime::micros(60),
                           SimTime::micros(100)),
  };
}

LatencyModel cluster_link() {
  return LatencyModel::normal(SimTime::micros(150), SimTime::micros(40),
                              SimTime::micros(30));
}

LatencyModel lan_link() {
  return LatencyModel::normal(SimTime::millis(1.2), SimTime::micros(250),
                              SimTime::micros(300));
}

LatencyModel metro_backhaul() {
  return LatencyModel::lognormal(SimTime::millis(3.5), SimTime::millis(1.2),
                                 0.5);
}

LatencyModel wan_link(double mean_ms) {
  // ~80% of the mean as propagation floor, the rest as a jittery tail.
  const double floor_ms = mean_ms * 0.8;
  const double median_ms = mean_ms * 0.17;
  return LatencyModel::lognormal(SimTime::millis(floor_ms),
                                 SimTime::millis(median_ms), 0.45);
}

}  // namespace mecdns::ran
