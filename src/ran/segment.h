// A containerized 4G/5G RAN segment: eNB + S-GW + P-GW with NAT.
//
// Mirrors the paper's testbed (srsLTE eNB + NextEPC core, all collocated at
// the edge): user traffic enters at the eNB, traverses the core gateways,
// and leaves through the P-GW, which rewrites the UE's source address to
// its own public address — the reason "CDN servers see the public gateway's
// IP, not the end client's".
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ran/profiles.h"
#include "simnet/network.h"

namespace mecdns::ran {

class RanSegment {
 public:
  struct Config {
    std::string name = "ran";
    simnet::Ipv4Address enb_addr;
    simnet::Ipv4Address sgw_addr;
    simnet::Ipv4Address pgw_addr;        ///< P-GW public (NAT) address
    simnet::Cidr ue_subnet;              ///< sources subject to NAT
    AccessProfile access;                ///< UE <-> eNB air interface
    simnet::LatencyModel fronthaul =
        simnet::LatencyModel::constant(simnet::SimTime::micros(300));
    /// S-GW <-> P-GW link; GTP processing cost at the gateways is folded
    /// into the fronthaul/core link delays.
    simnet::LatencyModel core_link =
        simnet::LatencyModel::constant(simnet::SimTime::micros(300));
  };

  RanSegment(simnet::Network& net, Config config);

  /// Creates a UE node attached to this segment's eNB over the air
  /// interface. `addr` must be inside config.ue_subnet.
  simnet::NodeId attach_ue(const std::string& name, simnet::Ipv4Address addr);

  /// Link id of the air-interface link for a UE (for handoff up/down).
  simnet::LinkId ue_link(simnet::NodeId ue) const { return ue_links_.at(ue); }

  simnet::NodeId enb() const { return enb_; }
  simnet::NodeId sgw() const { return sgw_; }
  simnet::NodeId pgw() const { return pgw_; }
  simnet::Ipv4Address pgw_public_addr() const { return config_.pgw_addr; }

  /// Active NAT translations (visibility for tests).
  std::size_t nat_entries() const { return nat_out_.size(); }

 private:
  simnet::TransitAction nat(simnet::Packet& packet);

  simnet::Network& net_;
  Config config_;
  simnet::NodeId enb_ = simnet::kInvalidNode;
  simnet::NodeId sgw_ = simnet::kInvalidNode;
  simnet::NodeId pgw_ = simnet::kInvalidNode;
  std::map<simnet::NodeId, simnet::LinkId> ue_links_;

  // NAT tables: outward (UE endpoint -> public port) and return direction.
  std::map<simnet::Endpoint, std::uint16_t> nat_out_;
  std::map<std::uint16_t, simnet::Endpoint> nat_in_;
  std::uint16_t next_nat_port_ = 20000;
};

}  // namespace mecdns::ran
