#include "ran/segment.h"

#include <stdexcept>

namespace mecdns::ran {

RanSegment::RanSegment(simnet::Network& net, Config config)
    : net_(net), config_(std::move(config)) {
  enb_ = net_.add_node(config_.name + "-enb", config_.enb_addr);
  sgw_ = net_.add_node(config_.name + "-sgw", config_.sgw_addr);
  pgw_ = net_.add_node(config_.name + "-pgw", config_.pgw_addr);
  net_.add_link(enb_, sgw_, config_.fronthaul);
  net_.add_link(sgw_, pgw_, config_.core_link);
  net_.set_transit_hook(pgw_, [this](simnet::Packet& packet) {
    return nat(packet);
  });
}

simnet::NodeId RanSegment::attach_ue(const std::string& name,
                                     simnet::Ipv4Address addr) {
  if (!config_.ue_subnet.contains(addr)) {
    throw std::invalid_argument("UE address " + addr.to_string() +
                                " outside UE subnet " +
                                config_.ue_subnet.to_string());
  }
  const simnet::NodeId ue = net_.add_node(name, addr);
  const simnet::LinkId link = net_.add_link(
      ue, enb_, config_.access.uplink, config_.access.downlink);
  ue_links_.emplace(ue, link);
  return ue;
}

simnet::TransitAction RanSegment::nat(simnet::Packet& packet) {
  // Uplink: source inside the UE subnet is translated to the P-GW's public
  // address with a per-flow port.
  if (config_.ue_subnet.contains(packet.src.addr)) {
    auto it = nat_out_.find(packet.src);
    if (it == nat_out_.end()) {
      while (nat_in_.count(next_nat_port_) != 0) {
        ++next_nat_port_;
        if (next_nat_port_ < 20000) next_nat_port_ = 20000;
      }
      const std::uint16_t public_port = next_nat_port_++;
      if (next_nat_port_ < 20000) next_nat_port_ = 20000;
      it = nat_out_.emplace(packet.src, public_port).first;
      nat_in_.emplace(public_port, packet.src);
    }
    packet.src = simnet::Endpoint{config_.pgw_addr, it->second};
    return simnet::TransitAction::kForward;
  }
  // Downlink: destination is our public address on a translated port.
  if (packet.dst.addr == config_.pgw_addr) {
    const auto it = nat_in_.find(packet.dst.port);
    if (it == nat_in_.end()) {
      return simnet::TransitAction::kDrop;  // no mapping: unsolicited
    }
    packet.dst = it->second;
    return simnet::TransitAction::kForward;
  }
  return simnet::TransitAction::kForward;
}

}  // namespace mecdns::ran
