#include "ran/tap.h"

#include "dns/server.h"

namespace mecdns::ran {

DnsTap::DnsTap(simnet::Network& net, simnet::NodeId node, Filter filter)
    : filter_(std::move(filter)) {
  net.add_tap(node, [this](const simnet::Packet& packet, simnet::SimTime at) {
    observe(packet, at);
  });
}

void DnsTap::observe(const simnet::Packet& packet, simnet::SimTime at) {
  // Only DNS traffic: to or from port 53.
  if (packet.dst.port != dns::kDnsPort && packet.src.port != dns::kDnsPort) {
    return;
  }
  if (filter_ && !filter_(packet)) return;
  auto decoded = dns::decode(packet.payload);
  if (!decoded.ok() || decoded.value().questions.empty()) return;
  const dns::Message& msg = decoded.value();
  const auto key = std::make_pair(msg.header.id,
                                  msg.question().name.to_string());
  Crossing& crossing = crossings_[key];
  if (msg.header.qr) {
    crossing.response_seen = at;
    crossing.has_response = true;
    ++observed_responses_;
  } else {
    if (!crossing.has_query) {
      crossing.query_seen = at;
      crossing.has_query = true;
    }
    ++observed_queries_;
  }
}

std::optional<DnsTap::Crossing> DnsTap::crossing(
    std::uint16_t dns_id, const std::string& qname) const {
  const auto it = crossings_.find({dns_id, qname});
  if (it == crossings_.end()) return std::nullopt;
  return it->second;
}

void DnsTap::clear() { crossings_.clear(); }

}  // namespace mecdns::ran
