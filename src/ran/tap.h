// DNS traffic tap — the paper's "tcpdump at P-GW".
//
// §4: "We perform the measurements using both dig from the client side and
// tcpdump at P-GW to track the DNS request packets", splitting each lookup
// into (i) the wireless delay between UE and P-GW and (ii) everything
// beyond the P-GW (core, resolvers, up/downlink). DnsTap observes packets
// at a node, decodes DNS payloads, and timestamps when each transaction's
// query and response crossed — letting the experiment harness compute the
// same breakdown.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "dns/wire.h"
#include "simnet/network.h"

namespace mecdns::ran {

class DnsTap {
 public:
  struct Crossing {
    simnet::SimTime query_seen;     ///< first time the query crossed
    simnet::SimTime response_seen;  ///< last time the response crossed
    bool has_query = false;
    bool has_response = false;
  };

  /// Selects which packets the tap records (beyond the DNS-port check).
  /// Typical use: restrict to client-side traffic so a resolver hairpinning
  /// its upstream queries through the same gateway is not captured.
  using Filter = std::function<bool(const simnet::Packet&)>;

  /// Installs a tap on `node` (typically the P-GW).
  DnsTap(simnet::Network& net, simnet::NodeId node, Filter filter = nullptr);

  /// Crossing times for the transaction (id, qname), if observed.
  std::optional<Crossing> crossing(std::uint16_t dns_id,
                                   const std::string& qname) const;

  std::uint64_t observed_queries() const { return observed_queries_; }
  std::uint64_t observed_responses() const { return observed_responses_; }

  void clear();

 private:
  void observe(const simnet::Packet& packet, simnet::SimTime at);

  Filter filter_;
  std::map<std::pair<std::uint16_t, std::string>, Crossing> crossings_;
  std::uint64_t observed_queries_ = 0;
  std::uint64_t observed_responses_ = 0;
};

}  // namespace mecdns::ran
