// MobilityModel: scenario shapes, determinism, and the population
// accounting the churn benchmarks depend on.
#include "workload/mobility.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <tuple>
#include <vector>

#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns {
namespace {

using workload::MobilityModel;
using workload::MobilityScenario;

struct Recorded {
  std::int64_t at_nanos;
  std::uint32_t ue;
  std::uint16_t from;
  std::uint16_t to;
};

std::vector<Recorded> record_moves(MobilityModel::Options options) {
  simnet::Simulator sim;
  std::vector<Recorded> moves;
  MobilityModel model(sim, options,
                      [&](std::uint32_t ue, std::uint16_t from,
                          std::uint16_t to) {
                        moves.push_back(
                            Recorded{sim.now().count_nanos(), ue, from, to});
                      });
  model.start();
  sim.run();
  EXPECT_TRUE(model.drained());
  return moves;
}

TEST(MobilityModelTest, SlugsRoundTrip) {
  for (const MobilityScenario s : workload::all_mobility_scenarios()) {
    const auto back = workload::mobility_from_slug(workload::mobility_slug(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(workload::mobility_from_slug("teleportation").has_value());
}

TEST(MobilityModelTest, CommuteWaveMovesParticipantsToTargetInWindow) {
  MobilityModel::Options options;
  options.ues = 2000;
  options.cells = 4;
  options.scenario = MobilityScenario::kCommuteWave;
  options.duration = simnet::SimTime::seconds(40);
  options.event_start = simnet::SimTime::seconds(10);
  options.event_end = simnet::SimTime::seconds(25);
  options.target_cell = 2;
  options.participation = 0.5;
  options.seed = 7;
  const auto moves = record_moves(options);

  // Expected movers: participation x (1 - 1/cells) of the population —
  // participants already home on the target cell do not move.
  const double expected = 2000 * 0.5 * (1.0 - 1.0 / 4.0);
  EXPECT_GT(static_cast<double>(moves.size()), expected * 0.85);
  EXPECT_LT(static_cast<double>(moves.size()), expected * 1.15);
  for (const Recorded& m : moves) {
    EXPECT_EQ(m.to, 2u);  // one leg, toward the target, and stays
    EXPECT_GE(m.at_nanos, options.event_start.count_nanos());
    EXPECT_LT(m.at_nanos, options.event_end.count_nanos());
  }
}

TEST(MobilityModelTest, FlashCrowdConvergesThenDispersesHome) {
  MobilityModel::Options options;
  options.ues = 1000;
  options.cells = 3;
  options.scenario = MobilityScenario::kFlashCrowd;
  options.duration = simnet::SimTime::seconds(40);
  options.event_start = simnet::SimTime::seconds(10);
  options.event_end = simnet::SimTime::seconds(25);
  options.target_cell = 0;
  options.participation = 0.8;
  options.crowd_burst = simnet::SimTime::seconds(2);
  options.seed = 11;

  simnet::Simulator sim;
  std::uint32_t converges = 0;
  std::uint32_t disperses = 0;
  MobilityModel model(sim, options,
                      [&](std::uint32_t, std::uint16_t, std::uint16_t to) {
                        if (to == options.target_cell) {
                          ++converges;
                          // Converge leg lands within the burst.
                          EXPECT_GE(sim.now().count_nanos(),
                                    options.event_start.count_nanos());
                          EXPECT_LT(sim.now().count_nanos(),
                                    (options.event_start +
                                     options.crowd_burst).count_nanos());
                        } else {
                          ++disperses;
                          EXPECT_GE(sim.now().count_nanos(),
                                    options.event_end.count_nanos());
                        }
                      });
  model.start();
  sim.run();
  EXPECT_GT(converges, 0u);
  // Every participant who converged from another cell goes home again.
  EXPECT_EQ(converges, disperses);
  // Population is restored once the crowd disperses.
  for (std::uint32_t ue = 0; ue < options.ues; ++ue) {
    EXPECT_EQ(model.cell_of(ue), model.home_of(ue));
  }
}

TEST(MobilityModelTest, HandoffStormKeepsMovingAtTheDwellRate) {
  MobilityModel::Options options;
  options.ues = 500;
  options.cells = 3;
  options.scenario = MobilityScenario::kHandoffStorm;
  options.duration = simnet::SimTime::seconds(30);
  options.dwell = simnet::SimTime::seconds(3);
  options.seed = 13;
  const auto moves = record_moves(options);

  // 500 UEs / 3 s mean dwell over 30 s ~= 5000 moves; exponential gaps,
  // so allow a wide band.
  EXPECT_GT(moves.size(), 3500u);
  EXPECT_LT(moves.size(), 6500u);
  for (const Recorded& m : moves) {
    EXPECT_NE(m.from, m.to);  // a storm move is always a real handoff
    EXPECT_LT(m.at_nanos, options.duration.count_nanos());
  }
}

TEST(MobilityModelTest, MovesAreDeterministicPerSeedAndIndependentOfOrder) {
  MobilityModel::Options options;
  options.ues = 300;
  options.cells = 3;
  options.scenario = MobilityScenario::kHandoffStorm;
  options.duration = simnet::SimTime::seconds(20);
  options.seed = 99;
  const auto a = record_moves(options);
  const auto b = record_moves(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::tie(a[i].at_nanos, a[i].ue, a[i].from, a[i].to),
              std::tie(b[i].at_nanos, b[i].ue, b[i].from, b[i].to));
  }
  options.seed = 100;
  const auto c = record_moves(options);
  EXPECT_NE(a.size(), c.size());
}

TEST(MobilityModelTest, PopulationTracksCellTableAndConservesUes) {
  MobilityModel::Options options;
  options.ues = 400;
  options.cells = 4;
  options.scenario = MobilityScenario::kFlashCrowd;
  options.duration = simnet::SimTime::seconds(40);
  options.participation = 0.9;
  options.seed = 17;

  simnet::Simulator sim;
  MobilityModel model(sim, options, [](std::uint32_t, std::uint16_t,
                                       std::uint16_t) {});
  model.start();
  std::uint32_t total = 0;
  for (std::uint16_t c = 0; c < options.cells; ++c) {
    total += model.population(c);
  }
  EXPECT_EQ(total, options.ues);

  // At the crowd peak most of the population sits on the target cell.
  sim.run_until(options.event_start + options.crowd_burst +
                simnet::SimTime::millis(1));
  EXPECT_GT(model.population(options.target_cell), options.ues / 2);
  total = 0;
  for (std::uint16_t c = 0; c < options.cells; ++c) {
    total += model.population(c);
  }
  EXPECT_EQ(total, options.ues);
}

TEST(MobilityModelTest, CallbackSeesUpdatedCellTable) {
  MobilityModel::Options options;
  options.ues = 50;
  options.cells = 3;
  options.scenario = MobilityScenario::kHandoffStorm;
  options.duration = simnet::SimTime::seconds(10);
  options.seed = 23;

  simnet::Simulator sim;
  MobilityModel* ptr = nullptr;
  MobilityModel model(sim, options,
                      [&ptr](std::uint32_t ue, std::uint16_t,
                             std::uint16_t to) {
                        ASSERT_NE(ptr, nullptr);
                        EXPECT_EQ(ptr->cell_of(ue), to);
                      });
  ptr = &model;
  model.start();
  sim.run();
  EXPECT_GT(model.moves(), 0u);
}

}  // namespace
}  // namespace mecdns
