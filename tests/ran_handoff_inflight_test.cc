// In-flight DNS transactions across a cellular handoff.
//
// The paper re-points the UE's resolver "as part of the cellular hand-off
// process" — for the *next* query. A query already in flight to the old
// cell's L-DNS is stranded the moment the air link flips: in an isolated
// deployment (no inter-site backhaul) its response has no path back, so a
// fragile client eats the full transport timeout. The robust stub moves
// pending transactions to the new L-DNS (DnsTransport::retarget_pending)
// and recovers in milliseconds. These tests pin both behaviours.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cdn/content.h"
#include "core/mec_cdn.h"
#include "dns/stub.h"
#include "ran/handoff.h"
#include "ran/profiles.h"
#include "ran/segment.h"
#include "ran/ue.h"
#include "util/rng.h"

namespace mecdns {
namespace {

// Two full cells, each with its own MEC site and L-DNS, and — deliberately
// — NO backbone and NO inter-site backhaul: once the air link to cell A
// drops, nothing can carry a stranded response back to the UE. (With a
// backhaul, per-address re-routing would deliver it late and mask the
// fragile failure mode.)
struct IsolatedCells {
  simnet::Simulator sim;
  std::unique_ptr<simnet::Network> net;
  std::unique_ptr<ran::RanSegment> cell_a;
  std::unique_ptr<ran::RanSegment> cell_b;
  std::unique_ptr<core::MecCdnSite> site_a;
  std::unique_ptr<core::MecCdnSite> site_b;
  std::unique_ptr<ran::UserEquipment> ue;
  std::unique_ptr<ran::HandoffManager> handoff;

  explicit IsolatedCells(bool retarget_in_flight, std::uint64_t seed = 7) {
    net = std::make_unique<simnet::Network>(sim, util::Rng(seed));
    const auto make_cell = [&](const std::string& name,
                               const std::string& pgw_ip,
                               const std::string& prefix) {
      ran::RanSegment::Config rc;
      rc.name = name;
      rc.enb_addr = simnet::Ipv4Address::must_parse(prefix + ".0.1");
      rc.sgw_addr = simnet::Ipv4Address::must_parse(prefix + ".0.2");
      rc.pgw_addr = simnet::Ipv4Address::must_parse(pgw_ip);
      rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
      rc.access = ran::lte();
      auto segment = std::make_unique<ran::RanSegment>(*net, rc);

      core::MecCdnSite::Config sc;
      sc.orchestrator.cluster.name = name + "-mec";
      sc.orchestrator.cluster.node_cidr =
          simnet::Cidr::must_parse(prefix + ".64.0/24");
      sc.orchestrator.cluster.service_cidr =
          simnet::Cidr::must_parse(prefix + ".128.0/20");
      sc.answer_ttl = 0;
      auto site = std::make_unique<core::MecCdnSite>(*net, sc);
      net->add_link(segment->pgw(), site->orchestrator().cluster().gateway(),
                    simnet::LatencyModel::constant(
                        simnet::SimTime::millis(0.5)));
      return std::make_pair(std::move(segment), std::move(site));
    };
    std::tie(cell_a, site_a) = make_cell("cell-a", "203.0.113.1", "10.101");
    std::tie(cell_b, site_b) = make_cell("cell-b", "203.0.114.1", "10.102");

    cdn::ContentCatalog catalog;
    catalog.add_series(
        dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"), "seg", 4,
        64 * 1024);
    site_a->add_delivery_service("demo1", catalog);
    site_b->add_delivery_service("demo1", catalog);

    ue = std::make_unique<ran::UserEquipment>(
        *net, *cell_a, "ue", simnet::Ipv4Address::must_parse("10.45.0.2"),
        site_a->ldns_endpoint());
    ue->resolver().set_retarget_in_flight(retarget_in_flight);
    const simnet::LinkId link_b = net->add_link(
        ue->node(), cell_b->enb(), ran::lte().uplink, ran::lte().downlink);
    net->set_link_up(link_b, false);

    handoff = std::make_unique<ran::HandoffManager>(*net, *ue);
    handoff->add_cell(ran::HandoffManager::Cell{
        "cell-a", cell_a.get(), cell_a->ue_link(ue->node()),
        site_a->ldns_endpoint()});
    handoff->add_cell(ran::HandoffManager::Cell{
        "cell-b", cell_b.get(), link_b, site_b->ldns_endpoint()});
    handoff->attach(0);
  }
};

dns::StubResult query_across_handoff(IsolatedCells& world) {
  dns::StubResult observed;
  bool done = false;
  world.ue->resolver().resolve(
      dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
      dns::RecordType::kA, [&](const dns::StubResult& result) {
        observed = result;
        done = true;
      });
  // Hand off while the transaction is in flight: 1 ms in, the query is
  // somewhere between the eNB and cell A's L-DNS.
  world.sim.schedule_at(world.sim.now() + simnet::SimTime::millis(1),
                        [&world] { world.handoff->attach(1, true); });
  world.sim.run();
  EXPECT_TRUE(done);
  return observed;
}

TEST(HandoffInFlightTest, FragileClientEatsFullTimeoutAcrossHandoff) {
  IsolatedCells world(/*retarget_in_flight=*/false);
  const dns::StubResult result = query_across_handoff(world);
  // The response is stranded on the old site; with no retries and no
  // fallback, the client pays the entire transport timeout and fails.
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.latency.to_millis(), 2000.0);
  EXPECT_EQ(world.ue->resolver().transport().timeouts(), 1u);
  EXPECT_EQ(world.ue->resolver().transport().retargets(), 0u);
}

TEST(HandoffInFlightTest, RetargetInFlightRecoversOnNewCellQuickly) {
  IsolatedCells world(/*retarget_in_flight=*/true);
  const dns::StubResult result = query_across_handoff(world);
  // The pending transaction follows the re-target to cell B's L-DNS and
  // completes there — worst case one extra first-hop RTT, far below the
  // 2000 ms timeout the fragile client pays.
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_LT(result.latency.to_millis(), 100.0);
  EXPECT_EQ(world.ue->resolver().transport().retargets(), 1u);
  EXPECT_EQ(world.ue->resolver().transport().timeouts(), 0u);
  // The answer came from cell B's site, not a stale cell-A cache.
  ASSERT_TRUE(result.address.has_value());
  bool on_site_b = false;
  for (std::size_t i = 0; i < world.site_b->site_config().edge_caches; ++i) {
    on_site_b = on_site_b || world.site_b->cache_address(i) == *result.address;
  }
  EXPECT_TRUE(on_site_b);
}

TEST(HandoffInFlightTest, QuietHandoffRetargetsNothing) {
  IsolatedCells world(/*retarget_in_flight=*/true);
  // No transaction in flight: the handoff just flips links and re-points
  // the stub; the retarget machinery must not fire.
  world.handoff->attach(1, true);
  world.sim.run();
  EXPECT_EQ(world.ue->resolver().transport().retargets(), 0u);

  // And the next query resolves on cell B at first-hop latency.
  dns::StubResult observed;
  world.ue->resolver().resolve(
      dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
      dns::RecordType::kA,
      [&observed](const dns::StubResult& result) { observed = result; });
  world.sim.run();
  EXPECT_TRUE(observed.ok) << observed.error;
  EXPECT_LT(observed.latency.to_millis(), 100.0);
}

}  // namespace
}  // namespace mecdns
