// ConsistentHashRing bounded-load and churn properties: the O(K/n) remap
// envelope, the capacity invariant, and the colliding-virtual-node edge
// case that motivates the multimap ring.
#include "cdn/consistent_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace mecdns {
namespace {

using cdn::ConsistentHashRing;

ConsistentHashRing make_ring(std::size_t members, unsigned vnodes = 64) {
  ConsistentHashRing ring(vnodes);
  for (std::size_t i = 0; i < members; ++i) {
    ring.add("cache-" + std::to_string(i));
  }
  return ring;
}

TEST(RingBoundsTest, AddingOneMemberRemapsAboutOneOverN) {
  // Growing n -> n+1 must move ~1/(n+1) of the keyspace: the defining
  // consistency property. Allow generous slack for vnode variance, but
  // stay far from the ~(1 - 1/n) a modulo-hash would move.
  for (const std::size_t n : {3u, 8u, 16u}) {
    ConsistentHashRing before = make_ring(n);
    ConsistentHashRing after = make_ring(n);
    after.add("cache-new");
    const double remap =
        ConsistentHashRing::remap_fraction(before, after, 2048);
    const double ideal = 1.0 / static_cast<double>(n + 1);
    EXPECT_GT(remap, 0.0) << "n=" << n;
    EXPECT_LT(remap, 3.0 * ideal) << "n=" << n << " remap=" << remap;
  }
}

TEST(RingBoundsTest, RemovingOneMemberRemapsOnlyItsOwnShare) {
  for (const std::size_t n : {4u, 10u}) {
    ConsistentHashRing before = make_ring(n);
    ConsistentHashRing after = make_ring(n);
    after.remove("cache-1");
    const double remap =
        ConsistentHashRing::remap_fraction(before, after, 2048);
    const double ideal = 1.0 / static_cast<double>(n);
    EXPECT_GT(remap, 0.2 * ideal) << "n=" << n;
    EXPECT_LT(remap, 3.0 * ideal) << "n=" << n << " remap=" << remap;
  }
}

TEST(RingBoundsTest, IdenticalRingsRemapNothing) {
  const ConsistentHashRing a = make_ring(5);
  const ConsistentHashRing b = make_ring(5);
  EXPECT_EQ(ConsistentHashRing::remap_fraction(a, b, 1024), 0.0);
}

TEST(RingBoundsTest, BoundedPickNeverExceedsCapacity) {
  ConsistentHashRing ring = make_ring(4);
  for (const std::string& m : ring.members()) {
    ring.set_capacity(m, 100);
  }
  // Drive 400 selections (exactly the aggregate capacity), charging each
  // pick as the router does. No member may ever exceed its bound.
  std::size_t picked = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const auto member = ring.pick_bounded("/object/" + std::to_string(i));
    ASSERT_TRUE(member.has_value()) << "exhausted early at " << i;
    ring.add_load(*member);
    ++picked;
    for (const std::string& m : ring.members()) {
      ASSERT_LE(ring.load(m), ring.capacity(m));
    }
  }
  EXPECT_EQ(picked, 400u);
  // The aggregate is now full: the next pick must report exhaustion
  // rather than overload anyone.
  EXPECT_FALSE(ring.pick_bounded("/object/one-more").has_value());
  // A new accounting window restores service.
  ring.reset_loads();
  EXPECT_TRUE(ring.pick_bounded("/object/one-more").has_value());
}

TEST(RingBoundsTest, OverflowSpillsToNextMemberClockwise) {
  ConsistentHashRing ring = make_ring(3);
  const std::string key = "/hot/object";
  const auto primary = ring.pick(key);
  ASSERT_TRUE(primary.has_value());
  ring.set_capacity(*primary, 1);
  ring.add_load(*primary);  // primary is now full

  bool overflowed = false;
  const auto spill = ring.pick_bounded(key, &overflowed);
  ASSERT_TRUE(spill.has_value());
  EXPECT_TRUE(overflowed);
  EXPECT_NE(*spill, *primary);
  // Unlimited members (capacity 0) absorb any load.
  EXPECT_EQ(ring.capacity(*spill), 0u);
}

TEST(RingBoundsTest, UnboundedMembersNeverOverflow) {
  ConsistentHashRing ring = make_ring(3);
  bool overflowed = true;
  const auto pick = ring.pick_bounded("/cold/object", &overflowed);
  ASSERT_TRUE(pick.has_value());
  EXPECT_FALSE(overflowed);
  EXPECT_EQ(*pick, *ring.pick("/cold/object"));
}

TEST(RingBoundsTest, CollidingVirtualNodesCoexistAndRemoveCleanly) {
  // Force every virtual node of every member onto the same ring position:
  // the degenerate case a map-backed ring silently corrupts (last add
  // wins, remove erases someone else's vnode).
  ConsistentHashRing ring(8);
  ring.set_hasher([](const std::string&) { return 42ULL; });
  ring.add("cache-a");
  ring.add("cache-b");
  ring.add("cache-c");
  EXPECT_EQ(ring.size(), 3u);

  // All three coexist at one position; picks still resolve to someone.
  const auto owner = ring.pick("/any");
  ASSERT_TRUE(owner.has_value());

  // Removing one member must leave the other two reachable.
  ring.remove("cache-b");
  EXPECT_EQ(ring.size(), 2u);
  const auto after = ring.pick("/any");
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(*after, "cache-b");

  // And bounded picks must still walk the collided bucket correctly.
  ring.set_capacity(*after, 1);
  ring.add_load(*after);
  bool overflowed = false;
  const auto spill = ring.pick_bounded("/any", &overflowed);
  ASSERT_TRUE(spill.has_value());
  EXPECT_TRUE(overflowed);
  EXPECT_NE(*spill, *after);
}

TEST(RingBoundsTest, PickNReturnsDistinctMembersPastCollisions) {
  ConsistentHashRing ring(4);
  ring.set_hasher([](const std::string& text) {
    // Two positions total: members collide in pairs.
    return cdn::ConsistentHashRing::hash(text) % 2;
  });
  ring.add("cache-a");
  ring.add("cache-b");
  ring.add("cache-c");
  const auto picks = ring.pick_n("/object", 3);
  EXPECT_EQ(picks.size(), 3u);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    for (std::size_t j = i + 1; j < picks.size(); ++j) {
      EXPECT_NE(picks[i], picks[j]);
    }
  }
}

}  // namespace
}  // namespace mecdns
