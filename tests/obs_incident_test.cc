// Incident forensics: correlation (join gap, open causes, cell overlap,
// orphans) and grading (MTTD/MTTR pins, the absorbed-fault rule, -1
// propagation through the scenario aggregate) over synthetic journals with
// exactly known answers.
#include "obs/incident.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/journal.h"
#include "obs/slo.h"

namespace mecdns {
namespace {

using obs::Incident;
using obs::IncidentReport;
using obs::Journal;
using obs::JournalKind;
using simnet::SimTime;

TEST(IncidentTest, GradesPinnedMttdAndMttr) {
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject, -1,
                 "node_down");
  journal.record(SimTime::millis(1400), JournalKind::kLdnsFailover);
  journal.record(SimTime::millis(2000), JournalKind::kSloBreach);
  journal.record(SimTime::millis(5000), JournalKind::kSloRecover);
  journal.record(SimTime::millis(6000), JournalKind::kFaultClear);

  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.orphan_events, 0u);
  const Incident& incident = report.incidents[0];
  EXPECT_DOUBLE_EQ(incident.mttd_ms, 400.0);   // inject -> first action
  EXPECT_DOUBLE_EQ(incident.mttr_ms, 3000.0);  // breach -> final recover
  EXPECT_EQ(incident.actions, 1u);
  EXPECT_EQ(incident.action_counts.at("ldns_failover"), 1u);
  EXPECT_EQ(incident.timeline.size(), 5u);
  EXPECT_DOUBLE_EQ(report.mttd_ms(), 400.0);
  EXPECT_DOUBLE_EQ(report.mttr_ms(), 3000.0);
}

TEST(IncidentTest, AbsorbedFaultGradesMttdZeroNotUndetected) {
  // No breach, no reaction: the system absorbed it (e.g. cache-wipe under
  // prefetch). MTTD -1 is reserved for "objective broke, nothing reacted".
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject);
  journal.record(SimTime::millis(2000), JournalKind::kFaultClear);

  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_DOUBLE_EQ(report.incidents[0].mttd_ms, 0.0);
  EXPECT_DOUBLE_EQ(report.incidents[0].mttr_ms, 0.0);
}

TEST(IncidentTest, UndetectedBreachKeepsMinusOne) {
  // Fragile mode: the objective broke, nothing reacted. MTTD stays -1 and
  // MTTR measures breach -> recover driven purely by the fault clearing.
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject);
  journal.record(SimTime::millis(3000), JournalKind::kSloBreach);
  journal.record(SimTime::millis(16000), JournalKind::kFaultClear);
  journal.record(SimTime::millis(18000), JournalKind::kSloRecover);

  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_DOUBLE_EQ(report.incidents[0].mttd_ms, -1.0);
  EXPECT_DOUBLE_EQ(report.incidents[0].mttr_ms, 15000.0);
}

TEST(IncidentTest, UnrecoveredBreachGradesMttrMinusOne) {
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kSloBreach);
  journal.record(SimTime::millis(1200), JournalKind::kGuardTrip);

  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 1u);
  // Breach-seeded incident: detection clock starts at the breach itself.
  EXPECT_DOUBLE_EQ(report.incidents[0].mttd_ms, 200.0);
  EXPECT_DOUBLE_EQ(report.incidents[0].mttr_ms, -1.0);
}

TEST(IncidentTest, OpenCauseStaysJoinablePastJoinGap) {
  // A fault injected but not yet cleared keeps its incident joinable no
  // matter how quiet the system is: the clear 99 s later (far beyond the
  // 8 s join gap) must still attribute to the fault that caused it.
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject);
  journal.record(SimTime::millis(100000), JournalKind::kFaultClear);
  journal.record(SimTime::millis(101000), JournalKind::kSloRecover);

  const IncidentReport report = obs::correlate_incidents(journal);
  EXPECT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.orphan_events, 0u);
  EXPECT_EQ(report.incidents[0].timeline.size(), 3u);
}

TEST(IncidentTest, ClosedIncidentStopsJoiningAfterGap) {
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject);
  journal.record(SimTime::millis(2000), JournalKind::kFaultClear);
  // 48 s after the closed incident's last event: a lone control action
  // with no visible cause is an orphan — itself a finding.
  journal.record(SimTime::millis(50000), JournalKind::kGuardTrip);

  const IncidentReport report = obs::correlate_incidents(journal);
  EXPECT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.orphan_events, 1u);
  EXPECT_EQ(report.incidents[0].timeline.size(), 2u);
}

TEST(IncidentTest, CellMismatchOpensSeparateIncident) {
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject, 0);
  journal.record(SimTime::millis(1100), JournalKind::kFaultInject, 3);
  journal.record(SimTime::millis(1500), JournalKind::kGuardTrip, 3);
  journal.record(SimTime::millis(1600), JournalKind::kGuardTrip, 0);

  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 2u);
  EXPECT_EQ(report.orphan_events, 0u);
  // Newest-first joining: each action lands on its own cell's incident.
  EXPECT_DOUBLE_EQ(report.incidents[0].mttd_ms, 600.0);  // cell 0
  EXPECT_DOUBLE_EQ(report.incidents[1].mttd_ms, 400.0);  // cell 3
  EXPECT_EQ(report.cells_affected(), 2u);
}

TEST(IncidentTest, GlobalEventJoinsCellIncident) {
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kLoadStart, 2);
  journal.record(SimTime::millis(1250), JournalKind::kRetarget, -1, "", 4);
  journal.record(SimTime::millis(2000), JournalKind::kLoadEnd, 2);

  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.orphan_events, 0u);
  EXPECT_DOUBLE_EQ(report.incidents[0].mttd_ms, 250.0);
  EXPECT_EQ(report.incidents[0].retarget_batches, 1u);
}

TEST(IncidentTest, AggregateReportsMinusOneIfAnyIncidentHasIt) {
  Journal journal;
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject, 0);
  journal.record(SimTime::millis(1300), JournalKind::kGuardTrip, 0);
  journal.record(SimTime::millis(1000), JournalKind::kFaultInject, 5);
  journal.record(SimTime::millis(2000), JournalKind::kSloBreach, 5);

  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 2u);
  // Cell 5 broke and nothing reacted: -1 must survive the aggregate so
  // "some incident went undetected" is visible at the scenario level.
  EXPECT_DOUBLE_EQ(report.mttd_ms(), -1.0);
  EXPECT_DOUBLE_EQ(report.mttr_ms(), -1.0);
}

TEST(IncidentTest, SloJournalDerivesBreachAndRecoverRuns) {
  obs::SloResult result;
  result.spec.name = "success";
  const auto window = [](int index, bool ok) {
    obs::SloWindow w;
    w.index = index;
    w.start = SimTime::millis(index * 1000);
    w.end = SimTime::millis((index + 1) * 1000);
    w.ok = ok;
    return w;
  };
  // ok, bad, bad, ok, bad  ->  breach@1000/recover@3000, breach@4000 open.
  result.windows = {window(0, true), window(1, false), window(2, false),
                    window(3, true), window(4, false)};

  Journal journal;
  obs::append_slo_journal(result, journal);
  const auto events = journal.sorted_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, JournalKind::kSloBreach);
  EXPECT_EQ(events[0].at, SimTime::millis(1000));
  EXPECT_EQ(events[1].kind, JournalKind::kSloRecover);
  EXPECT_EQ(events[1].at, SimTime::millis(3000));
  EXPECT_EQ(events[2].kind, JournalKind::kSloBreach);
  EXPECT_EQ(events[2].at, SimTime::millis(4000));

  // The still-open violation run never recovered: MTTR grades -1.
  const IncidentReport report = obs::correlate_incidents(journal);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_DOUBLE_EQ(report.incidents[0].mttr_ms, -1.0);
}

TEST(IncidentTest, ReportJsonIsByteStable) {
  const auto build = [] {
    Journal journal;
    journal.record(SimTime::millis(1000), JournalKind::kFaultInject, 1,
                   "link_loss", 2, 3);
    journal.record(SimTime::millis(1500), JournalKind::kCacheDrain, 1,
                   "origin 2");
    journal.record(SimTime::millis(4000), JournalKind::kFaultClear, 1);
    return obs::incident_report_json(obs::correlate_incidents(journal));
  };
  const std::string json = build();
  EXPECT_EQ(json, build());
  EXPECT_NE(json.find("\"incidents\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mttd_ms\": 500"), std::string::npos);
  EXPECT_NE(json.find("\"action_counts\": {\"cache_drain\": 1}"),
            std::string::npos);
}

}  // namespace
}  // namespace mecdns
