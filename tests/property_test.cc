// Property-style tests: randomized inputs checked against invariants or
// reference models, parameterized over seeds.
#include <gtest/gtest.h>

#include <map>

#include "cdn/consistent_hash.h"
#include "dns/cache.h"
#include "dns/wire.h"
#include "util/rng.h"

namespace mecdns {
namespace {

// --- random DNS message <-> wire roundtrip -------------------------------------

dns::DnsName random_name(util::Rng& rng) {
  const std::size_t labels = 1 + rng.uniform_int(4u);
  std::string text;
  for (std::size_t i = 0; i < labels; ++i) {
    if (i != 0) text += ".";
    const std::size_t len = 1 + rng.uniform_int(12u);
    for (std::size_t j = 0; j < len; ++j) {
      text += static_cast<char>('a' + rng.uniform_int(26u));
    }
  }
  return dns::DnsName::must_parse(text);
}

dns::ResourceRecord random_record(util::Rng& rng) {
  dns::ResourceRecord rr;
  rr.name = random_name(rng);
  rr.ttl = static_cast<std::uint32_t>(rng.uniform_int(100000u));
  switch (rng.uniform_int(6u)) {
    case 0:
      rr.type = dns::RecordType::kA;
      rr.rdata = dns::ARecord{
          simnet::Ipv4Address(static_cast<std::uint32_t>(rng.next()))};
      break;
    case 1:
      rr.type = dns::RecordType::kCname;
      rr.rdata = dns::CnameRecord{random_name(rng)};
      break;
    case 2:
      rr.type = dns::RecordType::kNs;
      rr.rdata = dns::NsRecord{random_name(rng)};
      break;
    case 3: {
      rr.type = dns::RecordType::kTxt;
      dns::TxtRecord txt;
      const std::size_t n = 1 + rng.uniform_int(3u);
      for (std::size_t i = 0; i < n; ++i) {
        txt.strings.push_back("s" + std::to_string(rng.uniform_int(1000u)));
      }
      rr.rdata = std::move(txt);
      break;
    }
    case 4: {
      rr.type = dns::RecordType::kSrv;
      dns::SrvRecord srv;
      srv.priority = static_cast<std::uint16_t>(rng.next());
      srv.weight = static_cast<std::uint16_t>(rng.next());
      srv.port = static_cast<std::uint16_t>(rng.next());
      srv.target = random_name(rng);
      rr.rdata = std::move(srv);
      break;
    }
    default: {
      rr.type = dns::RecordType::kSoa;
      dns::SoaRecord soa;
      soa.mname = random_name(rng);
      soa.rname = random_name(rng);
      soa.serial = static_cast<std::uint32_t>(rng.next());
      soa.minimum = static_cast<std::uint32_t>(rng.uniform_int(86400u));
      rr.rdata = std::move(soa);
      break;
    }
  }
  return rr;
}

class WireRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTripProperty, RandomMessagesSurviveEncodeDecode) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    dns::Message msg;
    msg.header.id = static_cast<std::uint16_t>(rng.next());
    msg.header.qr = rng.bernoulli(0.5);
    msg.header.aa = rng.bernoulli(0.5);
    msg.header.rd = rng.bernoulli(0.5);
    msg.header.ra = rng.bernoulli(0.5);
    msg.header.rcode = static_cast<dns::RCode>(rng.uniform_int(6u));
    msg.questions.push_back(dns::Question{random_name(rng),
                                          dns::RecordType::kA,
                                          dns::RecordClass::kIn});
    const std::size_t answers = rng.uniform_int(5u);
    for (std::size_t i = 0; i < answers; ++i) {
      msg.answers.push_back(random_record(rng));
    }
    const std::size_t authorities = rng.uniform_int(3u);
    for (std::size_t i = 0; i < authorities; ++i) {
      msg.authorities.push_back(random_record(rng));
    }
    if (rng.bernoulli(0.5)) {
      msg.edns = dns::Edns{};
      if (rng.bernoulli(0.7)) {
        dns::ClientSubnet ecs;
        ecs.address =
            simnet::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
        ecs.source_prefix = static_cast<std::uint8_t>(rng.uniform_int(33u));
        // The wire truncates the address to the prefix; normalize so the
        // roundtrip comparison is exact.
        ecs.address = ecs.subnet().network();
        ecs.scope_prefix = static_cast<std::uint8_t>(rng.uniform_int(33u));
        msg.edns->client_subnet = ecs;
      }
      msg.edns->dnssec_ok = rng.bernoulli(0.5);
    }

    const auto decoded = dns::decode(dns::encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().header, msg.header);
    EXPECT_EQ(decoded.value().questions, msg.questions);
    EXPECT_EQ(decoded.value().answers, msg.answers);
    EXPECT_EQ(decoded.value().authorities, msg.authorities);
    EXPECT_EQ(decoded.value().edns == msg.edns, true);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Random byte strings never crash the decoder (it may succeed by luck, but
// must never read out of bounds; asan/ubsan in debug builds back this up).
class WireFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzProperty, RandomBytesNeverCrashDecoder) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t size = rng.uniform_int(80u);
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    (void)dns::decode(bytes);
  }
}

TEST_P(WireFuzzProperty, TruncatedValidMessagesNeverCrashDecoder) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    dns::Message msg = dns::make_query(
        static_cast<std::uint16_t>(rng.next()), random_name(rng),
        dns::RecordType::kA);
    msg.answers.push_back(random_record(rng));
    auto wire = dns::encode(msg);
    // Also flip a few random bytes.
    for (int flips = 0; flips < 3; ++flips) {
      wire[rng.uniform_int(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(8u));
    }
    for (std::size_t cut = 0; cut <= wire.size();
         cut += 1 + rng.uniform_int(4u)) {
      (void)dns::decode(std::span<const std::uint8_t>(wire.data(), cut));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzProperty,
                         ::testing::Values(101, 202, 303, 404));

// --- cache vs reference model -----------------------------------------------------

class CacheModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheModelProperty, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  dns::DnsCache cache(/*max_entries=*/64);

  struct ModelEntry {
    simnet::SimTime expires;
  };
  std::map<std::string, ModelEntry> model;

  simnet::SimTime now = simnet::SimTime::zero();
  for (int op = 0; op < 2000; ++op) {
    now += simnet::SimTime::seconds(static_cast<double>(rng.uniform_int(5u)));
    const std::string host = "h" + std::to_string(rng.uniform_int(40u));
    const auto name = dns::DnsName::must_parse(host + ".example.com");

    if (rng.bernoulli(0.5)) {
      const auto ttl = static_cast<std::uint32_t>(rng.uniform_int(30u));
      cache.insert(name, dns::RecordType::kA,
                   {dns::make_a(name, simnet::Ipv4Address(1), ttl)}, now);
      if (ttl > 0) {
        model[host] = ModelEntry{
            now + simnet::SimTime::seconds(static_cast<double>(ttl))};
      }
    } else {
      const auto hit = cache.lookup(name, dns::RecordType::kA, now);
      const auto it = model.find(host);
      const bool model_live = it != model.end() && it->second.expires > now;
      if (hit.has_value()) {
        // A real hit must be live in the model (the cache may have evicted
        // entries the model kept, so the converse does not hold).
        EXPECT_TRUE(model_live) << host << " at " << now.to_string();
      }
      if (it != model.end() && it->second.expires <= now) model.erase(it);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelProperty,
                         ::testing::Values(7, 77, 777));

// --- consistent hash invariants -----------------------------------------------------

class HashRingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashRingProperty, PickAlwaysReturnsALiveMember) {
  util::Rng rng(GetParam());
  cdn::ConsistentHashRing ring(32);
  std::map<std::string, bool> live;
  for (int op = 0; op < 500; ++op) {
    const std::string member = "m" + std::to_string(rng.uniform_int(12u));
    switch (rng.uniform_int(3u)) {
      case 0:
        ring.add(member);
        live[member] = true;
        break;
      case 1:
        ring.remove(member);
        live[member] = false;
        break;
      default: {
        const auto pick =
            ring.pick("key" + std::to_string(rng.uniform_int(1000u)));
        std::size_t live_count = 0;
        for (const auto& [m, alive] : live) {
          if (alive) ++live_count;
        }
        EXPECT_EQ(pick.has_value(), live_count > 0);
        if (pick.has_value()) {
          EXPECT_TRUE(live[*pick]) << *pick;
        }
        break;
      }
    }
    EXPECT_EQ(ring.size(), static_cast<std::size_t>(std::count_if(
                               live.begin(), live.end(),
                               [](const auto& kv) { return kv.second; })));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashRingProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mecdns
