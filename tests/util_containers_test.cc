// Tests for the PR 7 allocation-elimination containers: SmallVector (inline
// storage + growth), Arena (bump allocation, reset reuse, release),
// InlineFunction (SBO callbacks, heap fallback, recycling) and FlatHashMap
// (open addressing with backward-shift deletion), plus the thread-fresh
// registry gluing the arena to the campaign runner.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/flat_map.h"
#include "util/inline_function.h"
#include "util/rng.h"
#include "util/small_vector.h"
#include "util/thread_fresh.h"

namespace mecdns::util {
namespace {

// --- SmallVector ------------------------------------------------------------

/// Counts constructions/destructions so leaks and double-destroys surface
/// even without ASan.
struct Tracked {
  static int live;
  explicit Tracked(int v = 0) : value(v) { ++live; }
  Tracked(const Tracked& o) : value(o.value) { ++live; }
  Tracked(Tracked&& o) noexcept : value(o.value) { ++live; }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
  ~Tracked() { --live; }
  int value;
};
int Tracked::live = 0;

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<int, 4> v;
  const int* inline_data = v.data();
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.data(), inline_data);  // no heap spill yet
  v.push_back(4);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_NE(v.data(), inline_data);  // grew to the heap
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, GrowthPreservesElementsAcrossManyDoublings) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back("s" + std::to_string(i));
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], "s" + std::to_string(i));
  }
}

TEST(SmallVector, NonTrivialDestructorsRunExactlyOnce) {
  ASSERT_EQ(Tracked::live, 0);
  {
    SmallVector<Tracked, 2> v;
    for (int i = 0; i < 10; ++i) v.emplace_back(i);  // spills to heap
    EXPECT_EQ(Tracked::live, 10);
    v.pop_back();
    EXPECT_EQ(Tracked::live, 9);
    v.clear();
    EXPECT_EQ(Tracked::live, 0);
    for (int i = 0; i < 3; ++i) v.emplace_back(i);  // reuse after clear
    EXPECT_EQ(Tracked::live, 3);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(SmallVector, MoveStealsHeapAndCopiesInline) {
  SmallVector<int, 2> small{1, 2};
  SmallVector<int, 2> small_moved(std::move(small));
  EXPECT_EQ(small_moved.size(), 2u);
  EXPECT_EQ(small_moved[0], 1);

  SmallVector<int, 2> big{1, 2, 3, 4, 5};
  const int* heap_data = big.data();
  SmallVector<int, 2> big_moved(std::move(big));
  EXPECT_EQ(big_moved.size(), 5u);
  EXPECT_EQ(big_moved.data(), heap_data);  // heap buffer stolen, not copied
  EXPECT_EQ(big_moved[4], 5);
}

TEST(SmallVector, InteropWithStdVector) {
  const std::vector<int> src{7, 8, 9};
  SmallVector<int, 2> from_copy(src);
  EXPECT_EQ(from_copy.size(), 3u);
  EXPECT_EQ(from_copy[2], 9);

  std::vector<int> movable{1, 2, 3, 4};
  SmallVector<int, 2> from_move(std::move(movable));
  EXPECT_EQ(from_move.size(), 4u);

  SmallVector<int, 2> assigned;
  assigned = src;
  EXPECT_EQ(assigned, from_copy);
  EXPECT_NE(assigned, from_move);
}

TEST(SmallVector, InsertAndErase) {
  SmallVector<int, 4> v{1, 4};
  const int mid[] = {2, 3};
  v.insert(v.begin() + 1, mid, mid + 2);
  EXPECT_EQ(v, (SmallVector<int, 4>{1, 2, 3, 4}));
  v.erase(v.begin() + 2);
  EXPECT_EQ(v, (SmallVector<int, 4>{1, 2, 4}));
}

// --- Arena ------------------------------------------------------------------

TEST(Arena, BumpsWithinChunkAndAligns) {
  Arena arena(256);
  void* a = arena.alloc(10, 8);
  void* b = arena.alloc(10, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(arena.refills(), 1u);  // both fit the first chunk
}

TEST(Arena, ResetReusesMemoryWithoutRefill) {
  Arena arena(256);
  void* first = arena.alloc(64, 8);
  arena.reset();
  void* again = arena.alloc(64, 8);
  EXPECT_EQ(first, again);  // same chunk, same offset
  EXPECT_EQ(arena.refills(), 1u);
  // A steady-state loop never refills once capacity has been established.
  for (int i = 0; i < 100; ++i) {
    arena.reset();
    (void)arena.alloc(200, 8);
  }
  EXPECT_EQ(arena.refills(), 1u);
}

TEST(Arena, OverCapacityRequestGetsFittedChunk) {
  Arena arena(64);
  (void)arena.alloc(16, 8);
  void* big = arena.alloc(1 << 16, 64);  // far beyond doubling
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  EXPECT_EQ(arena.refills(), 2u);
  EXPECT_GE(arena.capacity(), (1u << 16));
  // After reset both chunks are reusable in order.
  arena.reset();
  (void)arena.alloc(32, 8);
  (void)arena.alloc(1 << 15, 8);
  EXPECT_EQ(arena.refills(), 2u);
}

TEST(Arena, ReleaseDropsCapacityToCold) {
  Arena arena(128);
  (void)arena.alloc(100, 8);
  (void)arena.alloc(300, 8);
  EXPECT_GT(arena.capacity(), 0u);
  arena.release();
  EXPECT_EQ(arena.capacity(), 0u);
  // Next alloc refills from scratch, exactly like a fresh arena.
  (void)arena.alloc(10, 8);
  EXPECT_EQ(arena.refills(), 3u);
}

TEST(Arena, AllocArrayIsTypedAndAligned) {
  Arena arena;
  double* d = arena.alloc_array<double>(16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  for (int i = 0; i < 16; ++i) d[i] = i * 1.5;
  EXPECT_EQ(d[15], 22.5);
}

// --- InlineFunction ---------------------------------------------------------

TEST(InlineFunction, InvokesSmallCallableInline) {
  int hits = 0;
  InlineFunction<void()> fn([&hits] { ++hits; });
  ASSERT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int hits = 0;
  InlineFunction<void()> a([&hits] { ++hits; });
  InlineFunction<void()> b(std::move(a));
  EXPECT_FALSE(a);
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
  InlineFunction<void()> c;
  EXPECT_FALSE(c);
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, CapturedStateDestroyedExactlyOnce) {
  ASSERT_EQ(Tracked::live, 0);
  {
    Tracked t(42);
    InlineFunction<int()> fn([t] { return t.value; });
    EXPECT_EQ(Tracked::live, 2);  // t + the capture
    EXPECT_EQ(fn(), 42);
    InlineFunction<int()> moved(std::move(fn));
    EXPECT_EQ(Tracked::live, 2);  // move, not copy
    EXPECT_EQ(moved(), 42);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunction, LargeCallableFallsBackToHeap) {
  // A capture bigger than any reasonable SBO buffer still works.
  struct Big {
    char payload[1024];
  };
  Big big{};
  big.payload[0] = 'x';
  big.payload[1023] = 'y';
  InlineFunction<char()> fn(
      [big] { return static_cast<char>(big.payload[0] ^ big.payload[1023]); });
  ASSERT_TRUE(fn);
  EXPECT_EQ(fn(), 'x' ^ 'y');
  InlineFunction<char()> moved(std::move(fn));
  EXPECT_EQ(moved(), 'x' ^ 'y');
}

TEST(InlineFunction, ArgumentsAndReturnValues) {
  InlineFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

// --- FlatHashMap ------------------------------------------------------------

TEST(FlatHashMap, BasicInsertFindErase) {
  FlatHashMap<std::string, int> m;
  EXPECT_TRUE(m.empty());
  m["one"] = 1;
  m["two"] = 2;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("one"), 1);
  EXPECT_EQ(m.count("three"), 0u);
  EXPECT_THROW(m.at("three"), std::out_of_range);
  EXPECT_EQ(m.erase("one"), 1u);
  EXPECT_EQ(m.erase("one"), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.find("one") == m.end());
  EXPECT_TRUE(m.find("two") != m.end());
}

TEST(FlatHashMap, EmplaceReportsExisting) {
  FlatHashMap<int, std::string> m;
  auto [it1, fresh1] = m.emplace(7, "seven");
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(it1->second, "seven");
  auto [it2, fresh2] = m.emplace(7, "SEVEN");
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(it2->second, "seven");  // first value wins
  EXPECT_EQ(m.size(), 1u);
}

/// Pathological hash forcing every key into one cluster: exercises linear
/// probing and backward-shift deletion harder than a good hash ever would.
struct CollidingHash {
  std::size_t operator()(int) const { return 0; }
};

TEST(FlatHashMap, BackwardShiftDeletionKeepsClusterReachable) {
  FlatHashMap<int, int, CollidingHash> m;
  for (int i = 0; i < 6; ++i) m[i] = i * 10;
  // Delete from the middle of the probe chain; everything behind the hole
  // must shift back and stay findable.
  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(0), 1u);
  for (int i : {1, 3, 4, 5}) {
    ASSERT_TRUE(m.find(i) != m.end()) << "lost key " << i;
    EXPECT_EQ(m.at(i), i * 10);
  }
  EXPECT_EQ(m.size(), 4u);
}

TEST(FlatHashMap, RandomChurnMatchesStdMap) {
  // Model check against std::map under seeded random insert/erase/lookup.
  FlatHashMap<std::uint32_t, std::uint64_t> flat;
  std::map<std::uint32_t, std::uint64_t> reference;
  Rng rng(1234);
  for (int step = 0; step < 20000; ++step) {
    const std::uint32_t key =
        static_cast<std::uint32_t>(rng.uniform_int(0, 255));
    const int op = static_cast<int>(rng.uniform_int(0, 2));
    if (op == 0) {
      flat[key] = step;
      reference[key] = step;
    } else if (op == 1) {
      EXPECT_EQ(flat.erase(key), reference.erase(key));
    } else {
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(flat.find(key) == flat.end());
      } else {
        ASSERT_TRUE(flat.find(key) != flat.end());
        EXPECT_EQ(flat.at(key), it->second);
      }
    }
    ASSERT_EQ(flat.size(), reference.size());
  }
  // Final sweep: both maps hold exactly the same pairs.
  std::size_t seen = 0;
  for (const auto& [k, v] : flat) {
    const auto it = reference.find(k);
    ASSERT_TRUE(it != reference.end());
    EXPECT_EQ(v, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, reference.size());
}

TEST(FlatHashMap, GrowthRehashesEverything) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 1000; ++i) m[i] = -i;
  EXPECT_EQ(m.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(m.at(i), -i);
}

TEST(FlatHashMap, NonTrivialValuesDestroyed) {
  ASSERT_EQ(Tracked::live, 0);
  {
    FlatHashMap<int, Tracked> m;
    for (int i = 0; i < 50; ++i) m.emplace(i, Tracked(i));
    EXPECT_EQ(Tracked::live, 50);
    for (int i = 0; i < 25; ++i) m.erase(i * 2);
    EXPECT_EQ(Tracked::live, 25);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(FlatHashMap, CopyAndMove) {
  FlatHashMap<int, std::string> a;
  a[1] = "one";
  a[2] = "two";
  FlatHashMap<int, std::string> b(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.at(1), "one");
  b[3] = "three";
  EXPECT_EQ(a.count(3), 0u);  // deep copy

  FlatHashMap<int, std::string> c(std::move(b));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(3), "three");
  a = std::move(c);
  EXPECT_EQ(a.size(), 3u);
}

// --- thread-fresh registry --------------------------------------------------

TEST(ThreadFresh, ResetInvokesRegisteredHooks) {
  static int resets = 0;
  register_thread_cache([](void* ctx) { ++*static_cast<int*>(ctx); }, &resets);
  const int before = resets;
  reset_thread_caches();
  reset_thread_caches();
  EXPECT_EQ(resets, before + 2);
}

}  // namespace
}  // namespace mecdns::util
