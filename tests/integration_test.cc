// End-to-end integration: DNS resolution + content fetch through the full
// stack (UE -> LTE RAN -> NAT P-GW -> MEC cluster -> CoreDNS -> Traffic
// Router -> edge cache -> origin), plus failure injection.
#include <gtest/gtest.h>

#include "core/fig5.h"
#include "workload/zipf.h"

namespace mecdns::core {
namespace {

using simnet::Ipv4Address;
using simnet::SimTime;

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() {
    Fig5Testbed::Config config;
    config.deployment = Fig5Deployment::kMecLdnsMecCdns;
    testbed_ = std::make_unique<Fig5Testbed>(config);
  }

  ran::UserEquipment::FetchOutcome fetch(const std::string& url) {
    ran::UserEquipment::FetchOutcome out;
    bool done = false;
    testbed_->ue().resolve_and_fetch(
        cdn::Url::must_parse(url),
        [&](const ran::UserEquipment::FetchOutcome& outcome) {
          out = outcome;
          done = true;
        });
    testbed_->network().simulator().run();
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<Fig5Testbed> testbed_;
};

TEST_F(EndToEndTest, ResolveAndFetchFromMecCache) {
  const auto outcome = fetch("video.demo1.mycdn.ciab.test/segment0000");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(testbed_->is_mec_cache(outcome.server));
  EXPECT_TRUE(outcome.response.served_from_cache);  // content was warmed
  EXPECT_EQ(outcome.response.size_bytes, 2u * 1024 * 1024);
  // DNS ~29ms + fetch one RTT over LTE into the cluster (~22ms).
  EXPECT_LT(outcome.total.to_millis(), 70.0);
  EXPECT_GT(outcome.dns_latency.to_millis(), 20.0);
  EXPECT_GT(outcome.fetch_latency.to_millis(), 15.0);
}

TEST_F(EndToEndTest, SmallManifestAlsoServedFromEdge) {
  const auto outcome = fetch("video.demo1.mycdn.ciab.test/index.m3u8");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.response.size_bytes, 4096u);
  EXPECT_TRUE(outcome.response.served_from_cache);
  // All catalog content was pushed at deploy time: no origin traffic.
  std::uint64_t parent_fetches = 0;
  for (auto* cache : testbed_->site().caches()) {
    parent_fetches += cache->stats().parent_fetches;
  }
  EXPECT_EQ(parent_fetches, 0u);
}

TEST_F(EndToEndTest, UnknownObjectMissesToOriginAnd404s) {
  // An object outside the origin catalog: edge miss -> parent fetch -> 404.
  const auto outcome = fetch("video.demo1.mycdn.ciab.test/not-there.ts");
  EXPECT_FALSE(outcome.ok);
  std::uint64_t parent_fetches = 0;
  for (auto* cache : testbed_->site().caches()) {
    parent_fetches += cache->stats().parent_fetches;
  }
  EXPECT_EQ(parent_fetches, 1u);  // the miss was forwarded upstream
}

TEST_F(EndToEndTest, CacheFailureReroutesViaHealthCheck) {
  // Mark the cache that owns the object unhealthy; the router must answer
  // with the surviving cache and fetches must keep succeeding.
  const auto before = fetch("video.demo1.mycdn.ciab.test/segment0002");
  ASSERT_TRUE(before.ok);
  const Ipv4Address original = before.server;

  cdn::TrafficRouter* router = testbed_->site().router();
  ASSERT_NE(router, nullptr);
  const auto caches = testbed_->site().caches();
  for (std::size_t i = 0; i < caches.size(); ++i) {
    if (testbed_->site().cache_address(i) == original) {
      router->set_cache_healthy("mec-edge", caches[i]->name(), false);
    }
  }
  const auto after = fetch("video.demo1.mycdn.ciab.test/segment0002");
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_NE(after.server, original);
  EXPECT_TRUE(testbed_->is_mec_cache(after.server));
}

TEST_F(EndToEndTest, ZipfWorkloadKeepsHighHitRateOnWarmEdge) {
  cdn::ContentCatalog catalog;
  catalog.add_series(
      dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"), "segment", 32,
      2 * 1024 * 1024);
  workload::RequestGenerator generator(catalog, 0.9, 99);

  int ok_count = 0;
  int hits = 0;
  for (int i = 0; i < 40; ++i) {
    const auto outcome = fetch(generator.next().to_string());
    if (outcome.ok) {
      ++ok_count;
      if (outcome.response.served_from_cache) ++hits;
    }
  }
  EXPECT_EQ(ok_count, 40);
  EXPECT_EQ(hits, 40);  // the whole catalog fits and is warmed
}

TEST_F(EndToEndTest, WirelessLossRecoversWithRetransmission) {
  // Inject 25% per-packet loss on the UE's air link; a stub with
  // retransmissions still resolves every time.
  Fig5Testbed::Config config;
  config.deployment = Fig5Deployment::kMecLdnsMecCdns;
  Fig5Testbed lossy(config);
  const simnet::LinkId air = lossy.ran().ue_link(lossy.ue().node());
  lossy.network().set_link_loss(air, 0.25);

  dns::StubResolver stub(
      lossy.network(), lossy.ue().node(), lossy.site().ldns_endpoint(),
      dns::DnsTransport::Options{SimTime::millis(300), 6});
  int successes = 0;
  const int attempts = 30;
  for (int i = 0; i < attempts; ++i) {
    bool ok = false;
    stub.resolve(lossy.content_name(), dns::RecordType::kA,
                 [&](const dns::StubResult& result) { ok = result.ok; });
    lossy.network().simulator().run();
    if (ok) ++successes;
  }
  EXPECT_EQ(successes, attempts);
  EXPECT_GT(lossy.network().stats().dropped_loss, 0u);
}

TEST_F(EndToEndTest, NetworkStatsBalance) {
  fetch("video.demo1.mycdn.ciab.test/segment0003");
  const auto& stats = testbed_->network().stats();
  EXPECT_GT(stats.sent, 0u);
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_EQ(stats.dropped_no_route, 0u);
  EXPECT_EQ(stats.dropped_ttl, 0u);
}

}  // namespace
}  // namespace mecdns::core
