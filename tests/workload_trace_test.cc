#include <gtest/gtest.h>

#include "workload/trace.h"

namespace mecdns::workload {
namespace {

TEST(MobilityTrace, ParsesAndRoundTrips) {
  const char* text =
      "# commute\n"
      "0 0\n"
      "5.5 1\n"
      "12 0  # back home\n";
  const auto trace = parse_mobility_trace(text);
  ASSERT_TRUE(trace.ok()) << trace.error().message;
  ASSERT_EQ(trace.value().size(), 3u);
  EXPECT_EQ(trace.value()[1].at, simnet::SimTime::seconds(5.5));
  EXPECT_EQ(trace.value()[1].cell, 1u);

  const auto round = parse_mobility_trace(to_text(trace.value()));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), trace.value());
}

TEST(MobilityTrace, RejectsMalformed) {
  EXPECT_FALSE(parse_mobility_trace("abc 0\n").ok());
  EXPECT_FALSE(parse_mobility_trace("1\n").ok());
  EXPECT_FALSE(parse_mobility_trace("1 x\n").ok());
  EXPECT_FALSE(parse_mobility_trace("5 0\n1 1\n").ok());  // out of order
  EXPECT_FALSE(parse_mobility_trace("1 0 extra\n").ok());
  EXPECT_FALSE(parse_mobility_trace("-1 0\n").ok());
}

TEST(MobilityTrace, SynthCommuteCyclesCells) {
  const auto trace = synth_commute(simnet::SimTime::seconds(100),
                                   simnet::SimTime::seconds(10), 3, 7);
  ASSERT_GT(trace.size(), 3u);
  EXPECT_EQ(trace.front().cell, 0u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].at, trace[i - 1].at);
    EXPECT_EQ(trace[i].cell, i % 3);
  }
}

TEST(RequestTrace, ParsesAndRoundTrips) {
  const char* text =
      "0.5 video.demo1.mycdn.test/segment0000\n"
      "1.25 video.demo1.mycdn.test/segment0001\n";
  const auto trace = parse_request_trace(text);
  ASSERT_TRUE(trace.ok()) << trace.error().message;
  ASSERT_EQ(trace.value().size(), 2u);
  EXPECT_EQ(trace.value()[0].url.path, "/segment0000");

  const auto round = parse_request_trace(to_text(trace.value()));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), trace.value());
}

TEST(RequestTrace, RejectsBadUrlAndOrder) {
  EXPECT_FALSE(parse_request_trace("1 bad url\n").ok());
  EXPECT_FALSE(parse_request_trace("2 a.test/x\n1 a.test/y\n").ok());
}

TEST(RequestTrace, SynthRespectsDurationAndCatalog) {
  cdn::ContentCatalog catalog;
  catalog.add_series(dns::DnsName::must_parse("v.test"), "seg", 20, 1000);
  const auto trace =
      synth_requests(catalog, 0.9, simnet::SimTime::seconds(60),
                     simnet::SimTime::millis(500), 3);
  ASSERT_GT(trace.size(), 50u);  // ~120 expected
  for (const auto& event : trace) {
    EXPECT_LE(event.at, simnet::SimTime::seconds(60));
    EXPECT_TRUE(catalog.contains(event.url));
  }
}

}  // namespace
}  // namespace mecdns::workload
