#include <gtest/gtest.h>

#include "dns/master.h"

namespace mecdns::dns {
namespace {

TEST(MasterFile, ParsesRepresentativeZone) {
  Zone zone(DnsName::must_parse("example.com"));
  const char* text = R"(
$TTL 300
@            IN SOA ns1 hostmaster 1 7200 900 1209600 60
@            IN NS  ns1
ns1          IN A   198.51.100.5
www      60  IN A   198.18.0.1
www          IN A   198.18.0.2   ; second address in the RRset
alias        IN CNAME www
*.apps       IN A   198.18.0.7
_dns._udp    IN SRV 10 20 53 ns1
note         IN TXT "hello world" plain
ptr          IN PTR www.example.com.
)";
  const auto result = load_master_text(zone, text);
  ASSERT_TRUE(result.ok()) << result.error().message;

  // SOA with parsed fields.
  const auto soa = zone.find(DnsName::must_parse("example.com"),
                             RecordType::kSoa);
  ASSERT_EQ(soa.size(), 1u);
  const auto& soa_data = std::get<SoaRecord>(soa[0].rdata);
  EXPECT_EQ(soa_data.mname, DnsName::must_parse("ns1.example.com"));
  EXPECT_EQ(soa_data.minimum, 60u);
  EXPECT_EQ(soa[0].ttl, 300u);  // $TTL applied

  // Per-record TTL override and RRset accumulation.
  const auto www = zone.find(DnsName::must_parse("www.example.com"),
                             RecordType::kA);
  ASSERT_EQ(www.size(), 2u);
  EXPECT_EQ(www[0].ttl, 60u);
  EXPECT_EQ(www[1].ttl, 300u);

  // Relative CNAME target.
  const auto alias = zone.lookup(DnsName::must_parse("alias.example.com"),
                                 RecordType::kA);
  EXPECT_EQ(alias.status, LookupStatus::kCname);

  // Wildcard works through normal lookup.
  const auto wild = zone.lookup(DnsName::must_parse("x.apps.example.com"),
                                RecordType::kA);
  EXPECT_EQ(wild.status, LookupStatus::kSuccess);

  // SRV fields.
  const auto srv = zone.find(DnsName::must_parse("_dns._udp.example.com"),
                             RecordType::kSrv);
  ASSERT_EQ(srv.size(), 1u);
  EXPECT_EQ(std::get<SrvRecord>(srv[0].rdata).port, 53u);

  // TXT with quoted and bare strings.
  const auto txt = zone.find(DnsName::must_parse("note.example.com"),
                             RecordType::kTxt);
  ASSERT_EQ(txt.size(), 1u);
  EXPECT_EQ(std::get<TxtRecord>(txt[0].rdata).strings,
            (std::vector<std::string>{"hello world", "plain"}));

  // Absolute PTR target kept absolute.
  const auto ptr = zone.find(DnsName::must_parse("ptr.example.com"),
                             RecordType::kPtr);
  ASSERT_EQ(ptr.size(), 1u);
  EXPECT_EQ(std::get<PtrRecord>(ptr[0].rdata).target,
            DnsName::must_parse("www.example.com"));
}

TEST(MasterFile, OriginDirectiveRebasesNames) {
  Zone zone(DnsName::must_parse("example.com"));
  const char* text = R"(
$ORIGIN sub.example.com.
www IN A 198.18.1.1
)";
  ASSERT_TRUE(load_master_text(zone, text).ok());
  EXPECT_EQ(zone.find(DnsName::must_parse("www.sub.example.com"),
                      RecordType::kA)
                .size(),
            1u);
}

TEST(MasterFile, OriginOutsideZoneRejected) {
  Zone zone(DnsName::must_parse("example.com"));
  EXPECT_FALSE(load_master_text(zone, "$ORIGIN other.net.\n").ok());
}

struct BadLineCase {
  const char* label;
  const char* text;
};
class MasterBadLineTest : public ::testing::TestWithParam<BadLineCase> {};

TEST_P(MasterBadLineTest, ReportsLineError) {
  Zone zone(DnsName::must_parse("example.com"));
  const auto result = load_master_text(zone, GetParam().text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, MasterBadLineTest,
    ::testing::Values(
        BadLineCase{"bad_type", "www IN WXYZ 1.2.3.4\n"},
        BadLineCase{"bad_addr", "www IN A 300.1.1.1\n"},
        BadLineCase{"missing_rdata", "www IN A\n"},
        BadLineCase{"soa_short", "@ IN SOA ns1 hostmaster 1 2 3\n"},
        BadLineCase{"multiline", "@ IN SOA ns1 hostmaster (\n1 2 3 4 5 )\n"},
        BadLineCase{"bad_ttl_directive", "$TTL abc\n"},
        BadLineCase{"outside_zone", "www.other.net. IN A 1.2.3.4\n"}),
    [](const ::testing::TestParamInfo<BadLineCase>& info) {
      return info.param.label;
    });

TEST(MasterFile, CommentsAndBlankLinesIgnored) {
  Zone zone(DnsName::must_parse("example.com"));
  const char* text =
      "; a full-line comment\n"
      "\n"
      "www IN A 198.18.0.1 ; trailing comment\n";
  ASSERT_TRUE(load_master_text(zone, text).ok());
  EXPECT_EQ(zone.record_count(), 1u);
}

TEST(MasterFile, DefaultTtlParameterUsedWithoutDirective) {
  Zone zone(DnsName::must_parse("example.com"));
  ASSERT_TRUE(load_master_text(zone, "www IN A 198.18.0.1\n", 1234).ok());
  EXPECT_EQ(zone.find(DnsName::must_parse("www.example.com"),
                      RecordType::kA)[0]
                .ttl,
            1234u);
}

TEST(MasterFile, CnameConflictSurfacesZoneError) {
  Zone zone(DnsName::must_parse("example.com"));
  const char* text =
      "www IN A 198.18.0.1\n"
      "www IN CNAME other\n";
  const auto result = load_master_text(zone, text);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace mecdns::dns
