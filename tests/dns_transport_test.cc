// Transaction-layer tests: matching, timeout, retransmission, spoofing.
#include <gtest/gtest.h>

#include "dns/server.h"
#include "dns/transport.h"
#include "util/strings.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

/// A server that answers per a script: drop the first N queries, then
/// respond (optionally from a spoofed source / with a mangled question).
class ScriptedServer {
 public:
  ScriptedServer(simnet::Network& net, simnet::NodeId node)
      : net_(net) {
    socket_ = net.open_socket(node, kDnsPort, [this](const simnet::Packet& p) {
      ++received_;
      if (drop_first_ > 0) {
        --drop_first_;
        return;
      }
      auto query = decode(p.payload);
      ASSERT_TRUE(query.ok());
      Message response = make_response(query.value());
      if (mangle_question_) {
        response.questions.front().name = DnsName::must_parse("evil.test");
      }
      response.answers.push_back(
          make_a(query.value().question().name,
                 Ipv4Address::must_parse("198.18.0.1"), 30));
      socket_->send_to(p.src, encode(response));
    });
  }

  int received() const { return received_; }
  void drop_first(int n) { drop_first_ = n; }
  void mangle_question(bool v) { mangle_question_ = v; }

 private:
  simnet::Network& net_;
  simnet::UdpSocket* socket_;
  int received_ = 0;
  int drop_first_ = 0;
  bool mangle_question_ = false;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : net_(sim_, util::Rng(3)) {
    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    server_node_ = net_.add_node("server", Ipv4Address::must_parse("10.0.0.2"));
    net_.add_link(client_node_, server_node_,
                  LatencyModel::constant(SimTime::millis(2)));
    server_ = std::make_unique<ScriptedServer>(net_, server_node_);
    transport_ = std::make_unique<DnsTransport>(net_, client_node_);
  }

  Endpoint server_endpoint() const {
    return {Ipv4Address::must_parse("10.0.0.2"), kDnsPort};
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_node_;
  simnet::NodeId server_node_;
  std::unique_ptr<ScriptedServer> server_;
  std::unique_ptr<DnsTransport> transport_;
};

TEST_F(TransportTest, QueryGetsResponseWithRtt) {
  bool done = false;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), {},
      [&](util::Result<Message> result, SimTime rtt) {
        done = true;
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().answers.size(), 1u);
        EXPECT_EQ(rtt, SimTime::millis(4));
      });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, TimesOutWhenServerSilent) {
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime rtt) {
        done = true;
        EXPECT_FALSE(result.ok());
        EXPECT_GE(rtt, SimTime::millis(100));
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport_->timeouts(), 1u);
}

TEST_F(TransportTest, RetransmissionRecovers) {
  server_->drop_first(2);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(50);
  options.max_retries = 3;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_TRUE(result.ok());
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport_->retransmissions(), 2u);
  EXPECT_EQ(server_->received(), 3);
}

TEST_F(TransportTest, RetriesExhaustedFails) {
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(50);
  options.max_retries = 2;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_FALSE(result.ok());
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server_->received(), 3);  // initial + 2 retries
}

TEST_F(TransportTest, RejectsResponseWithMangledQuestion) {
  server_->mangle_question(true);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(50);
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_FALSE(result.ok());  // mangled answer ignored -> timeout
      });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, RejectsSpoofedSource) {
  // A third party answers instead of the queried server: must be ignored.
  const simnet::NodeId spoofer =
      net_.add_node("spoofer", Ipv4Address::must_parse("10.0.0.66"));
  net_.add_link(client_node_, spoofer,
                LatencyModel::constant(SimTime::millis(1)));
  server_->drop_first(100);

  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(80);
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_FALSE(result.ok());
      });

  // The spoofer races a matching-id response from the wrong address.
  simnet::UdpSocket* socket = net_.open_socket(spoofer, kDnsPort, nullptr);
  sim_.schedule_at(SimTime::millis(1), [&] {
    Message fake = make_query(0, DnsName::must_parse("x.test"), RecordType::kA);
    fake.header.qr = true;
    // Try every plausible id (the transport's ids are sequential).
    for (std::uint32_t id = 1; id < 0x10000; id += 997) {
      fake.header.id = static_cast<std::uint16_t>(id);
      socket->send_to(transport_->local_endpoint(), encode(fake));
    }
  });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, ConcurrentQueriesGetDistinctIds) {
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    transport_->query(
        server_endpoint(),
        make_query(0, DnsName::must_parse("q" + std::to_string(i) + ".test"),
                   RecordType::kA),
        {},
        [&](util::Result<Message> result, SimTime) {
          ASSERT_TRUE(result.ok());
          ++answered;
        });
  }
  sim_.run();
  EXPECT_EQ(answered, 20);
}

TEST_F(TransportTest, Dns0x20QueryStillResolvesAgainstHonestServer) {
  // The scripted server echoes the question verbatim, so a randomized-case
  // query round-trips; comparisons stay case-insensitive at the DNS layer.
  DnsTransport::Options options;
  options.use_0x20 = true;
  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    transport_->query(
        server_endpoint(),
        make_query(0, DnsName::must_parse("mixedcasehost.example.test"),
                   RecordType::kA),
        options, [&](util::Result<Message> result, SimTime) {
          if (result.ok()) ++successes;
        });
  }
  sim_.run();
  EXPECT_EQ(successes, 10);
}

TEST_F(TransportTest, Dns0x20RejectsCaseNormalizedSpoof) {
  // A spoofing server that lowercases the echoed question defeats plain id
  // matching but not 0x20 verification.
  const simnet::NodeId evil_node =
      net_.add_node("evil", Ipv4Address::must_parse("10.0.0.9"));
  net_.add_link(client_node_, evil_node,
                LatencyModel::constant(SimTime::millis(1)));
  simnet::UdpSocket* evil_socket = nullptr;
  evil_socket = net_.open_socket(
      evil_node, kDnsPort, [&](const simnet::Packet& p) {
        auto query = decode(p.payload);
        ASSERT_TRUE(query.ok());
        Message response = make_response(query.value());
        // Normalize case (what an off-path guesser would send).
        response.questions.front().name = DnsName::must_parse(
            util::to_lower(query.value().question().name.to_string()));
        response.answers.push_back(make_a(response.questions.front().name,
                                          Ipv4Address::must_parse("6.6.6.6"),
                                          30));
        evil_socket->send_to(p.src, encode(response));
      });

  DnsTransport::Options options;
  options.use_0x20 = true;
  options.timeout = SimTime::millis(80);
  bool rejected = false;
  transport_->query(
      {Ipv4Address::must_parse("10.0.0.9"), kDnsPort},
      make_query(0, DnsName::must_parse("averylongmixedcasename.example.test"),
                 RecordType::kA),
      options, [&](util::Result<Message> result, SimTime) {
        rejected = !result.ok();  // case-mismatched answer dropped -> timeout
      });
  sim_.run();
  EXPECT_TRUE(rejected);
}

TEST_F(TransportTest, DestroyedTransportDisarmsPendingTimeouts) {
  // Regression: a transport destroyed with a pending query must not crash
  // when its timeout event later fires.
  server_->drop_first(100);
  {
    DnsTransport ephemeral(net_, client_node_);
    DnsTransport::Options options;
    options.timeout = SimTime::millis(500);
    ephemeral.query(server_endpoint(),
                    make_query(0, DnsName::must_parse("x.test"),
                               RecordType::kA),
                    options, [](util::Result<Message>, SimTime) {
                      FAIL() << "callback after destruction";
                    });
    sim_.run_until(sim_.now() + SimTime::millis(10));
  }  // transport destroyed here, timeout still queued
  sim_.run();  // must not segfault or invoke the callback
}

TEST_F(TransportTest, LateResponseAfterTimeoutIsIgnored) {
  // Server answers slower than the timeout; the callback must fire exactly
  // once (the timeout), and the late response must not crash or double-call.
  const simnet::NodeId slow_node =
      net_.add_node("slow", Ipv4Address::must_parse("10.0.0.3"));
  net_.add_link(client_node_, slow_node,
                LatencyModel::constant(SimTime::millis(300)));
  ScriptedServer slow_server(net_, slow_node);

  int calls = 0;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  transport_->query(
      {Ipv4Address::must_parse("10.0.0.3"), kDnsPort},
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        ++calls;
        EXPECT_FALSE(result.ok());
      });
  sim_.run();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mecdns::dns
