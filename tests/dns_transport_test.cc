// Transaction-layer tests: matching, timeout, retransmission, spoofing.
#include <gtest/gtest.h>

#include "dns/server.h"
#include "dns/transport.h"
#include "util/strings.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

/// A server that answers per a script: drop the first N queries, then
/// respond (optionally from a spoofed source / with a mangled question).
class ScriptedServer {
 public:
  ScriptedServer(simnet::Network& net, simnet::NodeId node)
      : net_(net) {
    socket_ = net.open_socket(node, kDnsPort, [this](const simnet::Packet& p) {
      ++received_;
      receive_times_.push_back(net_.now());
      if (drop_first_ > 0) {
        --drop_first_;
        return;
      }
      auto query = decode(p.payload);
      ASSERT_TRUE(query.ok());
      if (servfail_) {
        socket_->send_to(p.src,
                         encode(make_response(query.value(),
                                              RCode::kServFail)));
        return;
      }
      Message response = make_response(query.value());
      if (mangle_question_) {
        response.questions.front().name = DnsName::must_parse("evil.test");
      }
      response.answers.push_back(
          make_a(query.value().question().name,
                 Ipv4Address::must_parse("198.18.0.1"), 30));
      socket_->send_to(p.src, encode(response));
    });
  }

  int received() const { return received_; }
  /// Arrival time of every query (including dropped ones) — the probe the
  /// retry-spacing tests measure retransmission gaps with.
  const std::vector<SimTime>& receive_times() const { return receive_times_; }
  void drop_first(int n) { drop_first_ = n; }
  void mangle_question(bool v) { mangle_question_ = v; }
  void respond_servfail(bool v) { servfail_ = v; }

 private:
  simnet::Network& net_;
  simnet::UdpSocket* socket_;
  int received_ = 0;
  std::vector<SimTime> receive_times_;
  int drop_first_ = 0;
  bool mangle_question_ = false;
  bool servfail_ = false;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : net_(sim_, util::Rng(3)) {
    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    server_node_ = net_.add_node("server", Ipv4Address::must_parse("10.0.0.2"));
    net_.add_link(client_node_, server_node_,
                  LatencyModel::constant(SimTime::millis(2)));
    server_ = std::make_unique<ScriptedServer>(net_, server_node_);
    transport_ = std::make_unique<DnsTransport>(net_, client_node_);
  }

  Endpoint server_endpoint() const {
    return {Ipv4Address::must_parse("10.0.0.2"), kDnsPort};
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_node_;
  simnet::NodeId server_node_;
  std::unique_ptr<ScriptedServer> server_;
  std::unique_ptr<DnsTransport> transport_;
};

TEST_F(TransportTest, QueryGetsResponseWithRtt) {
  bool done = false;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), {},
      [&](util::Result<Message> result, SimTime rtt) {
        done = true;
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().answers.size(), 1u);
        EXPECT_EQ(rtt, SimTime::millis(4));
      });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, TimesOutWhenServerSilent) {
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime rtt) {
        done = true;
        EXPECT_FALSE(result.ok());
        EXPECT_GE(rtt, SimTime::millis(100));
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport_->timeouts(), 1u);
}

TEST_F(TransportTest, RetransmissionRecovers) {
  server_->drop_first(2);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(50);
  options.max_retries = 3;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_TRUE(result.ok());
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport_->retransmissions(), 2u);
  EXPECT_EQ(server_->received(), 3);
}

TEST_F(TransportTest, RetriesExhaustedFails) {
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(50);
  options.max_retries = 2;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_FALSE(result.ok());
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server_->received(), 3);  // initial + 2 retries
}

TEST_F(TransportTest, RejectsResponseWithMangledQuestion) {
  server_->mangle_question(true);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(50);
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_FALSE(result.ok());  // mangled answer ignored -> timeout
      });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, RejectsSpoofedSource) {
  // A third party answers instead of the queried server: must be ignored.
  const simnet::NodeId spoofer =
      net_.add_node("spoofer", Ipv4Address::must_parse("10.0.0.66"));
  net_.add_link(client_node_, spoofer,
                LatencyModel::constant(SimTime::millis(1)));
  server_->drop_first(100);

  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(80);
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_FALSE(result.ok());
      });

  // The spoofer races a matching-id response from the wrong address.
  simnet::UdpSocket* socket = net_.open_socket(spoofer, kDnsPort, nullptr);
  sim_.schedule_at(SimTime::millis(1), [&] {
    Message fake = make_query(0, DnsName::must_parse("x.test"), RecordType::kA);
    fake.header.qr = true;
    // Try every plausible id (the transport's ids are sequential).
    for (std::uint32_t id = 1; id < 0x10000; id += 997) {
      fake.header.id = static_cast<std::uint16_t>(id);
      socket->send_to(transport_->local_endpoint(), encode(fake));
    }
  });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, ConcurrentQueriesGetDistinctIds) {
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    transport_->query(
        server_endpoint(),
        make_query(0, DnsName::must_parse("q" + std::to_string(i) + ".test"),
                   RecordType::kA),
        {},
        [&](util::Result<Message> result, SimTime) {
          ASSERT_TRUE(result.ok());
          ++answered;
        });
  }
  sim_.run();
  EXPECT_EQ(answered, 20);
}

TEST_F(TransportTest, Dns0x20QueryStillResolvesAgainstHonestServer) {
  // The scripted server echoes the question verbatim, so a randomized-case
  // query round-trips; comparisons stay case-insensitive at the DNS layer.
  DnsTransport::Options options;
  options.use_0x20 = true;
  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    transport_->query(
        server_endpoint(),
        make_query(0, DnsName::must_parse("mixedcasehost.example.test"),
                   RecordType::kA),
        options, [&](util::Result<Message> result, SimTime) {
          if (result.ok()) ++successes;
        });
  }
  sim_.run();
  EXPECT_EQ(successes, 10);
}

TEST_F(TransportTest, Dns0x20RejectsCaseNormalizedSpoof) {
  // A spoofing server that lowercases the echoed question defeats plain id
  // matching but not 0x20 verification.
  const simnet::NodeId evil_node =
      net_.add_node("evil", Ipv4Address::must_parse("10.0.0.9"));
  net_.add_link(client_node_, evil_node,
                LatencyModel::constant(SimTime::millis(1)));
  simnet::UdpSocket* evil_socket = nullptr;
  evil_socket = net_.open_socket(
      evil_node, kDnsPort, [&](const simnet::Packet& p) {
        auto query = decode(p.payload);
        ASSERT_TRUE(query.ok());
        Message response = make_response(query.value());
        // Normalize case (what an off-path guesser would send).
        response.questions.front().name = DnsName::must_parse(
            util::to_lower(query.value().question().name.to_string()));
        response.answers.push_back(make_a(response.questions.front().name,
                                          Ipv4Address::must_parse("6.6.6.6"),
                                          30));
        evil_socket->send_to(p.src, encode(response));
      });

  DnsTransport::Options options;
  options.use_0x20 = true;
  options.timeout = SimTime::millis(80);
  bool rejected = false;
  transport_->query(
      {Ipv4Address::must_parse("10.0.0.9"), kDnsPort},
      make_query(0, DnsName::must_parse("averylongmixedcasename.example.test"),
                 RecordType::kA),
      options, [&](util::Result<Message> result, SimTime) {
        rejected = !result.ok();  // case-mismatched answer dropped -> timeout
      });
  sim_.run();
  EXPECT_TRUE(rejected);
}

TEST_F(TransportTest, DestroyedTransportDisarmsPendingTimeouts) {
  // Regression: a transport destroyed with a pending query must not crash
  // when its timeout event later fires.
  server_->drop_first(100);
  {
    DnsTransport ephemeral(net_, client_node_);
    DnsTransport::Options options;
    options.timeout = SimTime::millis(500);
    ephemeral.query(server_endpoint(),
                    make_query(0, DnsName::must_parse("x.test"),
                               RecordType::kA),
                    options, [](util::Result<Message>, SimTime) {
                      FAIL() << "callback after destruction";
                    });
    sim_.run_until(sim_.now() + SimTime::millis(10));
  }  // transport destroyed here, timeout still queued
  sim_.run();  // must not segfault or invoke the callback
}

TEST_F(TransportTest, LateResponseAfterTimeoutIsIgnored) {
  // Server answers slower than the timeout; the callback must fire exactly
  // once (the timeout), and the late response must not crash or double-call.
  const simnet::NodeId slow_node =
      net_.add_node("slow", Ipv4Address::must_parse("10.0.0.3"));
  net_.add_link(client_node_, slow_node,
                LatencyModel::constant(SimTime::millis(300)));
  ScriptedServer slow_server(net_, slow_node);

  int calls = 0;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  transport_->query(
      {Ipv4Address::must_parse("10.0.0.3"), kDnsPort},
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        ++calls;
        EXPECT_FALSE(result.ok());
      });
  sim_.run();
  EXPECT_EQ(calls, 1);
}

TEST_F(TransportTest, IdWrapAroundSkipsInFlightQuery) {
  // Regression: force the id counter onto an in-flight transaction's id.
  // The second query must get a different id — clobbering the pending
  // entry would drop the first query's callback and cross the answers.
  server_->drop_first(1);  // keep query A in flight past B's send
  transport_->set_next_id(0xFFFF);

  int a_calls = 0;
  int b_calls = 0;
  std::uint16_t a_id = 0;
  std::uint16_t b_id = 0;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  options.max_retries = 1;  // A's first send is dropped; retry answers it
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("a.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        ++a_calls;
        ASSERT_TRUE(result.ok());
        a_id = result.value().header.id;
        EXPECT_EQ(result.value().question().name.to_string(), "a.test");
      });

  // While A waits on id 0xFFFF, wind the counter back onto it.
  transport_->set_next_id(0xFFFF);
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("b.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        ++b_calls;
        ASSERT_TRUE(result.ok());
        b_id = result.value().header.id;
        EXPECT_EQ(result.value().question().name.to_string(), "b.test");
      });

  sim_.run();
  EXPECT_EQ(a_calls, 1);
  EXPECT_EQ(b_calls, 1);
  EXPECT_EQ(a_id, 0xFFFF);
  EXPECT_NE(a_id, b_id);
}

TEST_F(TransportTest, IdWrapAroundSkipsZero) {
  // Id 0 is reserved as "unassigned": wrapping past 0xFFFF must land on 1.
  transport_->set_next_id(0xFFFF);
  std::vector<std::uint16_t> ids;
  for (int i = 0; i < 2; ++i) {
    transport_->query(
        server_endpoint(),
        make_query(0, DnsName::must_parse("w.test"), RecordType::kA), {},
        [&](util::Result<Message> result, SimTime) {
          ASSERT_TRUE(result.ok());
          ids.push_back(result.value().header.id);
        });
    sim_.run();
  }
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0xFFFF);
  EXPECT_EQ(ids[1], 1);
}

TEST_F(TransportTest, ExponentialBackoffSpreadsRetries) {
  // timeout 100ms, factor 2: attempts at 0/100/300 ms, failure at 700 ms.
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  options.max_retries = 2;
  options.backoff_factor = 2.0;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime rtt) {
        done = true;
        EXPECT_FALSE(result.ok());
        EXPECT_EQ(rtt, SimTime::millis(700));
      });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, BackoffRespectsCap) {
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  options.max_retries = 3;
  options.backoff_factor = 10.0;
  options.max_backoff = SimTime::millis(150);
  // Timers: 100, then capped at 150 thrice -> failure at 550 ms.
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime rtt) {
        done = true;
        EXPECT_FALSE(result.ok());
        EXPECT_EQ(rtt, SimTime::millis(550));
      });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(TransportTest, JitteredBackoffNeverExceedsCap) {
  // Regression: the old retry_interval clamped to max_backoff *before*
  // applying jitter, so every jittered retry overshot the cap by up to the
  // full jitter fraction — a 150 ms cap with 0.5 jitter produced timers up
  // to 225 ms. The cap is a hard bound; jitter must spread timers below it.
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  options.max_retries = 4;
  options.backoff_factor = 10.0;
  options.max_backoff = SimTime::millis(150);
  options.retry_jitter = 0.5;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_FALSE(result.ok());
      });
  sim_.run();
  EXPECT_TRUE(done);

  // 5 sends (initial + 4 retries); measure the gap between consecutive
  // arrivals at the server (link latency is constant, so gaps == timers).
  const auto& at = server_->receive_times();
  ASSERT_EQ(at.size(), 5u);
  int gaps_at_cap = 0;
  for (std::size_t i = 1; i < at.size(); ++i) {
    const SimTime gap = at[i] - at[i - 1];
    EXPECT_LE(gap, options.max_backoff)
        << "retry " << i << " fired past max_backoff";
    if (gap == options.max_backoff) ++gaps_at_cap;
  }
  // Once backoff saturates the cap (attempt 2 onward: 100*10 >= 150), the
  // jittered timer always lands above the cap and the re-clamp pins it at
  // exactly 150 ms — under the old order these gaps all exceeded the cap
  // with probability 1 (jitter draws are uniform over [0, 0.5)).
  EXPECT_GE(gaps_at_cap, 3);
}

TEST_F(TransportTest, UncappedBackoffSaturatesInsteadOfOverflowing) {
  // Regression: an uncapped aggressive backoff (factor 10) used to multiply
  // the interval once per attempt with no bound — enough retries pushed the
  // double to +inf and the nanosecond cast into UB. The interval must
  // saturate at the one-hour ceiling and the transaction must complete.
  server_->drop_first(100);
  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  options.max_retries = 8;
  options.backoff_factor = 10.0;  // uncapped: max_backoff stays zero
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime rtt) {
        done = true;
        EXPECT_FALSE(result.ok());
        // Intervals 0.1/1/10/100/1000 s, then four ticks pinned at the
        // 3600 s ceiling: the failure lands at exactly 15511.1 s.
        EXPECT_EQ(rtt, SimTime::millis(15511100));
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server_->received(), 9);
  EXPECT_EQ(transport_->timeouts(), 1u);
}

TEST_F(TransportTest, IdExhaustionFailsFastInsteadOfSpinning) {
  // Regression: with all 65535 transaction ids in flight, the id allocator
  // used to hunt a free id forever. The 65536th query must fail fast with
  // an immediate (async, still never-reentrant) error.
  DnsTransport::Options options;
  options.timeout = SimTime::seconds(30);  // keep every query in flight
  const Endpoint blackhole{Ipv4Address::must_parse("10.200.0.1"), kDnsPort};
  int errors = 0;
  for (int i = 0; i < 0xFFFF; ++i) {
    transport_->query(blackhole,
                      make_query(0, DnsName::must_parse("x.test"),
                                 RecordType::kA),
                      options,
                      [&](util::Result<Message> result, SimTime) {
                        if (!result.ok()) ++errors;
                      });
  }
  EXPECT_EQ(transport_->id_exhausted(), 0u);

  bool rejected = false;
  transport_->query(blackhole,
                    make_query(0, DnsName::must_parse("one-too-many.test"),
                               RecordType::kA),
                    options, [&](util::Result<Message> result, SimTime rtt) {
                      rejected = true;
                      EXPECT_FALSE(result.ok());
                      EXPECT_EQ(rtt, SimTime::zero());
                    });
  EXPECT_FALSE(rejected);  // delivered from the event loop, not re-entrantly
  sim_.run_until(sim_.now() + SimTime::millis(1));
  EXPECT_TRUE(rejected);
  EXPECT_EQ(transport_->id_exhausted(), 1u);
  EXPECT_EQ(errors, 0);  // the 65535 in-flight queries are still pending
}

TEST_F(TransportTest, FailsOverToFallbackServerOnTimeout) {
  // Primary never answers; the transaction must move to the fallback and
  // succeed instead of reporting a timeout.
  server_->drop_first(100);
  const simnet::NodeId backup_node =
      net_.add_node("backup", Ipv4Address::must_parse("10.0.0.4"));
  net_.add_link(client_node_, backup_node,
                LatencyModel::constant(SimTime::millis(2)));
  ScriptedServer backup(net_, backup_node);

  bool done = false;
  DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  options.fallback_servers = {{Ipv4Address::must_parse("10.0.0.4"), kDnsPort}};
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        EXPECT_TRUE(result.ok());
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport_->failovers(), 1u);
  EXPECT_EQ(backup.received(), 1);
}

TEST_F(TransportTest, ServfailFailsOverWhenEnabled) {
  server_->respond_servfail(true);
  const simnet::NodeId backup_node =
      net_.add_node("backup", Ipv4Address::must_parse("10.0.0.4"));
  net_.add_link(client_node_, backup_node,
                LatencyModel::constant(SimTime::millis(2)));
  ScriptedServer backup(net_, backup_node);

  bool done = false;
  DnsTransport::Options options;
  options.fallback_servers = {{Ipv4Address::must_parse("10.0.0.4"), kDnsPort}};
  options.failover_on_servfail = true;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.value().header.rcode, RCode::kNoError);
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport_->servfails(), 1u);
  EXPECT_EQ(transport_->failovers(), 1u);
}

TEST_F(TransportTest, ServfailDeliveredWhenFailoverDisabled) {
  server_->respond_servfail(true);
  bool done = false;
  DnsTransport::Options options;
  options.failover_on_servfail = false;
  transport_->query(
      server_endpoint(),
      make_query(0, DnsName::must_parse("x.test"), RecordType::kA), options,
      [&](util::Result<Message> result, SimTime) {
        done = true;
        ASSERT_TRUE(result.ok());  // delivered, not retried
        EXPECT_EQ(result.value().header.rcode, RCode::kServFail);
      });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(transport_->servfails(), 1u);
  EXPECT_EQ(transport_->failovers(), 0u);
}

}  // namespace
}  // namespace mecdns::dns
