// obs/analysis tests: critical-path extraction over hand-built span trees —
// self-time vs child-time attribution, per-stage aggregation, slowest-N
// exemplars and unfinished-span accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/analysis.h"

namespace mecdns::obs {
namespace {

SpanInfo span(SpanId id, SpanId parent, std::string component,
              std::string name, double start_ms, double dur_ms,
              bool finished = true) {
  SpanInfo info;
  info.id = id;
  info.parent = parent;
  info.component = std::move(component);
  info.name = std::move(name);
  info.start_ms = start_ms;
  info.dur_ms = dur_ms;
  info.finished = finished;
  return info;
}

TEST(CriticalPathTest, SelfTimeExcludesDirectChildren) {
  // root (100 ms) -> transport (30) + ldns (20); ldns -> plugin (5).
  const std::vector<SpanInfo> spans = {
      span(1, 0, "stub", "lookup", 0.0, 100.0),
      span(2, 1, "transport", "rpc", 5.0, 30.0),
      span(3, 1, "ldns", "serve", 40.0, 20.0),
      span(4, 3, "plugin", "rewrite", 42.0, 5.0),
  };
  const CriticalPathReport report = critical_path(spans);

  ASSERT_EQ(report.stages.size(), 4u);
  // First-appearance order.
  EXPECT_EQ(report.stages[0].stage, "stub");
  EXPECT_EQ(report.stages[1].stage, "transport");
  EXPECT_EQ(report.stages[2].stage, "ldns");
  EXPECT_EQ(report.stages[3].stage, "plugin");

  EXPECT_DOUBLE_EQ(report.stages[0].total_self_ms, 50.0);  // 100 - 30 - 20
  EXPECT_DOUBLE_EQ(report.stages[0].total_child_ms, 50.0);
  EXPECT_DOUBLE_EQ(report.stages[1].total_self_ms, 30.0);  // leaf
  EXPECT_DOUBLE_EQ(report.stages[2].total_self_ms, 15.0);  // 20 - 5
  EXPECT_DOUBLE_EQ(report.stages[3].total_self_ms, 5.0);

  EXPECT_EQ(report.roots, 1u);
  EXPECT_DOUBLE_EQ(report.total_root_ms, 100.0);
  EXPECT_EQ(report.unfinished, 0u);

  // Self times partition the root's wall time exactly.
  double total_self = 0.0;
  for (const auto& stage : report.stages) total_self += stage.total_self_ms;
  EXPECT_DOUBLE_EQ(total_self, 100.0);
}

TEST(CriticalPathTest, ClampsNegativeSelfTime) {
  // Overlapping async children cover more than the parent's wall time.
  const std::vector<SpanInfo> spans = {
      span(1, 0, "root", "r", 0.0, 10.0),
      span(2, 1, "child", "a", 0.0, 8.0),
      span(3, 1, "child", "b", 0.0, 8.0),
  };
  const CriticalPathReport report = critical_path(spans);
  EXPECT_DOUBLE_EQ(report.stages[0].total_self_ms, 0.0);  // not -6
  EXPECT_DOUBLE_EQ(report.stages[1].total_self_ms, 16.0);
}

TEST(CriticalPathTest, AggregatesAcrossRootsPerStage) {
  std::vector<SpanInfo> spans;
  for (int i = 0; i < 3; ++i) {
    const SpanId root = static_cast<SpanId>(2 * i + 1);
    spans.push_back(span(root, 0, "stub", "lookup", i * 100.0, 50.0));
    spans.push_back(
        span(root + 1, root, "transport", "rpc", i * 100.0 + 5, 20.0));
  }
  const CriticalPathReport report = critical_path(spans);
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].spans, 3u);
  EXPECT_DOUBLE_EQ(report.stages[0].total_self_ms, 90.0);  // 3 * (50-20)
  EXPECT_EQ(report.stages[1].spans, 3u);
  EXPECT_EQ(report.stages[1].self_ms.count(), 3u);
  EXPECT_DOUBLE_EQ(report.stages[1].self_ms.mean(), 20.0);
  EXPECT_EQ(report.roots, 3u);
}

TEST(CriticalPathTest, SlowestExemplarsSortedWithStableTies) {
  std::vector<SpanInfo> spans;
  const double durations[] = {10.0, 50.0, 30.0, 50.0, 20.0};
  for (std::size_t i = 0; i < 5; ++i) {
    spans.push_back(span(static_cast<SpanId>(i + 1), 0, "stub",
                         "q" + std::to_string(i), i * 100.0, durations[i]));
  }
  const CriticalPathReport report = critical_path(spans, 3);
  ASSERT_EQ(report.slowest.size(), 3u);
  EXPECT_EQ(report.slowest[0].root, 2u);  // 50 ms, lower id wins the tie
  EXPECT_EQ(report.slowest[1].root, 4u);  // 50 ms
  EXPECT_EQ(report.slowest[2].root, 3u);  // 30 ms
  EXPECT_DOUBLE_EQ(report.slowest[0].total_ms, 50.0);
}

TEST(CriticalPathTest, UnfinishedSpansCountedButExcluded) {
  const std::vector<SpanInfo> spans = {
      span(1, 0, "stub", "done", 0.0, 40.0),
      span(2, 1, "transport", "rpc", 1.0, 10.0),
      span(3, 0, "stub", "hung", 50.0, 0.0, /*finished=*/false),
  };
  const CriticalPathReport report = critical_path(spans);
  EXPECT_EQ(report.unfinished, 1u);
  EXPECT_EQ(report.roots, 1u);  // the hung root is not aggregated
  EXPECT_DOUBLE_EQ(report.total_root_ms, 40.0);
  ASSERT_EQ(report.slowest.size(), 1u);
  EXPECT_EQ(report.slowest[0].root, 1u);
}

TEST(CriticalPathTest, ExportAndTableNameEveryStage) {
  const std::vector<SpanInfo> spans = {
      span(1, 0, "stub", "lookup", 0.0, 100.0),
      span(2, 1, "transport", "rpc", 5.0, 30.0),
  };
  const CriticalPathReport report = critical_path(spans);

  Registry registry;
  export_critical_path(report, registry);
  EXPECT_EQ(registry.counter_value("critpath.roots"), 1u);
  EXPECT_EQ(registry.counter_value("critpath.stub.spans"), 1u);
  EXPECT_EQ(registry.histogram("critpath.transport.self_ms").count(), 1u);

  const std::string table = stage_table(report);
  EXPECT_NE(table.find("stub"), std::string::npos);
  EXPECT_NE(table.find("transport"), std::string::npos);
  EXPECT_NE(table.find("1 roots"), std::string::npos);
}

}  // namespace
}  // namespace mecdns::obs
