// Overload-safe degradation controls: queue-probe admission in the ingress
// guard, the SERVFAIL shed policy, the AutoScaler control loop, and the
// site's elastic replica pool with its mec.ingress.* metric export.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/mec_cdn.h"
#include "dns/message.h"
#include "dns/plugin.h"
#include "mec/autoscaler.h"
#include "mec/ingress.h"
#include "obs/metrics.h"
#include "simnet/simulator.h"
#include "util/rng.h"

namespace mecdns {
namespace {

using mec::AutoScaler;
using mec::IngressMonitor;
using mec::OverloadAction;
using mec::OverloadGuardPlugin;
using simnet::SimTime;

dns::PluginContext make_ctx(SimTime at) {
  dns::PluginContext ctx;
  ctx.query = dns::make_query(1, dns::DnsName::must_parse("x.test"),
                              dns::RecordType::kA);
  ctx.net.received = at;
  return ctx;
}

TEST(OverloadControls, QueueProbeShedsWhenBacklogReachesLimit) {
  IngressMonitor monitor(SimTime::seconds(1));
  // Rate threshold far away: only the queue probe can shed here.
  OverloadGuardPlugin guard(monitor, 1000, OverloadAction::kServFail);
  std::size_t depth = 0;
  guard.set_queue_probe([&depth] { return depth; }, 4);

  int admitted = 0;
  int servfails = 0;
  const auto serve = [&](SimTime at) {
    guard.serve(make_ctx(at),
                [&](dns::Message response) {
                  if (response.header.rcode == dns::RCode::kServFail) {
                    ++servfails;
                  }
                },
                [&](dns::Plugin::Respond) { ++admitted; });
  };
  serve(SimTime::millis(0));  // depth 0 -> admitted
  depth = 3;
  serve(SimTime::millis(100));  // below limit -> admitted
  depth = 4;
  serve(SimTime::millis(200));  // at limit -> shed, deterministic SERVFAIL
  depth = 9;
  serve(SimTime::millis(300));  // above limit -> shed
  depth = 1;
  serve(SimTime::millis(400));  // backlog drained -> admitted again

  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(servfails, 2);
  EXPECT_EQ(guard.shed_queue_full(), 2u);
  EXPECT_EQ(guard.shed(), 2u);
  // Queue sheds must not poison the rate window: only admitted queries
  // count toward the ingress rate.
  EXPECT_EQ(guard.admitted(), 3u);
}

TEST(OverloadControls, ServFailShedAnswersImmediately) {
  IngressMonitor monitor(SimTime::seconds(1));
  OverloadGuardPlugin guard(monitor, 1, OverloadAction::kServFail);
  int responses = 0;
  dns::RCode last = dns::RCode::kNoError;
  for (int i = 0; i < 3; ++i) {
    guard.serve(make_ctx(SimTime::millis(i)),
                [&](dns::Message response) {
                  ++responses;
                  last = response.header.rcode;
                },
                [](dns::Plugin::Respond) {});
  }
  // Unlike kDrop, every shed produces an answer — the fast failover
  // signal DnsTransport::failover_on_servfail consumes.
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(last, dns::RCode::kServFail);
}

TEST(OverloadControls, AutoScalerFollowsWatermarksWithCooldown) {
  simnet::Simulator sim;
  std::uint64_t load = 0;
  std::size_t replicas = 1;
  AutoScaler::Config config;
  config.interval = SimTime::seconds(1);
  config.scale_up_per_replica = 100.0;
  config.scale_down_per_replica = 20.0;
  config.min_replicas = 1;
  config.max_replicas = 3;
  config.cooldown_intervals = 2;
  AutoScaler scaler(
      sim, config, [&load] { return load; }, [&replicas] { return replicas; },
      [&replicas] {
        ++replicas;
        return true;
      },
      [&replicas] {
        --replicas;
        return true;
      });
  scaler.run_for(10);

  // The probe is a *cumulative* counter (like RouterStats::routed); the
  // scaler works off per-interval deltas. Keep the site hot through t=4s.
  for (int half_s = 1; half_s < 8; half_s += 2) {
    sim.schedule_at(SimTime::millis(500 * half_s), [&load] { load += 600; });
  }
  sim.run_until(SimTime::millis(1100));
  EXPECT_EQ(replicas, 2u);  // interval 1: 600 on 1 replica -> scale up
  EXPECT_EQ(scaler.scale_ups(), 1u);

  // Still hot during the cooldown: no second action until it expires.
  sim.run_until(SimTime::millis(2100));
  EXPECT_EQ(replicas, 2u);  // cooldown holds
  sim.run_until(SimTime::millis(4100));
  EXPECT_EQ(replicas, 3u);  // cooldown expired, still over watermark
  EXPECT_EQ(scaler.scale_ups(), 2u);

  // Load vanishes: scale back down to the floor, one step per cooldown.
  sim.run();
  EXPECT_EQ(replicas, config.min_replicas);
  EXPECT_GE(scaler.scale_downs(), 2u);
  EXPECT_EQ(scaler.ticks(), 10u);
}

TEST(OverloadControls, AutoScalerRespectsReplicaCeiling) {
  simnet::Simulator sim;
  std::uint64_t load = 0;
  std::size_t replicas = 1;
  AutoScaler::Config config;
  config.interval = SimTime::seconds(1);
  config.scale_up_per_replica = 10.0;
  config.scale_down_per_replica = 0.0;
  config.max_replicas = 2;
  config.cooldown_intervals = 0;
  AutoScaler scaler(
      sim, config, [&load] { return load += 1000; },
      [&replicas] { return replicas; },
      [&replicas] {
        ++replicas;
        return true;
      },
      [] { return false; });
  scaler.run_for(8);
  sim.run();
  EXPECT_EQ(replicas, 2u);  // forever hot, but never past the ceiling
  EXPECT_EQ(scaler.scale_ups(), 1u);
}

TEST(OverloadControls, SiteElasticityAddsRetiresAndReactivatesReplicas) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(5));
  core::MecCdnSite::Config config;
  config.overload_threshold_qps = 50;
  config.overload_action = OverloadAction::kServFail;
  config.overload_queue_limit = 8;
  core::MecCdnSite site(net, config);
  const std::size_t base = site.active_edge_caches();
  EXPECT_EQ(base, site.site_config().edge_caches);

  cdn::CacheServer* extra = site.add_edge_cache();
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(site.active_edge_caches(), base + 1);
  EXPECT_TRUE(site.retire_edge_cache());
  EXPECT_EQ(site.active_edge_caches(), base);
  // Reactivation reuses the retired server instead of burning addresses.
  EXPECT_EQ(site.add_edge_cache(), extra);
  for (std::size_t i = site.active_edge_caches(); i > 1; --i) {
    EXPECT_TRUE(site.retire_edge_cache());
  }
  EXPECT_FALSE(site.retire_edge_cache()) << "must keep the last replica";

  // The ingress state machine and the replica gauge are exported for the
  // report tooling: mec.ingress.* plus the elastic replica count.
  obs::Registry registry;
  site.export_metrics(registry, "site.");
  EXPECT_EQ(registry.counter_value("site.mec.ingress.admitted"), 0u);
  EXPECT_EQ(registry.counter_value("site.mec.ingress.shed"), 0u);
  EXPECT_EQ(registry.counter_value("site.mec.ingress.shed_queue_full"), 0u);
  EXPECT_EQ(registry.counter_value("site.mec.ingress.trips"), 0u);
  EXPECT_EQ(registry.gauge_value("site.mec.ingress.shedding"), 0.0);
  EXPECT_EQ(registry.gauge_value("site.mec.edge_replicas"), 1.0);
}

}  // namespace
}  // namespace mecdns
