#include <gtest/gtest.h>

#include "dns/zone.h"

namespace mecdns::dns {
namespace {

class ZoneTest : public ::testing::Test {
 protected:
  ZoneTest() : zone_(DnsName::must_parse("example.com")) {
    zone_.must_add(make_soa(DnsName::must_parse("example.com"),
                            DnsName::must_parse("ns1.example.com"), 1, 300,
                            3600));
    zone_.must_add(make_a(DnsName::must_parse("www.example.com"),
                          simnet::Ipv4Address::must_parse("198.18.0.1"), 60));
  }

  Zone zone_;
};

TEST_F(ZoneTest, ExactMatch) {
  const auto result =
      zone_.lookup(DnsName::must_parse("www.example.com"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kSuccess);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(std::get<ARecord>(result.records[0].rdata).address,
            simnet::Ipv4Address::must_parse("198.18.0.1"));
}

TEST_F(ZoneTest, NoDataForWrongType) {
  const auto result =
      zone_.lookup(DnsName::must_parse("www.example.com"), RecordType::kTxt);
  EXPECT_EQ(result.status, LookupStatus::kNoData);
  ASSERT_EQ(result.soa.size(), 1u);  // SOA for negative caching
}

TEST_F(ZoneTest, NxDomainWithSoa) {
  const auto result =
      zone_.lookup(DnsName::must_parse("nope.example.com"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kNxDomain);
  ASSERT_EQ(result.soa.size(), 1u);
}

TEST_F(ZoneTest, OutOfZone) {
  const auto result =
      zone_.lookup(DnsName::must_parse("www.other.net"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kOutOfZone);
}

TEST_F(ZoneTest, EmptyNonTerminalIsNoDataNotNxDomain) {
  zone_.must_add(make_a(DnsName::must_parse("deep.sub.example.com"),
                        simnet::Ipv4Address::must_parse("198.18.0.2"), 60));
  // "sub.example.com" exists only as an ancestor: NODATA per RFC 4592.
  const auto result =
      zone_.lookup(DnsName::must_parse("sub.example.com"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kNoData);
}

TEST_F(ZoneTest, CnameReturnedForOtherTypes) {
  zone_.must_add(make_cname(DnsName::must_parse("alias.example.com"),
                            DnsName::must_parse("www.example.com"), 60));
  const auto result =
      zone_.lookup(DnsName::must_parse("alias.example.com"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kCname);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(std::get<CnameRecord>(result.records[0].rdata).target,
            DnsName::must_parse("www.example.com"));
}

TEST_F(ZoneTest, CnameQueryReturnsTheCnameItself) {
  zone_.must_add(make_cname(DnsName::must_parse("alias.example.com"),
                            DnsName::must_parse("www.example.com"), 60));
  const auto result = zone_.lookup(DnsName::must_parse("alias.example.com"),
                                   RecordType::kCname);
  EXPECT_EQ(result.status, LookupStatus::kSuccess);
}

TEST_F(ZoneTest, CnameConflictsRejected) {
  zone_.must_add(make_cname(DnsName::must_parse("alias.example.com"),
                            DnsName::must_parse("www.example.com"), 60));
  // Other data at a CNAME owner is illegal (RFC 1034 §3.6.2)...
  EXPECT_FALSE(zone_.add(make_a(DnsName::must_parse("alias.example.com"),
                                simnet::Ipv4Address::must_parse("1.2.3.4"),
                                60))
                   .ok());
  // ...as is a CNAME at a name that already has data.
  EXPECT_FALSE(zone_.add(make_cname(DnsName::must_parse("www.example.com"),
                                    DnsName::must_parse("x.example.com"), 60))
                   .ok());
}

TEST_F(ZoneTest, DelegationReturnsNsAndGlue) {
  zone_.must_add(make_ns(DnsName::must_parse("child.example.com"),
                         DnsName::must_parse("ns1.child.example.com"), 3600));
  zone_.must_add(make_a(DnsName::must_parse("ns1.child.example.com"),
                        simnet::Ipv4Address::must_parse("198.18.0.53"),
                        3600));
  const auto result = zone_.lookup(
      DnsName::must_parse("deep.www.child.example.com"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kDelegation);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, RecordType::kNs);
  ASSERT_EQ(result.glue.size(), 1u);
  EXPECT_EQ(std::get<ARecord>(result.glue[0].rdata).address,
            simnet::Ipv4Address::must_parse("198.18.0.53"));
}

TEST_F(ZoneTest, ApexNsIsAuthoritativeNotDelegation) {
  zone_.must_add(make_ns(DnsName::must_parse("example.com"),
                         DnsName::must_parse("ns1.example.com"), 3600));
  const auto result =
      zone_.lookup(DnsName::must_parse("example.com"), RecordType::kNs);
  EXPECT_EQ(result.status, LookupStatus::kSuccess);
}

TEST_F(ZoneTest, NsQueryAtZoneCutIsReferral) {
  zone_.must_add(make_ns(DnsName::must_parse("child.example.com"),
                         DnsName::must_parse("ns1.child.example.com"), 3600));
  // Querying the cut itself for NS: answered from the NS set (not a lookup
  // below the cut), which our implementation treats as authoritative-style
  // success for the NS type.
  const auto result = zone_.lookup(DnsName::must_parse("child.example.com"),
                                   RecordType::kNs);
  EXPECT_EQ(result.status, LookupStatus::kSuccess);
}

TEST_F(ZoneTest, WildcardSynthesis) {
  zone_.must_add(make_a(DnsName::must_parse("*.apps.example.com"),
                        simnet::Ipv4Address::must_parse("198.18.0.7"), 60));
  const auto result =
      zone_.lookup(DnsName::must_parse("foo.apps.example.com"),
                   RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kSuccess);
  EXPECT_TRUE(result.from_wildcard);
  // Synthesized owner is the query name, not the wildcard.
  EXPECT_EQ(result.records[0].name,
            DnsName::must_parse("foo.apps.example.com"));
}

TEST_F(ZoneTest, WildcardDoesNotCoverExistingName) {
  zone_.must_add(make_a(DnsName::must_parse("*.apps.example.com"),
                        simnet::Ipv4Address::must_parse("198.18.0.7"), 60));
  zone_.must_add(make_txt(DnsName::must_parse("real.apps.example.com"),
                          {"x"}, 60));
  // The name exists (with TXT only): wildcard must NOT synthesize an A.
  const auto result = zone_.lookup(
      DnsName::must_parse("real.apps.example.com"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kNoData);
}

TEST_F(ZoneTest, AnyQueryCollectsAllTypes) {
  zone_.must_add(make_txt(DnsName::must_parse("www.example.com"), {"v=1"},
                          60));
  const auto result =
      zone_.lookup(DnsName::must_parse("www.example.com"), RecordType::kAny);
  EXPECT_EQ(result.status, LookupStatus::kSuccess);
  EXPECT_EQ(result.records.size(), 2u);  // A + TXT
}

TEST_F(ZoneTest, RemoveByNameAndType) {
  EXPECT_EQ(zone_.remove(DnsName::must_parse("www.example.com"),
                         RecordType::kA),
            1u);
  EXPECT_EQ(
      zone_.lookup(DnsName::must_parse("www.example.com"), RecordType::kA)
          .status,
      LookupStatus::kNxDomain);
  EXPECT_EQ(zone_.remove(DnsName::must_parse("www.example.com"),
                         RecordType::kA),
            0u);
}

TEST_F(ZoneTest, RemoveName) {
  zone_.must_add(make_txt(DnsName::must_parse("www.example.com"), {"x"}, 60));
  EXPECT_EQ(zone_.remove_name(DnsName::must_parse("www.example.com")), 2u);
}

TEST_F(ZoneTest, RecordOutsideOriginRejected) {
  EXPECT_FALSE(zone_.add(make_a(DnsName::must_parse("www.other.org"),
                                simnet::Ipv4Address::must_parse("1.1.1.1"),
                                60))
                   .ok());
}

TEST_F(ZoneTest, MultipleRecordsFormRrset) {
  zone_.must_add(make_a(DnsName::must_parse("www.example.com"),
                        simnet::Ipv4Address::must_parse("198.18.0.2"), 60));
  const auto result =
      zone_.lookup(DnsName::must_parse("www.example.com"), RecordType::kA);
  EXPECT_EQ(result.records.size(), 2u);
}

TEST_F(ZoneTest, CaseInsensitiveLookup) {
  const auto result =
      zone_.lookup(DnsName::must_parse("WWW.EXAMPLE.COM"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kSuccess);
}

TEST_F(ZoneTest, CountsRecords) {
  EXPECT_EQ(zone_.record_count(), 2u);
  EXPECT_EQ(zone_.all().size(), 2u);
  EXPECT_FALSE(zone_.empty());
}

}  // namespace
}  // namespace mecdns::dns
