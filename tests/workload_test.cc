#include <gtest/gtest.h>

#include "simnet/ip.h"
#include "workload/domains.h"
#include "workload/zipf.h"

namespace mecdns::workload {
namespace {

TEST(Domains, Table1MatchesPaper) {
  const auto& table = table1_domains();
  ASSERT_EQ(table.size(), 5u);
  EXPECT_EQ(table[0].website, "Airbnb");
  EXPECT_EQ(table[0].cdn_domain, "a0.muscache.com");
  EXPECT_EQ(table[4].cdn_domain, "a.cdn.intentmedia.net");
}

TEST(Domains, ProfilesAreInternallyConsistent) {
  for (const auto& profile : figure3_profiles()) {
    EXPECT_FALSE(profile.pools.empty()) << profile.website;
    for (const auto& [cls, weights] : profile.weights) {
      EXPECT_EQ(weights.size(), profile.pools.size()) << profile.website;
      double sum = 0;
      for (const double w : weights) {
        EXPECT_GE(w, 0.0);
        sum += w;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << profile.website << "/" << cls;
    }
    // All three network classes must be present.
    for (const auto& cls : network_classes()) {
      EXPECT_EQ(profile.weights.count(cls), 1u) << profile.website;
    }
    // Every pool CIDR parses.
    for (const auto& pool : profile.pools) {
      EXPECT_TRUE(simnet::Cidr::parse(pool.cidr).ok()) << pool.cidr;
    }
  }
}

TEST(Domains, ProfilesCoverTable1) {
  const auto& profiles = figure3_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  for (const auto& entry : table1_domains()) {
    bool found = false;
    for (const auto& profile : profiles) {
      if (profile.cdn_domain == entry.cdn_domain) found = true;
    }
    EXPECT_TRUE(found) << entry.cdn_domain;
  }
}

TEST(Zipf, RankZeroIsMostPopular) {
  ZipfGenerator zipf(100, 1.0);
  util::Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
  // With s=1, rank 0 should take roughly 1/H(100) ~ 19%.
  EXPECT_NEAR(counts[0] / 50000.0, 0.19, 0.03);
}

TEST(Zipf, HigherSkewConcentratesMore) {
  util::Rng rng1(6);
  util::Rng rng2(6);
  ZipfGenerator mild(1000, 0.6);
  ZipfGenerator steep(1000, 1.4);
  int mild_top = 0;
  int steep_top = 0;
  for (int i = 0; i < 20000; ++i) {
    if (mild.sample(rng1) < 10) ++mild_top;
    if (steep.sample(rng2) < 10) ++steep_top;
  }
  EXPECT_GT(steep_top, mild_top * 2);
}

TEST(Zipf, RejectsEmptySupport) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), std::invalid_argument);
}

TEST(RequestGenerator, DrawsFromCatalog) {
  cdn::ContentCatalog catalog;
  catalog.add_series(dns::DnsName::must_parse("v.test"), "seg", 50, 1000);
  RequestGenerator generator(catalog, 0.9, 11);
  EXPECT_EQ(generator.distinct(), 50u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(catalog.contains(generator.next()));
  }
}

TEST(Arrivals, PeriodicSchedule) {
  const auto schedule = periodic_arrivals(5, simnet::SimTime::millis(10),
                                          simnet::SimTime::seconds(1));
  ASSERT_EQ(schedule.size(), 5u);
  EXPECT_EQ(schedule[0], simnet::SimTime::seconds(1));
  EXPECT_EQ(schedule[4],
            simnet::SimTime::seconds(1) + simnet::SimTime::millis(40));
}

TEST(Arrivals, PoissonMeanGap) {
  const auto schedule = poisson_arrivals(20000, simnet::SimTime::millis(10),
                                         simnet::SimTime::zero(), 13);
  ASSERT_EQ(schedule.size(), 20000u);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i], schedule[i - 1]);  // monotone
  }
  const double total_ms = (schedule.back() - schedule.front()).to_millis();
  EXPECT_NEAR(total_ms / 19999.0, 10.0, 0.5);
}

}  // namespace
}  // namespace mecdns::workload
