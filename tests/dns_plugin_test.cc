// Plugin-chain server tests: the CoreDNS model and the split-namespace
// views at the heart of the paper's P1 design.
#include <gtest/gtest.h>

#include "dns/plugin.h"
#include "dns/stub.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class PluginTest : public ::testing::Test {
 protected:
  PluginTest() : net_(sim_, util::Rng(21)) {
    internal_client_ =
        net_.add_node("vnf", Ipv4Address::must_parse("10.240.0.7"));
    external_client_ =
        net_.add_node("mobile", Ipv4Address::must_parse("203.0.113.1"));
    server_node_ = net_.add_node("coredns", Ipv4Address::must_parse("10.240.0.2"));
    upstream_node_ =
        net_.add_node("upstream", Ipv4Address::must_parse("198.51.100.53"));
    net_.add_link(internal_client_, server_node_,
                  LatencyModel::constant(SimTime::micros(150)));
    net_.add_link(external_client_, server_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    net_.add_link(server_node_, upstream_node_,
                  LatencyModel::constant(SimTime::millis(5)));

    // Upstream: plain authoritative for the CDN domain.
    upstream_ = std::make_unique<AuthoritativeServer>(
        net_, upstream_node_, "upstream",
        LatencyModel::constant(SimTime::micros(300)));
    Zone& up_zone = upstream_->add_zone(DnsName::must_parse("mycdn.test"));
    up_zone.must_add(make_soa(DnsName::must_parse("mycdn.test"),
                              DnsName::must_parse("ns1.mycdn.test"), 1, 30,
                              30));
    up_zone.must_add(make_a(DnsName::must_parse("video.mycdn.test"),
                            Ipv4Address::must_parse("198.18.5.5"), 30));

    server_ = std::make_unique<PluginChainServer>(
        net_, server_node_, "coredns",
        LatencyModel::constant(SimTime::micros(400)));

    internal_zone_ = std::make_shared<Zone>(DnsName::must_parse("cluster.local"));
    internal_zone_->must_add(make_soa(DnsName::must_parse("cluster.local"),
                                      DnsName::must_parse("dns.cluster.local"),
                                      1, 30, 30));
    internal_zone_->must_add(
        make_a(DnsName::must_parse("traffic-router.cdn.svc.cluster.local"),
               Ipv4Address::must_parse("10.96.0.53"), 30));
    cache_ = std::make_shared<DnsCache>(128);
  }

  /// Builds the standard split-namespace layout used by several tests.
  void build_split_views() {
    PluginChain& internal = server_->add_view(
        "internal", {simnet::Cidr::must_parse("10.240.0.0/24")});
    internal.add(std::make_unique<ZonePlugin>(internal_zone_));
    internal.add(std::make_unique<RefusePlugin>());

    PluginChain& pub = server_->add_default_view("public");
    pub.add(std::make_unique<CachePlugin>(cache_));
    pub.add(std::make_unique<ForwardPlugin>(
        DnsName::must_parse("mycdn.test"),
        std::vector<Endpoint>{
            {Ipv4Address::must_parse("198.51.100.53"), kDnsPort}},
        server_->transport()));
    pub.add(std::make_unique<RefusePlugin>());
  }

  StubResult resolve_from(simnet::NodeId node, const std::string& name) {
    StubResolver stub(net_, node,
                      Endpoint{Ipv4Address::must_parse("10.240.0.2"),
                               kDnsPort});
    StubResult out;
    stub.resolve(DnsName::must_parse(name), RecordType::kA,
                 [&](const StubResult& result) { out = result; });
    sim_.run();
    return out;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId internal_client_;
  simnet::NodeId external_client_;
  simnet::NodeId server_node_;
  simnet::NodeId upstream_node_;
  std::unique_ptr<AuthoritativeServer> upstream_;
  std::unique_ptr<PluginChainServer> server_;
  std::shared_ptr<Zone> internal_zone_;
  std::shared_ptr<DnsCache> cache_;
};

TEST_F(PluginTest, ViewsSelectByClientAddress) {
  build_split_views();
  // Internal clients see the service-discovery namespace.
  const StubResult internal =
      resolve_from(internal_client_, "traffic-router.cdn.svc.cluster.local");
  EXPECT_TRUE(internal.ok);
  EXPECT_EQ(*internal.address, Ipv4Address::must_parse("10.96.0.53"));
  EXPECT_EQ(server_->last_view(), "internal");

  // External (mobile) clients do NOT: the public view has no such zone.
  const StubResult external =
      resolve_from(external_client_, "traffic-router.cdn.svc.cluster.local");
  EXPECT_FALSE(external.ok);
  EXPECT_EQ(external.rcode, RCode::kRefused);
  EXPECT_EQ(server_->last_view(), "public");
  EXPECT_EQ(server_->view_queries("internal"), 1u);
  EXPECT_EQ(server_->view_queries("public"), 1u);
}

TEST_F(PluginTest, PublicViewForwardsStubDomain) {
  build_split_views();
  const StubResult result = resolve_from(external_client_, "video.mycdn.test");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.5.5"));
  EXPECT_EQ(upstream_->stats().queries, 1u);
}

TEST_F(PluginTest, CachePluginShortCircuitsSecondQuery) {
  build_split_views();
  resolve_from(external_client_, "video.mycdn.test");
  EXPECT_EQ(upstream_->stats().queries, 1u);
  const StubResult second =
      resolve_from(external_client_, "video.mycdn.test");
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(upstream_->stats().queries, 1u);  // served from cache
  EXPECT_GE(cache_->stats().hits, 1u);
}

TEST_F(PluginTest, CachePluginCachesNegatives) {
  build_split_views();
  resolve_from(external_client_, "missing.mycdn.test");
  EXPECT_EQ(upstream_->stats().queries, 1u);
  const StubResult second =
      resolve_from(external_client_, "missing.mycdn.test");
  EXPECT_EQ(second.rcode, RCode::kNxDomain);
  EXPECT_EQ(upstream_->stats().queries, 1u);
}

TEST_F(PluginTest, NonMatchingQueryFallsThroughToRefuse) {
  build_split_views();
  const StubResult result =
      resolve_from(external_client_, "www.unrelated.org");
  EXPECT_EQ(result.rcode, RCode::kRefused);
  EXPECT_EQ(upstream_->stats().queries, 0u);
}

TEST_F(PluginTest, EmptyChainRefuses) {
  server_->add_default_view("empty");
  const StubResult result = resolve_from(external_client_, "x.test");
  EXPECT_EQ(result.rcode, RCode::kRefused);
}

TEST_F(PluginTest, ForwardPluginAddsEcsWhenConfigured) {
  PluginChain& pub = server_->add_default_view("public");
  auto forward = std::make_unique<ForwardPlugin>(
      DnsName::must_parse("mycdn.test"),
      std::vector<Endpoint>{{Ipv4Address::must_parse("198.51.100.53"),
                             kDnsPort}},
      server_->transport());
  forward->set_add_ecs(true, 24);
  pub.add(std::move(forward));

  const StubResult result = resolve_from(external_client_, "video.mycdn.test");
  EXPECT_TRUE(result.ok);
  // The upstream authoritative echoes ECS with scope 0; the forward relays
  // it back, so the client sees the subnet that was synthesized for it.
  ASSERT_TRUE(result.response.edns.has_value());
  ASSERT_TRUE(result.response.edns->client_subnet.has_value());
  EXPECT_EQ(result.response.edns->client_subnet->subnet().to_string(),
            "203.0.113.0/24");
}

TEST_F(PluginTest, ForwardPluginServfailsWhenUpstreamDead) {
  net_.set_node_up(upstream_node_, false);
  PluginChain& pub = server_->add_default_view("public");
  DnsTransport::Options fast_timeout;
  fast_timeout.timeout = SimTime::millis(50);
  pub.add(std::make_unique<ForwardPlugin>(
      DnsName::root(),
      std::vector<Endpoint>{{Ipv4Address::must_parse("198.51.100.53"),
                             kDnsPort}},
      server_->transport(), fast_timeout));
  const StubResult result = resolve_from(external_client_, "anything.test");
  EXPECT_EQ(result.rcode, RCode::kServFail);
}

TEST_F(PluginTest, RewritePluginMapsNamespaces) {
  PluginChain& pub = server_->add_default_view("public");
  pub.add(std::make_unique<RewritePlugin>(
      DnsName::must_parse("edge.mec"), DnsName::must_parse("mycdn.test")));
  pub.add(std::make_unique<ForwardPlugin>(
      DnsName::must_parse("mycdn.test"),
      std::vector<Endpoint>{{Ipv4Address::must_parse("198.51.100.53"),
                             kDnsPort}},
      server_->transport()));

  const StubResult result = resolve_from(external_client_, "video.edge.mec");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.5.5"));
  // Owner names are rewritten back to the client's namespace.
  ASSERT_FALSE(result.response.answers.empty());
  EXPECT_EQ(result.response.answers.front().name,
            DnsName::must_parse("video.edge.mec"));
}

TEST_F(PluginTest, DropPluginNeverAnswers) {
  PluginChain& pub = server_->add_default_view("public");
  auto drop = std::make_unique<DropPlugin>();
  DropPlugin* drop_ptr = drop.get();
  pub.add(std::move(drop));

  StubResolver stub(net_, external_client_,
                    Endpoint{Ipv4Address::must_parse("10.240.0.2"), kDnsPort},
                    DnsTransport::Options{SimTime::millis(50), 0});
  bool timed_out = false;
  stub.resolve(DnsName::must_parse("x.test"), RecordType::kA,
               [&](const StubResult& result) { timed_out = !result.ok; });
  sim_.run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(drop_ptr->dropped(), 1u);
}

TEST_F(PluginTest, LogPluginRecordsTraffic) {
  PluginChain& pub = server_->add_default_view("public");
  auto log = std::make_unique<LogPlugin>(/*capacity=*/2);
  LogPlugin* log_ptr = log.get();
  pub.add(std::move(log));
  pub.add(std::make_unique<ZonePlugin>(internal_zone_));

  resolve_from(external_client_, "traffic-router.cdn.svc.cluster.local");
  resolve_from(external_client_, "missing.cluster.local");
  resolve_from(external_client_, "also-missing.cluster.local");

  EXPECT_EQ(log_ptr->total_logged(), 3u);
  EXPECT_EQ(log_ptr->entries().size(), 2u);  // ring capacity enforced
  EXPECT_EQ(log_ptr->count(DnsName::must_parse("missing.cluster.local")), 1u);
  EXPECT_EQ(log_ptr->entries().back().rcode, RCode::kNxDomain);
  EXPECT_EQ(log_ptr->entries().back().client.addr,
            simnet::Ipv4Address::must_parse("203.0.113.1"));
}

TEST_F(PluginTest, ZonePluginServesDelegationAndNegative) {
  internal_zone_->must_add(
      make_ns(DnsName::must_parse("sub.cluster.local"),
              DnsName::must_parse("ns.sub.cluster.local"), 30));
  PluginChain& view = server_->add_default_view("zone-only");
  view.add(std::make_unique<ZonePlugin>(internal_zone_));

  const StubResult referral =
      resolve_from(external_client_, "deep.sub.cluster.local");
  EXPECT_TRUE(referral.response.answers.empty());
  EXPECT_EQ(referral.response.authorities.size(), 1u);

  const StubResult missing =
      resolve_from(external_client_, "nothere.cluster.local");
  EXPECT_EQ(missing.rcode, RCode::kNxDomain);
}

}  // namespace
}  // namespace mecdns::dns
