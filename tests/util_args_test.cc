#include <gtest/gtest.h>

#include "util/args.h"

namespace mecdns::util {
namespace {

ArgParser make_parser() {
  ArgParser args("test parser");
  args.add_string("name", "default", "a string");
  args.add_int("count", 10, "an int");
  args.add_double("rate", 1.5, "a double");
  args.add_bool("verbose", false, "a bool");
  args.add_bool("cache", true, "a default-true bool");
  return args;
}

Result<void> parse(ArgParser& args, std::vector<const char*> argv) {
  return args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApplyWithoutArgs) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {}).ok());
  EXPECT_EQ(args.get_string("name"), "default");
  EXPECT_EQ(args.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 1.5);
  EXPECT_FALSE(args.get_bool("verbose"));
  EXPECT_TRUE(args.get_bool("cache"));
}

TEST(ArgParser, EqualsAndSpaceForms) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"--name=foo", "--count", "42", "--rate=0.25"}).ok());
  EXPECT_EQ(args.get_string("name"), "foo");
  EXPECT_EQ(args.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.25);
}

TEST(ArgParser, BoolForms) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"--verbose", "--no-cache"}).ok());
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("cache"));

  ArgParser args2 = make_parser();
  ASSERT_TRUE(parse(args2, {"--verbose=false", "--cache=1"}).ok());
  EXPECT_FALSE(args2.get_bool("verbose"));
  EXPECT_TRUE(args2.get_bool("cache"));
}

TEST(ArgParser, PositionalCollected) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"one", "--count", "5", "two"}).ok());
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"one", "two"}));
}

TEST(ArgParser, Errors) {
  {
    ArgParser args = make_parser();
    EXPECT_FALSE(parse(args, {"--unknown"}).ok());
  }
  {
    ArgParser args = make_parser();
    EXPECT_FALSE(parse(args, {"--count", "abc"}).ok());
  }
  {
    ArgParser args = make_parser();
    EXPECT_FALSE(parse(args, {"--count"}).ok());  // missing value
  }
  {
    ArgParser args = make_parser();
    EXPECT_FALSE(parse(args, {"--verbose=maybe"}).ok());
  }
  {
    ArgParser args = make_parser();
    EXPECT_FALSE(parse(args, {"--rate=fast"}).ok());
  }
}

TEST(ArgParser, WrongTypeAccessThrows) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {}).ok());
  EXPECT_THROW(args.get_int("name"), std::logic_error);
  EXPECT_THROW(args.get_string("missing"), std::logic_error);
}

TEST(ArgParser, UsageListsFlags) {
  ArgParser args = make_parser();
  const std::string usage = args.usage("prog");
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace mecdns::util
