#include <gtest/gtest.h>

#include "simnet/ip.h"
#include "simnet/latency.h"
#include "simnet/network.h"
#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::simnet {
namespace {

// --- SimTime -------------------------------------------------------------------

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(SimTime::millis(1.5).count_nanos(), 1'500'000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2).to_millis(), 2000.0);
  EXPECT_EQ(SimTime::millis(1) + SimTime::micros(500),
            SimTime::micros(1500));
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ(SimTime::millis(3) * 2, SimTime::millis(6));
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::micros(250).to_string(), "250.000us");
  EXPECT_EQ(SimTime::millis(2.5).to_string(), "2.500ms");
  EXPECT_EQ(SimTime::seconds(1.5).to_string(), "1.500s");
}

// --- Simulator -------------------------------------------------------------------

TEST(Simulator, RunsInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::millis(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(3));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::millis(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(SimTime::millis(1), recurse);
  };
  sim.schedule_after(SimTime::millis(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::millis(5));
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.schedule_at(SimTime::millis(10), [&] {
    sim.schedule_at(SimTime::millis(1), [] {});  // in the past
  });
  sim.run();
  EXPECT_EQ(sim.now(), SimTime::millis(10));
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::millis(1), [&] { ++fired; });
  sim.schedule_at(SimTime::millis(10), [&] { ++fired; });
  sim.run_until(SimTime::millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(5));
  EXPECT_EQ(sim.pending(), 1u);
}

// --- IP addressing -----------------------------------------------------------------

TEST(Ipv4, ParseAndFormat) {
  const auto addr = Ipv4Address::must_parse("192.168.1.10");
  EXPECT_EQ(addr.to_string(), "192.168.1.10");
  EXPECT_EQ(addr.value(), 0xc0a8010au);
  EXPECT_EQ(Ipv4Address(10, 0, 0, 1), Ipv4Address::must_parse("10.0.0.1"));
}

struct BadAddrCase {
  const char* text;
};
class BadAddrTest : public ::testing::TestWithParam<BadAddrCase> {};

TEST_P(BadAddrTest, Rejected) {
  EXPECT_FALSE(Ipv4Address::parse(GetParam().text).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadAddrTest,
    ::testing::Values(BadAddrCase{""}, BadAddrCase{"1.2.3"},
                      BadAddrCase{"1.2.3.4.5"}, BadAddrCase{"256.1.1.1"},
                      BadAddrCase{"a.b.c.d"}, BadAddrCase{"1..2.3"},
                      BadAddrCase{"1.2.3.-4"}, BadAddrCase{"1.2.3.4 "}));

TEST(Cidr, ContainsAndHosts) {
  const auto block = Cidr::must_parse("10.96.0.0/16");
  EXPECT_TRUE(block.contains(Ipv4Address::must_parse("10.96.255.1")));
  EXPECT_FALSE(block.contains(Ipv4Address::must_parse("10.97.0.1")));
  EXPECT_EQ(block.size(), 65536u);
  EXPECT_EQ(block.host(10), Ipv4Address::must_parse("10.96.0.10"));
  EXPECT_EQ(block.to_string(), "10.96.0.0/16");
}

TEST(Cidr, NestedContainment) {
  const auto wide = Cidr::must_parse("23.0.0.0/8");
  const auto narrow = Cidr::must_parse("23.55.124.0/24");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
}

TEST(Cidr, EdgePrefixLengths) {
  const auto all = Cidr::must_parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4Address::must_parse("255.255.255.255")));
  const auto host = Cidr::must_parse("1.2.3.4/32");
  EXPECT_TRUE(host.contains(Ipv4Address::must_parse("1.2.3.4")));
  EXPECT_FALSE(host.contains(Ipv4Address::must_parse("1.2.3.5")));
  EXPECT_FALSE(Cidr::parse("1.2.3.4/33").ok());
  EXPECT_FALSE(Cidr::parse("1.2.3.4").ok());
}

// --- latency models -------------------------------------------------------------

TEST(LatencyModel, ConstantAlwaysSame) {
  util::Rng rng(1);
  const auto model = LatencyModel::constant(SimTime::millis(5));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.sample(rng), SimTime::millis(5));
  }
  EXPECT_EQ(model.mean(), SimTime::millis(5));
}

TEST(LatencyModel, UniformWithinBounds) {
  util::Rng rng(2);
  const auto model = LatencyModel::uniform(SimTime::millis(1),
                                           SimTime::millis(3));
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = model.sample(rng);
    EXPECT_GE(t, SimTime::millis(1));
    EXPECT_LE(t, SimTime::millis(3));
  }
}

TEST(LatencyModel, NormalRespectsFloor) {
  util::Rng rng(3);
  const auto model = LatencyModel::normal(SimTime::millis(1),
                                          SimTime::millis(5),
                                          SimTime::micros(100));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(model.sample(rng), SimTime::micros(100));
  }
}

TEST(LatencyModel, LognormalMeanApproximatelyRight) {
  util::Rng rng(4);
  const auto model =
      LatencyModel::lognormal(SimTime::millis(7), SimTime::millis(2.4), 0.75);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += model.sample(rng).to_millis();
  EXPECT_NEAR(sum / n, model.mean().to_millis(), 0.15);
  // heavy tail: samples can far exceed the mean
  EXPECT_GT(model.mean().to_millis(), 9.0);
  EXPECT_LT(model.mean().to_millis(), 11.5);
}

// --- network -----------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, util::Rng(5)) {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversBetweenDirectNeighbors) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
  net_.add_link(a, b, LatencyModel::constant(SimTime::millis(3)));

  std::vector<std::uint8_t> received;
  SimTime arrival;
  net_.open_socket(b, 99, [&](const Packet& p) {
    received = p.payload;
    arrival = net_.now();
  });
  UdpSocket* sender = net_.open_socket(a, 0, nullptr);
  sender->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), 99},
                  {1, 2, 3});
  sim_.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(arrival, SimTime::millis(3));
  EXPECT_EQ(net_.stats().delivered, 1u);
}

TEST_F(NetworkTest, RoutesViaShortestPath) {
  // a - b - d is 2ms; a - c - d is 10ms: traffic must take the b path.
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
  const NodeId c = net_.add_node("c", Ipv4Address::must_parse("10.0.0.3"));
  const NodeId d = net_.add_node("d", Ipv4Address::must_parse("10.0.0.4"));
  net_.add_link(a, b, LatencyModel::constant(SimTime::millis(1)));
  net_.add_link(b, d, LatencyModel::constant(SimTime::millis(1)));
  net_.add_link(a, c, LatencyModel::constant(SimTime::millis(5)));
  net_.add_link(c, d, LatencyModel::constant(SimTime::millis(5)));

  bool b_saw_it = false;
  net_.add_tap(b, [&](const Packet&, SimTime) { b_saw_it = true; });
  SimTime arrival;
  net_.open_socket(d, 7, [&](const Packet&) { arrival = net_.now(); });
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.4"), 7}, {0});
  sim_.run();
  EXPECT_TRUE(b_saw_it);
  EXPECT_EQ(arrival, SimTime::millis(2));
  EXPECT_EQ(*net_.route_cost(a, d), SimTime::millis(2));
}

TEST_F(NetworkTest, ReroutesAroundDownLink) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
  const NodeId c = net_.add_node("c", Ipv4Address::must_parse("10.0.0.3"));
  const LinkId fast = net_.add_link(a, b,
                                    LatencyModel::constant(SimTime::millis(1)));
  net_.add_link(a, c, LatencyModel::constant(SimTime::millis(4)));
  net_.add_link(c, b, LatencyModel::constant(SimTime::millis(4)));

  net_.set_link_up(fast, false);
  SimTime arrival;
  net_.open_socket(b, 7, [&](const Packet&) { arrival = net_.now(); });
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), 7}, {0});
  sim_.run();
  EXPECT_EQ(arrival, SimTime::millis(8));
}

TEST_F(NetworkTest, DropsWhenNoRoute) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));  // not linked
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), 7}, {0});
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("99.9.9.9"), 7}, {0});
  sim_.run();
  EXPECT_EQ(net_.stats().dropped_no_route, 2u);
  EXPECT_EQ(net_.stats().delivered, 0u);
}

TEST_F(NetworkTest, DropsToDownNode) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
  net_.add_link(a, b, LatencyModel::constant(SimTime::millis(1)));
  net_.open_socket(b, 7, [](const Packet&) { FAIL(); });
  net_.set_node_up(b, false);
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), 7}, {0});
  sim_.run();
  EXPECT_EQ(net_.stats().delivered, 0u);
}

TEST_F(NetworkTest, TransitHookRewritesLikeNat) {
  // a -> m -> b where m rewrites the source address (NAT-style).
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId m = net_.add_node("m", Ipv4Address::must_parse("203.0.113.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.3"));
  net_.add_link(a, m, LatencyModel::constant(SimTime::millis(1)));
  net_.add_link(m, b, LatencyModel::constant(SimTime::millis(1)));
  net_.set_transit_hook(m, [](Packet& p) {
    if (p.src.addr == Ipv4Address::must_parse("10.0.0.1")) {
      p.src.addr = Ipv4Address::must_parse("203.0.113.1");
    }
    return TransitAction::kForward;
  });
  Endpoint seen_src;
  net_.open_socket(b, 7, [&](const Packet& p) { seen_src = p.src; });
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.3"), 7}, {0});
  sim_.run();
  EXPECT_EQ(seen_src.addr, Ipv4Address::must_parse("203.0.113.1"));
}

TEST_F(NetworkTest, TransitHookCanDrop) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId m = net_.add_node("m", Ipv4Address::must_parse("10.0.0.2"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.3"));
  net_.add_link(a, m, LatencyModel::constant(SimTime::millis(1)));
  net_.add_link(m, b, LatencyModel::constant(SimTime::millis(1)));
  net_.set_transit_hook(m, [](Packet&) { return TransitAction::kDrop; });
  net_.open_socket(b, 7, [](const Packet&) { FAIL(); });
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.3"), 7}, {0});
  sim_.run();
  EXPECT_EQ(net_.stats().dropped_by_hook, 1u);
}

TEST_F(NetworkTest, LinkLossDropsProbabilistically) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
  const LinkId link =
      net_.add_link(a, b, LatencyModel::constant(SimTime::millis(1)));
  net_.set_link_loss(link, 0.5);
  int delivered = 0;
  net_.open_socket(b, 7, [&](const Packet&) { ++delivered; });
  UdpSocket* sender = net_.open_socket(a, 0, nullptr);
  for (int i = 0; i < 400; ++i) {
    sender->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), 7}, {0});
  }
  sim_.run();
  EXPECT_GT(delivered, 140);
  EXPECT_LT(delivered, 260);
  EXPECT_EQ(net_.stats().dropped_loss + static_cast<std::uint64_t>(delivered),
            400u);
}

TEST_F(NetworkTest, HopTraceRecordsPath) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId m = net_.add_node("m", Ipv4Address::must_parse("10.0.0.2"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.3"));
  net_.add_link(a, m, LatencyModel::constant(SimTime::millis(1)));
  net_.add_link(m, b, LatencyModel::constant(SimTime::millis(1)));
  std::vector<NodeId> path;
  net_.open_socket(b, 7, [&](const Packet& p) {
    for (const Hop& hop : p.hops) path.push_back(hop.node);
  });
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.3"), 7}, {0});
  sim_.run();
  EXPECT_EQ(path, (std::vector<NodeId>{a, m, b}));
}

TEST_F(NetworkTest, EphemeralPortsAreDistinct) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  UdpSocket* s1 = net_.open_socket(a, 0, nullptr);
  UdpSocket* s2 = net_.open_socket(a, 0, nullptr);
  EXPECT_NE(s1->port(), s2->port());
  EXPECT_GE(s1->port(), 49152);
}

TEST_F(NetworkTest, PortConflictThrows) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  net_.open_socket(a, 53, nullptr);
  EXPECT_THROW(net_.open_socket(a, 53, nullptr), std::invalid_argument);
}

TEST_F(NetworkTest, ClosedSocketStopsReceiving) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
  net_.add_link(a, b, LatencyModel::constant(SimTime::millis(1)));
  UdpSocket* receiver = net_.open_socket(b, 7, [](const Packet&) { FAIL(); });
  net_.close_socket(receiver);
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), 7}, {0});
  sim_.run();
  EXPECT_EQ(net_.stats().dropped_no_socket, 1u);
}

TEST_F(NetworkTest, DuplicateAddressRejected) {
  net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b");
  EXPECT_THROW(net_.add_address(b, Ipv4Address::must_parse("10.0.0.1")),
               std::invalid_argument);
}

TEST_F(NetworkTest, MultiAddressNodeReceivesOnAll) {
  const NodeId a = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
  const NodeId b = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
  net_.add_address(b, Ipv4Address::must_parse("10.96.0.10"));  // cluster IP
  net_.add_link(a, b, LatencyModel::constant(SimTime::millis(1)));
  int received = 0;
  net_.open_socket(b, 53, [&](const Packet&) { ++received; },
                   Ipv4Address::must_parse("10.96.0.10"));
  net_.open_socket(a, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("10.96.0.10"), 53}, {0});
  sim_.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace mecdns::simnet
