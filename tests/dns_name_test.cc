#include <gtest/gtest.h>

#include <unordered_set>

#include "dns/name.h"

namespace mecdns::dns {
namespace {

TEST(DnsName, ParseBasics) {
  const auto name = DnsName::must_parse("www.example.com");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.label(0), "www");
  EXPECT_EQ(name.to_string(), "www.example.com");
}

TEST(DnsName, TrailingDotIgnored) {
  EXPECT_EQ(DnsName::must_parse("example.com."),
            DnsName::must_parse("example.com"));
}

TEST(DnsName, RootParsesAndPrints) {
  const auto root = DnsName::must_parse(".");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root, DnsName::root());
}

TEST(DnsName, CaseInsensitiveEqualityAndHash) {
  const auto a = DnsName::must_parse("WWW.Example.COM");
  const auto b = DnsName::must_parse("www.example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<DnsName> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
}

TEST(DnsName, SubdomainRelation) {
  const auto apex = DnsName::must_parse("mycdn.ciab.test");
  EXPECT_TRUE(DnsName::must_parse("video.demo1.mycdn.ciab.test")
                  .is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(DnsName::root()));
  EXPECT_FALSE(DnsName::must_parse("ciab.test").is_subdomain_of(apex));
  // Label boundaries matter: notmycdn.ciab.test is NOT under mycdn.ciab.test.
  EXPECT_FALSE(
      DnsName::must_parse("notmycdn.ciab.test").is_subdomain_of(apex));
}

TEST(DnsName, ParentWalk) {
  auto name = DnsName::must_parse("a.b.c");
  name = name.parent();
  EXPECT_EQ(name, DnsName::must_parse("b.c"));
  name = name.parent();
  name = name.parent();
  EXPECT_TRUE(name.is_root());
  EXPECT_TRUE(name.parent().is_root());
}

TEST(DnsName, PrefixAndUnder) {
  const auto base = DnsName::must_parse("example.com");
  EXPECT_EQ(base.with_prefix("www").value(),
            DnsName::must_parse("www.example.com"));
  const auto rel = DnsName::must_parse("video.demo1");
  EXPECT_EQ(rel.under(DnsName::must_parse("mycdn.test")).value(),
            DnsName::must_parse("video.demo1.mycdn.test"));
}

TEST(DnsName, WildcardSibling) {
  EXPECT_EQ(DnsName::must_parse("video.demo1.cdn").wildcard_sibling(),
            DnsName::must_parse("*.demo1.cdn"));
}

TEST(DnsName, WireLength) {
  // 3www7example3com0 = 1+3 + 1+7 + 1+3 + 1 = 17
  EXPECT_EQ(DnsName::must_parse("www.example.com").wire_length(), 17u);
  EXPECT_EQ(DnsName::root().wire_length(), 1u);
}

TEST(DnsName, RejectsOversizedLabels) {
  const std::string long_label(64, 'a');
  EXPECT_FALSE(DnsName::parse(long_label + ".com").ok());
  const std::string max_label(63, 'a');
  EXPECT_TRUE(DnsName::parse(max_label + ".com").ok());
}

TEST(DnsName, RejectsOversizedNames) {
  // 5 labels x 63 bytes = 320 wire octets > 255.
  std::string big;
  for (int i = 0; i < 5; ++i) {
    if (i != 0) big += ".";
    big += std::string(63, 'a' + i);
  }
  EXPECT_FALSE(DnsName::parse(big).ok());
}

struct BadNameCase {
  const char* text;
};
class BadNameTest : public ::testing::TestWithParam<BadNameCase> {};

TEST_P(BadNameTest, Rejected) {
  EXPECT_FALSE(DnsName::parse(GetParam().text).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadNameTest,
    ::testing::Values(BadNameCase{""}, BadNameCase{".."},
                      BadNameCase{".example.com"}, BadNameCase{"a..b"},
                      BadNameCase{"has space.com"}, BadNameCase{"tab\tx.com"}));

TEST(DnsName, CanonicalOrderingIsByLabelFromTheRight) {
  // Canonical (DNSSEC) order: compare rightmost labels first.
  EXPECT_LT(DnsName::must_parse("example.com"),
            DnsName::must_parse("example.net"));
  EXPECT_LT(DnsName::must_parse("example.com"),
            DnsName::must_parse("a.example.com"));
  EXPECT_LT(DnsName::must_parse("a.example.com"),
            DnsName::must_parse("b.example.com"));
  EXPECT_FALSE(DnsName::must_parse("EXAMPLE.com") <
               DnsName::must_parse("example.COM"));
  EXPECT_FALSE(DnsName::must_parse("example.COM") <
               DnsName::must_parse("EXAMPLE.com"));
}

TEST(DnsName, FromLabelsValidates) {
  EXPECT_TRUE(DnsName::from_labels({"a", "b"}).ok());
  EXPECT_FALSE(DnsName::from_labels({"a", ""}).ok());
}

}  // namespace
}  // namespace mecdns::dns
