#include <gtest/gtest.h>

#include <unordered_set>

#include "dns/name.h"

namespace mecdns::dns {
namespace {

TEST(DnsName, ParseBasics) {
  const auto name = DnsName::must_parse("www.example.com");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.label(0), "www");
  EXPECT_EQ(name.to_string(), "www.example.com");
}

TEST(DnsName, TrailingDotIgnored) {
  EXPECT_EQ(DnsName::must_parse("example.com."),
            DnsName::must_parse("example.com"));
}

TEST(DnsName, RootParsesAndPrints) {
  const auto root = DnsName::must_parse(".");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root, DnsName::root());
}

TEST(DnsName, CaseInsensitiveEqualityAndHash) {
  const auto a = DnsName::must_parse("WWW.Example.COM");
  const auto b = DnsName::must_parse("www.example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<DnsName> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
}

TEST(DnsName, SubdomainRelation) {
  const auto apex = DnsName::must_parse("mycdn.ciab.test");
  EXPECT_TRUE(DnsName::must_parse("video.demo1.mycdn.ciab.test")
                  .is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(DnsName::root()));
  EXPECT_FALSE(DnsName::must_parse("ciab.test").is_subdomain_of(apex));
  // Label boundaries matter: notmycdn.ciab.test is NOT under mycdn.ciab.test.
  EXPECT_FALSE(
      DnsName::must_parse("notmycdn.ciab.test").is_subdomain_of(apex));
}

TEST(DnsName, ParentWalk) {
  auto name = DnsName::must_parse("a.b.c");
  name = name.parent();
  EXPECT_EQ(name, DnsName::must_parse("b.c"));
  name = name.parent();
  name = name.parent();
  EXPECT_TRUE(name.is_root());
  EXPECT_TRUE(name.parent().is_root());
}

TEST(DnsName, PrefixAndUnder) {
  const auto base = DnsName::must_parse("example.com");
  EXPECT_EQ(base.with_prefix("www").value(),
            DnsName::must_parse("www.example.com"));
  const auto rel = DnsName::must_parse("video.demo1");
  EXPECT_EQ(rel.under(DnsName::must_parse("mycdn.test")).value(),
            DnsName::must_parse("video.demo1.mycdn.test"));
}

TEST(DnsName, WildcardSibling) {
  EXPECT_EQ(DnsName::must_parse("video.demo1.cdn").wildcard_sibling(),
            DnsName::must_parse("*.demo1.cdn"));
}

TEST(DnsName, WireLength) {
  // 3www7example3com0 = 1+3 + 1+7 + 1+3 + 1 = 17
  EXPECT_EQ(DnsName::must_parse("www.example.com").wire_length(), 17u);
  EXPECT_EQ(DnsName::root().wire_length(), 1u);
}

TEST(DnsName, RejectsOversizedLabels) {
  const std::string long_label(64, 'a');
  EXPECT_FALSE(DnsName::parse(long_label + ".com").ok());
  const std::string max_label(63, 'a');
  EXPECT_TRUE(DnsName::parse(max_label + ".com").ok());
}

TEST(DnsName, RejectsOversizedNames) {
  // 5 labels x 63 bytes = 320 wire octets > 255.
  std::string big;
  for (int i = 0; i < 5; ++i) {
    if (i != 0) big += ".";
    big += std::string(63, 'a' + i);
  }
  EXPECT_FALSE(DnsName::parse(big).ok());
}

struct BadNameCase {
  const char* text;
};
class BadNameTest : public ::testing::TestWithParam<BadNameCase> {};

TEST_P(BadNameTest, Rejected) {
  EXPECT_FALSE(DnsName::parse(GetParam().text).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadNameTest,
    ::testing::Values(BadNameCase{""}, BadNameCase{".."},
                      BadNameCase{".example.com"}, BadNameCase{"a..b"},
                      BadNameCase{"has space.com"}, BadNameCase{"tab\tx.com"}));

TEST(DnsName, CanonicalOrderingIsByLabelFromTheRight) {
  // Canonical (DNSSEC) order: compare rightmost labels first.
  EXPECT_LT(DnsName::must_parse("example.com"),
            DnsName::must_parse("example.net"));
  EXPECT_LT(DnsName::must_parse("example.com"),
            DnsName::must_parse("a.example.com"));
  EXPECT_LT(DnsName::must_parse("a.example.com"),
            DnsName::must_parse("b.example.com"));
  EXPECT_FALSE(DnsName::must_parse("EXAMPLE.com") <
               DnsName::must_parse("example.COM"));
  EXPECT_FALSE(DnsName::must_parse("example.COM") <
               DnsName::must_parse("EXAMPLE.com"));
}

TEST(DnsName, FromLabelsValidates) {
  EXPECT_TRUE(DnsName::from_labels({"a", "b"}).ok());
  EXPECT_FALSE(DnsName::from_labels({"a", ""}).ok());
}

TEST(DnsName, MaxLabelRoundTripsAtSixtyThreeBytes) {
  const std::string max_label(63, 'x');
  const auto name = DnsName::must_parse(max_label + ".example.com");
  EXPECT_EQ(name.label(0), max_label);
  EXPECT_EQ(name.to_string(), max_label + ".example.com");
  // 64 + 8 + 4 wire bytes of label data + root byte.
  EXPECT_EQ(name.wire_length(), 64u + 8u + 4u + 1u);
}

TEST(DnsName, NameAtExactWireLimitRoundTrips) {
  // Three 63-byte labels (64 wire bytes each) plus one 61-byte label
  // (62 wire bytes): 254 data bytes, 255 with the root byte — the RFC 1035
  // maximum exactly.
  std::string text = std::string(63, 'a') + "." + std::string(63, 'b') + "." +
                     std::string(63, 'c') + "." + std::string(61, 'd');
  const auto name = DnsName::must_parse(text);
  EXPECT_EQ(name.wire_length(), 255u);
  EXPECT_EQ(name.label_count(), 4u);
  EXPECT_EQ(name.to_string(), text);
  // One more byte anywhere pushes it over.
  EXPECT_FALSE(DnsName::parse(text + ".e").ok());
  std::string over = std::string(63, 'a') + "." + std::string(63, 'b') + "." +
                     std::string(63, 'c') + "." + std::string(62, 'd');
  EXPECT_FALSE(DnsName::parse(over).ok());
}

TEST(DnsName, InlineToHeapBoundaryIsSeamless) {
  // Build names straddling the small-buffer capacity and check that
  // representation (inline vs heap) never leaks into behaviour.
  const std::string base = "example.com";  // 13 wire data bytes
  std::string text = base;
  DnsName prev = DnsName::must_parse(text);
  for (int i = 0; i < 12; ++i) {
    text = std::string(18, static_cast<char>('a' + i)) + "." + text;
    const auto name = DnsName::must_parse(text);
    EXPECT_EQ(name.to_string(), text);
    EXPECT_EQ(name.parent(), prev);
    EXPECT_TRUE(name.is_subdomain_of(DnsName::must_parse(base)));
    const DnsName copy = name;          // deep copy when on heap
    EXPECT_EQ(copy, name);
    EXPECT_EQ(copy.hash(), name.hash());
    DnsName scratch(name);
    const DnsName moved = std::move(scratch);
    EXPECT_EQ(moved, copy);
    prev = name;
  }
  // The loop crossed kInlineCapacity several labels ago.
  EXPECT_GT(prev.wire_length(), DnsName::kInlineCapacity + 1);
}

TEST(DnsName, WithPrefixCrossesIntoHeap) {
  const auto base = DnsName::must_parse("mycdn.ciab.test");  // inline
  const std::string big(63, 'z');
  const auto child = base.with_prefix(big);
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(child.value().to_string(), big + ".mycdn.ciab.test");
  EXPECT_EQ(child.value().parent(), base);
  EXPECT_GT(child.value().wire_length(), DnsName::kInlineCapacity + 1);
}

}  // namespace
}  // namespace mecdns::dns
