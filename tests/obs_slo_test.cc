// obs/slo tests: per-window verdicts, burn-rate and error-budget math, and
// the violation interval the fault story depends on.
#include <gtest/gtest.h>

#include <string>

#include "obs/slo.h"
#include "obs/timeseries.h"
#include "simnet/simulator.h"

namespace mecdns::obs {
namespace {

using simnet::SimTime;

TEST(SloTest, SuccessRatioBurnRateMath) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  // Window 0: 10/10 ok. Window 1: 8/10 ok. Window 2: skipped (no data).
  // Window 3: 10/10 ok.
  sim.schedule_at(SimTime::millis(100), [&] { series.add("req", 10); });
  sim.schedule_at(SimTime::millis(600), [&] {
    series.add("req", 10);
    series.add("fail", 2);
  });
  sim.schedule_at(SimTime::millis(1600), [&] { series.add("req", 10); });
  sim.run();

  const SloResult result =
      evaluate_slo(success_slo("req", "fail", 0.99), series);
  ASSERT_EQ(result.windows.size(), 3u);  // the empty window is skipped
  EXPECT_NEAR(result.allowed_bad_fraction, 0.01, 1e-12);

  EXPECT_TRUE(result.windows[0].ok);
  EXPECT_DOUBLE_EQ(result.windows[0].burn_rate, 0.0);

  const SloWindow& violated = result.windows[1];
  EXPECT_FALSE(violated.ok);
  EXPECT_EQ(violated.good, 8u);
  EXPECT_EQ(violated.bad, 2u);
  EXPECT_DOUBLE_EQ(violated.value, 0.8);
  // bad fraction 0.2 over allowed 0.01 = burning 20x faster than budget.
  EXPECT_NEAR(violated.burn_rate, 20.0, 1e-9);

  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.windows_violated, 1u);
  EXPECT_EQ(result.good, 28u);
  EXPECT_EQ(result.bad, 2u);
  // 2 bad over 0.01 * 30 allowed = 6.67x the whole-run budget.
  EXPECT_NEAR(result.budget_consumed, 2.0 / 0.3, 1e-6);
  EXPECT_NEAR(result.worst_burn_rate, 20.0, 1e-9);
  // Violation interval = the violated window's bounds.
  EXPECT_DOUBLE_EQ(result.first_violation_ms, 500.0);
  EXPECT_DOUBLE_EQ(result.last_violation_ms, 1000.0);
}

TEST(SloTest, CleanRunMeetsObjectiveEverywhere) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  for (int w = 0; w < 5; ++w) {
    sim.schedule_at(SimTime::millis(w * 500 + 50),
                    [&] { series.add("req", 100); });
  }
  sim.run();
  const SloResult result =
      evaluate_slo(success_slo("req", "fail", 0.99), series);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.windows.size(), 5u);
  EXPECT_EQ(result.windows_violated, 0u);
  EXPECT_DOUBLE_EQ(result.budget_consumed, 0.0);
  EXPECT_DOUBLE_EQ(result.worst_burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.first_violation_ms, -1.0);
  EXPECT_DOUBLE_EQ(result.last_violation_ms, -1.0);
}

TEST(SloTest, LatencyQuantileSplitsAtThreshold) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  // Window 0: all fast (well under 20 ms). Window 1: half slow.
  sim.schedule_at(SimTime::millis(10), [&] {
    for (int i = 0; i < 10; ++i) series.observe("lookup_ms", 5.0);
  });
  sim.schedule_at(SimTime::millis(510), [&] {
    for (int i = 0; i < 5; ++i) series.observe("lookup_ms", 5.0);
    for (int i = 0; i < 5; ++i) series.observe("lookup_ms", 120.0);
  });
  sim.run();

  const SloResult result = evaluate_slo(mec_latency_slo("lookup_ms"), series);
  ASSERT_EQ(result.windows.size(), 2u);
  EXPECT_TRUE(result.windows[0].ok);
  EXPECT_LE(result.windows[0].value, 20.0);
  EXPECT_EQ(result.windows[0].bad, 0u);

  EXPECT_FALSE(result.windows[1].ok);
  EXPECT_GT(result.windows[1].value, 20.0);
  EXPECT_EQ(result.windows[1].good, 5u);
  EXPECT_EQ(result.windows[1].bad, 5u);
  EXPECT_FALSE(result.ok);
  EXPECT_DOUBLE_EQ(result.first_violation_ms, 500.0);
}

TEST(SloTest, ExportPublishesVerdictIntoRegistry) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  sim.schedule_at(SimTime::millis(1), [&] {
    series.add("req", 10);
    series.add("fail", 10);
  });
  sim.run();
  const SloResult result =
      evaluate_slo(success_slo("req", "fail", 0.99), series);

  Registry registry;
  export_slo(result, registry);
  EXPECT_EQ(registry.counter_value("slo.success.windows"), 1u);
  EXPECT_EQ(registry.counter_value("slo.success.windows_violated"), 1u);
  EXPECT_EQ(registry.counter_value("slo.success.bad"), 10u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("slo.success.ok"), 0.0);
  EXPECT_GT(registry.gauge_value("slo.success.budget_consumed"), 1.0);

  const std::string summary = slo_summary(result);
  EXPECT_NE(summary.find("VIOLATED"), std::string::npos);
  EXPECT_NE(summary.find("success>=99%"), std::string::npos);
}

TEST(SloTest, ZeroAllowedBudgetUsesSentinelBurnRate) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  sim.schedule_at(SimTime::millis(1), [&] {
    series.add("req", 4);
    series.add("fail", 1);
  });
  sim.run();
  // target 1.0 => allowed bad fraction 0: any failure is unpayable.
  const SloResult result =
      evaluate_slo(success_slo("req", "fail", 1.0), series);
  EXPECT_FALSE(result.ok);
  EXPECT_DOUBLE_EQ(result.windows[0].burn_rate, -1.0);
  EXPECT_DOUBLE_EQ(result.budget_consumed, -1.0);
}

}  // namespace
}  // namespace mecdns::obs
