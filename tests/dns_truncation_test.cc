// UDP truncation (TC bit) and EDNS payload-size negotiation.
#include <gtest/gtest.h>

#include "dns/server.h"
#include "dns/transport.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class TruncationTest : public ::testing::Test {
 protected:
  TruncationTest() : net_(sim_, util::Rng(81)) {
    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    const simnet::NodeId server_node =
        net_.add_node("server", Ipv4Address::must_parse("10.0.0.2"));
    net_.add_link(client_node_, server_node,
                  LatencyModel::constant(SimTime::millis(1)));
    server_ = std::make_unique<AuthoritativeServer>(
        net_, server_node, "auth",
        LatencyModel::constant(SimTime::micros(100)));
    Zone& zone = server_->add_zone(DnsName::must_parse("big.test"));
    zone.must_add(make_soa(DnsName::must_parse("big.test"),
                           DnsName::must_parse("ns1.big.test"), 1, 60, 60));
    // 60 A records ~= 60 * 16 bytes of answer: far beyond 512 octets.
    for (int i = 0; i < 60; ++i) {
      zone.must_add(make_a(
          DnsName::must_parse("many.big.test"),
          Ipv4Address(0x0a000000u + static_cast<std::uint32_t>(i)), 300));
    }
    zone.must_add(make_a(DnsName::must_parse("small.big.test"),
                         Ipv4Address::must_parse("198.18.0.1"), 300));
    transport_ = std::make_unique<DnsTransport>(net_, client_node_);
  }

  util::Result<Message> query(const std::string& name,
                              const DnsTransport::Options& options,
                              bool with_edns = false,
                              std::uint16_t bufsize = 1232) {
    Message q = make_query(0, DnsName::must_parse(name), RecordType::kA);
    if (with_edns) {
      q.edns = Edns{};
      q.edns->udp_payload_size = bufsize;
    }
    util::Result<Message> out = util::Err("no response");
    transport_->query(Endpoint{Ipv4Address::must_parse("10.0.0.2"), kDnsPort},
                      std::move(q), options,
                      [&](util::Result<Message> result, SimTime) {
                        out = std::move(result);
                      });
    sim_.run();
    return out;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_node_;
  std::unique_ptr<AuthoritativeServer> server_;
  std::unique_ptr<DnsTransport> transport_;
};

TEST_F(TruncationTest, SmallAnswerFitsWithoutEdns) {
  const auto result = query("small.big.test", {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().header.tc);
  EXPECT_EQ(result.value().answers.size(), 1u);
  EXPECT_EQ(server_->stats().truncated, 0u);
}

TEST_F(TruncationTest, OversizedAnswerTruncatedWithoutAutoRetry) {
  DnsTransport::Options options;
  options.bufsize_on_tc = 0;  // disable the automatic retry
  const auto result = query("many.big.test", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().header.tc);
  EXPECT_TRUE(result.value().answers.empty());
  EXPECT_EQ(server_->stats().truncated, 1u);
}

TEST_F(TruncationTest, TransportRetriesWithLargerBufferAndSucceeds) {
  const auto result = query("many.big.test", {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().header.tc);
  EXPECT_EQ(result.value().answers.size(), 60u);
  EXPECT_EQ(transport_->tc_retries(), 1u);
  EXPECT_EQ(server_->stats().truncated, 1u);  // only the first attempt
  EXPECT_EQ(server_->stats().queries, 2u);
}

TEST_F(TruncationTest, LargeEdnsBufferAvoidsTruncationOutright) {
  const auto result = query("many.big.test", {}, /*with_edns=*/true, 4096);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().header.tc);
  EXPECT_EQ(result.value().answers.size(), 60u);
  EXPECT_EQ(transport_->tc_retries(), 0u);
  EXPECT_EQ(server_->stats().queries, 1u);
}

TEST_F(TruncationTest, SmallEdnsBufferStillTruncatesThenRetries) {
  const auto result = query("many.big.test", {}, /*with_edns=*/true, 512);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().header.tc);
  EXPECT_EQ(transport_->tc_retries(), 1u);
}

TEST_F(TruncationTest, StillTruncatedAtMaxBufferIsDeliveredAsIs) {
  // Cap the retry buffer below the answer size: the client must receive
  // the truncated response rather than loop forever.
  DnsTransport::Options options;
  options.bufsize_on_tc = 600;
  const auto result = query("many.big.test", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().header.tc);
  EXPECT_EQ(transport_->tc_retries(), 1u);
  EXPECT_EQ(server_->stats().queries, 2u);
}

}  // namespace
}  // namespace mecdns::dns
