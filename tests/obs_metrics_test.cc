// obs/metrics tests: histogram bucketing, merge algebra, percentiles, and
// the registry's counters/gauges/dump formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mecdns::obs {
namespace {

// Deterministic value stream (no global RNG in tests).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  double next_ms() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    // Spread across several octaves: 0.06ms .. ~250ms.
    return 0.06 + static_cast<double>(state_ >> 40) / 67000.0;
  }

 private:
  std::uint64_t state_;
};

LatencyHistogram filled(std::uint64_t seed, int n) {
  LatencyHistogram h;
  Lcg lcg(seed);
  for (int i = 0; i < n; ++i) h.add(lcg.next_ms());
  return h;
}

TEST(LatencyHistogramTest, BasicStats) {
  LatencyHistogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(LatencyHistogramTest, ValueFallsInItsBucket) {
  Lcg lcg(7);
  for (int i = 0; i < 200; ++i) {
    const double value = lcg.next_ms();
    LatencyHistogram h;
    h.add(value);
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      if (h.bucket(b) == 0) continue;
      EXPECT_GE(value, h.bucket_low(b));
      EXPECT_LT(value, h.bucket_high(b));
    }
  }
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  const LatencyHistogram a = filled(1, 500);
  const LatencyHistogram b = filled(2, 300);
  const LatencyHistogram c = filled(3, 700);

  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ab_c = ab;
  ab_c.merge(c);

  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_EQ(ab_c.count(), 1500u);

  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  const LatencyHistogram a = filled(4, 100);
  LatencyHistogram merged = a;
  merged.merge(LatencyHistogram{});
  EXPECT_TRUE(merged == a);

  LatencyHistogram other;
  other.merge(a);
  EXPECT_TRUE(other == a);
}

TEST(LatencyHistogramTest, PercentilesOrderedAndClamped) {
  const LatencyHistogram h = filled(5, 2000);
  const double p50 = h.percentile(50.0);
  const double p95 = h.percentile(95.0);
  const double p99 = h.percentile(99.0);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
}

TEST(LatencyHistogramTest, OutOfRangeValuesLandInOverflowBuckets) {
  LatencyHistogram h;
  h.add(1e-9);  // below 2^-10 ms
  h.add(1e9);   // above 2^20 ms
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1u);
}

// Property test: the bucketed percentile tracks the exact sorted-sample
// percentile within the log-linear bucket resolution (1/8 octave => <=
// ~13% relative), including streams with underflow/overflow outliers.
TEST(LatencyHistogramTest, PercentileTracksExactSamplePercentile) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    LatencyHistogram h;
    std::vector<double> values;
    Lcg lcg(seed);
    for (int i = 0; i < 2000; ++i) {
      const double v = lcg.next_ms();
      values.push_back(v);
      h.add(v);
    }
    // Outliers beyond the bucketed range land in the underflow/overflow
    // buckets; percentile clamps to observed min/max.
    for (const double v : {1e-9, 2e-9, 1e9, 2e9}) {
      values.push_back(v);
      h.add(v);
    }
    std::sort(values.begin(), values.end());

    for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
      const double rank = p / 100.0 * static_cast<double>(values.size());
      std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
      index = std::min(index, values.size() - 1);
      const double exact = values[index];
      const double approx = h.percentile(p);
      EXPECT_NEAR(approx, exact, 0.15 * exact + 0.05)
          << "p" << p << " seed " << seed;
    }
    EXPECT_DOUBLE_EQ(h.percentile(0.0), values.front());
    EXPECT_DOUBLE_EQ(h.percentile(100.0), values.back());
  }
}

// The JSON emitters must write doubles that parse back to identical bits,
// independent of the process locale.
TEST(FormatDoubleTest, ShortestRoundTrip) {
  const double values[] = {0.0,  -0.0,  1.0,   0.1,    1.0 / 3.0, 20.0,
                           -2.5, 1e300, 1e-300, 5e-324, 27.819302, 1e6};
  for (const double value : values) {
    const std::string text = format_double(value);
    double back = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), back);
    ASSERT_EQ(ec, std::errc()) << text;
    ASSERT_EQ(ptr, text.data() + text.size()) << text;
    EXPECT_EQ(std::memcmp(&back, &value, sizeof(double)), 0)
        << value << " -> \"" << text << "\" -> " << back;
    // Locale-independent: never a comma decimal separator.
    EXPECT_EQ(text.find(','), std::string::npos);
  }
}

TEST(RegistryTest, CountersGaugesHistograms) {
  Registry registry;
  registry.add("dns.queries");
  registry.add("dns.queries", 4);
  registry.set_gauge("queue.depth", 3.0);
  registry.set_gauge_max("queue.peak", 5.0);
  registry.set_gauge_max("queue.peak", 2.0);  // lower: keeps the high water
  registry.histogram("lookup_ms").add(12.5);

  EXPECT_EQ(registry.counter_value("dns.queries"), 5u);
  EXPECT_EQ(registry.counter_value("absent"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("queue.peak"), 5.0);
  EXPECT_EQ(registry.histogram("lookup_ms").count(), 1u);
}

TEST(RegistryTest, MergeAddsCountersAndMaxesGauges) {
  Registry a;
  a.add("n", 2);
  a.set_gauge("g", 1.0);
  a.histogram("h").add(1.0);
  Registry b;
  b.add("n", 3);
  b.add("only_b");
  b.set_gauge("g", 4.0);
  b.histogram("h").add(2.0);

  a.merge(b);
  EXPECT_EQ(a.counter_value("n"), 5u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 4.0);
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(RegistryTest, DumpsNameEveryMetric) {
  Registry registry;
  registry.add("c.one", 7);
  registry.set_gauge("g.two", 1.5);
  registry.histogram("h.three").add(3.0);

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("g.two"), std::string::npos);
  EXPECT_NE(text.find("h.three"), std::string::npos);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\""), std::string::npos);
  EXPECT_NE(json.find("\"h.three\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace mecdns::obs
