// obs/metrics tests: histogram bucketing, merge algebra, percentiles, and
// the registry's counters/gauges/dump formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace mecdns::obs {
namespace {

// Deterministic value stream (no global RNG in tests).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  double next_ms() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    // Spread across several octaves: 0.06ms .. ~250ms.
    return 0.06 + static_cast<double>(state_ >> 40) / 67000.0;
  }

 private:
  std::uint64_t state_;
};

LatencyHistogram filled(std::uint64_t seed, int n) {
  LatencyHistogram h;
  Lcg lcg(seed);
  for (int i = 0; i < n; ++i) h.add(lcg.next_ms());
  return h;
}

TEST(LatencyHistogramTest, BasicStats) {
  LatencyHistogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(LatencyHistogramTest, ValueFallsInItsBucket) {
  Lcg lcg(7);
  for (int i = 0; i < 200; ++i) {
    const double value = lcg.next_ms();
    LatencyHistogram h;
    h.add(value);
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      if (h.bucket(b) == 0) continue;
      EXPECT_GE(value, h.bucket_low(b));
      EXPECT_LT(value, h.bucket_high(b));
    }
  }
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  const LatencyHistogram a = filled(1, 500);
  const LatencyHistogram b = filled(2, 300);
  const LatencyHistogram c = filled(3, 700);

  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ab_c = ab;
  ab_c.merge(c);

  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_EQ(ab_c.count(), 1500u);

  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity) {
  const LatencyHistogram a = filled(4, 100);
  LatencyHistogram merged = a;
  merged.merge(LatencyHistogram{});
  EXPECT_TRUE(merged == a);

  LatencyHistogram other;
  other.merge(a);
  EXPECT_TRUE(other == a);
}

TEST(LatencyHistogramTest, PercentilesOrderedAndClamped) {
  const LatencyHistogram h = filled(5, 2000);
  const double p50 = h.percentile(50.0);
  const double p95 = h.percentile(95.0);
  const double p99 = h.percentile(99.0);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
}

TEST(LatencyHistogramTest, OutOfRangeValuesLandInOverflowBuckets) {
  LatencyHistogram h;
  h.add(1e-9);  // below 2^-10 ms
  h.add(1e9);   // above 2^20 ms
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1u);
}

TEST(RegistryTest, CountersGaugesHistograms) {
  Registry registry;
  registry.add("dns.queries");
  registry.add("dns.queries", 4);
  registry.set_gauge("queue.depth", 3.0);
  registry.set_gauge_max("queue.peak", 5.0);
  registry.set_gauge_max("queue.peak", 2.0);  // lower: keeps the high water
  registry.histogram("lookup_ms").add(12.5);

  EXPECT_EQ(registry.counter_value("dns.queries"), 5u);
  EXPECT_EQ(registry.counter_value("absent"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("queue.peak"), 5.0);
  EXPECT_EQ(registry.histogram("lookup_ms").count(), 1u);
}

TEST(RegistryTest, MergeAddsCountersAndMaxesGauges) {
  Registry a;
  a.add("n", 2);
  a.set_gauge("g", 1.0);
  a.histogram("h").add(1.0);
  Registry b;
  b.add("n", 3);
  b.add("only_b");
  b.set_gauge("g", 4.0);
  b.histogram("h").add(2.0);

  a.merge(b);
  EXPECT_EQ(a.counter_value("n"), 5u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 4.0);
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(RegistryTest, DumpsNameEveryMetric) {
  Registry registry;
  registry.add("c.one", 7);
  registry.set_gauge("g.two", 1.5);
  registry.histogram("h.three").add(3.0);

  const std::string text = registry.to_text();
  EXPECT_NE(text.find("c.one"), std::string::npos);
  EXPECT_NE(text.find("g.two"), std::string::npos);
  EXPECT_NE(text.find("h.three"), std::string::npos);

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\""), std::string::npos);
  EXPECT_NE(json.find("\"h.three\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace mecdns::obs
