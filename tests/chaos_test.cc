// Chaos layer tests: schedule builders, controller injection, and the
// determinism guard (an empty schedule must leave a run bit-identical).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/controller.h"
#include "chaos/fault_schedule.h"
#include "core/fig5.h"
#include "obs/metrics.h"

namespace mecdns::chaos {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

TEST(FaultSchedule, OutageBuildersPairEvents) {
  FaultSchedule s;
  s.node_outage(SimTime::millis(100), SimTime::millis(300), 7)
      .link_outage(SimTime::millis(200), SimTime::millis(400), 3)
      .loss_burst(SimTime::millis(500), SimTime::millis(600), 3, 0.4);
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(kind_of(s.events()[0].action), "node_down");
  EXPECT_EQ(kind_of(s.events()[1].action), "node_up");
  EXPECT_EQ(s.events()[1].at, SimTime::millis(300));
  EXPECT_EQ(kind_of(s.events()[2].action), "link_down");
  EXPECT_EQ(kind_of(s.events()[3].action), "link_up");
  EXPECT_EQ(kind_of(s.events()[4].action), "link_loss");
  EXPECT_EQ(kind_of(s.events()[5].action), "link_loss");
  // A loss burst always ends by restoring lossless delivery.
  EXPECT_EQ(std::get<LinkLoss>(s.events()[5].action).probability, 0.0);
}

TEST(FaultSchedule, LinkFlapAlternatesAndEndsUp) {
  FaultSchedule s;
  s.link_flap(SimTime::millis(0), SimTime::millis(1000), SimTime::millis(250),
              3);
  // down@0, up@250, down@500, up@750, final up@1000.
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(kind_of(s.events()[0].action), "link_down");
  EXPECT_EQ(kind_of(s.events()[1].action), "link_up");
  EXPECT_EQ(kind_of(s.events()[2].action), "link_down");
  EXPECT_EQ(kind_of(s.events()[3].action), "link_up");
  EXPECT_EQ(kind_of(s.events().back().action), "link_up");
  EXPECT_EQ(s.events().back().at, SimTime::millis(1000));
}

TEST(FaultSchedule, DescribeNamesTheFault) {
  EXPECT_EQ(describe(FaultAction{NodeDown{7}}), "node_down node=7");
  EXPECT_EQ(describe(FaultAction{Custom{"wipe-cache", [] {}}}),
            "custom wipe-cache");
}

TEST(ChaosController, AppliesNodeOutageAtScheduledTimes) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(9));
  const simnet::NodeId client =
      net.add_node("client", Ipv4Address::must_parse("10.9.0.1"));
  const simnet::NodeId server =
      net.add_node("server", Ipv4Address::must_parse("10.9.0.2"));
  net.add_link(client, server, LatencyModel::constant(SimTime::millis(1)));
  int received = 0;
  net.open_socket(server, 9000,
                  [&](const simnet::Packet&) { ++received; });
  simnet::UdpSocket* out = net.open_socket(client, 9001, nullptr);

  ChaosController controller(net, "test-outage");
  obs::Registry metrics;
  controller.set_metrics(&metrics);
  FaultSchedule schedule;
  schedule.node_outage(SimTime::millis(100), SimTime::millis(300), server);
  controller.arm(schedule);

  const Endpoint dst{Ipv4Address::must_parse("10.9.0.2"), 9000};
  for (const int at_ms : {50, 150, 350}) {
    sim.schedule_at(SimTime::millis(at_ms),
                    [&, dst] { out->send_to(dst, {1, 2, 3}); });
  }
  sim.run();

  EXPECT_EQ(received, 2);  // the t=150ms packet hit the outage window
  ASSERT_EQ(controller.injected(), 2u);
  EXPECT_EQ(controller.injections()[0].kind, "node_down");
  EXPECT_EQ(controller.injections()[0].at, SimTime::millis(100));
  EXPECT_EQ(controller.injections()[1].kind, "node_up");
  EXPECT_EQ(controller.injections()[1].at, SimTime::millis(300));
  EXPECT_EQ(metrics.counters().at("chaos.injections"), 2u);
  EXPECT_EQ(metrics.counters().at("chaos.node_down"), 1u);
  EXPECT_EQ(metrics.counters().at("chaos.node_up"), 1u);
}

TEST(ChaosController, CustomActionRunsAtItsInstant) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(9));
  net.add_node("only", Ipv4Address::must_parse("10.9.0.1"));

  ChaosController controller(net);
  SimTime fired = SimTime::zero();
  FaultSchedule schedule;
  schedule.custom(SimTime::millis(250), "brownout-on",
                  [&] { fired = net.now(); });
  controller.arm(schedule);
  sim.run();
  EXPECT_EQ(fired, SimTime::millis(250));
  ASSERT_EQ(controller.injected(), 1u);
  EXPECT_EQ(controller.injections()[0].description, "custom brownout-on");
}

TEST(ChaosController, InjectNowAppliesImmediately) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(9));
  net.add_node("only", Ipv4Address::must_parse("10.9.0.1"));
  ChaosController controller(net, "manual");
  bool applied = false;
  controller.inject_now(Custom{"kick", [&] { applied = true; }});
  EXPECT_TRUE(applied);
  EXPECT_EQ(controller.injected(), 1u);
}

TEST(ChaosController, EmptyScheduleArmsNothing) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(9));
  net.add_node("only", Ipv4Address::must_parse("10.9.0.1"));
  ChaosController controller(net);
  controller.arm(FaultSchedule{});
  EXPECT_EQ(sim.run(), 0u);  // no events were scheduled
  EXPECT_EQ(controller.injected(), 0u);
}

// The determinism guard: building the chaos layer and arming an *empty*
// schedule must leave a Fig. 5 run bit-identical to one that never touches
// the chaos layer — same sample count, same latencies to the last bit,
// same answers. This is the acceptance gate that lets the chaos code ship
// inside the measurement harness without perturbing the paper's figures.
TEST(ChaosDeterminism, EmptyScheduleIsBitIdenticalToNoChaosLayer) {
  const auto run = [](bool with_chaos_layer) {
    core::Fig5Testbed::Config config;
    config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
    core::Fig5Testbed testbed(config);
    std::unique_ptr<ChaosController> controller;
    if (with_chaos_layer) {
      controller = std::make_unique<ChaosController>(testbed.network(),
                                                     "empty");
      controller->arm(FaultSchedule{});
    }
    return testbed.measure(8, SimTime::millis(500));
  };

  const core::SeriesResult plain = run(false);
  const core::SeriesResult with_chaos = run(true);
  ASSERT_EQ(plain.samples.size(), with_chaos.samples.size());
  for (std::size_t i = 0; i < plain.samples.size(); ++i) {
    const core::QuerySample& a = plain.samples[i];
    const core::QuerySample& b = with_chaos.samples[i];
    EXPECT_EQ(a.ok, b.ok) << "sample " << i;
    EXPECT_EQ(a.address, b.address) << "sample " << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.total_ms, b.total_ms) << "sample " << i;
    EXPECT_EQ(a.wireless_ms, b.wireless_ms) << "sample " << i;
    EXPECT_EQ(a.beyond_pgw_ms, b.beyond_pgw_ms) << "sample " << i;
  }
}

}  // namespace
}  // namespace mecdns::chaos
